(* IPC hot-path cost decomposition: times each configuration over [rounds]
   fresh engines of [n] messages. *)
let time_config name n rounds f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to rounds do
    f n
  done;
  let t1 = Unix.gettimeofday () in
  let total = n * rounds in
  Printf.printf "%-28s %9.0f ops/s  (%5.0f ns/op)\n%!" name
    (float_of_int total /. (t1 -. t0))
    ((t1 -. t0) /. float_of_int total *. 1e9)

(* send into a nonexistent pid: send + flush-drain-remove only *)
let bench_send_drop n =
  let eng = Engine.create ~trace:false () in
  let ghost = Pid.of_int 999_999 in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         for i = 1 to n do
           Engine.send ctx ghost (Payload.int i)
         done));
  Engine.run eng

(* send to a live receiver that never scans: send + deliver *)
let bench_send_deliver n =
  let eng = Engine.create ~trace:false () in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        Engine.delay ctx 1e9)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         for i = 1 to n do
           Engine.send ctx receiver (Payload.int i)
         done));
  Engine.run eng

(* the full pair *)
let bench_full n =
  let eng = Engine.create ~trace:false () in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to n do
          ignore (Engine.receive ctx ())
        done)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         for i = 1 to n do
           Engine.send ctx receiver (Payload.int i)
         done));
  Engine.run eng

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 20_000 in
  let rounds = try int_of_string Sys.argv.(2) with _ -> 100 in
  time_config "send+drop (no dest)" n rounds bench_send_drop;
  time_config "send+deliver (no recv)" n rounds bench_send_deliver;
  time_config "send+deliver+receive" n rounds bench_full

(* cold, single-shot, as altbench measures it *)
let () =
  if Array.length Sys.argv > 3 then begin
    let n = int_of_string Sys.argv.(1) in
    time_config "full, cold single round" n 1 bench_full
  end
