(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (experiments E1-E17; see EXPERIMENTS.md), printing paper-vs-measured
   rows. Part 2 runs Bechamel microbenchmarks of the core primitives, so
   that regressions in the substrate itself are visible. *)

let run_experiments () =
  Format.printf "=============================================================@.";
  Format.printf " Transparent Concurrent Execution of Mutually Exclusive@.";
  Format.printf " Alternatives - evaluation harness (Smith & Maguire, ICDCS 89)@.";
  Format.printf "=============================================================@.";
  Experiments.run_all Format.std_formatter;
  Format.printf "@."

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks.                                           *)

open Bechamel
open Toolkit

let bench_page_map_fork =
  Test.make ~name:"page_map.fork (64 pages)"
    (Staged.stage (fun () ->
         let store = Frame_store.create ~page_size:4096 in
         let m = Page_map.create store in
         let copied = ref false in
         for vp = 0 to 63 do
           Page_map.write m ~vpage:vp ~off:0 ~src:(Bytes.make 8 'x') ~copied
         done;
         let c = Page_map.fork m in
         Page_map.release c;
         Page_map.release m))

let bench_cow_write =
  let store = Frame_store.create ~page_size:4096 in
  let parent = Page_map.create store in
  let copied = ref false in
  let () =
    for vp = 0 to 15 do
      Page_map.write parent ~vpage:vp ~off:0 ~src:(Bytes.make 8 'p') ~copied
    done
  in
  Test.make ~name:"page_map COW fault (16-page fork + 1 write)"
    (Staged.stage (fun () ->
         let child = Page_map.fork parent in
         let copied = ref false in
         Page_map.write child ~vpage:7 ~off:0 ~src:(Bytes.make 8 'c') ~copied;
         Page_map.release child))

let bench_scalar_fast_path =
  let store = Frame_store.create ~page_size:4096 in
  let space = Address_space.create ~size_hint:4096 store Cost_model.modern in
  let () =
    Address_space.set_int space ~addr:0 1;
    ignore (Address_space.drain_cost space)
  in
  Test.make ~name:"address_space scalar get_int+set_int (in place)"
    (Staged.stage (fun () ->
         Address_space.set_int space ~addr:8
           (Address_space.get_int space ~addr:0 + 1)))

let bench_scalar_byte_path =
  let store = Frame_store.create ~page_size:4096 in
  let space = Address_space.create ~size_hint:4096 store Cost_model.modern in
  let () =
    Address_space.set_int space ~addr:0 1;
    ignore (Address_space.drain_cost space)
  in
  Test.make ~name:"address_space scalar via read/write_bytes"
    (Staged.stage (fun () ->
         let b = Address_space.read_bytes space ~addr:0 ~len:8 in
         let v = Int64.to_int (Bytes.get_int64_le b 0) in
         let out = Bytes.create 8 in
         Bytes.set_int64_le out 0 (Int64.of_int (v + 1));
         Address_space.write_bytes space ~addr:8 out))

let bench_absorb_dirty =
  let store = Frame_store.create ~page_size:4096 in
  let parent = Page_map.create store in
  let () =
    for vp = 0 to 255 do
      ignore (Page_map.set_u8 parent ~vpage:vp ~off:0 1)
    done
  in
  Test.make ~name:"page_map fork + 4 dirty + absorb (256 mapped)"
    (Staged.stage (fun () ->
         let child = Page_map.fork parent in
         for vp = 0 to 3 do
           ignore (Page_map.set_u8 child ~vpage:vp ~off:1 2)
         done;
         Page_map.absorb ~parent ~child))

let bench_predicate_ops =
  let a =
    Predicate.make
      ~must_complete:(List.init 4 Pid.of_int)
      ~must_fail:(List.init 4 (fun i -> Pid.of_int (10 + i)))
  in
  let b =
    Predicate.make
      ~must_complete:(List.init 2 Pid.of_int)
      ~must_fail:(List.init 2 (fun i -> Pid.of_int (10 + i)))
  in
  Test.make ~name:"predicate implies+conflicts+conjoin"
    (Staged.stage (fun () ->
         ignore (Predicate.implies a b);
         ignore (Predicate.conflicts a b);
         ignore (Predicate.conjoin a b)))

let bench_unify =
  let t1, _ = Parser.query "f(X, g(Y, [1,2,3]), h(Z))" in
  let t2, _ = Parser.query "f(a, g(b, [1,2,3]), h(c(d)))" in
  let t2 = Term.rename ~offset:10 t2 in
  Test.make ~name:"unify f/3 against f/3"
    (Staged.stage (fun () -> ignore (Unify.unify Subst.empty t1 t2)))

let bench_event_queue =
  Test.make ~name:"event queue: 64 push + 64 pop"
    (Staged.stage (fun () ->
         let q = Event_queue.create () in
         for i = 0 to 63 do
           Event_queue.push q ~time:(float_of_int ((i * 7919) mod 64)) i
         done;
         let rec drain () = match Event_queue.pop q with Some _ -> drain () | None -> () in
         drain ()))

let bench_engine_race =
  Test.make ~name:"alt block: race 3 fixed alternatives (DES)"
    (Staged.stage (fun () ->
         let eng = Engine.create ~trace:false () in
         ignore
           (Concurrent.run_toplevel eng
              [
                Alternative.fixed ~cost:3. 0; Alternative.fixed ~cost:1. 1;
                Alternative.fixed ~cost:2. 2;
              ])))

let bench_prolog_solve =
  let db = Database.with_prelude () in
  let goal, _ = Parser.query "append(X, Y, [1,2,3,4,5,6,7,8])" in
  Test.make ~name:"prolog: all splits of an 8-list"
    (Staged.stage (fun () -> ignore (Solve.run db goal)))

let bench_message_round =
  Test.make ~name:"DES: message round trip"
    (Staged.stage (fun () ->
         let eng = Engine.create ~trace:false () in
         let echo =
           Engine.spawn eng ~oblivious:true (fun ctx ->
               let m = Engine.receive ctx () in
               Engine.send ctx m.Message.sender m.Message.payload)
         in
         ignore
           (Engine.spawn eng (fun ctx ->
                Engine.send ctx echo (Payload.int 1);
                ignore (Engine.receive ctx ())));
         Engine.run eng))

let bench_checkpoint =
  let model = Cost_model.uniform ~page_size:4096 () in
  let store = Frame_store.create ~page_size:4096 in
  let sp = Address_space.create ~size_hint:(64 * 4096) store model in
  Test.make ~name:"checkpoint capture+serialise (64 pages)"
    (Staged.stage (fun () ->
         ignore (Checkpoint.to_bytes (Checkpoint.capture sp))))

let bench_txn_commit =
  Test.make ~name:"txn: begin+write+commit (DES)"
    (Staged.stage (fun () ->
         let eng = Engine.create ~trace:false () in
         let st = Txn.create_store eng ~records:16 in
         ignore
           (Engine.spawn eng ~cloneable:false (fun ctx ->
                let t = Txn.begin_ ctx st in
                Txn.write ctx t ~key:3 7;
                ignore (Txn.commit ctx t)));
         Engine.run eng))

let bench_consensus_round =
  Test.make ~name:"consensus: acquire among 3 voters (DES)"
    (Staged.stage (fun () ->
         let eng = Engine.create ~trace:false () in
         let m = Majority.create eng ~nodes:3 () in
         ignore
           (Engine.spawn eng (fun ctx ->
                ignore (Majority.acquire ctx m ~reply_timeout:1.);
                Majority.shutdown m));
         Engine.run eng))

let bench_replica_quorum =
  Test.make ~name:"replicate: 3-replica quorum (DES)"
    (Staged.stage (fun () ->
         let eng = Engine.create ~trace:false () in
         ignore
           (Engine.spawn eng ~cloneable:false (fun ctx ->
                ignore (Replicate.run_quorum ctx ~replicas:3 (fun _ -> 42))));
         Engine.run eng))

let bench_quota_admit =
  (* The serving layer's admission hot path: one GCRA decision per
     arriving request, shed or admit, no allocation. *)
  let q = Quota.create ~rate:1000. ~burst:8 in
  let now = ref 0. in
  Test.make ~name:"serve: quota admit/shed decision (GCRA)"
    (Staged.stage (fun () ->
         now := !now +. 0.0005;
         ignore (Quota.admit q ~now:!now)))

let bench_serve_plan =
  (* Admission + batch formation over a 200-request open-loop stream —
     the pure planning scan, no engines. *)
  let wl = { Workload.default with Workload.wl_requests = 200 } in
  Test.make ~name:"serve: plan 200-request open-loop stream"
    (Staged.stage (fun () -> ignore (Workload.generate wl)))

let microbenchmarks () =
  Format.printf "@.== Microbenchmarks (Bechamel, OLS ns/run) ==@.@.";
  let tests =
    [
      bench_page_map_fork; bench_cow_write; bench_scalar_fast_path;
      bench_scalar_byte_path; bench_absorb_dirty; bench_predicate_ops; bench_unify;
      bench_event_queue; bench_engine_race; bench_prolog_solve;
      bench_message_round; bench_checkpoint; bench_txn_commit;
      bench_consensus_round; bench_replica_quorum; bench_quota_admit;
      bench_serve_plan;
    ]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> Format.printf "  %-46s %12.0f ns/run@." name ns
          | _ -> Format.printf "  %-46s %12s@." name "n/a")
        analysed)
    tests

let () =
  let args = Array.to_list Sys.argv in
  let skip_micro = List.mem "--no-micro" args in
  let skip_tables = List.mem "--micro-only" args in
  if not skip_tables then run_experiments ();
  if not skip_micro then microbenchmarks ()
