let record_bytes = 8

type store = {
  eng : Engine.t;
  space : Address_space.t;
  versions : int array;
  nrecords : int;
  mutable commit_count : int;
}

let create_store eng ~records =
  if records <= 0 then invalid_arg "Txn.create_store: records must be positive";
  let space =
    Address_space.create
      ~size_hint:(records * record_bytes)
      (Engine.frame_store eng) (Engine.model eng)
  in
  { eng; space; versions = Array.make records 0; nrecords = records;
    commit_count = 0 }

let records st = st.nrecords

let check_key st key =
  if key < 0 || key >= st.nrecords then invalid_arg "Txn: key out of range"

let addr_of key = key * record_bytes

let get st ~key =
  check_key st key;
  Address_space.get_int st.space ~addr:(addr_of key)

let version st ~key =
  check_key st key;
  st.versions.(key)

let commits st = st.commit_count

type status = Active | Finished

type t = {
  st : store;
  snapshot : Address_space.t;
  reads : (int, int) Hashtbl.t;
  writes : (int, unit) Hashtbl.t;
  mutable status : status;
  mutable claimed : bool;
      (* A racing child's transaction is claimed by the parent at the
         instant it wins, which exempts it from the child's cleanup. *)
}

let charge ctx space =
  let c = Address_space.drain_cost space in
  if c > 0. then Engine.delay ctx c

let begin_ ctx st =
  let snapshot = Address_space.fork st.space in
  charge ctx snapshot;
  {
    st;
    snapshot;
    reads = Hashtbl.create 8;
    writes = Hashtbl.create 8;
    status = Active;
    claimed = false;
  }

let check_active t =
  match t.status with
  | Active -> ()
  | Finished -> invalid_arg "Txn: transaction already finished"

let read _ctx t ~key =
  check_active t;
  check_key t.st key;
  if not (Hashtbl.mem t.reads key || Hashtbl.mem t.writes key) then
    Hashtbl.replace t.reads key t.st.versions.(key);
  Address_space.get_int t.snapshot ~addr:(addr_of key)

let write ctx t ~key value =
  check_active t;
  check_key t.st key;
  Address_space.set_int t.snapshot ~addr:(addr_of key) value;
  charge ctx t.snapshot;
  Hashtbl.replace t.writes key ()

type conflict = { key : int; read_version : int; committed_version : int }

let finish t =
  if t.status = Active then begin
    t.status <- Finished;
    Address_space.release t.snapshot
  end

let abort t = finish t
let is_finished t = t.status = Finished

let sorted_keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl [] |> List.sort compare
let sorted_reads tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let commit ctx t =
  check_active t;
  (* Validation (Kung & Robinson): every record read must still be at the
     version this transaction saw. *)
  let conflict =
    List.find_map
      (fun (key, read_version) ->
        let committed_version = t.st.versions.(key) in
        if committed_version <> read_version then
          Some { key; read_version; committed_version }
        else None)
      (sorted_reads t.reads)
  in
  match conflict with
  | Some c ->
    finish t;
    Error c
  | None ->
    (* Write phase: apply the write set to the committed store. The write
       values are read out and the snapshot released first, so that the
       store's pages are no longer shared with it when they are updated in
       place (no spurious copy-on-write fault is charged). *)
    let writeback =
      List.map
        (fun key -> (key, Address_space.get_int t.snapshot ~addr:(addr_of key)))
        (sorted_keys t.writes)
    in
    finish t;
    List.iter
      (fun (key, v) ->
        Address_space.set_int t.st.space ~addr:(addr_of key) v;
        t.st.versions.(key) <- t.st.versions.(key) + 1)
      writeback;
    charge ctx t.st.space;
    t.st.commit_count <- t.st.commit_count + 1;
    Ok ()

let with_txn ctx st ?(retries = 3) f =
  let rec attempt budget =
    let t = begin_ ctx st in
    match f ctx t with
    | v -> (
      match commit ctx t with
      | Ok () -> Ok v
      | Error c -> if budget > 0 then attempt (budget - 1) else Error c)
    | exception e ->
      abort t;
      raise e
  in
  attempt retries

(* ------------------------------------------------------------------ *)
(* Competing transactions.                                              *)

type 'a competitor = { name : string; work : Engine.ctx -> t -> 'a }

let race ctx ?policy st competitors =
  if competitors = [] then invalid_arg "Txn.race: no competitors";
  let alternatives =
    List.map
      (fun comp ->
        Alternative.make ~name:comp.name (fun cctx ->
            let txn = begin_ cctx st in
            (* The competitor's transaction dies with its process — unless
               the parent claimed it at the win, which happens before the
               winning child exits. *)
            Engine.on_exit (Engine.engine cctx) (Engine.self cctx) (fun _ ->
                if not txn.claimed then abort txn);
            let v = comp.work cctx txn in
            (v, txn)))
      competitors
  in
  let r = Concurrent.run ctx ?policy alternatives in
  match r.Concurrent.outcome with
  | Alt_block.Block_failed m -> Alt_block.Block_failed m
  | Alt_block.Selected { index; value = v, txn } -> (
    (* Claim before any suspension: the winning child's cleanup runs after
       the parent resumes here. *)
    txn.claimed <- true;
    match commit ctx txn with
    | Ok () -> Alt_block.Selected { index; value = v }
    | Error _ ->
      (* An outside transaction interfered between the snapshot and the
         win; re-run the winner's work against fresh snapshots. *)
      let comp = List.nth competitors index in
      (match with_txn ctx st (fun c t -> comp.work c t) with
      | Ok v -> Alt_block.Selected { index; value = v }
      | Error c ->
        Alt_block.Block_failed
          (Printf.sprintf "winner %s could not commit (key %d)" comp.name
             c.key)))
