(** Optimistic transactions over the paged store.

    Section 3.1 grounds the paper's side-effect handling in transactions:
    "writes ... must be done to a temporary copy until the transaction
    commits ... Reads intended for the recently written copy are satisfied
    by that copy so that the transaction is internally consistent." And
    section 6 observes that an alternative block "could also be viewed as a
    set of competing transactions, at most one of which will take effect."

    This module supplies both views:

    - {!begin_}/{!read}/{!write}/{!commit}/{!abort}: optimistic concurrency
      control in the style the paper cites (Kung and Robinson 1981). A
      transaction works against a copy-on-write {e snapshot} of the
      committed store; at commit, its read set is validated against the
      versions committed meanwhile, and its write set is applied atomically
      or the transaction aborts with a {!conflict}.
    - {!race}: a group of {e competing} transactions executed as an
      alternative block — the at-most-once synchronisation arbitrates which
      single transaction commits; the rest are aborted unseen.

    All costs (snapshot forks, copy-on-write faults, write-back) are
    charged to the simulated clock through the usual page machinery. *)

type store
(** A database: fixed-width integer records over an address space, with a
    per-record version counter for validation. *)

val create_store : Engine.t -> records:int -> store
(** A store of [records] records, all initially 0. *)

val records : store -> int
val get : store -> key:int -> int
(** Committed value of a record (test/inspection access, no transaction). *)

val version : store -> key:int -> int
(** Commits that have written this record. *)

val commits : store -> int
(** Successful commits so far. *)

type t
(** An in-flight transaction. *)

type conflict = {
  key : int;  (** The record whose validation failed. *)
  read_version : int;  (** Version when this transaction first read it. *)
  committed_version : int;  (** Version now. *)
}

val begin_ : Engine.ctx -> store -> t
(** Start a transaction: forks the committed space as a private snapshot
    (charged as a COW fork). *)

val read : Engine.ctx -> t -> key:int -> int
(** Read through the snapshot: sees the store as of [begin_], plus this
    transaction's own writes. Records the version for validation. Raises
    [Invalid_argument] on a bad key or a finished transaction. *)

val write : Engine.ctx -> t -> key:int -> int -> unit
(** Write to the private copy (a COW fault on first touch of a page). *)

val commit : Engine.ctx -> t -> (unit, conflict) result
(** Validate the read set against the store's current versions; on success
    apply the write set to the committed store (bumping versions) and
    return [Ok ()]. On conflict, the transaction is aborted and the store
    untouched. Either way the transaction is finished afterwards. *)

val abort : t -> unit
(** Discard the snapshot and the write set. Idempotent. *)

val is_finished : t -> bool

val with_txn :
  Engine.ctx -> store -> ?retries:int -> (Engine.ctx -> t -> 'a) -> ('a, conflict) result
(** Run [f] in a fresh transaction and commit; on conflict, retry from a
    fresh snapshot up to [retries] (default 3) more times. The body must
    confine its store access to this transaction. *)

(** {2 Competing transactions (section 6)} *)

type 'a competitor = {
  name : string;
  work : Engine.ctx -> t -> 'a;
      (** One way of effecting the state change. Runs in its own process
          with its own transaction; may raise {!Alternative.Failed}. *)
}

val race :
  Engine.ctx ->
  ?policy:Concurrent.policy ->
  store ->
  'a competitor list ->
  'a Alt_block.outcome
(** Execute the competitors as an alternative block: each runs its [work]
    speculatively against its own snapshot; the fastest to finish wins the
    synchronisation, and {e only the winner's transaction commits} (in the
    caller's process, validated as usual; if an outside commit interfered,
    the winner's work is re-run transactionally). Losing competitors'
    transactions are aborted — their effects are never observable. *)
