type msg_action = Drop | Duplicate | Delay of float | Reorder of float

type msg_rule = {
  action : msg_action;
  p : float;
  tag : string option;
  sender : string option;
  dest : string option;
  window : float * float;
}

type proc_fault = Kill | Crash of float (* revive delay; infinity = never *)

type proc_rule = { fault : proc_fault; target : string; nth : int; after : float }

type site_rule =
  | Crash_site of { site : string; at : float; jitter : float }
  | Partition_sites of {
      left : string list;
      right : string list;
      at : float;
      jitter : float;
      heal_after : float option;
    }

type rule = Message of msg_rule | Process of proc_rule | Site of site_rule

let message ?(p = 1.0) ?tag ?sender ?dest ?(window = (0., infinity)) action =
  if not (p >= 0. && p <= 1.) then invalid_arg "Faultplan.message: p not in [0,1]";
  Message { action; p; tag; sender; dest; window }

let storm ?window extra = message ?window (Delay extra)

let kill_process ?(nth = 0) ?(after = 0.) target =
  Process { fault = Kill; target; nth; after }

let crash_process ?(nth = 0) ?(after = 0.) ?(revive_after = infinity) target =
  Process { fault = Crash revive_after; target; nth; after }

let check_jitter ~fn jitter =
  if jitter < 0. then invalid_arg ("Faultplan." ^ fn ^ ": negative jitter")

let crash_site ?(at = 0.) ?(jitter = 0.) site =
  check_jitter ~fn:"crash_site" jitter;
  Site (Crash_site { site; at; jitter })

let partition_sites ?(at = 0.) ?(jitter = 0.) ?heal_after left right =
  check_jitter ~fn:"partition_sites" jitter;
  (match heal_after with
  | Some h when h < 0. ->
    invalid_arg "Faultplan.partition_sites: negative heal_after"
  | _ -> ());
  Site (Partition_sites { left; right; at; jitter; heal_after })

type t = { seed : int; rules : rule list }

let make ?(seed = 0) rules = { seed; rules }
let none = { seed = 0; rules = [] }

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0

let install ?sites plan eng =
  let rng = Rng.create ~seed:plan.seed in
  let msg_rules =
    List.filter_map
      (function Message r -> Some r | Process _ | Site _ -> None)
      plan.rules
  in
  let proc_rules =
    List.filter_map
      (function Process r -> Some r | Message _ | Site _ -> None)
      plan.rules
  in
  let site_rules =
    List.filter_map
      (function Site r -> Some r | Message _ | Process _ -> None)
      plan.rules
  in
  (match (sites, site_rules) with
  | None, _ :: _ ->
    invalid_arg "Faultplan.install: plan has site rules but no ~sites topology"
  | _ -> ());
  (* Per-rule match counters for [nth] selection. *)
  let proc_seen = Array.make (List.length proc_rules) 0 in
  (* Crashed ("silenced") pids: their traffic is black-holed. *)
  let silenced : (Pid.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let tr e = Trace.record (Engine.trace eng) ~time:(Engine.now eng) e in
  let name_matches pat pid =
    match Engine.name_of eng pid with
    | None -> false
    | Some name -> contains ~sub:pat name
  in
  let rule_applies (r : msg_rule) (m : Message.t) =
    let lo, hi = r.window in
    let now = Engine.now eng in
    now >= lo && now <= hi
    && (match r.tag with None -> true | Some t -> String.equal t m.Message.tag)
    && (match r.sender with None -> true | Some s -> name_matches s m.Message.sender)
    && (match r.dest with None -> true | Some d -> name_matches d m.Message.dest)
    (* The Bernoulli draw comes last so the stream advances exactly once
       per pattern-matched message — stable under rule reordering. *)
    && (r.p >= 1.0 || Rng.bernoulli rng ~p:r.p)
  in
  let on_message (m : Message.t) : Engine.fault_action =
    if Hashtbl.mem silenced m.Message.sender || Hashtbl.mem silenced m.Message.dest
    then Engine.F_drop
    else
      match List.find_opt (fun r -> rule_applies r m) msg_rules with
      | None -> Engine.F_deliver
      | Some r -> (
        match r.action with
        | Drop -> Engine.F_drop
        | Duplicate -> Engine.F_duplicate
        | Delay d -> Engine.F_delay d
        | Reorder d -> Engine.F_reorder d)
  in
  let apply_proc_fault (r : proc_rule) pid =
    match r.fault with
    | Kill ->
      if Engine.alive eng pid then begin
        tr (Trace.Injected { kind = "kill"; pid = Some pid; msg = None });
        Engine.kill eng pid ~reason:"fault injection"
      end
    | Crash revive ->
      if Engine.alive eng pid then begin
        tr (Trace.Injected { kind = "crash"; pid = Some pid; msg = None });
        Hashtbl.replace silenced pid ();
        if revive < infinity then
          Engine.after eng ~delay:revive (fun () ->
              if Hashtbl.mem silenced pid then begin
                Hashtbl.remove silenced pid;
                tr (Trace.Injected { kind = "revive"; pid = Some pid; msg = None })
              end)
      end
  in
  let on_spawn pid name =
    List.iteri
      (fun i r ->
        if contains ~sub:r.target name then begin
          let seen = proc_seen.(i) in
          proc_seen.(i) <- seen + 1;
          if seen = r.nth then
            if r.after <= 0. then apply_proc_fault r pid
            else Engine.after eng ~delay:r.after (fun () -> apply_proc_fault r pid)
        end)
      proc_rules
  in
  (* Site faults are scheduled up front, in rule order: each rule draws its
     jitter from the plan stream exactly once at install time, so the fault
     schedule is a pure function of the plan seed no matter what the
     execution does in between. *)
  (match sites with
  | None -> ()
  | Some topo ->
    List.iter
      (fun r ->
        let fire_at at jitter =
          at +. if jitter > 0. then Rng.float rng jitter else 0.
        in
        match r with
        | Crash_site { site; at; jitter } ->
          Engine.after eng ~delay:(fire_at at jitter) (fun () ->
              Sites.crash topo site)
        | Partition_sites { left; right; at; jitter; heal_after } ->
          Engine.after eng ~delay:(fire_at at jitter) (fun () ->
              Sites.partition topo ~left ~right;
              match heal_after with
              | None -> ()
              | Some h ->
                Engine.after eng ~delay:h (fun () ->
                    Sites.heal topo ~left ~right)))
      site_rules);
  Engine.set_message_fault eng (Some on_message);
  Engine.set_spawn_hook eng (Some on_spawn)
