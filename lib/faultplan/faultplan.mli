(** Deterministic, seed-replayable fault injection.

    A {e fault plan} is a list of declarative rules compiled onto an
    {!Engine.t} through the engine's fault hooks
    ({!Engine.set_message_fault}, {!Engine.set_spawn_hook}). Message rules
    drop, duplicate, delay, or reorder messages selected by tag, endpoint
    name, and virtual-time window; process rules kill a process outright or
    crash it (black-hole its traffic) with an optional revival. Every
    injection that takes effect is recorded as a {!Trace.Injected} event, so
    the analysis layer can tell a faulted execution from a clean one and
    audit exactly what the campaign did.

    {2 Determinism contract}

    All randomness comes from a private {!Rng} stream seeded at {!make}.
    The engine consults the plan at deterministic points (each [send], each
    spawn), so the same [(plan seed, engine seed, program)] triple yields a
    byte-identical execution — including the injected faults. This is what
    makes a fuzzing campaign's failures replayable from the two seeds
    alone. *)

(** What to do to a matched message. [Delay] adds latency but preserves the
    per-channel FIFO order; [Reorder] adds latency {e without} holding the
    channel back, so later messages may overtake (the paper's transport is
    FIFO, so reorder campaigns probe beyond its stated model). *)
type msg_action = Drop | Duplicate | Delay of float | Reorder of float

type rule

val message :
  ?p:float ->
  ?tag:string ->
  ?sender:string ->
  ?dest:string ->
  ?window:float * float ->
  msg_action ->
  rule
(** A message rule. A message matches when its tag equals [tag] (if given),
    the sender's / destination's process name contains [sender] / [dest] as
    a substring (if given), and the current virtual time lies in [window]
    (default [(0., infinity)]). A matching message suffers the action with
    probability [p] (default [1.]); rules are tried in list order and the
    first one that fires wins. *)

val storm : ?window:float * float -> float -> rule
(** [storm extra] delays {e every} message in the window by [extra] —
    a timeout storm: enough added latency turns every pending
    [receive_timeout] and consensus reply wait into a timeout. *)

val kill_process : ?nth:int -> ?after:float -> string -> rule
(** Kill the [nth] (0-based, default 0) process whose name contains the
    given substring, [after] (default 0) virtual seconds after it is
    spawned. Children of an alternative block are named ["<alt>[<i>]"], so
    ["["] targets any child; voters are ["voter<i>"]. *)

val crash_process : ?nth:int -> ?after:float -> ?revive_after:float -> string -> rule
(** Crash (rather than kill) the matched process: it keeps running but all
    its traffic — incoming and outgoing — is silently dropped, like a
    crashed or partitioned node. With [revive_after] the partition heals
    that many seconds later. A crashed voter's grant state survives the
    outage, exactly the durability the majority-consensus protocol relies
    on. *)

val crash_site : ?at:float -> ?jitter:float -> string -> rule
(** Crash the named site at virtual time [at + u] where [u] is drawn
    uniformly from [[0, jitter)] (default both 0) from the plan's stream at
    install time. Every process then resident on the site is killed
    ({!Sites.crash}) and messages to or from the site's residents are
    dropped from then on. Requires [install ~sites]. Raises
    [Invalid_argument] on negative [jitter]. *)

val partition_sites :
  ?at:float ->
  ?jitter:float ->
  ?heal_after:float ->
  string list ->
  string list ->
  rule
(** [partition_sites left right] cuts every link between a site in [left]
    and a site in [right] at time [at + u], [u] uniform in [[0, jitter)]
    (messages crossing the cut are dropped at delivery time, so in-flight
    traffic is lost too). With [heal_after] the same cut is healed that many
    seconds after it was made. Requires [install ~sites]. Raises
    [Invalid_argument] on negative [jitter] or [heal_after]. *)

type t

val make : ?seed:int -> rule list -> t
(** A plan. [seed] (default 0) feeds the plan's private random stream. *)

val none : t
(** The empty plan: installs hooks that deliver everything untouched. *)

val install : ?sites:Sites.t -> t -> Engine.t -> unit
(** Compile the plan onto the engine. Must be called before the engine
    runs; installing a second plan replaces the first. Site rules
    ({!crash_site}, {!partition_sites}) are scheduled against [sites] —
    their jitter draws happen here, in rule order, so the fault schedule
    is fixed by the plan seed alone. Raises [Invalid_argument] if the plan
    contains site rules and [sites] is not given. *)
