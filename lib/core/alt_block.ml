type 'a outcome =
  | Selected of { index : int; value : 'a }
  | Block_failed of string

let outcome_index = function
  | Selected { index; _ } -> Some index
  | Block_failed _ -> None

(* Run one alternative in the current process against the current sink
   state, rolling back on failure. Returns [Ok v] or [Error reason]. *)
let attempt ctx (alt : 'a Alternative.t) =
  let snapshot = Option.map Address_space.fork (Engine.space ctx) in
  (* The snapshot fork cost is part of the trial. *)
  (match snapshot with
  | Some snap ->
    let c = Address_space.drain_cost snap in
    if c > 0. then Engine.delay ctx c
  | None -> ());
  let rollback () =
    match (Engine.space ctx, snapshot) with
    | Some sp, Some snap ->
      Address_space.absorb ~parent:sp ~child:snap;
      Engine.charge_memory ctx
    | _ -> ()
  and commit () = Option.iter Address_space.release snapshot in
  let fail reason =
    rollback ();
    Error reason
  in
  if not (alt.Alternative.guard ctx) then fail "guard failed"
  else
    match alt.Alternative.body ctx with
    | v ->
      Engine.charge_memory ctx;
      commit ();
      Ok v
    | exception Alternative.Failed r -> fail r

let run_first ctx alts =
  let rec go index = function
    | [] -> Block_failed "no alternative succeeded"
    | alt :: rest -> (
      match attempt ctx alt with
      | Ok value -> Selected { index; value }
      | Error _ -> go (index + 1) rest)
  in
  go 0 alts

let run_random ctx ~rng alts =
  match alts with
  | [] -> Block_failed "empty block"
  | _ ->
    let arr = Array.of_list alts in
    let index = Rng.int rng (Array.length arr) in
    (match attempt ctx arr.(index) with
    | Ok value -> Selected { index; value }
    | Error r -> Block_failed (Printf.sprintf "alternative %d failed: %s" index r))

let run_oracle ctx ~costs alts =
  match alts with
  | [] -> Block_failed "empty block"
  | _ ->
    let arr = Array.of_list alts in
    if Array.length costs <> Array.length arr then
      invalid_arg "Alt_block.run_oracle: costs/alternatives length mismatch";
    let best = ref 0 in
    Array.iteri (fun i c -> if c < costs.(!best) then best := i) costs;
    let index = !best in
    (match attempt ctx arr.(index) with
    | Ok value -> Selected { index; value }
    | Error r -> Block_failed (Printf.sprintf "alternative %d failed: %s" index r))
