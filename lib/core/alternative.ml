type 'a t = {
  name : string;
  guard : Engine.ctx -> bool;
  body : Engine.ctx -> 'a;
}

exception Failed of string

let make ?(name = "alt") ?(guard = fun _ -> true) body = { name; guard; body }

let fixed ?(name = "fixed") ~cost v =
  make ~name (fun ctx ->
      Engine.delay ctx cost;
      v)

let failing ?(name = "failing") ~cost () =
  make ~name (fun ctx ->
      Engine.delay ctx cost;
      raise (Failed name))
