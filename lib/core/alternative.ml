type footprint = {
  writes : (int * int) list;
  reads_source : bool;
  writes_source : bool;
  endpoints : string list;
}

let pure =
  { writes = []; reads_source = false; writes_source = false; endpoints = [] }

let footprint ?(writes = []) ?(reads_source = false) ?(writes_source = false)
    ?(endpoints = []) () =
  { writes; reads_source; writes_source; endpoints }

type 'a t = {
  name : string;
  guard : Engine.ctx -> bool;
  body : Engine.ctx -> 'a;
  footprint : footprint option;
}

exception Failed of string

let make ?(name = "alt") ?(guard = fun _ -> true) ?footprint body =
  { name; guard; body; footprint }

let fixed ?(name = "fixed") ~cost v =
  make ~name ~footprint:pure (fun ctx ->
      Engine.delay ctx cost;
      v)

let failing ?(name = "failing") ~cost () =
  make ~name ~footprint:pure (fun ctx ->
      Engine.delay ctx cost;
      raise (Failed name))
