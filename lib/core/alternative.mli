(** One alternative of an alternative block.

    The paper's construct (figure 1):
    {v
    ALTBEGIN
      ENSURE guard1 WITH method1 OR
      ...
      ENSURE guardn WITH methodn OR
      FAIL
    END
    v}

    An alternative couples a guard with a method. The guard may be
    evaluated "before spawning the alternative, in the child process, at
    the synchronization point, or at any combination of these places, for
    redundancy"; following the paper we evaluate it in the child, "thus
    speeding up spawning and synchronization" (section 3.2). *)

(** A declared effect footprint: what an alternative's body may touch.
    Purely a {e declaration} — nothing enforces it at run time (the online
    sanitizer and the post-mortem checkers watch actual effects); the
    static analyzer ({!Lint.check_footprints}) compares declared
    footprints pairwise and treats an {e undeclared} footprint as
    conflicting with everything. *)
type footprint = {
  writes : (int * int) list;
      (** [(addr, len)] byte ranges of sink state the body may write. *)
  reads_source : bool;  (** Consumes source-device input. *)
  writes_source : bool;  (** Emits source-device output. *)
  endpoints : string list;
      (** Message endpoints (process names, tags) the body communicates
          with. *)
}

val pure : footprint
(** No writes, no source, no endpoints: the footprint of {!fixed} and
    {!failing}. *)

val footprint :
  ?writes:(int * int) list ->
  ?reads_source:bool ->
  ?writes_source:bool ->
  ?endpoints:string list ->
  unit ->
  footprint
(** All fields default to empty/false. *)

type 'a t = {
  name : string;
  guard : Engine.ctx -> bool;
      (** Must hold for the alternative to be eligible. Evaluated in the
          child process. *)
  body : Engine.ctx -> 'a;
      (** The method. May {!Engine.delay}, use {!Mem} sink state, and
          exchange messages. It must not write sink state after its
          synchronisation succeeds (i.e. after [body] returns). To signal
          failure from within, call {!Engine.abort} or raise {!Failed}. *)
  footprint : footprint option;
      (** Declared effects; [None] means undeclared (conservatively
          conflicting under static analysis). *)
}

exception Failed of string
(** Raised by a body to indicate that this alternative cannot produce an
    acceptable result. *)

val make :
  ?name:string ->
  ?guard:(Engine.ctx -> bool) ->
  ?footprint:footprint ->
  (Engine.ctx -> 'a) ->
  'a t
(** Default guard always holds; default name is ["alt"]; default footprint
    is undeclared. *)

val fixed : ?name:string -> cost:float -> 'a -> 'a t
(** An alternative that consumes exactly [cost] seconds of CPU and returns
    the value: the synthetic computation used throughout the performance
    experiments. *)

val failing : ?name:string -> cost:float -> unit -> 'a t
(** Consumes [cost] seconds, then fails. *)
