(** One alternative of an alternative block.

    The paper's construct (figure 1):
    {v
    ALTBEGIN
      ENSURE guard1 WITH method1 OR
      ...
      ENSURE guardn WITH methodn OR
      FAIL
    END
    v}

    An alternative couples a guard with a method. The guard may be
    evaluated "before spawning the alternative, in the child process, at
    the synchronization point, or at any combination of these places, for
    redundancy"; following the paper we evaluate it in the child, "thus
    speeding up spawning and synchronization" (section 3.2). *)

type 'a t = {
  name : string;
  guard : Engine.ctx -> bool;
      (** Must hold for the alternative to be eligible. Evaluated in the
          child process. *)
  body : Engine.ctx -> 'a;
      (** The method. May {!Engine.delay}, use {!Mem} sink state, and
          exchange messages. It must not write sink state after its
          synchronisation succeeds (i.e. after [body] returns). To signal
          failure from within, call {!Engine.abort} or raise {!Failed}. *)
}

exception Failed of string
(** Raised by a body to indicate that this alternative cannot produce an
    acceptable result. *)

val make : ?name:string -> ?guard:(Engine.ctx -> bool) -> (Engine.ctx -> 'a) -> 'a t
(** Default guard always holds; default name is ["alt"]. *)

val fixed : ?name:string -> cost:float -> 'a -> 'a t
(** An alternative that consumes exactly [cost] seconds of CPU and returns
    the value: the synthetic computation used throughout the performance
    experiments. *)

val failing : ?name:string -> cost:float -> unit -> 'a t
(** Consumes [cost] seconds, then fails. *)
