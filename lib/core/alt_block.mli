(** Alternative blocks: shared outcome type and the sequential reference
    semantics.

    The meaning of a block is that "one of the alternatives (including
    failure) is selected non-deterministically" (section 2). The
    transparent concurrent execution of {!Concurrent} must be
    indistinguishable from some run of this module's sequential
    implementations. *)

(** The observable result of executing a block. *)
type 'a outcome =
  | Selected of { index : int; value : 'a }
      (** Alternative [index] (0-based) was applied; its state changes took
          effect and it returned [value]. *)
  | Block_failed of string
      (** The FAIL branch: no alternative succeeded (or none synchronised
          in time, in the concurrent case). *)

val outcome_index : 'a outcome -> int option

val attempt : Engine.ctx -> 'a Alternative.t -> ('a, string) result
(** Run one alternative in the calling process against its sink state,
    rolling the state back from a copy-on-write snapshot if the guard or
    body fails. The building block of the sequential strategies below and
    of sequential recovery blocks. *)

val run_first : Engine.ctx -> 'a Alternative.t list -> 'a outcome
(** Try the alternatives in the given order; apply the first whose guard
    holds and whose body succeeds. Failed trials are rolled back: sink
    state written by a failed body is restored from a copy-on-write
    snapshot taken before the trial (charging fork and restore costs), so a
    later alternative starts from the block-entry state. *)

val run_random : Engine.ctx -> rng:Rng.t -> 'a Alternative.t list -> 'a outcome
(** The paper's Scheme B: select one alternative uniformly at random and
    commit to it — succeed or fail with it, no retry. Repeated over many
    inputs this costs the arithmetic mean of the alternatives' times. *)

val run_oracle : Engine.ctx -> costs:float array -> 'a Alternative.t list -> 'a outcome
(** An oracle baseline: runs only the alternative with the smallest
    announced cost (the caller, e.g. a benchmark that constructed the
    alternatives, knows their [tau(Ci, x)]). This is [tau(C_best)] with no
    overhead — the ideal that concurrent execution approaches from
    above. *)
