type 'a quorum_result = {
  value : 'a option;
  agreeing : int;
  answered : int;
  crashed : int;
}

let run_quorum ?(equal = ( = )) ctx ~replicas body =
  if replicas < 1 then invalid_arg "Replicate.run_quorum: replicas < 1";
  let eng = Engine.engine ctx in
  let model = Engine.model eng in
  let my_space = Engine.space ctx in
  let my_pred = Engine.my_predicate ctx in
  let me = Engine.self ctx in
  let need = (replicas / 2) + 1 in
  let slots : 'a option array = Array.make replicas None in
  let exited = ref 0 in
  let crashed = ref 0 in
  let decided : unit Engine.Ivar.t = Engine.Ivar.create () in
  (* Tally after every replica exit; decide as soon as a strict majority
     agrees or no value can still reach one. *)
  let tally () =
    let groups : ('a * int ref) list ref = ref [] in
    Array.iter
      (function
        | None -> ()
        | Some v -> (
          match List.find_opt (fun (w, _) -> equal v w) !groups with
          | Some (_, c) -> incr c
          | None -> groups := (v, ref 1) :: !groups))
      slots;
    let best =
      List.fold_left
        (fun acc (v, c) ->
          match acc with
          | Some (_, c') when c' >= !c -> acc
          | _ -> Some (v, !c))
        None !groups
    in
    (best, !groups)
  in
  let check_decided () =
    let best, _ = tally () in
    let outstanding = replicas - !exited in
    match best with
    | Some (_, c) when c >= need -> ignore (Engine.Ivar.try_fill decided ())
    | _ ->
      (* Could the leading group still reach a majority? *)
      let leader = match best with Some (_, c) -> c | None -> 0 in
      if leader + outstanding < need then
        ignore (Engine.Ivar.try_fill decided ())
  in
  (* Spawn the replicas; each pays a fork and reports through its slot
     (standing in for the reply message, whose latency is charged). *)
  let setup = ref 0. in
  let child_spaces =
    Array.init replicas (fun _ ->
        match my_space with
        | Some sp ->
          let child = Address_space.fork sp in
          setup := !setup +. Address_space.drain_cost child;
          Some child
        | None ->
          setup := !setup +. model.Cost_model.fork_base;
          None)
  in
  if !setup > 0. then Engine.delay ctx !setup;
  let pids =
    Array.mapi
      (fun i space ->
        let pid =
          Engine.spawn eng ?space ~parent:me ~predicate:my_pred
            ~cloneable:false
            ~name:(Printf.sprintf "replica%d" i)
            (fun rctx ->
              let v = body rctx in
              Engine.charge_memory rctx;
              Engine.delay rctx model.Cost_model.msg_latency;
              slots.(i) <- Some v)
        in
        Engine.on_exit eng pid (fun st ->
            incr exited;
            (match st with
            | Engine.Exited_ok -> ()
            | Engine.Exited_failed _ | Engine.Crashed _ | Engine.Eliminated _ ->
              incr crashed);
            check_decided ());
        pid)
      child_spaces
  in
  Engine.Ivar.read ctx decided;
  let crashed_at_decision = !crashed in
  (* Eliminate stragglers: the quorum is decided, their answers can no
     longer matter. Their spaces are released at their exits. *)
  Array.iter
    (fun pid ->
      if Engine.alive eng pid then
        Engine.kill eng pid ~reason:"replica quorum decided")
    pids;
  let best, _ = tally () in
  let answered =
    Array.fold_left (fun a s -> if s <> None then a + 1 else a) 0 slots
  in
  match best with
  | Some (v, c) when c >= need ->
    { value = Some v; agreeing = c; answered; crashed = crashed_at_decision }
  | Some (_, c) ->
    { value = None; agreeing = c; answered; crashed = crashed_at_decision }
  | None ->
    { value = None; agreeing = 0; answered; crashed = crashed_at_decision }

let alternative ?equal ~replicas (alt : 'a Alternative.t) =
  {
    Alternative.name = Printf.sprintf "%s(x%d)" alt.Alternative.name replicas;
    guard = alt.Alternative.guard;
    body =
      (fun ctx ->
        let q = run_quorum ?equal ctx ~replicas alt.Alternative.body in
        match q.value with
        | Some v -> v
        | None ->
          raise
            (Alternative.Failed
               (Printf.sprintf "%s: no replica majority (%d/%d agreed)"
                  alt.Alternative.name q.agreeing replicas)));
    footprint = alt.Alternative.footprint;
  }
