type workload = { description : string; times : float array array }

let generate ~rng ~inputs ~alternatives ~dist ~description =
  let draw () =
    match dist with
    | `Uniform (lo, hi) -> Rng.uniform_in rng ~lo ~hi
    | `Exponential mean -> Rng.exponential rng ~mean
    | `Bimodal (fast, slow, p) -> if Rng.bernoulli rng ~p then fast else slow
  in
  let times =
    Array.init inputs (fun _ -> Array.init alternatives (fun _ -> draw ()))
  in
  { description; times }

type evaluation = {
  scheme_a : float;
  scheme_b : float;
  scheme_c : float;
  oracle : float;
  pi_c_over_b : float;
}

let evaluate w ~overhead =
  let inputs = Array.length w.times in
  if inputs = 0 then invalid_arg "Schemes.evaluate: empty workload";
  let alternatives = Array.length w.times.(0) in
  if alternatives = 0 then invalid_arg "Schemes.evaluate: no alternatives";
  (* Scheme A commits statically to the alternative with the best column
     mean ("quicksort is almost always O(n log n)"). *)
  let col_mean j =
    Stats.mean (Array.map (fun row -> row.(j)) w.times)
  in
  let best_col = ref 0 in
  for j = 1 to alternatives - 1 do
    if col_mean j < col_mean !best_col then best_col := j
  done;
  let scheme_a = col_mean !best_col in
  let scheme_b = Stats.mean (Array.map Stats.mean w.times) in
  let per_input_best = Array.map Stats.min w.times in
  let oracle = Stats.mean per_input_best in
  let scheme_c = oracle +. overhead in
  { scheme_a; scheme_b; scheme_c; oracle; pi_c_over_b = scheme_b /. scheme_c }

let pp_evaluation ppf e =
  Format.fprintf ppf
    "A(static)=%.4g  B(random)=%.4g  C(concurrent)=%.4g  oracle=%.4g  PI(C/B)=%.3g"
    e.scheme_a e.scheme_b e.scheme_c e.oracle e.pi_c_over_b
