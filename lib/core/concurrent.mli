(** Transparent concurrent execution of an alternative block (section 3).

    The semantics-preserving transformation: spawn every alternative as a
    copy-on-write child of the calling process, let them race, select the
    {e fastest successful} one through an at-most-once synchronisation, have
    the parent absorb the winner's page map at rendezvous, and eliminate
    the losing siblings. To any observer the result is one nondeterministic
    sequential selection ({!Alt_block}); the execution time approaches
    [tau(C_best) + tau(overhead)]. *)

(** How losing siblings are eliminated (section 3.2.1). *)
type elimination =
  | Sync_elim
      (** The parent issues and completes the eliminations before resuming:
          cheaper bookkeeping, but the kill instructions are charged to the
          parent's execution time. *)
  | Async_elim
      (** Elimination is scheduled in the background (one scheduler
          notification latency per sibling) and the parent resumes at once:
          better execution time, worse throughput while zombies linger. *)
  | No_elim
      (** No elimination instructions are issued at all — modelling
          "communications problems or system failures" that lose every
          kill message (section 3.2.1). Correctness must then rest entirely
          on the backup: losers run to completion, attempt to synchronise,
          are told "too late", and terminate themselves. Maximum wasted
          work, unchanged at-most-once semantics. *)

(** How the at-most-once winner decision is made. *)
type sync_mode =
  | Local  (** A single latch: fast, but a single point of failure. *)
  | Consensus of {
      nodes : int;  (** Voter processes; majority = nodes/2 + 1. *)
      crashed : int list;  (** Indices of voters that never answer. *)
      vote_delay : float;  (** Per-vote processing time at a voter. *)
      reply_timeout : float;  (** Requester's per-reply patience. *)
    }
      (** A majority-consensus 0-1 semaphore: survives a minority of node
          failures at the cost of extra message rounds. *)

(** Where guards are evaluated. "Note that the GUARD can be executed
    before spawning the alternative, in the child process, at the
    synchronization point, or at any combination of these places, for
    redundancy. We currently expect the child process to execute it, thus
    speeding up spawning and synchronization" (section 3.2). *)
type guard_placement =
  | Guard_in_child  (** The paper's choice and the default. *)
  | Guard_before_spawn
      (** The parent evaluates each guard and does not spawn closed
          alternatives at all: cheaper when guards are selective, but the
          evaluation is serial in the parent. *)
  | Guard_at_sync
      (** The child runs its body first and checks the guard only at the
          synchronisation point. *)
  | Guard_redundant
      (** All three places — the fault-suspicious configuration. *)

(** Where the alternatives execute. *)
type placement =
  | Local_spawn  (** Copy-on-write children on the parent's node. *)
  | Remote_spawn
      (** Children on remote nodes, created by checkpoint/restart in the
          manner of Smith and Ioannidis's rfork(): the whole image is
          shipped (no on-demand paging), results and eliminations cross
          the network. *)
  | Remote_on_demand
      (** Children on remote nodes with on-demand state management in the
          manner of Theimer et al. (which the paper cites as the "more
          sophisticated" scheme): spawning ships no image — each
          copy-on-write fault instead pays a network fetch on top of the
          copy, and only the pages the winner actually dirtied are shipped
          back at rendezvous. *)

(** What to do when the block cannot reach a decision — the [alt_wait]
    timeout fires, or (under [Consensus]) no quorum of voters was reachable
    from any child. *)
type degradation =
  | Fail_block  (** Report [Block_failed]; the caller deals with it. *)
  | Sequential_fallback
      (** Abandon speculation: kill every child, then run the alternatives
          one at a time in the parent, exactly as the sequential semantics
          prescribe. Slower, but the block still computes its answer when
          the speculation machinery is the thing that failed. Reported
          honestly via {!report}[.degraded] and a [Trace.Degraded] event. *)

type policy = {
  elimination : elimination;
  sync : sync_mode;
  timeout : float;
      (** The [alt_wait] TIMEOUT: "if TIMEOUT time units have elapsed, it
          is highly probable that none of the alternatives have
          succeeded". *)
  guards : guard_placement;
  placement : placement;
  degradation : degradation;
  sync_retries : int;
      (** Extra consensus rounds a child may run when a round ends with no
          quorum reachable (passed to {!Majority.acquire_retry}). Denials
          are final and never retried. *)
  sync_backoff : float;
      (** Base of the exponential backoff between those rounds (virtual
          seconds). *)
}

val default_policy : policy
(** Synchronous elimination, local latch, guard in the child, local
    copy-on-write spawning, effectively-infinite timeout, [Fail_block]
    degradation, no consensus retries (backoff base 0.01). *)

val describe : policy -> string
(** A compact human-readable rendering,
    e.g. ["sync-elim/local-latch/guard-in-child/local"]. Used by altcheck
    and the experiment tables to label policy-matrix rows. *)

(** Everything a caller (or an experiment) wants to know about one block
    execution. *)
type 'a report = {
  outcome : 'a Alt_block.outcome;
  winner : Pid.t option;
  children : Pid.t list;
  elapsed : float;  (** Virtual time from block entry to parent resumption. *)
  setup_cost : float;
      (** Creating the execution environments (page-map forks, or
          checkpoint shipping under [Remote_spawn]), charged to the parent
          before the race. *)
  spawned : int;
      (** Alternatives actually spawned ([Guard_before_spawn] may skip
          closed ones). *)
  selection_cost : float;
      (** Elimination instructions (sync mode) plus page-map absorption. *)
  wasted_cpu : float;
      (** Virtual CPU consumed by alternatives other than the winner: the
          throughput price of speculation. *)
  child_cow_copies : int;
      (** Copy-on-write faults serviced for the children: state that had to
          be privatised because alternatives updated shared pages. *)
  sync_messages : int;  (** Consensus protocol messages (0 for [Local]). *)
  attempted : int;
      (** Alternatives that ran to a verdict — produced a value, declared
          failure, or crashed — whether concurrently or during a sequential
          fallback. Eliminated children do {e not} count: they never
          finished attempting. This is the honest "attempts made" figure a
          recovery block should report. *)
  degraded : bool;
      (** The block fell back to sequential execution
          ([Sequential_fallback] fired). When [true], [winner] is [None]
          even for a [Selected] outcome — the value was computed in the
          parent, not by a speculative child. *)
}

val run :
  Engine.ctx ->
  ?policy:policy ->
  ?consensus:Majority.t ->
  ?epoch:int ->
  ?exclusive:bool ->
  ?deadline:float ->
  'a Alternative.t list ->
  'a report
(** Execute the block from inside a process. The calling process blocks (as
    the paper's parent does in [alt_wait]) until a winner commits, all
    alternatives fail, or the timeout expires; its address space, if any,
    ends up identical to a sequential execution of the winner alone.

    [consensus] lends the block an existing voter group instead of creating
    (and shutting down) its own — the coordinator-recovery watchdog uses
    this so the durable grants survive a coordinator restart; requires a
    [Consensus] sync policy ([Invalid_argument] otherwise), whose [nodes],
    [crashed] and [vote_delay] fields are then ignored in favour of the
    lent group. [epoch] (default 0) stamps this incarnation's consensus
    requests and its {!Trace.Sync_won} event; leave it at 0 for
    unsupervised blocks (byte-identical wire format to earlier releases).

    [exclusive] (default [false]) asserts that the caller has {e proved}
    — statically, e.g. via [Lint.check_goal] — that at most one
    alternative can ever reach its synchronisation point successfully.
    Under a [Consensus] sync policy (and no borrowed group) the block
    then {e elides} the voter machinery: the distributed 0-1 semaphore
    would always grant the sole possible winner, so a local latch decides
    identically with zero consensus messages. The winner, its value and
    the absorbed state are byte-identical to the consensus path; only the
    synchronisation overhead changes. A [Trace.Note] records the elision.
    Passing [exclusive] on a block that is {e not} mutually exclusive
    forfeits the distributed at-most-once guarantee the policy asked for
    — it is the caller's proof obligation, which is why only the static
    analyzer's [Independent] verdict should ever set it.

    [deadline] (absolute virtual time, default [infinity]) is the
    request's remaining budget, threaded down from the serving layer: it
    caps the [alt_wait] rendezvous (the block resolves — degrades or
    fails — when the budget runs out, even if the policy timeout is
    longer) and rides into every child's consensus retry loop
    ({!Majority.acquire_retry}'s [?deadline]), so block-local retry
    budgets can never overrun the request deadline. *)

val run_toplevel :
  Engine.t ->
  ?policy:policy ->
  ?space:Address_space.t ->
  ?exclusive:bool ->
  ?deadline:float ->
  'a Alternative.t list ->
  'a report
(** Convenience for tests and benchmarks: spawn a fresh root process,
    execute the block in it, run the engine to quiescence, and return the
    report. A [space] passed in remains owned by the caller (it is not
    released at process exit, so the absorbed state can be inspected), and
    [wasted_cpu] is recounted at quiescence so that zombies eliminated
    asynchronously are fully accounted. *)

(** {2 Coordinator recovery}

    {!run_toplevel} leaves one single point of failure: the coordinator
    (parent) process itself. {!run_supervised} removes it — a watchdog
    checkpoints the parent's sink state at block entry, spreads the
    consensus voters across sites, and when an incarnation dies without
    deciding (killed, crashed, or its whole site lost), it reaps the
    orphaned alternatives, {e fences} the voters to the next epoch
    ({!Majority.fence}: the dead incarnation's in-flight acquisitions are
    denied and any grant it held becomes void), restores the checkpoint on
    a surviving site, and relaunches the block there. The durable voter
    grants carry the at-most-once decision across restarts: one winner per
    block, epoch-wide. *)

(** The aggregate outcome of a supervised block. *)
type 'a supervised_report = {
  sr_report : 'a report;
      (** The deciding incarnation's report ([wasted_cpu] recounted over
          the children of {e all} incarnations), or a fabricated
          [Block_failed "coordinator lost"] when every incarnation died. *)
  sr_incarnations : int;  (** Coordinators launched (>= 1). *)
  sr_recoveries : (Pid.t * Pid.t * int) list;
      (** Each recovery as [(failed, successor, new_epoch)], oldest
          first; also traced as {!Trace.Recovered}. *)
  sr_epoch : int;  (** Epoch of the incarnation behind [sr_report]. *)
  sr_coordinator : Pid.t option;  (** The final incarnation's pid. *)
  sr_site : string option;  (** ... and the site it ran on. *)
  sr_space : Address_space.t option;
      (** The address space holding the block's final sink state: the
          caller's own space if no recovery happened, otherwise the
          checkpoint-restored space of the last incarnation. *)
}

val run_supervised :
  Engine.t ->
  ?policy:policy ->
  ?space:Address_space.t ->
  ?max_restarts:int ->
  ?deadline:float ->
  ?avoid_sites:string list ->
  sites:Sites.t ->
  'a Alternative.t list ->
  'a supervised_report
(** Run the block under the watchdog, to quiescence. Requires a
    [Consensus] sync policy ([Invalid_argument] otherwise); voters are
    spread round-robin over [sites]' names via {!Majority.create}'s
    [?sites]. Incarnation [e] (epoch [e], process name ["alt-parent.e<e>"])
    is placed on the [(e-1) mod n]-th usable site, so a restart
    lands away from the site that just failed; the restart is charged the
    checkpoint's transfer cost as its start delay. At most [max_restarts]
    (default 2) recoveries are attempted; if every incarnation dies (or no
    site survives), the result reports [Block_failed "coordinator lost"] —
    honestly, never a phantom winner.

    [deadline] (absolute virtual time, default [infinity]) bounds the
    recovery budget: it is threaded into every incarnation's block (see
    {!run}'s [?deadline]) and no relaunch is attempted at or past it —
    a recovered answer that could only arrive late is reported as the
    coordinator loss it is. [avoid_sites] excludes sites from placement
    ({e preference}, not a hard ban: if every alive site is listed,
    avoidance yields to availability) — the serving layer passes the
    sites whose circuit breakers are open. *)
