type elimination = Sync_elim | Async_elim | No_elim

type sync_mode =
  | Local
  | Consensus of {
      nodes : int;
      crashed : int list;
      vote_delay : float;
      reply_timeout : float;
    }

type guard_placement =
  | Guard_in_child
  | Guard_before_spawn
  | Guard_at_sync
  | Guard_redundant

type placement = Local_spawn | Remote_spawn | Remote_on_demand

type degradation = Fail_block | Sequential_fallback

type policy = {
  elimination : elimination;
  sync : sync_mode;
  timeout : float;
  guards : guard_placement;
  placement : placement;
  degradation : degradation;
  sync_retries : int;
  sync_backoff : float;
}

let default_policy =
  {
    elimination = Sync_elim;
    sync = Local;
    timeout = 1e12;
    guards = Guard_in_child;
    placement = Local_spawn;
    degradation = Fail_block;
    sync_retries = 0;
    sync_backoff = 0.01;
  }

let describe policy =
  let elim =
    match policy.elimination with
    | Sync_elim -> "sync-elim"
    | Async_elim -> "async-elim"
    | No_elim -> "no-elim"
  in
  let sync =
    match policy.sync with
    | Local -> "local-latch"
    | Consensus { nodes; crashed; _ } ->
      if crashed = [] then Printf.sprintf "consensus(%d)" nodes
      else Printf.sprintf "consensus(%d,%d crashed)" nodes (List.length crashed)
  in
  let guards =
    match policy.guards with
    | Guard_in_child -> "guard-in-child"
    | Guard_before_spawn -> "guard-before-spawn"
    | Guard_at_sync -> "guard-at-sync"
    | Guard_redundant -> "guard-redundant"
  in
  let placement =
    match policy.placement with
    | Local_spawn -> "local"
    | Remote_spawn -> "remote"
    | Remote_on_demand -> "remote-on-demand"
  in
  (* Robustness knobs are appended only when non-default, so existing
     matrix labels (and altcheck's committed output) are unchanged. *)
  let extras =
    (if policy.sync_retries > 0 then
       [ Printf.sprintf "retry%d" policy.sync_retries ]
     else [])
    @
    match policy.degradation with
    | Fail_block -> []
    | Sequential_fallback -> [ "seq-fallback" ]
  in
  String.concat "/" ([ elim; sync; guards; placement ] @ extras)

type 'a report = {
  outcome : 'a Alt_block.outcome;
  winner : Pid.t option;
  children : Pid.t list;
  elapsed : float;
  setup_cost : float;
  spawned : int;
  selection_cost : float;
  wasted_cpu : float;
  child_cow_copies : int;
  sync_messages : int;
  attempted : int;
  degraded : bool;
}

type 'a latch_value =
  | Win of { index : int; pid : Pid.t; value : 'a }
  | All_failed_l

(* Build the child predicates: each alternative inherits the parent's
   assumptions, assumes it completes, and assumes its siblings do not
   (section 3.3: "sibling rivalry taken to its extreme"). *)
let child_predicate parent_pred pids i =
  let p = Predicate.assume_completes parent_pred pids.(i) in
  let n = Array.length pids in
  let rec add p j =
    if j >= n then p
    else if j = i then add p (j + 1)
    else add (Predicate.assume_fails p pids.(j)) (j + 1)
  in
  add p 0

let run ctx ?(policy = default_policy) ?consensus:borrowed ?(epoch = 0)
    ?(exclusive = false) ?(deadline = infinity) alts =
  let eng = Engine.engine ctx in
  let model = Engine.model eng in
  let n = List.length alts in
  if n = 0 then invalid_arg "Concurrent.run: empty block";
  (match (borrowed, policy.sync) with
  | Some _, Local ->
    invalid_arg "Concurrent.run: ?consensus requires a Consensus sync policy"
  | _ -> ());
  let t0 = Engine.now_v ctx in
  let parent_pid = Engine.self ctx in
  let parent_pred = Engine.my_predicate ctx in
  let parent_space = Engine.space ctx in
  let alt_arr = Array.of_list alts in
  let guard_before =
    match policy.guards with
    | Guard_before_spawn | Guard_redundant -> true
    | Guard_in_child | Guard_at_sync -> false
  in
  let guard_in_child =
    match policy.guards with
    | Guard_in_child | Guard_redundant -> true
    | Guard_before_spawn | Guard_at_sync -> false
  in
  let guard_at_sync =
    match policy.guards with
    | Guard_at_sync | Guard_redundant -> true
    | Guard_in_child | Guard_before_spawn -> false
  in
  (* Pre-spawn guard evaluation happens serially in the parent; closed
     alternatives are never spawned. *)
  let open_ =
    Array.map
      (fun alt -> (not guard_before) || alt.Alternative.guard ctx)
      alt_arr
  in
  let spawned_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 open_ in
  if spawned_count = 0 then
    {
      outcome = Alt_block.Block_failed "no open alternative";
      winner = None;
      children = [];
      elapsed = Engine.now_v ctx -. t0;
      setup_cost = 0.;
      spawned = 0;
      selection_cost = 0.;
      wasted_cpu = 0.;
      child_cow_copies = 0;
      sync_messages = 0;
      attempted = 0;
      degraded = false;
    }
  else begin
    let pids = Array.of_list (Engine.fresh_pids eng n) in
    (* A borrowed consensus group (coordinator recovery) outlives this
       incarnation: its durable grants are exactly what makes the
       at-most-once decision survive a coordinator restart, so the block
       must neither create nor shut it down. *)
    (* Consensus elision: when the caller proved (statically, via Lint)
       that at most one alternative can ever reach its synchronisation
       point successfully, the distributed 0-1 semaphore decides nothing
       — the sole possible winner is granted unconditionally — so the
       block may fall back to the local latch and skip the voter group
       entirely. Never applied to a borrowed group: durable grants are
       the coordinator-recovery machinery's, not ours to elide. *)
    let elide_consensus =
      exclusive
      && borrowed = None
      && match policy.sync with Consensus _ -> true | Local -> false
    in
    let owned_consensus =
      match (policy.sync, borrowed) with
      | Local, _ | Consensus _, Some _ -> None
      | Consensus _, None when elide_consensus -> None
      | Consensus { nodes; crashed; vote_delay; _ }, None ->
        Some (Majority.create eng ~nodes ~crashed ~vote_delay ())
    in
    let consensus =
      match borrowed with Some m -> Some m | None -> owned_consensus
    in
    (* Setup: one execution environment per open alternative. Local
       placement duplicates the page map copy-on-write; remote placement
       checkpoints the whole image and ships it (Smith & Ioannidis 1989),
       yielding private pages on the remote node. Both are performed by
       the (blocked) parent, so the cost is charged serially before the
       race begins. *)
    let checkpoint =
      match (policy.placement, parent_space) with
      | Remote_spawn, Some sp -> Some (Checkpoint.capture sp)
      | (Local_spawn | Remote_spawn | Remote_on_demand), _ -> None
    in
    (* On-demand children share the parent's frames but every
       copy-on-write fault also fetches the page over the network. *)
    let on_demand_model =
      {
        model with
        Cost_model.page_copy =
          model.Cost_model.page_copy +. model.Cost_model.remote_per_page;
      }
    in
    let setup_cost = ref 0. in
    let spaces =
      Array.init n (fun i ->
          if not open_.(i) then None
          else
            match (policy.placement, parent_space) with
            | Local_spawn, Some sp ->
              let child = Address_space.fork sp in
              setup_cost := !setup_cost +. Address_space.drain_cost child;
              Some child
            | Local_spawn, None ->
              setup_cost := !setup_cost +. model.Cost_model.fork_base;
              None
            | Remote_spawn, Some _ ->
              let image = Option.get checkpoint in
              let child =
                Checkpoint.restore (Engine.frame_store eng) model image
              in
              setup_cost := !setup_cost +. Checkpoint.transfer_cost model image;
              Some child
            | Remote_spawn, None ->
              setup_cost :=
                !setup_cost +. model.Cost_model.remote_spawn_base;
              None
            | Remote_on_demand, Some sp ->
              (* No image travels at spawn: just the process state and one
                 control round trip. *)
              let child = Address_space.fork ~model:on_demand_model sp in
              ignore (Address_space.drain_cost child);
              setup_cost :=
                !setup_cost +. model.Cost_model.fork_base
                +. model.Cost_model.msg_latency;
              Some child
            | Remote_on_demand, None ->
              setup_cost :=
                !setup_cost +. model.Cost_model.fork_base
                +. model.Cost_model.msg_latency;
              None)
    in
    if !setup_cost > 0. then Engine.delay ctx !setup_cost;
    let latch : 'a latch_value Engine.Ivar.t = Engine.Ivar.create () in
    let remaining = ref spawned_count in
    (* Alternatives that ran their body to a verdict (value, declared
       failure, or crash) — as opposed to being eliminated mid-flight.
       This is what a recovery block may honestly call "attempts". *)
    let attempted = ref 0 in
    (* Children whose consensus rounds ended undecided (no quorum
       reachable): distinguishes "every alternative genuinely failed" from
       "the synchronisation layer was unreachable". *)
    let no_quorum_seen = ref 0 in
    let tr e = Trace.record (Engine.trace eng) ~time:(Engine.now eng) e in
    if elide_consensus then
      tr (Trace.Note "consensus elided: alternatives proven mutually exclusive");
    let remote =
      match policy.placement with
      | Remote_spawn | Remote_on_demand -> true
      | Local_spawn -> false
    in
    Array.iteri
      (fun i alt ->
        if open_.(i) then begin
          let body child_ctx =
            if guard_in_child && not (alt.Alternative.guard child_ctx) then
              Engine.abort child_ctx "guard failed";
            let value =
              try
                let v = alt.Alternative.body child_ctx in
                incr attempted;
                v
              with
              | Alternative.Failed r ->
                incr attempted;
                Engine.abort child_ctx ("failed: " ^ r)
              | (Engine.Process_killed _ | Engine.Abort_process _) as e ->
                (* Eliminated (or self-aborted) mid-body: not an attempt. *)
                raise e
              | e ->
                incr attempted;
                raise e
            in
            Engine.charge_memory child_ctx;
            if guard_at_sync && not (alt.Alternative.guard child_ctx) then
              Engine.abort child_ctx "guard failed at sync";
            (* A remote child's synchronisation attempt crosses the
               network. *)
            if remote then Engine.delay child_ctx model.Cost_model.msg_latency;
            let me = Engine.self child_ctx in
            let verdict =
              match consensus with
              | None ->
                if Engine.Ivar.try_fill latch (Win { index = i; pid = me; value })
                then `Won
                else `Late
              | Some maj ->
                let reply_timeout =
                  match policy.sync with
                  | Consensus { reply_timeout; _ } -> reply_timeout
                  | Local -> assert false
                in
                (match
                   Majority.acquire_retry child_ctx maj ~epoch ~deadline
                     ~reply_timeout ~retries:policy.sync_retries
                     ~backoff:policy.sync_backoff ()
                 with
                | Majority.Granted ->
                  ignore
                    (Engine.Ivar.try_fill latch (Win { index = i; pid = me; value }));
                  `Won
                | Majority.Denied -> `Late
                | Majority.No_quorum -> `No_quorum)
            in
            match verdict with
            | `Won -> tr (Trace.Sync_won { pid = me; index = i; epoch })
            | `Late ->
              tr (Trace.Sync_late { pid = me; index = i });
              Engine.abort child_ctx "too late"
            | `No_quorum ->
              (* Not a loss: the decision was never made. No [Sync_late]
                 is recorded — the at-most-once audit counts those as
                 decided denials. *)
              incr no_quorum_seen;
              Engine.abort child_ctx "no quorum reachable"
          in
          let pid =
            Engine.spawn eng ~pid:pids.(i) ~parent:parent_pid
              ~predicate:(child_predicate parent_pred pids i)
              ?space:spaces.(i) ~cloneable:false
              ~name:(Printf.sprintf "%s[%d]" alt.Alternative.name i)
              body
          in
          Engine.on_exit eng pid (fun st ->
              decr remaining;
              match st with
              | Engine.Exited_ok -> ()
              | Engine.Exited_failed _ | Engine.Crashed _ | Engine.Eliminated _ ->
                if !remaining = 0 && not (Engine.Ivar.is_filled latch) then
                  ignore (Engine.Ivar.try_fill latch All_failed_l))
        end)
      alt_arr;
    (* alt_wait: rendezvous with the first successful child. The wait is
       bounded by the policy's own timeout and by whatever remains of the
       request deadline — a deadline-bound block must resolve (degrade or
       fail) the moment its budget runs out, not at the block timeout. *)
    let wait_budget =
      Float.min policy.timeout (Float.max 0. (deadline -. Engine.now_v ctx))
    in
    let decision =
      match Engine.Ivar.read_timeout ctx latch ~timeout:wait_budget with
      | Some v -> Some v
      | None -> Engine.Ivar.peek latch (* a fill racing the deadline wins *)
    in
    let selection_cost = ref 0. in
    let per_kill =
      model.Cost_model.kill_per_sibling
      +. if remote then model.Cost_model.msg_latency else 0.
    in
    let eliminate ~except ~reason =
      let victims =
        Array.to_list pids
        |> List.filteri (fun i _ -> open_.(i))
        |> List.filter (fun pid -> not (Option.equal Pid.equal (Some pid) except))
      in
      match policy.elimination with
      | Sync_elim ->
        let issue = float_of_int (List.length victims) *. per_kill in
        if issue > 0. then begin
          Engine.delay ctx issue;
          selection_cost := !selection_cost +. issue
        end;
        List.iter (fun pid -> Engine.kill eng pid ~reason) victims
      | Async_elim ->
        List.iter
          (fun pid ->
            Engine.after eng ~delay:model.Cost_model.msg_latency (fun () ->
                Engine.kill eng pid ~reason))
          victims
      | No_elim -> ()
    in
    let degraded = ref false in
    (* Graceful degradation: abandon speculation and run the block the way
       a sequential program would have. Children are killed {e before} any
       cost is charged (a charge suspends the parent, and a straggler could
       win the latch during the suspension); then the alternatives run one
       by one in the parent, against the parent's own sink state, exactly
       as {!Alt_block} would. *)
    let degrade reason =
      degraded := true;
      tr (Trace.Degraded { parent = parent_pid; reason });
      let victims =
        Array.to_list pids |> List.filteri (fun i _ -> open_.(i))
      in
      List.iter
        (fun pid -> Engine.kill eng pid ~reason:"degraded to sequential")
        victims;
      let issue = float_of_int (List.length victims) *. per_kill in
      if issue > 0. then begin
        Engine.delay ctx issue;
        selection_cost := !selection_cost +. issue
      end;
      let rec go index = function
        | [] -> Alt_block.Block_failed "no alternative succeeded"
        | alt :: rest -> (
          match Alt_block.attempt ctx alt with
          | Ok value ->
            incr attempted;
            Alt_block.Selected { index; value }
          | Error _ ->
            incr attempted;
            go (index + 1) rest)
      in
      (go 0 alts, None)
    in
    let outcome, winner =
      match decision with
      | Some All_failed_l
        when !no_quorum_seen > 0 && policy.degradation = Sequential_fallback ->
        degrade "consensus unreachable"
      | None when policy.degradation = Sequential_fallback ->
        degrade "alt_wait timeout"
      | Some (Win { index; pid; value }) ->
        (* Rendezvous first, before the parent can suspend: the winner is
           still alive (it fills the latch before exiting), so its page map
           is absorbed atomically here and its own exit releases nothing. *)
        if Engine.alive eng pid then Engine.preserve_space eng pid;
        (match (parent_space, spaces.(index)) with
        | Some psp, Some csp ->
          (* A remote winner's state must first be shipped back. The
             checkpoint/restart scheme has no dirty-page tracking, so the
             whole image travels; the on-demand scheme ships only the pages
             the winner privatised. *)
          (match policy.placement with
          | Remote_spawn ->
            let back = Checkpoint.transfer_cost model (Checkpoint.capture csp) in
            selection_cost := !selection_cost +. back;
            Engine.delay ctx back
          | Remote_on_demand ->
            let dirty = Address_space.private_pages csp in
            let back =
              model.Cost_model.msg_latency
              +. (float_of_int dirty *. model.Cost_model.remote_per_page)
            in
            selection_cost := !selection_cost +. back;
            Engine.delay ctx back
          | Local_spawn -> ());
          Address_space.absorb ~parent:psp ~child:csp;
          tr (Trace.Absorbed { parent = parent_pid; child = pid });
          let c = Address_space.drain_cost psp in
          selection_cost := !selection_cost +. c;
          if c > 0. then Engine.delay ctx c
        | _ -> ());
        eliminate ~except:(Some pid) ~reason:"sibling elimination";
        (Alt_block.Selected { index; value }, Some pid)
      | Some All_failed_l when !no_quorum_seen > 0 ->
        (* Children died reporting "no quorum reachable", not genuine
           failure: report the synchronisation outage, not a lie about the
           alternatives. *)
        (Alt_block.Block_failed "consensus unreachable", None)
      | Some All_failed_l -> (Alt_block.Block_failed "no alternative succeeded", None)
      | None ->
        eliminate ~except:None ~reason:"alt_wait timeout";
        (Alt_block.Block_failed "timeout", None)
    in
    Option.iter Majority.shutdown owned_consensus;
    (* Release loser address spaces that were never started or whose owner
       is already gone (live losers release at their own elimination). *)
    Array.iteri
      (fun i sp ->
        match sp with
        | Some sp
          when (not (Engine.alive eng pids.(i)))
               && not (Page_map.released (Address_space.map sp)) ->
          Address_space.release sp
        | _ -> ())
      spaces;
    let wasted_cpu =
      Array.fold_left
        (fun acc pid ->
          if Option.equal Pid.equal (Some pid) winner then acc
          else acc +. Engine.cpu_time_of eng pid)
        0. pids
    in
    let child_cow_copies =
      Array.fold_left
        (fun acc sp ->
          match sp with Some sp -> acc + Address_space.cow_copies sp | None -> acc)
        0 spaces
    in
    {
      outcome;
      winner;
      children =
        Array.to_list pids |> List.filteri (fun i _ -> open_.(i));
      elapsed = Engine.now_v ctx -. t0;
      setup_cost = !setup_cost;
      spawned = spawned_count;
      selection_cost = !selection_cost;
      wasted_cpu;
      child_cow_copies;
      sync_messages =
        (match consensus with Some m -> Majority.messages_sent m | None -> 0);
      attempted = !attempted;
      degraded = !degraded;
    }
  end

(* ------------------------------------------------------------------ *)
(* Coordinator recovery: a supervised block survives the death of its
   own coordinator (parent), the paper's remaining single point of
   failure once the latch is majority-consensus.

   The watchdog checkpoints the parent's sink state once, at block entry
   (alt_spawn); voters are spread across sites and OUTLIVE any one
   incarnation, so their durable grants carry the at-most-once decision
   across restarts. When an incarnation dies undecided, the watchdog
   reaps its orphaned alternatives, fences the voters to the next epoch
   (a stale orphan's in-flight acquire is denied; a grant it already held
   becomes void), restores the checkpoint on a surviving site, and
   launches the next incarnation there. *)

type 'a supervised_report = {
  sr_report : 'a report;
  sr_incarnations : int;
  sr_recoveries : (Pid.t * Pid.t * int) list;
  sr_epoch : int;
  sr_coordinator : Pid.t option;
  sr_site : string option;
  sr_space : Address_space.t option;
}

let run_supervised eng ?(policy = default_policy) ?space ?(max_restarts = 2)
    ?(deadline = infinity) ?(avoid_sites = []) ~sites alts =
  let consensus =
    match policy.sync with
    | Local ->
      invalid_arg "Concurrent.run_supervised: requires a Consensus sync policy"
    | Consensus { nodes; crashed; vote_delay; _ } ->
      Majority.create eng ~nodes ~crashed ~vote_delay ~sites:(Sites.names sites)
        ()
  in
  let model = Engine.model eng in
  let t0 = Engine.now eng in
  let image = Option.map Checkpoint.capture space in
  let tr e = Trace.record (Engine.trace eng) ~time:(Engine.now eng) e in
  let result = ref None in
  let incarnations = ref 0 in
  let recoveries = ref [] in
  let coordinators = ref [] in  (* (pid, its space, space is ours) newest first *)
  (* Placement prefers alive sites whose circuit breaker (if the caller
     runs one) has not been tripped; when every alive site is to be
     avoided, avoidance yields — serving a request on a suspect site
     beats not serving it at all. *)
  let pick_site epoch =
    match Sites.alive_sites sites with
    | [] -> None
    | alive ->
      let usable =
        match List.filter (fun s -> not (List.mem s avoid_sites)) alive with
        | [] -> alive
        | preferred -> preferred
      in
      Some (List.nth usable ((epoch - 1) mod List.length usable))
  in
  let rec launch ~epoch ~site ~space_now ~ours ~start_delay =
    incr incarnations;
    let pid =
      Engine.spawn eng ?space:space_now ~cloneable:false
        ~name:(Printf.sprintf "alt-parent.e%d" epoch)
        ~site ~start_delay
        (fun ctx ->
          result := Some (epoch, run ctx ~policy ~consensus ~epoch ~deadline alts))
    in
    if Option.is_some space_now then Engine.preserve_space eng pid;
    coordinators := (pid, space_now, ours) :: !coordinators;
    Engine.on_exit eng pid (fun _st ->
        if !result = None then begin
          (* Died undecided. Reap the orphans first: an alternative must
             not keep running (let alone commit) into a dead block. *)
          List.iter
            (fun c -> Engine.kill eng c ~reason:"orphaned alternative")
            (Engine.children_of eng pid);
          (* A restart past the request deadline could only deliver a
             late answer: spend the remaining budget on nothing and
             report the coordinator lost, honestly. *)
          if !incarnations <= max_restarts && Engine.now eng < deadline
          then begin
            let epoch' = epoch + 1 in
            match pick_site epoch' with
            | None -> () (* every site is down: nowhere to restart *)
            | Some site' ->
              Majority.fence consensus ~epoch:epoch';
              if ours then Option.iter Address_space.release space_now;
              let space' =
                Option.map
                  (fun img ->
                    Checkpoint.restore (Engine.frame_store eng) model img)
                  image
              in
              (* Restart cost: the checkpoint travels to the new site. *)
              let start_delay =
                match image with
                | Some img -> Checkpoint.transfer_cost model img
                | None -> model.Cost_model.remote_spawn_base
              in
              let pid' =
                launch ~epoch:epoch' ~site:site' ~space_now:space'
                  ~ours:(Option.is_some space') ~start_delay
              in
              recoveries := (pid, pid', epoch') :: !recoveries;
              tr (Trace.Recovered { failed = pid; successor = pid'; epoch = epoch' })
          end
        end);
    pid
  in
  (match pick_site 1 with
  | None -> invalid_arg "Concurrent.run_supervised: no alive site"
  | Some site ->
    ignore (launch ~epoch:1 ~site ~space_now:space ~ours:false ~start_delay:0.));
  Engine.run eng;
  Majority.shutdown consensus;
  let final_pid, final_space =
    match !coordinators with
    | (pid, sp, _) :: _ -> (Some pid, sp)
    | [] -> (None, None)
  in
  let all_children =
    List.concat_map
      (fun (pid, _, _) -> Engine.children_of eng pid)
      (List.rev !coordinators)
  in
  let wasted_of winner =
    List.fold_left
      (fun acc c ->
        if Option.equal Pid.equal (Some c) winner then acc
        else acc +. Engine.cpu_time_of eng c)
      0. all_children
  in
  let sr_epoch, sr_report =
    match !result with
    | Some (epoch, r) -> (epoch, { r with wasted_cpu = wasted_of r.winner })
    | None ->
      (* No incarnation lived to decide: report the outage honestly (no
         phantom winner, no fabricated costs). *)
      ( !incarnations,
        {
          outcome = Alt_block.Block_failed "coordinator lost";
          winner = None;
          children = all_children;
          elapsed = Engine.now eng -. t0;
          setup_cost = 0.;
          spawned = List.length all_children;
          selection_cost = 0.;
          wasted_cpu = wasted_of None;
          child_cow_copies = 0;
          sync_messages = Majority.messages_sent consensus;
          attempted = 0;
          degraded = false;
        } )
  in
  {
    sr_report;
    sr_incarnations = !incarnations;
    sr_recoveries = List.rev !recoveries;
    sr_epoch;
    sr_coordinator = final_pid;
    sr_site = Option.bind final_pid (Engine.site_of eng);
    sr_space = final_space;
  }

let run_toplevel eng ?policy ?space ?exclusive ?deadline alts =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"alt-parent" (fun ctx ->
        result := Some (run ctx ?policy ?exclusive ?deadline alts))
  in
  (* The caller owns the space it passed in and may inspect the absorbed
     state after the run. *)
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r ->
    (* The in-process report counts waste up to the parent's resumption;
       with asynchronous elimination the zombies keep burning CPU after
       that, so recount now that the simulation is quiescent. *)
    let wasted_cpu =
      List.fold_left
        (fun acc c ->
          if Option.equal Pid.equal (Some c) r.winner then acc
          else acc +. Engine.cpu_time_of eng c)
        0. r.children
    in
    { r with wasted_cpu }
  | None -> failwith "Concurrent.run_toplevel: block did not complete"
