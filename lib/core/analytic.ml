type overhead = { setup : float; runtime : float; selection : float }

let overhead_total o = o.setup +. o.runtime +. o.selection
let zero_overhead = { setup = 0.; runtime = 0.; selection = 0. }

let mean_time = Stats.mean
let best_time = Stats.min

let pi ~times ~overhead =
  if Array.length times = 0 then invalid_arg "Analytic.pi: no alternatives";
  if overhead < 0. then invalid_arg "Analytic.pi: negative overhead";
  mean_time times /. (best_time times +. overhead)

let wins ~times ~overhead = pi ~times ~overhead > 1.

let break_even_overhead ~times = mean_time times -. best_time times

type row = {
  label : string;
  times : float array;
  overhead : float;
  pi_value : float;
  pi_paper : float;
}

let table_4_3 () =
  let mk label times pi_paper =
    let times = Array.map float_of_int times in
    let overhead = 5. in
    { label; times; overhead; pi_value = pi ~times ~overhead; pi_paper }
  in
  [
    mk "(1)" [| 10; 20; 30 |] 1.33;
    mk "(2)" [| 1; 19; 106 |] 7.0;
    mk "(3)" [| 20; 20; 20 |] 0.8;
    mk "(4)" [| 1; 2; 3 |] 0.33;
    mk "(5)" [| 115; 120; 125 |] 1.0;
    mk "(6)" [| 100; 200; 300 |] 1.9;
  ]

let pp_row ppf r =
  Format.fprintf ppf "%s  tau=(%s)  overhead=%g  PI=%.2f (paper: %.2f)" r.label
    (String.concat ", "
       (Array.to_list (Array.map (fun x -> Format.asprintf "%g" x) r.times)))
    r.overhead r.pi_value r.pi_paper
