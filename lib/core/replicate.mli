(** Transparent replication of alternatives (paper, section 6).

    "Transparent replication can easily be combined with the use of
    parallel execution of several alternatives for increases in
    performance, reliability, or both." Replication masks faults that
    {e produce wrong answers} (a recovery block's acceptance test may not
    catch a plausible-looking wrong value); racing masks faults that
    {e lose time}. This module supplies the replication half: an
    alternative is executed as [replicas] independent copies, and its
    result is whatever value a strict majority of the copies agree on —
    decided as soon as the quorum exists, so replication costs the
    median replica's time, not the slowest's.

    Composition: wrap each alternative of a block with {!alternative} and
    race the wrapped block with {!Concurrent.run} — replication within,
    fastest-first across. *)

val alternative :
  ?equal:('a -> 'a -> bool) ->
  replicas:int ->
  'a Alternative.t ->
  'a Alternative.t
(** [alternative ~replicas alt] is an alternative with the same guard whose
    body runs [replicas] copies of [alt]'s body as copy-on-write children
    of the calling process and returns the majority value. It fails
    (raises {!Alternative.Failed}) if no value reaches a strict majority —
    including when too many replicas crash. [equal] (default structural
    equality) compares replica results. [replicas] must be at least 1; one
    replica degenerates to [alt] plus spawn overhead. *)

type 'a quorum_result = {
  value : 'a option;  (** The majority value, if any. *)
  agreeing : int;  (** Size of the largest agreeing group. *)
  answered : int;  (** Replicas that produced any answer. *)
  crashed : int;  (** Replicas that failed outright. *)
}

val run_quorum :
  ?equal:('a -> 'a -> bool) ->
  Engine.ctx ->
  replicas:int ->
  (Engine.ctx -> 'a) ->
  'a quorum_result
(** The underlying mechanism, exposed for tests and experiments: run
    [replicas] copies of the body, resolve as soon as a strict majority
    agrees (or can no longer be reached), and report the tally. *)
