(** The three execution schemes of section 4.2.

    When [tau(Ci, x)] is unpredictable, the paper considers: (A) statically
    picking the alternative that is best "almost always" (statistical
    information), (B) picking one at random, and (C) running all of them
    concurrently and keeping the fastest. This module evaluates all three
    over a workload — a matrix of per-input execution times — to regenerate
    experiment E6. *)

type workload = {
  description : string;
  times : float array array;  (** [times.(input).(alternative)] seconds. *)
}

val generate :
  rng:Rng.t ->
  inputs:int ->
  alternatives:int ->
  dist:[ `Uniform of float * float | `Exponential of float | `Bimodal of float * float * float ] ->
  description:string ->
  workload
(** Independent draws per (input, alternative). [`Bimodal (fast, slow, p)]
    draws [fast] with probability [p], else [slow] — the "database query"
    regime where an alternative is sometimes lucky. *)

type evaluation = {
  scheme_a : float;  (** Mean time of always running the best-on-average alternative. *)
  scheme_b : float;  (** Expected mean time of random selection. *)
  scheme_c : float;  (** Mean of per-input best, plus overhead. *)
  oracle : float;  (** Mean of per-input best, no overhead. *)
  pi_c_over_b : float;  (** The paper's PI for this workload. *)
}

val evaluate : workload -> overhead:float -> evaluation

val pp_evaluation : Format.formatter -> evaluation -> unit
