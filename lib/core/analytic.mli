(** The paper's analytic performance model (section 4).

    Concurrent execution of the alternatives [C1..CN] on input [x] costs
    [tau(C_best, x) + tau(overhead)], to be compared against the
    nondeterministic sequential baseline whose expected cost is the
    arithmetic mean of the [tau(Ci, x)]. The performance improvement is

    {v PI = tau(C_mean, x) / (tau(C_best, x) + tau(overhead)) v}

    and the parallel execution wins iff [PI > 1]. *)

type overhead = {
  setup : float;
      (** Creating execution environments: process-table entries and page
          map tables for [C1..CN]. *)
  runtime : float;
      (** Copying shared memory areas on update, plus cycles lost to
          siblings when alternatives share processors. *)
  selection : float;
      (** Choosing [C_best]: deleting the others and cleaning up. *)
}

val overhead_total : overhead -> float
val zero_overhead : overhead

val mean_time : float array -> float
(** [tau(C_mean, x)]: the expected cost of the sequential baseline. *)

val best_time : float array -> float
(** [tau(C_best, x)]. *)

val pi : times:float array -> overhead:float -> float
(** The performance improvement ratio. [times] must be non-empty and
    [overhead] non-negative. *)

val wins : times:float array -> overhead:float -> bool
(** [pi > 1]: the condition
    [tau(C_best) + tau(overhead) < (sum tau(Ci)) / N]. *)

val break_even_overhead : times:float array -> float
(** Largest overhead at which concurrent execution still ties the
    sequential baseline: [mean - best]. Negative dispersion is impossible,
    so this is always [>= 0]. *)

(** {2 The section 4.3 example table}

    Three methods, overhead 5, six rows. The paper reports PI rounded to
    the printed precision; {!table_4_3} recomputes it exactly. *)

type row = {
  label : string;
  times : float array;
  overhead : float;
  pi_value : float;  (** Recomputed. *)
  pi_paper : float;  (** As printed in the paper. *)
}

val table_4_3 : unit -> row list

val pp_row : Format.formatter -> row -> unit
