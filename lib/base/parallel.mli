(** A fixed-size pool of OCaml 5 domains for embarrassingly parallel
    sweeps.

    The verification and evaluation harnesses run hundreds of mutually
    independent simulations (one {e engine} per cell of a scenario x
    policy x seed matrix). Each cell builds all of its state from
    scratch, so the only coordination a sweep needs is job dispatch and
    result collection — exactly what this module provides, with no
    dependencies beyond the standard library ([Domain], [Mutex],
    [Condition]).

    Determinism contract: {!map_indexed} returns results in index order,
    bit-identical to the sequential [Array.init n f], whatever the
    number of workers or the scheduling. Jobs must therefore be
    self-contained: they may not share mutable state with each other
    (each invariant-sweep cell owns its engine, frame store, trace and
    RNG — see DESIGN.md, "Why domain parallelism is safe"). *)

type pool
(** A fixed set of worker domains consuming jobs from a shared queue. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: one worker per available
    core. *)

val create : jobs:int -> pool
(** Spawn [max 1 (jobs - 1)] worker domains (the caller's domain is the
    remaining worker: a [jobs:1] pool runs everything in the caller).
    Raises [Invalid_argument] if [jobs < 1]. *)

val jobs : pool -> int
(** The parallelism the pool was created with. *)

val map_indexed_pool : pool -> (int -> 'a) -> int -> 'a array
(** [map_indexed_pool pool f n] evaluates [f 0 .. f (n-1)] across the
    pool's domains (the calling domain participates) and returns
    [[| f 0; ...; f (n-1) |]] in index order. If one or more jobs
    raise, every remaining job still runs, and the exception of the
    {e lowest-indexed} failing job is re-raised in the caller — so a
    raising job never wedges or poisons the pool. Not re-entrant: do
    not call it from inside a job of the same pool. *)

val shutdown : pool -> unit
(** Join the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val map_indexed : jobs:int -> (int -> 'a) -> int -> 'a array
(** One-shot convenience: {!create}, {!map_indexed_pool}, {!shutdown}.
    [map_indexed ~jobs:1 f n] is exactly [Array.init n f] with no
    domains spawned. *)

val run : jobs:int -> (unit -> 'a) list -> 'a array
(** Run a fixed list of thunks across [jobs] domains, results in list
    order. *)

(** {2 The persistent shared pool}

    {!map_indexed} spawns and joins [jobs - 1] domains on {e every}
    call; a serving loop that dispatches hundreds of batches pays that
    per batch. The shared pool is created on first use and reused for
    the life of the process — the serving layer and the sweep runners
    all dispatch through it. *)

val shared : jobs:int -> pool
(** The process-wide pool, created on first use with [jobs] workers and
    reused afterwards. Asking for a different [jobs] than the cached
    pool's shuts it down and recreates it (rare: worker counts are
    per-run constants). Thread-safe. *)

val map_indexed_shared : jobs:int -> (int -> 'a) -> int -> 'a array
(** Like {!map_indexed} but dispatching through {!shared} instead of
    creating a pool per call. [jobs:1] is exactly the sequential path
    (no pool, no domains — the determinism-contract baseline).
    Concurrent batches from different domains serialise; it is still
    not re-entrant from inside a job. *)

val shutdown_shared : unit -> unit
(** Join the shared pool's domains (benchmarks use this to measure pool
    reuse against per-batch creation). The next {!shared} call recreates
    it. *)
