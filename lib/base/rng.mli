(** Deterministic, splittable pseudo-random numbers (SplitMix64).

    All stochastic behaviour in the reproduction (fault injection, workload
    generation, random scheme selection) flows through this module so that
    every experiment is bit-reproducible from a seed. The generator is the
    standard SplitMix64 of Steele, Lea and Flood. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator. Equal seeds yield equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. Used to give
    each simulated process / workload its own stream without coupling their
    consumption rates. *)

val stream : seed:int -> key:int -> t
(** [stream ~seed ~key] is an independent generator that is a {e pure
    function} of [(seed, key)] — unlike {!split}, it does not depend on
    how many draws preceded the derivation. The engine keys one stream
    per process by pid (from the root seed), so a process's draw
    sequence is invariant under the shard count: the run-level
    shards-1 = shards-N determinism contract depends on this. *)

val copy : t -> t
(** [copy t] duplicates the current state (the two copies then produce
    identical streams). *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val uniform_in : t -> lo:float -> hi:float -> float

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. The array must be non-empty. *)
