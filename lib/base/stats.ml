let check xs = if Array.length xs = 0 then invalid_arg "Stats: empty sample"

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check xs;
  let m = mean xs in
  let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min xs =
  check xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check xs;
  Array.fold_left Float.max xs.(0) xs

let percentile xs ~p =
  check xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs ~p:50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  check xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    max = max xs;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g min=%.6g med=%.6g max=%.6g" s.n
    s.mean s.stddev s.min s.median s.max
