type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

(* A keyed stream: state = mix(seed + (key+1)·γ), i.e. the (key+1)-th
   output of a SplitMix64 generator seeded with [seed], used as a fresh
   seed. Two distinct keys give statistically independent streams, and —
   unlike [split], whose result depends on how many draws preceded it —
   the stream is a pure function of (seed, key). The sharded engine keys
   one stream per process by pid, so a process's draw sequence does not
   depend on the shard count or on any other process's draws. *)
let stream ~seed ~key =
  let s =
    Int64.add (Int64.of_int seed)
      (Int64.mul (Int64.of_int (key + 1)) golden_gamma)
  in
  { state = mix s }

(* Keep 62 bits: OCaml's native int has 63, so a 62-bit value is always
   non-negative after Int64.to_int. *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let max62 = (1 lsl 62) - 1

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* Rejection sampling: [r mod bound] alone over-weights the first
       [2^62 mod bound] values, so redraw until [r] falls inside the
       largest prefix of [0, 2^62) whose size is a multiple of [bound].
       [reject] is [2^62 mod bound], computed without overflowing the
       63-bit native int. *)
    let reject = ((max62 mod bound) + 1) mod bound in
    let limit = max62 - reject in
    let rec draw () =
      let r = bits62 t in
      if r > limit then draw () else r mod bound
    in
    draw ()
  end

(* 53 random bits scaled into [0,1). *)
let unit_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1p-53

let float t x = unit_float t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t ~p = unit_float t < p

let exponential t ~mean =
  let u = unit_float t in
  (* Avoid log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let uniform_in t ~lo ~hi = lo +. unit_float t *. (hi -. lo)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
