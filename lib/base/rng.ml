type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 output function. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits: OCaml's native int has 63, so a 62-bit value is always
     non-negative after Int64.to_int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

(* 53 random bits scaled into [0,1). *)
let unit_float t =
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. 0x1p-53

let float t x = unit_float t *. x
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t ~p = unit_float t < p

let exponential t ~mean =
  let u = unit_float t in
  (* Avoid log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let uniform_in t ~lo ~hi = lo +. unit_float t *. (hi -. lo)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
