(* A fixed-size domain pool. Workers block on a condition variable until
   a batch of indexed jobs is published, claim indices from a shared
   cursor under the pool mutex, and run the jobs outside it. Results land
   in a per-batch slot array (distinct indices, so no two domains ever
   write the same cell); exceptions are captured per job and re-raised in
   the caller, lowest index first, after the whole batch has drained —
   a raising job therefore never poisons the pool or loses siblings. *)

type batch = {
  run_job : int -> unit;  (* never raises: captures into its slot *)
  total : int;
  mutable next : int;  (* next unclaimed index *)
  mutable outstanding : int;  (* claimed or unclaimed jobs not yet finished *)
}

type pool = {
  m : Mutex.t;
  work_ready : Condition.t;  (* a batch was published, or stop was set *)
  batch_done : Condition.t;  (* outstanding reached 0 *)
  mutable batch : batch option;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  jobs : int;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Claim and run jobs from [b] until its cursor is exhausted. Called with
   [p.m] locked; returns with it locked. *)
let drain_batch p b =
  while b.next < b.total do
    let i = b.next in
    b.next <- i + 1;
    Mutex.unlock p.m;
    b.run_job i;
    Mutex.lock p.m;
    b.outstanding <- b.outstanding - 1;
    if b.outstanding = 0 then begin
      p.batch <- None;
      Condition.broadcast p.batch_done
    end
  done

let worker p () =
  Mutex.lock p.m;
  let rec loop () =
    match p.batch with
    | Some b when b.next < b.total ->
      drain_batch p b;
      loop ()
    | Some _ (* exhausted; stragglers still running *) | None ->
      if p.stop then Mutex.unlock p.m
      else begin
        Condition.wait p.work_ready p.m;
        loop ()
      end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be >= 1";
  let p =
    {
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      stop = false;
      domains = [];
      jobs;
    }
  in
  p.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker p));
  p

let jobs p = p.jobs

let shutdown p =
  Mutex.lock p.m;
  p.stop <- true;
  Condition.broadcast p.work_ready;
  Mutex.unlock p.m;
  List.iter Domain.join p.domains;
  p.domains <- []

let reraise_first slots =
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> ())
    slots

let map_indexed_pool p f n =
  if n < 0 then invalid_arg "Parallel.map_indexed: negative length";
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    let run_job i =
      let r =
        match f i with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      slots.(i) <- Some r
    in
    let b = { run_job; total = n; next = 0; outstanding = n } in
    Mutex.lock p.m;
    if p.stop then begin
      Mutex.unlock p.m;
      invalid_arg "Parallel.map_indexed: pool is shut down"
    end;
    (* One batch at a time: a second caller (two top-level sweeps sharing
       the persistent pool) queues behind the current batch instead of
       corrupting it. Still not re-entrant from inside a job. *)
    while p.batch <> None do
      Condition.wait p.batch_done p.m
    done;
    p.batch <- Some b;
    Condition.broadcast p.work_ready;
    (* The caller's domain is a worker too. *)
    drain_batch p b;
    while b.outstanding > 0 do
      Condition.wait p.batch_done p.m
    done;
    Mutex.unlock p.m;
    reraise_first slots;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> assert false (* reraise_first returned *))
      slots
  end

let sequential f n =
  if n < 0 then invalid_arg "Parallel.map_indexed: negative length";
  if n = 0 then [||]
  else begin
    (* Explicit ascending loop: the determinism contract promises
       index-order evaluation, which Array.init does not. *)
    let a = Array.make n (f 0) in
    for i = 1 to n - 1 do
      a.(i) <- f i
    done;
    a
  end

let map_indexed ~jobs f n =
  if jobs < 1 then invalid_arg "Parallel.map_indexed: jobs must be >= 1";
  if jobs = 1 || n <= 1 then sequential f n
  else begin
    let p = create ~jobs:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> shutdown p)
      (fun () -> map_indexed_pool p f n)
  end

let run ~jobs thunks =
  let a = Array.of_list thunks in
  map_indexed ~jobs (fun i -> a.(i) ()) (Array.length a)

(* ------------------------------------------------------------------ *)
(* The persistent shared pool: created on first use, reused by every
   subsequent batch. Spawning a domain costs a systhread, a minor heap
   and a GC registration — per-batch creation (the old [map_indexed]
   path) pays that for every serving batch and every sweep; the shared
   pool pays it once per process. The pool is resized (shutdown +
   recreate) only when a caller asks for a different worker count, which
   in practice happens at most once per process run. *)

let shared_mu = Mutex.create ()
let shared_pool : pool option ref = ref None

let shared ~jobs =
  if jobs < 1 then invalid_arg "Parallel.shared: jobs must be >= 1";
  Mutex.lock shared_mu;
  let p =
    match !shared_pool with
    | Some p when p.jobs = jobs && not p.stop -> p
    | prev ->
      (match prev with Some p -> shutdown p | None -> ());
      let p = create ~jobs in
      shared_pool := Some p;
      p
  in
  Mutex.unlock shared_mu;
  p

let shutdown_shared () =
  Mutex.lock shared_mu;
  (match !shared_pool with Some p -> shutdown p | None -> ());
  shared_pool := None;
  Mutex.unlock shared_mu

let map_indexed_shared ~jobs f n =
  if jobs < 1 then invalid_arg "Parallel.map_indexed: jobs must be >= 1";
  if jobs = 1 || n <= 1 then sequential f n
  else map_indexed_pool (shared ~jobs) f n
