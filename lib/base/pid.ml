type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let to_int t = t
let of_int n = n
let pp ppf t = Format.fprintf ppf "P%d" t
let to_string t = Format.asprintf "%a" pp t

module Set = Set.Make (Int)
module Map = Map.Make (Int)

module Allocator = struct
  type nonrec t = { mutable next : int; first : int }

  let create ?(first = 0) () = { next = first; first }

  let fresh a =
    let pid = a.next in
    a.next <- a.next + 1;
    pid

  let allocated a = a.next - a.first
end
