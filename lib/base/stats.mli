(** Small descriptive-statistics helpers used by the benchmark harness and
    the analytic model (section 4 of the paper reasons about means and
    dispersion of execution times). *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance. *)

val stddev : float array -> float

val min : float array -> float
val max : float array -> float

val percentile : float array -> p:float -> float
(** [percentile xs ~p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. The input need not be sorted. *)

val median : float array -> float

val sum : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
