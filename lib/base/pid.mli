(** Process identifiers.

    Every process in the simulated system has a unique identifier, used both
    within the system (scheduling, resource allocation) and for interaction
    with other processes (paper, section 3.4.1). Identifiers are allocated
    monotonically by an {!allocator}. *)

type t
(** A process identifier. Totally ordered, hashable, printable. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** [to_int pid] is the raw integer behind [pid]; stable for a given run. *)

val of_int : int -> t
(** [of_int n] is the pid with raw value [n]. Intended for tests and for
    deserialising traces; allocation should normally go through
    {!Allocator.fresh}. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["P<n>"]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Allocator : sig
  type pid := t

  type t
  (** A monotone pid source. Each engine owns one so that independent
      simulations allocate identical pid sequences. *)

  val create : ?first:int -> unit -> t
  (** [create ()] starts at pid 0 (by convention the root process). *)

  val fresh : t -> pid
  (** [fresh a] returns the next unused pid. *)

  val allocated : t -> int
  (** Number of pids handed out so far. *)
end
