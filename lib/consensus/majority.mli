(** A fault-tolerant 0-1 semaphore by majority consensus.

    Section 3.2.1: the at-most-once synchronisation of an alternative block
    must not become a single point of failure, so "the synchronization is
    set up as a majority consensus decision across several nodes" (after
    Thomas 1979). Each voter node grants its vote to at most one requester;
    a requester that collects a strict majority of grants owns the
    semaphore. Crashed voters never reply; requesters use reply timeouts,
    so any [f < n/2] crash faults are survived. The price is the extra
    message rounds — the performance/reliability trade-off the paper calls
    out, measured by experiment E10. *)

type t

val create :
  Engine.t ->
  nodes:int ->
  ?crashed:int list ->
  ?vote_delay:float ->
  ?sites:string list ->
  unit ->
  t
(** Spawn [nodes] voter processes. Voters whose index (0-based) appears in
    [crashed] are spawned dead: they receive requests and never answer.
    [vote_delay] (default 0) is per-vote processing time at each live
    voter. [sites] (default none) spreads the voters round-robin across the
    given site names via {!Engine.spawn}'s [?site], so that no single site
    hosts a majority whenever [nodes > length sites >= 2]. Raises
    [Invalid_argument] if [nodes < 1]. *)

val node_pids : t -> Pid.t list
val nodes : t -> int
val majority : t -> int
(** Votes needed: [nodes/2 + 1]. *)

(** How an acquisition round ended. [Denied] is {e final}: enough voters
    explicitly denied that a majority is impossible, and since grants are
    permanent a retry cannot change the answer. [No_quorum] is {e
    undecided}: too few voters were reachable before the reply timeout —
    the only verdict worth retrying. *)
type verdict = Granted | Denied | No_quorum

val acquire_verdict : Engine.ctx -> t -> reply_timeout:float -> verdict
(** Attempt to acquire the semaphore on behalf of the calling process: send
    a vote request to every voter and collect replies until the outcome is
    decided (majority of grants, majority arithmetically denied, or
    per-reply timeout). At most one caller ever gets [Granted];
    re-acquiring after owning returns [Granted] again (votes are idempotent
    per requester).

    Each call is a fresh {e round}: requests and replies carry a round id
    in their payload, replies left queued by an earlier timed-out round
    are drained on entry and discarded if they race the drain, and only
    the current round's replies are tallied — at most one reply per voter
    (duplicates, e.g. injected ones, are ignored). An acquisition that
    ended [No_quorum] is therefore safe to retry — stale grants cannot
    be double-counted into a majority (after the abortable-mutex
    discipline of Jayanti & Jayanti 2018). Equivalent to
    {!acquire_verdict_epoch} at epoch 0. *)

val acquire_verdict_epoch :
  Engine.ctx -> t -> epoch:int -> reply_timeout:float -> verdict
(** {!acquire_verdict} on behalf of block incarnation [epoch] (coordinator
    recovery). Epoch 0 sends the original one-field request payload
    (executions without recovery are byte-identical to before); epoch
    [e >= 1] rides in the payload and is checked against each voter's
    {e floor}: a request below the floor is denied, a request above it
    raises it, and a grant held at a below-floor epoch is void — the slot
    is reassignable to the current incarnation. See {!fence}. *)

val acquire : Engine.ctx -> t -> reply_timeout:float -> bool
(** [acquire_verdict ... = Granted]. *)

val acquire_retry :
  Engine.ctx ->
  t ->
  ?epoch:int ->
  ?deadline:float ->
  reply_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  unit ->
  verdict
(** {!acquire_verdict} with up to [retries] (default 0) additional rounds
    on [No_quorum], separated by exponential backoff: before retry [k]
    (0-based) the caller delays [backoff * 2{^k}] seconds of virtual time
    (default [backoff] 0.01; pass [0.] for immediate retries). [Granted]
    and [Denied] return immediately — only an undecided round retries.
    Deterministic: backoff burns virtual time through {!Engine.delay}, so
    identical seeds replay identical schedules.

    [deadline] (absolute virtual time, default [infinity]) bounds the
    retry budget by the {e request's} remaining budget, not just the
    block's: a retry whose backoff plus full reply wait would end past
    the deadline is not attempted — [No_quorum] is returned instead, so
    a deadline-bound caller is never left mid-round when its budget
    expires. The serving layer threads each request's deadline down
    here; see [Concurrent.run]'s [?deadline]. *)

val owner : t -> Pid.t option
(** The requester that a majority of voters granted, if decided and
    observable from the voters' grant records (test helper; the protocol
    itself only uses messages). *)

val fence : t -> epoch:int -> unit
(** Raise every voter's epoch floor to at least [epoch]: requests from
    incarnations below it are denied from now on, and their existing
    grants become void (reassignable). The coordinator watchdog calls this
    before restarting a block, so the dead incarnation's orphans can
    neither win late nor block the successor. Floors only ever rise;
    fencing to a lower epoch than the current floor is a no-op. This
    touches voter state directly (a simulator shortcut for an
    acknowledged fencing round; deterministic either way). *)

val shutdown : t -> unit
(** Kill the voter processes (end of the alternative block). *)

val messages_sent : t -> int
(** Total protocol messages (requests + replies) handled by live voters,
    for the overhead experiment. *)
