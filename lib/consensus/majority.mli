(** A fault-tolerant 0-1 semaphore by majority consensus.

    Section 3.2.1: the at-most-once synchronisation of an alternative block
    must not become a single point of failure, so "the synchronization is
    set up as a majority consensus decision across several nodes" (after
    Thomas 1979). Each voter node grants its vote to at most one requester;
    a requester that collects a strict majority of grants owns the
    semaphore. Crashed voters never reply; requesters use reply timeouts,
    so any [f < n/2] crash faults are survived. The price is the extra
    message rounds — the performance/reliability trade-off the paper calls
    out, measured by experiment E10. *)

type t

val create :
  Engine.t ->
  nodes:int ->
  ?crashed:int list ->
  ?vote_delay:float ->
  unit ->
  t
(** Spawn [nodes] voter processes. Voters whose index (0-based) appears in
    [crashed] are spawned dead: they receive requests and never answer.
    [vote_delay] (default 0) is per-vote processing time at each live
    voter. Raises [Invalid_argument] if [nodes < 1]. *)

val node_pids : t -> Pid.t list
val nodes : t -> int
val majority : t -> int
(** Votes needed: [nodes/2 + 1]. *)

val acquire : Engine.ctx -> t -> reply_timeout:float -> bool
(** Attempt to acquire the semaphore on behalf of the calling process: send
    a vote request to every voter and collect replies until the outcome is
    decided (majority of grants, majority unreachable, or per-reply
    timeout). Returns [true] iff this caller owns the semaphore; at most
    one caller ever gets [true]. Re-acquiring after owning returns [true]
    again (votes are idempotent per requester).

    Each call is a fresh {e round}: requests and replies carry a round id
    in their payload, replies left queued by an earlier timed-out round
    are drained on entry and discarded if they race the drain, and only
    the current round's replies are tallied. An [acquire] that returned
    [false] on timeout is therefore safe to retry — stale grants cannot
    be double-counted into a majority (after the abortable-mutex
    discipline of Jayanti & Jayanti 2018). *)

val owner : t -> Pid.t option
(** The requester that a majority of voters granted, if decided and
    observable from the voters' grant records (test helper; the protocol
    itself only uses messages). *)

val shutdown : t -> unit
(** Kill the voter processes (end of the alternative block). *)

val messages_sent : t -> int
(** Total protocol messages (requests + replies) handled by live voters,
    for the overhead experiment. *)
