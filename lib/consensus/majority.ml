type t = {
  engine : Engine.t;
  pids : Pid.t list;
  n : int;
  grants : Pid.t option ref array;  (* per-voter grant record (live voters) *)
  msg_count : int ref;
}

let tag_req = "vote_req"
let tag_rep = "vote_rep"

(* A voter grants its vote to the first requester it hears from and denies
   everyone else, forever: the grant is the durable half of the 0-1
   semaphore. Voters are oblivious kernel services (their receives bypass
   predicate matching): synchronisation is what resolves speculation, so it
   cannot itself be speculative. *)
let voter_body ~vote_delay ~grant_slot ~msg_count ctx =
  let rec loop () =
    let m = Engine.receive ctx ~tag:tag_req () in
    incr msg_count;
    if vote_delay > 0. then Engine.delay ctx vote_delay;
    let requester = m.Message.sender in
    let granted =
      match !grant_slot with
      | None ->
        grant_slot := Some requester;
        true
      | Some owner -> Pid.equal owner requester
    in
    Engine.send ctx ~tag:tag_rep requester (Payload.Bool granted);
    incr msg_count;
    loop ()
  in
  loop ()

let crashed_voter_body ctx =
  (* Receives and drops everything: a crashed node is silent. *)
  let rec loop () =
    let _m = Engine.receive ctx () in
    loop ()
  in
  loop ()

let create engine ~nodes ?(crashed = []) ?(vote_delay = 0.) () =
  if nodes < 1 then invalid_arg "Majority.create: nodes must be >= 1";
  let msg_count = ref 0 in
  let grants = Array.init nodes (fun _ -> ref None) in
  let pids =
    List.init nodes (fun i ->
        if List.mem i crashed then
          Engine.spawn engine ~oblivious:true ~cloneable:false
            ~name:(Printf.sprintf "voter%d(crashed)" i) crashed_voter_body
        else
          Engine.spawn engine ~oblivious:true ~cloneable:false
            ~name:(Printf.sprintf "voter%d" i)
            (voter_body ~vote_delay ~grant_slot:grants.(i) ~msg_count))
  in
  { engine; pids; n = nodes; grants; msg_count }

let node_pids t = t.pids
let nodes t = t.n
let majority t = (t.n / 2) + 1

let acquire ctx t ~reply_timeout =
  List.iter (fun voter -> Engine.send ctx ~tag:tag_req voter Payload.Unit) t.pids;
  let need = majority t in
  let rec collect ~grants ~replies =
    if grants >= need then true
    else if grants + (t.n - replies) < need then false
    else
      match Engine.receive_timeout ctx ~tag:tag_rep ~timeout:reply_timeout () with
      | None ->
        (* Remaining voters are presumed crashed; their votes are lost. *)
        false
      | Some m ->
        let g = match m.Message.payload with Payload.Bool b -> b | _ -> false in
        collect ~grants:(grants + if g then 1 else 0) ~replies:(replies + 1)
  in
  collect ~grants:0 ~replies:0

let owner t =
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun slot ->
      match !slot with
      | None -> ()
      | Some p ->
        let c = Option.value ~default:0 (Hashtbl.find_opt tally p) in
        Hashtbl.replace tally p (c + 1))
    t.grants;
  Hashtbl.fold
    (fun p c acc -> if c >= majority t then Some p else acc)
    tally None

let shutdown t =
  List.iter (fun pid -> Engine.kill t.engine pid ~reason:"consensus shutdown") t.pids

let messages_sent t = !(t.msg_count)
