type t = {
  engine : Engine.t;
  pids : Pid.t list;
  n : int;
  grants : (Pid.t * int) option ref array;
      (* per-voter grant record: owner pid and the epoch it was granted at *)
  floors : int ref array;  (* per-voter minimum acceptable epoch *)
  msg_count : int ref;
}

let tag_req = "vote_req"
let tag_rep = "vote_rep"

(* Replies are stamped with the round id of the request they answer
   (in the payload, not the tag: the trace-level accounting of sync
   messages keys on the two tags above). A requester whose [acquire]
   timed out leaves that round's replies in its mailbox; without the
   stamp, a retried [acquire] would consume them as if they answered the
   new round's requests and could tally the same voter twice — enough
   manufactured "grants" to claim a majority it does not hold.

   The round id is a fresh draw from {!Engine.random_bits} rather than a
   per-requester counter: the engine records it in the deterministic
   replay log, so a world-split clone of a requester re-derives the very
   round id its logged replies carry. Counter state outside the log
   would advance during replay and desynchronise. *)
let rep_payload ~granted ~round = Payload.Pair (Payload.Bool granted, Payload.Int round)

let rep_round m =
  match m.Message.payload with
  | Payload.Pair (_, Payload.Int round) -> round
  | _ -> -1

let rep_granted m =
  match m.Message.payload with
  | Payload.Pair (Payload.Bool b, _) -> b
  | _ -> false

(* Epoch-0 requests keep the original one-field payload so that executions
   that never use coordinator recovery stay byte-identical to earlier
   releases; an incarnation epoch >= 1 rides in a second field. *)
let req_payload ~round ~epoch =
  if epoch = 0 then Payload.Int round
  else Payload.Pair (Payload.Int round, Payload.Int epoch)

let req_parts = function
  | Payload.Int round when round >= 0 -> Some (round, 0)
  | Payload.Pair (Payload.Int round, Payload.Int epoch)
    when round >= 0 && epoch >= 0 ->
    Some (round, epoch)
  | _ -> None

(* A voter grants its vote to the first requester it hears from and denies
   everyone else, forever: the grant is the durable half of the 0-1
   semaphore. Voters are oblivious kernel services (their receives bypass
   predicate matching): synchronisation is what resolves speculation, so it
   cannot itself be speculative.

   Epoch fencing (coordinator recovery): each voter keeps a floor, the
   lowest incarnation epoch it still serves. A request below the floor is
   denied outright — a stale incarnation cannot win after the watchdog has
   fenced it off — and a grant held at a below-floor epoch no longer counts
   as taken: the fenced incarnation's claim is void, so the slot is
   reassignable to the current incarnation. *)
let voter_body ~vote_delay ~grant_slot ~floor ~msg_count ctx =
  let rec loop () =
    let m = Engine.receive ctx ~tag:tag_req () in
    incr msg_count;
    (match req_parts m.Message.payload with
    | Some (round, epoch) ->
      if vote_delay > 0. then Engine.delay ctx vote_delay;
      let requester = m.Message.sender in
      if epoch > !floor then floor := epoch;
      let granted =
        if epoch < !floor then false
        else begin
          match !grant_slot with
          | None ->
            grant_slot := Some (requester, epoch);
            true
          | Some (_owner, owner_epoch) when owner_epoch < !floor ->
            (* The grant belongs to a fenced-off incarnation: void. *)
            grant_slot := Some (requester, epoch);
            true
          | Some (owner, owner_epoch) ->
            let same = Pid.equal owner requester in
            if same && epoch > owner_epoch then
              grant_slot := Some (owner, epoch);
            same
        end
      in
      Engine.send ctx ~tag:tag_rep requester (rep_payload ~granted ~round);
      incr msg_count
    | None ->
      (* Malformed request: ignore it, mirroring [rep_round]'s [-1] on the
         requester side. The vote is NOT granted — a garbled message must
         not consume the durable half of the 0-1 semaphore. *)
      ());
    loop ()
  in
  loop ()

let crashed_voter_body ctx =
  (* Receives and drops everything: a crashed node is silent. *)
  let rec loop () =
    let _m = Engine.receive ctx () in
    loop ()
  in
  loop ()

let create engine ~nodes ?(crashed = []) ?(vote_delay = 0.) ?(sites = []) () =
  if nodes < 1 then invalid_arg "Majority.create: nodes must be >= 1";
  let msg_count = ref 0 in
  let grants = Array.init nodes (fun _ -> ref None) in
  let floors = Array.init nodes (fun _ -> ref 0) in
  let site_arr = Array.of_list sites in
  let site_of i =
    (* Round-robin spread so a crash of any one site takes out as few
       voters as possible (a minority, whenever nodes > |sites| >= 2). *)
    if Array.length site_arr = 0 then None
    else Some site_arr.(i mod Array.length site_arr)
  in
  let pids =
    List.init nodes (fun i ->
        if List.mem i crashed then
          Engine.spawn engine ~oblivious:true ~cloneable:false
            ~name:(Printf.sprintf "voter%d(crashed)" i) ?site:(site_of i)
            crashed_voter_body
        else
          Engine.spawn engine ~oblivious:true ~cloneable:false
            ~name:(Printf.sprintf "voter%d" i) ?site:(site_of i)
            (voter_body ~vote_delay ~grant_slot:grants.(i) ~floor:floors.(i)
               ~msg_count))
  in
  { engine; pids; n = nodes; grants; floors; msg_count }

let node_pids t = t.pids
let nodes t = t.n
let majority t = (t.n / 2) + 1

let fence t ~epoch =
  Array.iter (fun floor -> if epoch > !floor then floor := epoch) t.floors

type verdict = Granted | Denied | No_quorum

let acquire_verdict_epoch ctx t ~epoch ~reply_timeout =
  let round = Int64.to_int (Engine.random_bits ctx) land max_int in
  (* Drain replies a previous, timed-out round left in the mailbox. They
     are from an older round by construction, but consuming them now also
     keeps the mailbox from growing across many retries. *)
  let rec drain () =
    match Engine.receive_timeout ctx ~tag:tag_rep ~timeout:0. () with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ();
  List.iter
    (fun voter -> Engine.send ctx ~tag:tag_req voter (req_payload ~round ~epoch))
    t.pids;
  let need = majority t in
  let replied = Hashtbl.create (2 * t.n) in
  let rec collect ~grants ~replies =
    if grants >= need then Granted
    else if grants + (t.n - replies) < need then
      (* Enough explicit denials arrived that a majority is arithmetically
         impossible even if every silent voter grants: the semaphore is
         (or is becoming) someone else's. Grants are permanent, so this is
         final — retrying cannot help. *)
      Denied
    else
      match Engine.receive_timeout ctx ~tag:tag_rep ~timeout:reply_timeout () with
      | None ->
        (* Remaining voters are presumed crashed or partitioned; the
           outcome is undecided, and a retry may still reach them. *)
        No_quorum
      | Some m when rep_round m <> round ->
        (* A stale reply that raced the entry drain: it answers an older
           request, so it neither grants nor counts as this round's
           reply. *)
        collect ~grants ~replies
      | Some m when Hashtbl.mem replied m.Message.sender ->
        (* A duplicated reply (e.g. under fault injection): one voter,
           one vote. Counting it again would let [n/2 + 1] copies of a
           single grant manufacture a majority. *)
        collect ~grants ~replies
      | Some m ->
        Hashtbl.replace replied m.Message.sender ();
        let g = rep_granted m in
        collect ~grants:(grants + if g then 1 else 0) ~replies:(replies + 1)
  in
  collect ~grants:0 ~replies:0

let acquire_verdict ctx t ~reply_timeout =
  acquire_verdict_epoch ctx t ~epoch:0 ~reply_timeout

let acquire ctx t ~reply_timeout = acquire_verdict ctx t ~reply_timeout = Granted

let acquire_retry ctx t ?(epoch = 0) ?(deadline = infinity) ~reply_timeout
    ?(retries = 0) ?(backoff = 0.01) () =
  let rec go k =
    match acquire_verdict_epoch ctx t ~epoch ~reply_timeout with
    | No_quorum when k < retries ->
      (* Deterministic exponential backoff in virtual time: delay, then
         run a fresh round (fresh round id, so leftovers of this one are
         discarded by the round stamp). A retry is only worth taking if
         the backoff plus a full reply wait still fits inside the
         caller's deadline — a block-local retry budget must never
         overrun the request's remaining virtual-time budget, so a
         round that could not complete in time is not started and the
         undecided verdict is returned as-is. *)
      let wait = if backoff > 0. then backoff *. (2. ** float_of_int k) else 0. in
      if Engine.now_v ctx +. wait +. reply_timeout > deadline then No_quorum
      else begin
        if wait > 0. then Engine.delay ctx wait;
        go (k + 1)
      end
    | v -> v
  in
  go 0

let owner t =
  let tally = Hashtbl.create 8 in
  Array.iter
    (fun slot ->
      match !slot with
      | None -> ()
      | Some (p, _) ->
        let c = Option.value ~default:0 (Hashtbl.find_opt tally p) in
        Hashtbl.replace tally p (c + 1))
    t.grants;
  Hashtbl.fold
    (fun p c acc -> if c >= majority t then Some p else acc)
    tally None

let shutdown t =
  List.iter (fun pid -> Engine.kill t.engine pid ~reason:"consensus shutdown") t.pids

let messages_sent t = !(t.msg_count)
