type image = { psize : int; pages : (int * bytes) list (* vpage, contents *) }

let capture space =
  let map = Address_space.map space in
  let psize = Page_map.page_size map in
  let pages =
    List.map
      (fun vpage ->
        let buf = Bytes.create psize in
        Page_map.read_into map ~vpage ~off:0 ~len:psize ~dst:buf ~dst_off:0;
        (vpage, buf))
      (Page_map.mapped_vpages map)
  in
  { psize; pages }

let restore store model image =
  if Frame_store.page_size store <> image.psize then
    invalid_arg "Checkpoint.restore: page size mismatch";
  if model.Cost_model.page_size <> image.psize then
    invalid_arg "Checkpoint.restore: model page size mismatch";
  let space = Address_space.create store model in
  List.iter
    (fun (vpage, contents) ->
      let copied = ref false in
      Page_map.write (Address_space.map space) ~vpage ~off:0 ~src:contents ~copied)
    image.pages;
  ignore (Address_space.drain_cost space);
  space

let page_size image = image.psize
let mapped_pages image = List.length image.pages

let header_bytes = 16
let per_page_header = 8

let size_bytes image =
  header_bytes + List.length image.pages * (per_page_header + image.psize)

let to_bytes image =
  let buf = Buffer.create (size_bytes image) in
  let add_int n =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int n);
    Buffer.add_bytes buf b
  in
  add_int image.psize;
  add_int (List.length image.pages);
  List.iter
    (fun (vpage, contents) ->
      add_int vpage;
      Buffer.add_bytes buf contents)
    image.pages;
  Buffer.to_bytes buf

let of_bytes b =
  let fail () = invalid_arg "Checkpoint.of_bytes: malformed image" in
  let len = Bytes.length b in
  if len < header_bytes then fail ();
  let int_at off = Int64.to_int (Bytes.get_int64_le b off) in
  let psize = int_at 0 in
  let count = int_at 8 in
  (* Field-by-field bounds, overflow-safe: [psize] and [count] come off the
     wire, so [count * (per_page_header + psize)] may wrap around and
     accidentally equal [len]. Any page at all means [psize] must fit in
     the buffer; bounding [count] by the room actually left then keeps the
     product below [len] — a truncated or oversized buffer fails here,
     with this error, rather than as an out-of-range access deep inside
     [Bytes]. An empty image ([count = 0], legal whatever its [psize])
     multiplies by zero, which cannot wrap. *)
  if psize <= 0 || count < 0 then fail ();
  if count > 0 then begin
    if psize > len then fail ();
    if count > (len - header_bytes) / (per_page_header + psize) then fail ()
  end;
  let per_page = per_page_header + psize in
  if len <> header_bytes + (count * per_page) then fail ();
  let pages = ref [] in
  let off = ref header_bytes in
  let seen = Hashtbl.create (max 16 count) in
  for _ = 1 to count do
    let vpage = int_at !off in
    (* A negative page number or a repeated entry cannot come from
       [to_bytes]; restoring such an image would double-write pages
       silently. *)
    if vpage < 0 || Hashtbl.mem seen vpage then fail ();
    Hashtbl.replace seen vpage ();
    let contents = Bytes.sub b (!off + per_page_header) psize in
    pages := (vpage, contents) :: !pages;
    off := !off + per_page
  done;
  { psize; pages = List.rev !pages }

let transfer_cost model image =
  Cost_model.remote_spawn_cost model ~mapped_pages:(mapped_pages image)
