(** Machine cost profiles.

    Section 4.4 of the paper reports measured constants for two workstations
    (AT&T 3B2/310 and HP 9000/350) and for a distributed remote-fork
    implementation. The simulation runtime charges virtual time according to
    one of these profiles, so that the experiments of EXPERIMENTS.md can be
    regenerated deterministically. All times are in seconds. *)

type t = {
  name : string;  (** Human-readable profile name. *)
  page_size : int;  (** Bytes per page of sink state. *)
  fork_base : float;
      (** Fixed cost of a local copy-on-write fork (process-table entry,
          page-map header, bookkeeping). *)
  fork_per_page : float;
      (** Per-mapped-page cost of duplicating a page-map entry at fork. *)
  page_copy : float;
      (** Cost of copying one page on a copy-on-write fault (the reciprocal
          of the paper's page-copy service rate). *)
  absorb_base : float;
      (** Fixed cost of the parent atomically replacing its page pointer with
          the winning child's at [alt_wait] rendezvous. *)
  kill_per_sibling : float;
      (** Cost of issuing one sibling-elimination instruction (section
          3.2.1: the instructions "increase with the number of alternates"). *)
  msg_latency : float;  (** One-way message latency between processes. *)
  msg_per_byte : float;  (** Incremental message cost per payload byte. *)
  remote_spawn_base : float;
      (** Fixed cost of a remote fork: checkpointing the process image
          (Smith and Ioannidis 1989 implemented rfork() by dumping the
          process state to an executable file). *)
  remote_per_page : float;
      (** Per-page cost of shipping the checkpoint over the network file
          system. *)
}

val att_3b2 : t
(** AT&T 3B2/310 with the WE 32101 MMU: 2K pages, fork of a 320K address
    space at about 31 ms, page-copy service rate of 326 pages/second. *)

val hp_9000_350 : t
(** HP 9000/350: 4K pages, fork of a 320K address space at about 12 ms,
    page-copy service rate of 1034 pages/second. *)

val distributed_lan : t
(** Remote-fork profile: an rfork() of a 70K process costs just under one
    second of mechanism time; network delays raise the observed mean to
    about 1.3 seconds. *)

val modern : t
(** A present-day Linux/x86-64-like profile, used by the real-machine
    analogue experiment (E12) for comparison and by the examples to keep
    simulated runs short. *)

val uniform : ?page_size:int -> unit -> t
(** A profile in which every overhead constant is zero: useful in tests to
    isolate algorithmic behaviour from cost accounting, and in the analytic
    table (E1) where the overhead is supplied explicitly. *)

val pages_for : t -> bytes:int -> int
(** [pages_for m ~bytes] is the number of pages needed to hold [bytes]. *)

val fork_cost : t -> mapped_pages:int -> float
(** Cost of a local COW fork of an address space with that many mapped
    pages: [fork_base + mapped_pages * fork_per_page]. *)

val copy_cost : t -> pages:int -> float
(** Cost of servicing [pages] copy-on-write faults. *)

val remote_spawn_cost : t -> mapped_pages:int -> float
(** Mechanism cost of a remote fork shipping [mapped_pages] pages. *)

val message_cost : t -> bytes:int -> float
(** End-to-end cost of delivering one message of [bytes] payload bytes. *)

val pp : Format.formatter -> t -> unit
