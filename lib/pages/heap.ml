type t = { space_ : Address_space.t; brk_ : int ref }

let create ?(base = 0) space = { space_ = space; brk_ = ref base }
let space t = t.space_
let brk t = !(t.brk_)

let align8 n = (n + 7) land lnot 7

let alloc t n =
  if n < 0 then invalid_arg "Heap.alloc";
  let addr = !(t.brk_) in
  t.brk_ := addr + align8 (max n 1);
  addr

type 'a repr =
  | Int : int repr
  | Float : float repr
  | Str : int -> string repr  (* max length; stored as u32 length + bytes *)

type 'a cell = { addr : int; repr : 'a repr }

let cell_addr c = c.addr

let get : type a. t -> a cell -> a =
 fun t c ->
  match c.repr with
  | Int -> Address_space.get_int t.space_ ~addr:c.addr
  | Float -> Address_space.get_float t.space_ ~addr:c.addr
  | Str _ ->
    let len = Address_space.get_int t.space_ ~addr:c.addr in
    Address_space.get_string t.space_ ~addr:(c.addr + 8) ~len

let set : type a. t -> a cell -> a -> unit =
 fun t c v ->
  match c.repr with
  | Int -> Address_space.set_int t.space_ ~addr:c.addr v
  | Float -> Address_space.set_float t.space_ ~addr:c.addr v
  | Str max_len ->
    if String.length v > max_len then invalid_arg "Heap.set: string too long";
    Address_space.set_int t.space_ ~addr:c.addr (String.length v);
    Address_space.set_string t.space_ ~addr:(c.addr + 8) v

let int_cell t v =
  let c = { addr = alloc t 8; repr = Int } in
  set t c v;
  c

let float_cell t v =
  let c = { addr = alloc t 8; repr = Float } in
  set t c v;
  c

let string_cell t ~max_len v =
  let c = { addr = alloc t (8 + max_len); repr = Str max_len } in
  set t c v;
  c

let view t space' = { space_ = space'; brk_ = t.brk_ }
