(** A bump allocator with typed cells over an {!Address_space}.

    Applications (recovery blocks, the query examples) keep their shared
    mutable state in heap cells so that alternative executions exercise the
    copy-on-write machinery honestly: every cell update by a speculative
    child is a page write that may fault. *)

type t

val create : ?base:int -> Address_space.t -> t
(** Allocation starts at byte address [base] (default 0). *)

val space : t -> Address_space.t

val alloc : t -> int -> int
(** [alloc h n] reserves [n] bytes and returns their base address. 8-byte
    aligned. *)

val brk : t -> int
(** Current allocation frontier. *)

(** Typed cells. A cell remembers only its address, so the same cell value
    can be dereferenced through a forked child's space: pass the child's
    heap view obtained by {!view}. *)

type 'a cell

val int_cell : t -> int -> int cell
val float_cell : t -> float -> float cell
val string_cell : t -> max_len:int -> string -> string cell

val get : t -> 'a cell -> 'a
val set : t -> 'a cell -> 'a -> unit

val cell_addr : 'a cell -> int

val view : t -> Address_space.t -> t
(** [view h space'] is a heap presenting the same cells (same addresses)
    through a different address space — typically a COW fork of [h]'s. The
    allocation frontier is shared with [h] so views can keep allocating
    without overlap. *)
