(** Checkpoint/restart of address spaces.

    Smith and Ioannidis (1989) implemented [rfork()] "by dumping the state
    of the process into a file in such a way that the file is executable; a
    bootstrapping routine restores the registers and data segments". This
    module is that mechanism for the simulated store: an {!image} is a
    self-contained byte snapshot of an address space, which can be restored
    into a fresh space — in the same simulation or conceptually shipped to
    a remote node. Remote spawning of alternatives is built on it. *)

type image
(** A serialised address space: page size plus the (sparse) list of mapped
    pages and their contents. *)

val capture : Address_space.t -> image
(** Snapshot the space's current contents. O(mapped pages); does not
    disturb sharing (reads only). *)

val restore : Frame_store.t -> Cost_model.t -> image -> Address_space.t
(** Materialise the image as a fresh private address space in the given
    store. Raises [Invalid_argument] if the page sizes disagree. *)

val page_size : image -> int
val mapped_pages : image -> int

val size_bytes : image -> int
(** Wire size of the checkpoint: what a remote fork must ship. *)

val to_bytes : image -> bytes
(** Serialise to a flat byte string (the "executable file" of the paper's
    implementation). *)

val of_bytes : bytes -> image
(** Inverse of {!to_bytes}. Raises [Invalid_argument] with a
    ["Checkpoint.of_bytes"] message on malformed data: a truncated or
    oversized buffer, nonsensical header fields (the size arithmetic is
    overflow-safe, so no wire value can smuggle an out-of-range access
    into [Bytes]), a negative page number, or a duplicated page entry
    (restoring a duplicate would double-write the page silently). *)

val transfer_cost : Cost_model.t -> image -> float
(** {!Cost_model.remote_spawn_cost} of shipping this image: the checkpoint
    base cost plus per-page transfer. *)
