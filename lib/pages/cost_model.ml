type t = {
  name : string;
  page_size : int;
  fork_base : float;
  fork_per_page : float;
  page_copy : float;
  absorb_base : float;
  kill_per_sibling : float;
  msg_latency : float;
  msg_per_byte : float;
  remote_spawn_base : float;
  remote_per_page : float;
}

(* Calibration for the 3B2: a 320K address space is 160 2K pages and the
   paper reports a 31 ms fork, so fork_base + 160 * fork_per_page = 0.031.
   The measured page-copy service rate is 326 pages/second. *)
let att_3b2 =
  {
    name = "AT&T 3B2/310";
    page_size = 2048;
    fork_base = 0.023;
    fork_per_page = 5e-5;
    page_copy = 1. /. 326.;
    absorb_base = 1e-3;
    kill_per_sibling = 5e-4;
    msg_latency = 5e-3;
    msg_per_byte = 2e-6;
    remote_spawn_base = 0.9;
    remote_per_page = 8e-3;
  }

(* HP 9000/350: 320K is 80 4K pages, fork measured at about 12 ms, copy
   service rate 1034 pages/second. *)
let hp_9000_350 =
  {
    name = "HP 9000/350";
    page_size = 4096;
    fork_base = 0.008;
    fork_per_page = 5e-5;
    page_copy = 1. /. 1034.;
    absorb_base = 4e-4;
    kill_per_sibling = 2e-4;
    msg_latency = 3e-3;
    msg_per_byte = 1e-6;
    remote_spawn_base = 0.75;
    remote_per_page = 5e-3;
  }

(* rfork() of a 70K (18 4K-page) process: 0.75 + 18 * 0.014 = 1.002 s of
   mechanism time; six protocol messages at 50 ms one-way latency account
   for the observed ~1.3 s mean (Smith and Ioannidis 1989). *)
let distributed_lan =
  {
    name = "Distributed (LAN rfork)";
    page_size = 4096;
    fork_base = 0.012;
    fork_per_page = 5e-5;
    page_copy = 1. /. 1034.;
    absorb_base = 4e-4;
    kill_per_sibling = 2e-4;
    msg_latency = 0.05;
    msg_per_byte = 1e-5;
    remote_spawn_base = 0.75;
    remote_per_page = 0.014;
  }

let modern =
  {
    name = "Modern x86-64";
    page_size = 4096;
    fork_base = 3e-4;
    fork_per_page = 2e-8;
    page_copy = 3e-7;
    absorb_base = 1e-6;
    kill_per_sibling = 1e-6;
    msg_latency = 2e-6;
    msg_per_byte = 1e-10;
    remote_spawn_base = 5e-3;
    remote_per_page = 1e-5;
  }

let uniform ?(page_size = 4096) () =
  {
    name = "Uniform (zero overhead)";
    page_size;
    fork_base = 0.;
    fork_per_page = 0.;
    page_copy = 0.;
    absorb_base = 0.;
    kill_per_sibling = 0.;
    msg_latency = 0.;
    msg_per_byte = 0.;
    remote_spawn_base = 0.;
    remote_per_page = 0.;
  }

let pages_for m ~bytes =
  if bytes <= 0 then 0 else ((bytes - 1) / m.page_size) + 1

let fork_cost m ~mapped_pages =
  m.fork_base +. (float_of_int mapped_pages *. m.fork_per_page)

let copy_cost m ~pages = float_of_int pages *. m.page_copy

let remote_spawn_cost m ~mapped_pages =
  m.remote_spawn_base +. (float_of_int mapped_pages *. m.remote_per_page)

let message_cost m ~bytes = m.msg_latency +. (float_of_int bytes *. m.msg_per_byte)

let pp ppf m =
  Format.fprintf ppf
    "%s: page=%dB fork=%.4gs+%.4gs/pg copy=%.4gs/pg msg=%.4gs+%.4gs/B" m.name
    m.page_size m.fork_base m.fork_per_page m.page_copy m.msg_latency
    m.msg_per_byte
