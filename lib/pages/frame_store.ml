type frame = { mutable fid : int; buf : bytes; mutable refs : int }

type t = {
  page_size : int;
  zero : bytes;  (* shared all-zero page, for allocation-free comparisons *)
  mutable next_id : int;
  mutable live : int;
  mutable allocs : int;
  mutable copies : int;
  mutable free : frame list;  (* recycled zeroed frames *)
  mutable next_map : int;  (* map identities, for the write observer *)
  mutable write_observer : (map:int -> vpage:int -> frame:int -> unit) option;
}

let create ~page_size =
  if page_size <= 0 then invalid_arg "Frame_store.create: page_size";
  { page_size; zero = Bytes.make page_size '\000'; next_id = 0; live = 0;
    allocs = 0; copies = 0; free = []; next_map = 0; write_observer = None }

let fresh_map_id t =
  let id = t.next_map in
  t.next_map <- t.next_map + 1;
  id

let set_write_observer t f = t.write_observer <- f

let notify_write t ~map ~vpage ~frame =
  match t.write_observer with
  | Some f -> f ~map ~vpage ~frame
  | None -> ()

let zero_page t = t.zero

let page_size t = t.page_size

let fresh t =
  match t.free with
  | f :: rest ->
    t.free <- rest;
    Bytes.fill f.buf 0 t.page_size '\000';
    f.refs <- 1;
    (* A recycled frame is a new identity: frame ids are never reused, so
       an id recorded in an access log always denotes one physical write
       target (the isolation checker depends on this). *)
    f.fid <- t.next_id;
    t.next_id <- t.next_id + 1;
    f
  | [] ->
    let f = { fid = t.next_id; buf = Bytes.make t.page_size '\000'; refs = 1 } in
    t.next_id <- t.next_id + 1;
    f

let alloc t =
  let f = fresh t in
  t.live <- t.live + 1;
  t.allocs <- t.allocs + 1;
  f

let alloc_copy t src =
  let f = fresh t in
  Bytes.blit src.buf 0 f.buf 0 t.page_size;
  t.live <- t.live + 1;
  t.allocs <- t.allocs + 1;
  t.copies <- t.copies + 1;
  f

let incref f =
  assert (f.refs > 0);
  f.refs <- f.refs + 1

let decref t f =
  assert (f.refs > 0);
  f.refs <- f.refs - 1;
  if f.refs = 0 then begin
    t.live <- t.live - 1;
    t.free <- f :: t.free
  end

let refcount f = f.refs
let data f = f.buf
let id f = f.fid
let live_frames t = t.live
let total_allocations t = t.allocs
let cow_copies t = t.copies
