(** Per-process page tables with copy-on-write inheritance.

    "The state management strategy is copy-on-write with page map
    inheritance from the parent" (paper, section 3.3). A {!t} maps virtual
    page numbers to {!Frame_store} frames through a chain of overlay
    layers: the top layer is private to the map, deeper layers are frozen
    and shared with relatives. {!fork} freezes the parent's top layer and
    starts both sides with empty overlays (O(1), regardless of how many
    pages are mapped); frames are copied lazily on first write. {!absorb}
    implements the [alt_wait] rendezvous: the parent atomically replaces
    its page pointer with the child's overlay, walking only the child's
    dirty pages. *)

type t

val create : Frame_store.t -> t
(** An empty address map over the given frame pool. Unmapped pages read as
    zeroes and are materialised on first write. *)

val store : t -> Frame_store.t
val id : t -> int
(** This map's {!Frame_store.fresh_map_id}: a store-unique, deterministic
    identity. The frame store's write observer reports tracked writes
    under it, and the analysis layer joins those reports back to processes
    through {!Address_space.map}. *)

val page_size : t -> int

val fork : t -> t
(** [fork parent] is a child map sharing every frame of [parent]
    copy-on-write. O(1) amortised: no frame or page-table entry is copied;
    the caller charges {!Cost_model.fork_cost}. *)

val mapped_pages : t -> int
(** Number of virtual pages with a materialised frame. O(1). *)

val private_pages : t -> int
(** Mapped pages whose frame is reachable through this map alone. *)

val shared_pages : t -> int
(** Mapped pages whose frame is shared with at least one other map. *)

val read : t -> vpage:int -> off:int -> len:int -> bytes
(** Read [len] bytes at [off] within page [vpage] into a fresh buffer. *)

val read_into : t -> vpage:int -> off:int -> len:int -> dst:bytes -> dst_off:int -> unit
(** Like {!read}, but blits into [dst] at [dst_off] instead of
    allocating. Unmapped pages zero-fill the destination range. *)

val write : t -> vpage:int -> off:int -> src:bytes -> copied:bool ref -> unit
(** Write [src] at [off] within page [vpage]. Sets [copied := true] if a
    copy-on-write fault was serviced (the caller charges
    {!Cost_model.copy_cost} for it); leaves it untouched otherwise. Writing
    to an unmapped page materialises a zero frame without setting
    [copied]. *)

val write_from :
  t -> vpage:int -> off:int -> src:bytes -> src_off:int -> len:int -> bool
(** Like {!write} for the range [src_off, src_off+len) of [src], without
    requiring the caller to slice it out. Returns [true] iff a
    copy-on-write fault was serviced. *)

(** {2 Scalar fast paths}

    Single-value accessors that touch the frame bytes in place — no
    [Bytes.sub]/[Bytes.make] per access. The [int] forms are additionally
    allocation-free; [get_int]/[set_int] use the little-endian [int64]
    encoding truncated to OCaml's 63-bit [int] (identical to
    [Int64.to_int] of {!get_i64}). All raise [Invalid_argument] when the
    access would cross the page boundary; {!Address_space} falls back to
    the byte-range path in that case. Setters return [true] iff a
    copy-on-write fault was serviced. *)

val get_u8 : t -> vpage:int -> off:int -> int
val set_u8 : t -> vpage:int -> off:int -> int -> bool
val get_i64 : t -> vpage:int -> off:int -> int64
val set_i64 : t -> vpage:int -> off:int -> int64 -> bool
val get_int : t -> vpage:int -> off:int -> int
val set_int : t -> vpage:int -> off:int -> int -> bool

val touch_page : t -> vpage:int -> bool
(** Fault-only probe: ensure [vpage] is privately mapped without reading
    or changing its contents. Returns [true] — and counts a write — only
    when a copy-on-write fault was actually serviced (the caller charges
    the copy); already-private pages are no-ops and unmapped pages are
    materialised as zero frames for free. *)

val absorb : parent:t -> child:t -> unit
(** The parent drops all of its frames and takes over the child's overlay
    and statistics; the child map becomes released (any further use
    raises). This is the atomic page-pointer replacement of [alt_wait].
    O(pages the child dirtied), not O(mapped). *)

val release : t -> unit
(** Drop every frame reference (process elimination). Idempotent. *)

val released : t -> bool

val cow_copies : t -> int
(** Copy-on-write faults serviced by writes through this map (absorbing a
    child adds the child's count: the surviving timeline's history). *)

val writes : t -> int
val reads : t -> int

(** {2 Access-set recording}

    When tracking is enabled, the map records which virtual pages were read
    and which were written (together with the identity of the frame each
    write landed in). The analysis layer uses these logs for isolation
    checking: two sibling maps whose write logs contain the same frame id
    for a page have mutated shared state without copy-on-write
    privatisation. Tracking is off by default; {!fork} inherits the
    parent's setting. *)

val set_tracking : t -> bool -> unit
val tracking : t -> bool

val read_log : t -> int list
(** Virtual pages read since creation, ascending. Unlike the page-table
    accessors, this remains usable after {!release} (post-mortem audit of
    eliminated processes). Empty unless tracking was enabled. *)

val write_log : t -> (int * int) list
(** [(vpage, frame_id)] pairs: the frame most recently written through this
    map for each written page, ascending by page. Frame ids are never
    reused by the store, so equal ids across sibling maps mean writes to
    the same physical frame. Usable after {!release}. *)

val mapped_vpages : t -> int list
(** Virtual page numbers with a materialised frame, ascending. *)

val frame_id : t -> vpage:int -> int option
(** Identity of the frame backing [vpage], for sharing assertions in
    tests. *)

val snapshot_equal : t -> t -> bool
(** [snapshot_equal a b] holds when both maps present identical page
    contents (zero-extended to the union of their mapped pages).
    Stat-neutral: auditing never perturbs {!reads}/{!read_log}. Frames
    shared between maps of the same store short-circuit by identity before
    any byte comparison. *)
