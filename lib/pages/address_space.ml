type t = {
  map_ : Page_map.t;
  model_ : Cost_model.t;
  mutable pending : float;
}

let model t = t.model_
let map t = t.map_

let page_size t = t.model_.Cost_model.page_size

let add_cost t c = t.pending <- t.pending +. c
let pending_cost t = t.pending

let drain_cost t =
  let c = t.pending in
  t.pending <- 0.;
  c

let check_addr ~addr ~len =
  if addr < 0 || len < 0 then invalid_arg "Address_space: negative address"

let fault_cost t = add_cost t (Cost_model.copy_cost t.model_ ~pages:1)

(* Apply [f page off chunk_len data_off] to each page-aligned chunk of the
   range [addr, addr+len). *)
let iter_chunks t ~addr ~len f =
  check_addr ~addr ~len;
  let ps = page_size t in
  let pos = ref addr in
  let remaining = ref len in
  while !remaining > 0 do
    let vpage = !pos / ps in
    let off = !pos mod ps in
    let chunk = min !remaining (ps - off) in
    f ~vpage ~off ~chunk ~data_off:(!pos - addr);
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

let read_bytes t ~addr ~len =
  let out = Bytes.create len in
  iter_chunks t ~addr ~len (fun ~vpage ~off ~chunk ~data_off ->
      Page_map.read_into t.map_ ~vpage ~off ~len:chunk ~dst:out ~dst_off:data_off);
  out

let write_bytes t ~addr src =
  let len = Bytes.length src in
  iter_chunks t ~addr ~len (fun ~vpage ~off ~chunk ~data_off ->
      if Page_map.write_from t.map_ ~vpage ~off ~src ~src_off:data_off ~len:chunk
      then fault_cost t)

let create ?(size_hint = 0) store model =
  if Frame_store.page_size store <> model.Cost_model.page_size then
    invalid_arg "Address_space.create: store/model page size mismatch";
  let t = { map_ = Page_map.create store; model_ = model; pending = 0. } in
  if size_hint > 0 then begin
    (* Materialise the image pages, then discard the setup cost: the hinted
       image exists before the measured operations begin. *)
    let ps = model.Cost_model.page_size in
    let zero = Bytes.make 1 '\000' in
    for vpage = 0 to Cost_model.pages_for model ~bytes:size_hint - 1 do
      let copied = ref false in
      Page_map.write t.map_ ~vpage ~off:(ps - 1) ~src:zero ~copied
    done;
    ignore (drain_cost t)
  end;
  t

let fork ?model parent =
  let model = Option.value ~default:parent.model_ model in
  if model.Cost_model.page_size <> parent.model_.Cost_model.page_size then
    invalid_arg "Address_space.fork: model page size mismatch";
  let child_map = Page_map.fork parent.map_ in
  let child = { map_ = child_map; model_ = model; pending = 0. } in
  add_cost child
    (Cost_model.fork_cost model ~mapped_pages:(Page_map.mapped_pages parent.map_));
  child

let absorb ~parent ~child =
  Page_map.absorb ~parent:parent.map_ ~child:child.map_;
  add_cost parent parent.model_.Cost_model.absorb_base;
  (* Unflushed child cost belongs to the surviving timeline. *)
  add_cost parent child.pending;
  child.pending <- 0.

let release t = Page_map.release t.map_

(* Scalar accessors ride the page map's in-place fast paths whenever the
   access stays inside one page; only a page-crossing access (or a
   serviced fault, which is priced anyway) takes the allocating route. *)

let get_u8 t ~addr =
  check_addr ~addr ~len:1;
  let ps = page_size t in
  Page_map.get_u8 t.map_ ~vpage:(addr / ps) ~off:(addr mod ps)

let set_u8 t ~addr v =
  if v < 0 || v > 0xff then invalid_arg "Address_space.set_u8";
  check_addr ~addr ~len:1;
  let ps = page_size t in
  if Page_map.set_u8 t.map_ ~vpage:(addr / ps) ~off:(addr mod ps) v then
    fault_cost t

let get_i64 t ~addr =
  check_addr ~addr ~len:8;
  let ps = page_size t in
  let off = addr mod ps in
  if off + 8 <= ps then Page_map.get_i64 t.map_ ~vpage:(addr / ps) ~off
  else Bytes.get_int64_le (read_bytes t ~addr ~len:8) 0

let set_i64 t ~addr v =
  check_addr ~addr ~len:8;
  let ps = page_size t in
  let off = addr mod ps in
  if off + 8 <= ps then begin
    if Page_map.set_i64 t.map_ ~vpage:(addr / ps) ~off v then fault_cost t
  end
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    write_bytes t ~addr b
  end

let get_int t ~addr =
  check_addr ~addr ~len:8;
  let ps = page_size t in
  let off = addr mod ps in
  if off + 8 <= ps then Page_map.get_int t.map_ ~vpage:(addr / ps) ~off
  else Int64.to_int (Bytes.get_int64_le (read_bytes t ~addr ~len:8) 0)

let set_int t ~addr v =
  check_addr ~addr ~len:8;
  let ps = page_size t in
  let off = addr mod ps in
  if off + 8 <= ps then begin
    if Page_map.set_int t.map_ ~vpage:(addr / ps) ~off v then fault_cost t
  end
  else begin
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    write_bytes t ~addr b
  end

let get_float t ~addr = Int64.float_of_bits (get_i64 t ~addr)
let set_float t ~addr v = set_i64 t ~addr (Int64.bits_of_float v)

let get_string t ~addr ~len = Bytes.to_string (read_bytes t ~addr ~len)
let set_string t ~addr s = write_bytes t ~addr (Bytes.of_string s)

(* A pure fault probe: no byte is read or written, so a page that is
   already private costs (and counts) nothing — the old read-then-rewrite
   implementation charged a spurious write per page. *)
let touch t ~addr ~len =
  iter_chunks t ~addr ~len (fun ~vpage ~off:_ ~chunk:_ ~data_off:_ ->
      if Page_map.touch_page t.map_ ~vpage then fault_cost t)

let cow_copies t = Page_map.cow_copies t.map_
let mapped_pages t = Page_map.mapped_pages t.map_
let private_pages t = Page_map.private_pages t.map_
let shared_pages t = Page_map.shared_pages t.map_

let set_tracking t b = Page_map.set_tracking t.map_ b
let tracking t = Page_map.tracking t.map_
let read_pages t = Page_map.read_log t.map_
let written_pages t = Page_map.write_log t.map_
