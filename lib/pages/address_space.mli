(** Byte-addressable address spaces over the paged store.

    An address space couples a {!Page_map} with a {!Cost_model} and keeps a
    running total of the virtual-time cost incurred by its operations
    (copy-on-write faults, fork setup). The simulation runtime drains this
    pending cost into the simulated clock, so that memory behaviour shows up
    as execution time exactly as in the paper's overhead analysis. *)

type t

val create : ?size_hint:int -> Frame_store.t -> Cost_model.t -> t
(** [create store model] is an empty space. [size_hint] (bytes) pre-faults
    that much zeroed memory, modelling a process image of a given size (used
    to reproduce the 320K-address-space fork measurements). The frame
    store's page size must equal the model's. *)

val model : t -> Cost_model.t
val map : t -> Page_map.t

val fork : ?model:Cost_model.t -> t -> t
(** Copy-on-write child. Adds {!Cost_model.fork_cost} for the mapped pages
    to the {e child}'s pending cost (spawning work is charged to the spawn
    path by the runtime). [model] (default: the parent's) prices the
    child's subsequent operations — an on-demand remote child shares the
    parent's frames but pays network prices per copy-on-write fault. Must
    have the parent's page size. *)

val absorb : parent:t -> child:t -> unit
(** Rendezvous: parent takes the child's pages; adds
    {!Cost_model.absorb_base} to the parent's pending cost. *)

val release : t -> unit

val read_bytes : t -> addr:int -> len:int -> bytes
val write_bytes : t -> addr:int -> bytes -> unit
(** Reads and writes may span page boundaries; writes accumulate
    copy-on-write fault costs into the pending total. Negative addresses
    raise [Invalid_argument]. *)

(** Scalar accessors route through {!Page_map}'s in-place fast paths when
    the access does not cross a page boundary; [get_u8]/[set_u8]/
    [get_int]/[set_int] are allocation-free on that path. *)

val get_u8 : t -> addr:int -> int
val set_u8 : t -> addr:int -> int -> unit
val get_i64 : t -> addr:int -> int64
val set_i64 : t -> addr:int -> int64 -> unit
val get_int : t -> addr:int -> int
val set_int : t -> addr:int -> int -> unit
val get_float : t -> addr:int -> float
val set_float : t -> addr:int -> float -> unit
val get_string : t -> addr:int -> len:int -> string
val set_string : t -> addr:int -> string -> unit

val touch : t -> addr:int -> len:int -> unit
(** Fault-probe every page overlapping [addr, addr+len): forces
    materialisation / privatisation without reading or changing contents.
    Charges (and counts) a write only for pages that actually take a
    copy-on-write fault; already-private pages are free. Models a program
    whose working set dirties a known fraction of its pages. *)

val pending_cost : t -> float
(** Accumulated un-charged cost. *)

val drain_cost : t -> float
(** Return the pending cost and reset it to zero. *)

val add_cost : t -> float -> unit
(** Account an externally computed cost (e.g. remote spawn transfer). *)

val cow_copies : t -> int
val mapped_pages : t -> int
val private_pages : t -> int
val shared_pages : t -> int

val set_tracking : t -> bool -> unit
(** Enable (or disable) per-page access-set recording on the underlying
    {!Page_map}. Children created by {!fork} inherit the setting, so
    enabling it on a parent before an alternative block audits every
    sibling. Off by default (zero overhead for benchmarks). *)

val tracking : t -> bool

val read_pages : t -> int list
(** Virtual pages this space has read, ascending; usable after {!release}. *)

val written_pages : t -> (int * int) list
(** [(vpage, frame_id)] pairs for pages this space has written; usable
    after {!release}. See {!Page_map.write_log}. *)
