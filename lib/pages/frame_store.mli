(** Reference-counted physical page frames.

    The paper manages all sink state as fixed-size pages ("we bury the
    entire memory hierarchy under the page abstraction", section 3.1). A
    {!t} is the pool of physical frames shared by every address space in one
    simulation; copy-on-write sharing is expressed through frame reference
    counts. *)

type frame
(** One physical page frame: a byte buffer plus a reference count. *)

type t
(** A frame pool. *)

val create : page_size:int -> t
(** [create ~page_size] makes an empty pool of frames of [page_size] bytes. *)

val page_size : t -> int

val zero_page : t -> bytes
(** A shared all-zero page of the pool's page size. Callers must never
    mutate it; it exists so that unmapped pages can be compared against
    mapped ones without allocating. *)

val alloc : t -> frame
(** Allocate a fresh zero-filled frame with reference count 1. *)

val alloc_copy : t -> frame -> frame
(** [alloc_copy t f] allocates a fresh frame whose contents are a copy of
    [f]'s, with reference count 1. [f]'s count is unchanged. This is the
    copy-on-write fault path; the caller accounts its cost. *)

val incref : frame -> unit
(** Add one reference (a page map sharing the frame). *)

val decref : t -> frame -> unit
(** Drop one reference; the frame is returned to the pool's free list when
    the count reaches zero. *)

val refcount : frame -> int

val data : frame -> bytes
(** The frame's backing bytes. Callers must only mutate frames they hold
    exclusively (reference count 1); {!Page_map} enforces this. *)

val id : frame -> int
(** Stable identity of the frame, for tests, traces, and the analysis
    layer's access logs. Ids are never reused: a frame recycled through the
    free list comes back under a fresh id. *)

val live_frames : t -> int
(** Number of frames currently referenced by at least one map. *)

val total_allocations : t -> int
(** Number of [alloc]/[alloc_copy] calls since creation (monotone). *)

val cow_copies : t -> int
(** Number of [alloc_copy] calls since creation (monotone): the pool-wide
    count of copy-on-write faults serviced. *)

val fresh_map_id : t -> int
(** A pool-unique identity for a {!Page_map} drawing frames from this
    pool. Ids are dense, allocated in creation order, so they are
    deterministic per simulation. *)

val set_write_observer :
  t -> (map:int -> vpage:int -> frame:int -> unit) option -> unit
(** Install (or clear) an online write observer: {!Page_map.note_write}
    reports every {e tracked} page write through it, identifying the
    writing map by its {!fresh_map_id}. Untracked maps stay entirely off
    this path, so benchmarks are unaffected. The analysis layer's
    sanitizer uses this to detect isolation races as they happen. *)

val notify_write : t -> map:int -> vpage:int -> frame:int -> unit
(** Used by {!Page_map}; a no-op when no observer is installed. *)
