(* A page map is a chain of overlay nodes. [top] is always exclusively
   owned by this map and is the only layer it may freely mutate; deeper
   nodes are frozen layers shared copy-on-write with relatives. [fork]
   freezes the top into a shared base and gives both sides fresh empty
   overlays, so forking is O(1) regardless of how many pages are mapped,
   and [absorb] transplants just the child's overlay (O(dirty)).

   Sharing is tracked on nodes, not frames: a frozen node records the
   nodes layered directly on top of it ([deps]), a top belongs to exactly
   one live map ([is_top]). A frame is shared — and a write to it must
   take a copy-on-write fault — exactly when more than one live map
   currently resolves its page through the node holding it; [resolvers]
   computes that by walking the dependent tree upward, cutting branches
   that shadow the page. This reproduces the per-frame reference counts
   of an eager fork exactly (a loser sibling that keeps running after the
   winner was absorbed writes its still-exclusive pages in place, for
   instance), while keeping fork and absorb off the O(mapped) path. *)

type node = {
  frames : (int, Frame_store.frame) Hashtbl.t;
  mutable is_top : bool;  (* the private top layer of one live map *)
  mutable deps : node list;  (* nodes whose [base] is this node *)
  mutable base : node option;
}

type t = {
  store : Frame_store.t;
  id : int;  (* store-unique map identity, for the write observer *)
  mutable top : node;
  mutable mapped : int;  (* distinct vpages resolving to a frame *)
  mutable fault : bool;  (* scratch: did the last prepare_write COW? *)
  mutable cow_copies : int;
  mutable writes : int;
  mutable reads : int;
  mutable released : bool;
  (* Access logs survive release so that the analysis layer can audit the
     page behaviour of eliminated processes post mortem. *)
  mutable track : bool;
  reads_log : (int, unit) Hashtbl.t;  (* vpage touched by a read *)
  writes_log : (int, int) Hashtbl.t;  (* vpage -> id of the frame written *)
}

let fresh_top base = { frames = Hashtbl.create 8; is_top = true; deps = []; base }

let create store =
  { store; id = Frame_store.fresh_map_id store; top = fresh_top None;
    mapped = 0; fault = false; cow_copies = 0;
    writes = 0; reads = 0; released = false; track = false;
    reads_log = Hashtbl.create 8; writes_log = Hashtbl.create 8 }

let store t = t.store
let id t = t.id
let page_size t = Frame_store.page_size t.store

let check t = if t.released then invalid_arg "Page_map: use after release"

(* Resolve [vpage] through the overlay chain; raises [Not_found] when the
   page is unmapped. Allocation-free. *)
let rec resolve_node node vpage =
  match Hashtbl.find node.frames vpage with
  | f -> f
  | exception Not_found -> (
    match node.base with
    | Some b -> resolve_node b vpage
    | None -> raise Not_found)

let resolve_opt t vpage =
  match resolve_node t.top vpage with
  | f -> Some f
  | exception Not_found -> None

(* Like [resolve_node], but also says which layer the frame was found
   in. Slow path only. *)
let rec resolve_loc node vpage =
  match Hashtbl.find node.frames vpage with
  | f -> (f, node)
  | exception Not_found -> (
    match node.base with
    | Some b -> resolve_loc b vpage
    | None -> raise Not_found)

(* Number of live maps currently resolving [vpage] to the frame held by
   [node]: walk the layers stacked on [node], cutting any branch that
   shadows the page. Equals the reference count an eager per-frame scheme
   would have, at slow-path-only cost. *)
let resolvers node vpage =
  let rec above n acc =
    if Hashtbl.mem n.frames vpage then acc
    else if n.is_top then acc + 1
    else List.fold_left (fun acc d -> above d acc) acc n.deps
  in
  if node.is_top then 1
  else List.fold_left (fun acc d -> above d acc) 0 node.deps

let remove_dep b n = b.deps <- List.filter (fun d -> not (d == n)) b.deps

(* While the layer under the top is referenced by nobody else, its history
   is private: merge the top's entries down over it (freeing the frames
   they shadow) and adopt it as the new top. Keeps chains short once
   relatives have released or been absorbed. The no-merge check is
   allocation-free, so writers run it on every access. *)
let rec compact t =
  let top = t.top in
  match top.base with
  | Some b when (match b.deps with [ _ ] -> true | _ -> false) ->
    Hashtbl.iter
      (fun vpage f ->
        (match Hashtbl.find_opt b.frames vpage with
        | Some shadowed -> Frame_store.decref t.store shadowed
        | None -> ());
        Hashtbl.replace b.frames vpage f)
      top.frames;
    b.deps <- [];
    b.is_top <- true;
    t.top <- b;
    compact t
  | _ -> ()

let fork parent =
  check parent;
  compact parent;
  let top = parent.top in
  let child_top =
    if Hashtbl.length top.frames = 0 then begin
      (* Idle overlay: the child can share the existing base directly
         (after compaction it is either shared already or absent). *)
      let ct = fresh_top top.base in
      (match top.base with Some b -> b.deps <- ct :: b.deps | None -> ());
      ct
    end
    else begin
      (* Freeze the parent's private layer; parent and child both overlay
         it from now on. O(1): no frame is touched. *)
      top.is_top <- false;
      let pt = fresh_top (Some top) and ct = fresh_top (Some top) in
      top.deps <- [ pt; ct ];
      parent.top <- pt;
      ct
    end
  in
  { store = parent.store; id = Frame_store.fresh_map_id parent.store;
    top = child_top; mapped = parent.mapped;
    fault = false; cow_copies = 0; writes = 0; reads = 0; released = false;
    track = parent.track; reads_log = Hashtbl.create 8;
    writes_log = Hashtbl.create 8 }

let mapped_pages t =
  check t;
  t.mapped

(* Fold [f] over every mapped vpage with its resolving frame and the
   layer holding it (topmost occurrence wins, as in [resolve_node]). *)
let fold_resolved t f acc =
  let seen = Hashtbl.create (max 16 t.mapped) in
  let rec go node acc =
    let acc =
      Hashtbl.fold
        (fun vp fr acc ->
          if Hashtbl.mem seen vp then acc
          else begin
            Hashtbl.add seen vp ();
            f vp fr node acc
          end)
        node.frames acc
    in
    match node.base with Some b -> go b acc | None -> acc
  in
  go t.top acc

let private_pages t =
  check t;
  fold_resolved t
    (fun vp _ node acc -> if resolvers node vp <= 1 then acc + 1 else acc)
    0

let shared_pages t = mapped_pages t - private_pages t

let bounds_check t ~off ~len =
  let ps = page_size t in
  if off < 0 || len < 0 || off + len > ps then
    invalid_arg "Page_map: access crosses page boundary"

let note_read t vpage =
  t.reads <- t.reads + 1;
  if t.track then Hashtbl.replace t.reads_log vpage ()

let read_into t ~vpage ~off ~len ~dst ~dst_off =
  check t;
  bounds_check t ~off ~len;
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Page_map.read_into: destination range";
  note_read t vpage;
  match resolve_node t.top vpage with
  | f -> Bytes.blit (Frame_store.data f) off dst dst_off len
  | exception Not_found -> Bytes.fill dst dst_off len '\000'

let read t ~vpage ~off ~len =
  check t;
  bounds_check t ~off ~len;
  note_read t vpage;
  match resolve_node t.top vpage with
  | f -> Bytes.sub (Frame_store.data f) off len
  | exception Not_found -> Bytes.make len '\000'

(* Materialise a zero frame for an unmapped page in the top layer. *)
let materialize t vpage =
  let f = Frame_store.alloc t.store in
  Hashtbl.replace t.top.frames vpage f;
  t.mapped <- t.mapped + 1;
  f

let prepare_slow t vpage =
  match t.top.base with
  | Some b -> (
    match resolve_loc b vpage with
    | shared, owner ->
      if resolvers owner vpage > 1 then begin
        (* Someone else still resolves this frame: privatise it. *)
        let f = Frame_store.alloc_copy t.store shared in
        Hashtbl.replace t.top.frames vpage f;
        t.cow_copies <- t.cow_copies + 1;
        t.fault <- true;
        f
      end
      else begin
        (* We are the frame's only claimant (relatives shadowed it or
           died): adopt it into the top so later writes take the fast
           path. Equivalent to the eager scheme's refcount-1 in-place
           write — no fault, no copy. *)
        Hashtbl.remove owner.frames vpage;
        Hashtbl.replace t.top.frames vpage shared;
        shared
      end
    | exception Not_found -> materialize t vpage)
  | None -> materialize t vpage

(* Return the writable frame for [vpage], privatising or materialising as
   needed; [t.fault] says whether a copy-on-write fault was serviced.
   Allocation-free when the page is already in the top layer. *)
let prepare_write t vpage =
  compact t;
  t.fault <- false;
  match Hashtbl.find t.top.frames vpage with
  | f -> f
  | exception Not_found -> prepare_slow t vpage

let note_write t vpage f =
  if t.track then begin
    Hashtbl.replace t.writes_log vpage (Frame_store.id f);
    Frame_store.notify_write t.store ~map:t.id ~vpage ~frame:(Frame_store.id f)
  end

let write_from t ~vpage ~off ~src ~src_off ~len =
  check t;
  bounds_check t ~off ~len;
  if src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Page_map.write_from: source range";
  t.writes <- t.writes + 1;
  let f = prepare_write t vpage in
  note_write t vpage f;
  Bytes.blit src src_off (Frame_store.data f) off len;
  t.fault

let write t ~vpage ~off ~src ~copied =
  if write_from t ~vpage ~off ~src ~src_off:0 ~len:(Bytes.length src) then
    copied := true

(* ------------------------------------------------------------------ *)
(* Scalar fast paths: no [Bytes.sub]/[Bytes.make] per access. The [int]
   forms are additionally allocation-free (the [int64] forms return a
   boxed value by nature). *)

let get_u8 t ~vpage ~off =
  check t;
  bounds_check t ~off ~len:1;
  note_read t vpage;
  match resolve_node t.top vpage with
  | f -> Char.code (Bytes.unsafe_get (Frame_store.data f) off)
  | exception Not_found -> 0

let set_u8 t ~vpage ~off v =
  check t;
  bounds_check t ~off ~len:1;
  if v < 0 || v > 0xff then invalid_arg "Page_map.set_u8";
  t.writes <- t.writes + 1;
  let f = prepare_write t vpage in
  note_write t vpage f;
  Bytes.unsafe_set (Frame_store.data f) off (Char.unsafe_chr v);
  t.fault

let get_i64 t ~vpage ~off =
  check t;
  bounds_check t ~off ~len:8;
  note_read t vpage;
  match resolve_node t.top vpage with
  | f -> Bytes.get_int64_le (Frame_store.data f) off
  | exception Not_found -> 0L

let set_i64 t ~vpage ~off v =
  check t;
  bounds_check t ~off ~len:8;
  t.writes <- t.writes + 1;
  let f = prepare_write t vpage in
  note_write t vpage f;
  Bytes.set_int64_le (Frame_store.data f) off v;
  t.fault

(* Little-endian 63-bit load: equals [Int64.to_int (get_i64 ...)] (the
   top bit is dropped by [lsl]'s modular semantics), written out byte by
   byte so no intermediate [int64] is boxed. *)
let get_int t ~vpage ~off =
  check t;
  bounds_check t ~off ~len:8;
  note_read t vpage;
  match resolve_node t.top vpage with
  | exception Not_found -> 0
  | f ->
    let b = Frame_store.data f in
    Char.code (Bytes.unsafe_get b off)
    lor (Char.code (Bytes.unsafe_get b (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get b (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (off + 3)) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (off + 4)) lsl 32)
    lor (Char.code (Bytes.unsafe_get b (off + 5)) lsl 40)
    lor (Char.code (Bytes.unsafe_get b (off + 6)) lsl 48)
    lor (Char.code (Bytes.unsafe_get b (off + 7)) lsl 56)

let set_int t ~vpage ~off v =
  check t;
  bounds_check t ~off ~len:8;
  t.writes <- t.writes + 1;
  let f = prepare_write t vpage in
  note_write t vpage f;
  let b = Frame_store.data f in
  Bytes.unsafe_set b off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (off + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
  Bytes.unsafe_set b (off + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
  Bytes.unsafe_set b (off + 3) (Char.unsafe_chr ((v asr 24) land 0xff));
  Bytes.unsafe_set b (off + 4) (Char.unsafe_chr ((v asr 32) land 0xff));
  Bytes.unsafe_set b (off + 5) (Char.unsafe_chr ((v asr 40) land 0xff));
  Bytes.unsafe_set b (off + 6) (Char.unsafe_chr ((v asr 48) land 0xff));
  Bytes.unsafe_set b (off + 7) (Char.unsafe_chr ((v asr 56) land 0xff));
  t.fault

(* Fault-only probe: privatise or materialise [vpage] without reading or
   changing its contents. Counts a write (and returns [true], so the
   caller charges the copy) only when a copy-on-write fault is actually
   serviced; a page that is already private is a no-op apart from the
   access log, and an unmapped page is materialised for free (zero-fill
   costs nothing in the model). *)
let touch_page t ~vpage =
  check t;
  compact t;
  match Hashtbl.find t.top.frames vpage with
  | f ->
    note_write t vpage f;
    false
  | exception Not_found ->
    t.fault <- false;
    let f = prepare_slow t vpage in
    note_write t vpage f;
    if t.fault then t.writes <- t.writes + 1;
    t.fault

(* ------------------------------------------------------------------ *)

(* Free a map's hold on [node]: its frames go back to the store and the
   layer below loses a dependent (recursively, when it was the last). *)
let rec free_node store node =
  Hashtbl.iter (fun _ f -> Frame_store.decref store f) node.frames;
  Hashtbl.reset node.frames;
  match node.base with
  | Some b ->
    remove_dep b node;
    if b.deps = [] then free_node store b
  | None -> ()

let release t =
  if not t.released then begin
    free_node t.store t.top;
    t.top <- fresh_top None;
    t.mapped <- 0;
    t.released <- true
  end

let released t = t.released

let absorb ~parent ~child =
  check parent;
  check child;
  (* Drop the parent's chain and transplant the child's overlay wholesale:
     O(child dirty pages), not O(mapped). *)
  free_node parent.store parent.top;
  parent.top <- child.top;
  parent.mapped <- child.mapped;
  parent.cow_copies <- parent.cow_copies + child.cow_copies;
  parent.writes <- parent.writes + child.writes;
  parent.reads <- parent.reads + child.reads;
  (* The surviving timeline inherits the winner's access history; the
     child keeps its own copy for post-mortem analysis. *)
  Hashtbl.iter (fun k () -> Hashtbl.replace parent.reads_log k ()) child.reads_log;
  Hashtbl.iter (fun k v -> Hashtbl.replace parent.writes_log k v) child.writes_log;
  child.top <- fresh_top None;
  child.mapped <- 0;
  child.released <- true;
  compact parent

let cow_copies t = t.cow_copies
let writes t = t.writes
let reads t = t.reads

let set_tracking t b = t.track <- b
let tracking t = t.track

(* Deliberately usable after [release]: eliminated siblings are audited
   through these logs. *)
let read_log t =
  Hashtbl.fold (fun vpage () acc -> vpage :: acc) t.reads_log []
  |> List.sort compare

let write_log t =
  Hashtbl.fold (fun vpage fid acc -> (vpage, fid) :: acc) t.writes_log []
  |> List.sort compare

let mapped_vpages t =
  check t;
  fold_resolved t (fun vp _ _ acc -> vp :: acc) [] |> List.sort compare

let frame_id t ~vpage =
  check t;
  Option.map Frame_store.id (resolve_opt t vpage)

(* Stat-neutral by design: auditing a map must not perturb the access
   counters and logs the analysis layer is about to read (the observer
   effect the old [read]-based implementation had). Frames are compared by
   physical identity first — only valid within one store — and byte-wise
   otherwise, with unmapped pages standing for the shared zero page. *)
let snapshot_equal a b =
  check a;
  check b;
  let ps = page_size a in
  if ps <> page_size b then false
  else begin
    let pages = Hashtbl.create 64 in
    let add t =
      let rec go node =
        Hashtbl.iter (fun v _ -> Hashtbl.replace pages v ()) node.frames;
        match node.base with Some base -> go base | None -> ()
      in
      go t.top
    in
    add a;
    add b;
    let same_store = a.store == b.store in
    Hashtbl.fold
      (fun vpage () acc ->
        acc
        &&
        match (resolve_opt a vpage, resolve_opt b vpage) with
        | None, None -> true
        | Some fa, Some fb ->
          (same_store && fa == fb)
          || Bytes.equal (Frame_store.data fa) (Frame_store.data fb)
        | Some f, None | None, Some f ->
          Bytes.equal (Frame_store.data f) (Frame_store.zero_page a.store))
      pages true
  end
