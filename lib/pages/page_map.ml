type t = {
  store : Frame_store.t;
  mutable table : (int, Frame_store.frame) Hashtbl.t;
  mutable cow_copies : int;
  mutable writes : int;
  mutable reads : int;
  mutable released : bool;
  (* Access logs survive release so that the analysis layer can audit the
     page behaviour of eliminated processes post mortem. *)
  mutable track : bool;
  reads_log : (int, unit) Hashtbl.t;  (* vpage touched by a read *)
  writes_log : (int, int) Hashtbl.t;  (* vpage -> id of the frame written *)
}

let create store =
  { store; table = Hashtbl.create 64; cow_copies = 0; writes = 0; reads = 0;
    released = false; track = false; reads_log = Hashtbl.create 8;
    writes_log = Hashtbl.create 8 }

let store t = t.store
let page_size t = Frame_store.page_size t.store

let check t = if t.released then invalid_arg "Page_map: use after release"

let fork parent =
  check parent;
  let table = Hashtbl.create (Hashtbl.length parent.table) in
  Hashtbl.iter
    (fun vpage frame ->
      Frame_store.incref frame;
      Hashtbl.replace table vpage frame)
    parent.table;
  { store = parent.store; table; cow_copies = 0; writes = 0; reads = 0;
    released = false; track = parent.track; reads_log = Hashtbl.create 8;
    writes_log = Hashtbl.create 8 }

let mapped_pages t =
  check t;
  Hashtbl.length t.table

let private_pages t =
  check t;
  Hashtbl.fold
    (fun _ f acc -> if Frame_store.refcount f = 1 then acc + 1 else acc)
    t.table 0

let shared_pages t = mapped_pages t - private_pages t

let bounds_check t ~off ~len =
  let ps = page_size t in
  if off < 0 || len < 0 || off + len > ps then
    invalid_arg "Page_map: access crosses page boundary"

let read t ~vpage ~off ~len =
  check t;
  bounds_check t ~off ~len;
  t.reads <- t.reads + 1;
  if t.track then Hashtbl.replace t.reads_log vpage ();
  match Hashtbl.find_opt t.table vpage with
  | None -> Bytes.make len '\000'
  | Some f -> Bytes.sub (Frame_store.data f) off len

let write t ~vpage ~off ~src ~copied =
  check t;
  let len = Bytes.length src in
  bounds_check t ~off ~len;
  t.writes <- t.writes + 1;
  let frame =
    match Hashtbl.find_opt t.table vpage with
    | None ->
      let f = Frame_store.alloc t.store in
      Hashtbl.replace t.table vpage f;
      f
    | Some f when Frame_store.refcount f > 1 ->
      (* Copy-on-write fault: privatise the frame before mutating. *)
      let f' = Frame_store.alloc_copy t.store f in
      Frame_store.decref t.store f;
      Hashtbl.replace t.table vpage f';
      t.cow_copies <- t.cow_copies + 1;
      copied := true;
      f'
    | Some f -> f
  in
  if t.track then Hashtbl.replace t.writes_log vpage (Frame_store.id frame);
  Bytes.blit src 0 (Frame_store.data frame) off len

let release t =
  if not t.released then begin
    Hashtbl.iter (fun _ f -> Frame_store.decref t.store f) t.table;
    Hashtbl.reset t.table;
    t.released <- true
  end

let released t = t.released

let absorb ~parent ~child =
  check parent;
  check child;
  Hashtbl.iter (fun _ f -> Frame_store.decref parent.store f) parent.table;
  parent.table <- child.table;
  parent.cow_copies <- parent.cow_copies + child.cow_copies;
  parent.writes <- parent.writes + child.writes;
  parent.reads <- parent.reads + child.reads;
  (* The surviving timeline inherits the winner's access history; the
     child keeps its own copy for post-mortem analysis. *)
  Hashtbl.iter (fun k () -> Hashtbl.replace parent.reads_log k ()) child.reads_log;
  Hashtbl.iter (fun k v -> Hashtbl.replace parent.writes_log k v) child.writes_log;
  child.table <- Hashtbl.create 1;
  child.released <- true

let cow_copies t = t.cow_copies
let writes t = t.writes
let reads t = t.reads

let set_tracking t b = t.track <- b
let tracking t = t.track

(* Deliberately usable after [release]: eliminated siblings are audited
   through these logs. *)
let read_log t =
  Hashtbl.fold (fun vpage () acc -> vpage :: acc) t.reads_log []
  |> List.sort compare

let write_log t =
  Hashtbl.fold (fun vpage fid acc -> (vpage, fid) :: acc) t.writes_log []
  |> List.sort compare

let mapped_vpages t =
  check t;
  Hashtbl.fold (fun vp _ acc -> vp :: acc) t.table [] |> List.sort compare

let frame_id t ~vpage =
  check t;
  Option.map Frame_store.id (Hashtbl.find_opt t.table vpage)

let snapshot_equal a b =
  check a;
  check b;
  let ps = page_size a in
  if ps <> page_size b then false
  else begin
    let pages = Hashtbl.create 64 in
    Hashtbl.iter (fun v _ -> Hashtbl.replace pages v ()) a.table;
    Hashtbl.iter (fun v _ -> Hashtbl.replace pages v ()) b.table;
    Hashtbl.fold
      (fun vpage () acc ->
        acc
        && Bytes.equal (read a ~vpage ~off:0 ~len:ps) (read b ~vpage ~off:0 ~len:ps))
      pages true
  end
