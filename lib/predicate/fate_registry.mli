(** The system-wide record of process fates.

    Predicates mention process identifiers; "we can update the value of
    these elements as processes change status" (section 3.3). The registry
    is where those status changes are recorded, so that predicates can be
    simplified lazily, and processes whose assumptions were falsified can be
    found and eliminated. *)

type t

val create : unit -> t

val fate : t -> Pid.t -> Predicate.fate option
(** [None] while the process is still undecided. *)

val record : t -> Pid.t -> Predicate.fate -> unit
(** Record a fate. Recording the same fate twice is a no-op; recording a
    {e different} fate for an already-decided pid raises [Invalid_argument]
    — fates are immutable, which is what makes the at-most-once
    synchronisation sound. *)

val normalize : t -> Predicate.t -> [ `Live of Predicate.t | `Dead ]
(** Simplify a predicate against every fate known to the registry. [`Dead]
    means some assumption was falsified: the holder's world no longer
    exists. [`Live p] carries the residual (possibly empty) predicate. *)

val decided : t -> int
(** Number of pids with a recorded fate. *)
