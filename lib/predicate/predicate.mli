(** Process predicates (paper, sections 3.3 and 3.4.2).

    A predicate records the assumptions under which a process executes, as
    two lists of process identifiers: processes it depends on {e completing
    successfully} and processes it depends on {e not completing}. Children
    inherit the parent's predicates; each spawned alternative additionally
    assumes that it completes and that its siblings do not ("sibling rivalry
    taken to its extreme"). Messages carry the sender's predicate, and
    receipt is decided by comparing it with the receiver's. *)

type t

val empty : t
(** No assumptions: the process's effects are unconditionally observable. *)

val make : must_complete:Pid.t list -> must_fail:Pid.t list -> t
(** Raises [Invalid_argument] if the two lists intersect (a logically
    impossible predicate). *)

val must_complete : t -> Pid.Set.t
val must_fail : t -> Pid.Set.t

val is_certain : t -> bool
(** [true] iff there are no unresolved assumptions. Only certain processes
    may interact with {e source} state (section 3.4.2). *)

val cardinal : t -> int
(** Total number of assumptions. *)

val assume_completes : t -> Pid.t -> t
(** Add the assumption that [pid] completes. Raises [Invalid_argument] if
    the predicate already assumes [pid] fails. *)

val assume_fails : t -> Pid.t -> t
(** Add the assumption that [pid] does not complete. Raises on the converse
    conflict. *)

val mem_completes : t -> Pid.t -> bool
val mem_fails : t -> Pid.t -> bool

val implies : t -> t -> bool
(** [implies r s]: every assumption of [s] is already an assumption of [r].
    This is the paper's "S is a subset of R" immediate-acceptance test (the
    receiver's world view already agrees with the sender's). Physically
    equal arguments short-circuit; other pairs are memoised per domain by
    interned id, so the per-message cost is amortised constant. *)

val conflicts : t -> t -> bool
(** [conflicts r s]: some process is assumed to complete by one side and to
    fail by the other. Such a message is ignored by the receiver. Memoised
    like {!implies}. *)

val conjoin : t -> t -> t
(** Union of assumptions. Raises [Invalid_argument] if the two conflict;
    callers should test {!conflicts} first. *)

val equal : t -> t -> bool
(** Constant time: predicates are hash-consed, so structural equality
    coincides with physical equality. *)

val compare : t -> t -> int
(** Structural (by pid sets), deliberately independent of interning order,
    so orderings derived from it are schedule-deterministic. *)

type fate = Completed | Failed
(** The eventual resolution of a process. *)

type resolution =
  | Unchanged  (** The resolved pid does not occur in the predicate. *)
  | Simplified of t
      (** The assumption about the pid held, and has been removed. *)
  | Falsified
      (** The assumption about the pid was wrong: the process holding this
          predicate lives in a dead world and must be eliminated. *)

val resolve : t -> pid:Pid.t -> fate:fate -> resolution
(** Incorporate the knowledge that [pid] met [fate]. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{+P1 +P2 -P3}] ([+] must complete, [-] must fail). *)

val to_string : t -> string
