type t = (Pid.t, Predicate.fate) Hashtbl.t

let create () : t = Hashtbl.create 64

let fate t pid = Hashtbl.find_opt t pid

let record t pid f =
  match Hashtbl.find_opt t pid with
  | None -> Hashtbl.replace t pid f
  | Some f' when f' = f -> ()
  | Some _ -> invalid_arg "Fate_registry.record: fate already decided"

let normalize t pred =
  (* Certain predicates (the overwhelmingly common case on the message
     path) and empty registries have nothing to resolve. *)
  if Predicate.is_certain pred || Hashtbl.length t = 0 then `Live pred
  else
  let step pid acc =
    match acc with
    | `Dead -> `Dead
    | `Live p -> (
      match Hashtbl.find_opt t pid with
      | None -> `Live p
      | Some f -> (
        match Predicate.resolve p ~pid ~fate:f with
        | Predicate.Unchanged -> `Live p
        | Predicate.Simplified p' -> `Live p'
        | Predicate.Falsified -> `Dead))
  in
  let pids =
    Pid.Set.union (Predicate.must_complete pred) (Predicate.must_fail pred)
  in
  Pid.Set.fold step pids (`Live pred)

let decided t = Hashtbl.length t
