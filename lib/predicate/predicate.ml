type t = { completes : Pid.Set.t; fails : Pid.Set.t }

let empty = { completes = Pid.Set.empty; fails = Pid.Set.empty }

let consistent t = Pid.Set.disjoint t.completes t.fails

let make ~must_complete ~must_fail =
  let t =
    {
      completes = Pid.Set.of_list must_complete;
      fails = Pid.Set.of_list must_fail;
    }
  in
  if not (consistent t) then invalid_arg "Predicate.make: inconsistent";
  t

let must_complete t = t.completes
let must_fail t = t.fails
let is_certain t = Pid.Set.is_empty t.completes && Pid.Set.is_empty t.fails
let cardinal t = Pid.Set.cardinal t.completes + Pid.Set.cardinal t.fails

let assume_completes t pid =
  if Pid.Set.mem pid t.fails then
    invalid_arg "Predicate.assume_completes: pid already assumed to fail";
  { t with completes = Pid.Set.add pid t.completes }

let assume_fails t pid =
  if Pid.Set.mem pid t.completes then
    invalid_arg "Predicate.assume_fails: pid already assumed to complete";
  { t with fails = Pid.Set.add pid t.fails }

let mem_completes t pid = Pid.Set.mem pid t.completes
let mem_fails t pid = Pid.Set.mem pid t.fails

let implies r s =
  Pid.Set.subset s.completes r.completes && Pid.Set.subset s.fails r.fails

let conflicts r s =
  (not (Pid.Set.disjoint r.completes s.fails))
  || not (Pid.Set.disjoint r.fails s.completes)

let conjoin r s =
  if conflicts r s then invalid_arg "Predicate.conjoin: conflicting predicates";
  {
    completes = Pid.Set.union r.completes s.completes;
    fails = Pid.Set.union r.fails s.fails;
  }

let equal a b =
  Pid.Set.equal a.completes b.completes && Pid.Set.equal a.fails b.fails

let compare a b =
  let c = Pid.Set.compare a.completes b.completes in
  if c <> 0 then c else Pid.Set.compare a.fails b.fails

type fate = Completed | Failed

type resolution = Unchanged | Simplified of t | Falsified

let resolve t ~pid ~fate =
  match fate with
  | Completed ->
    if Pid.Set.mem pid t.fails then Falsified
    else if Pid.Set.mem pid t.completes then
      Simplified { t with completes = Pid.Set.remove pid t.completes }
    else Unchanged
  | Failed ->
    if Pid.Set.mem pid t.completes then Falsified
    else if Pid.Set.mem pid t.fails then
      Simplified { t with fails = Pid.Set.remove pid t.fails }
    else Unchanged

let pp ppf t =
  let items =
    List.map (fun p -> "+" ^ Pid.to_string p) (Pid.Set.elements t.completes)
    @ List.map (fun p -> "-" ^ Pid.to_string p) (Pid.Set.elements t.fails)
  in
  Format.fprintf ppf "{%s}" (String.concat " " items)

let to_string t = Format.asprintf "%a" pp t
