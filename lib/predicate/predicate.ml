(* Predicates are hash-consed: every value is interned in a global table,
   so structurally equal predicates are physically equal and carry one
   globally unique [id]. The engine compares predicates on every message
   delivery; interning turns those comparisons into pointer equality in
   the common case and lets [implies]/[conflicts] memoise on id pairs.

   Determinism contract: intern ids depend on allocation order and so may
   differ between runs and domains — they must never influence anything
   observable. [equal] is id-based (sound because ids are unique per
   structure), but [compare] remains structural so that any ordering
   derived from it is schedule-independent. *)

type t = { id : int; completes : Pid.Set.t; fails : Pid.Set.t }

module Intern_key = struct
  type t = Pid.Set.t * Pid.Set.t

  let equal (c1, f1) (c2, f2) = Pid.Set.equal c1 c2 && Pid.Set.equal f1 f2

  (* Fold over the elements: the polymorphic hash would walk the balanced
     tree, whose shape is not canonical for a given element set. *)
  let hash (c, f) =
    let step p h = (h * 33) lxor Pid.to_int p in
    let h = Pid.Set.fold step c 0x1505 in
    (Pid.Set.fold step f (h lxor 0x9e3779b9)) land max_int
end

module Intern_table = Hashtbl.Make (Intern_key)

(* Engines running in sibling domains (parallel sweeps) share the table;
   the lock is uncontended in single-domain runs. *)
let intern_lock = Mutex.create ()
let intern_table : t Intern_table.t = Intern_table.create 256
let next_id = ref 0

let intern completes fails =
  let key = (completes, fails) in
  Mutex.lock intern_lock;
  let r =
    match Intern_table.find_opt intern_table key with
    | Some t -> t
    | None ->
      let t = { id = !next_id; completes; fails } in
      incr next_id;
      Intern_table.add intern_table key t;
      t
  in
  Mutex.unlock intern_lock;
  r

let empty = intern Pid.Set.empty Pid.Set.empty

let consistent ~completes ~fails = Pid.Set.disjoint completes fails

let make ~must_complete ~must_fail =
  let completes = Pid.Set.of_list must_complete in
  let fails = Pid.Set.of_list must_fail in
  if not (consistent ~completes ~fails) then
    invalid_arg "Predicate.make: inconsistent";
  intern completes fails

let must_complete t = t.completes
let must_fail t = t.fails
let is_certain t = t == empty
let cardinal t = Pid.Set.cardinal t.completes + Pid.Set.cardinal t.fails

let assume_completes t pid =
  if Pid.Set.mem pid t.fails then
    invalid_arg "Predicate.assume_completes: pid already assumed to fail";
  intern (Pid.Set.add pid t.completes) t.fails

let assume_fails t pid =
  if Pid.Set.mem pid t.completes then
    invalid_arg "Predicate.assume_fails: pid already assumed to complete";
  intern t.completes (Pid.Set.add pid t.fails)

let mem_completes t pid = Pid.Set.mem pid t.completes
let mem_fails t pid = Pid.Set.mem pid t.fails

(* ------------------------------------------------------------------ *)
(* Memoised binary tests. The cache key packs both interned ids into one
   immediate int (31 bits each); predicates with larger ids — never seen
   in practice — skip the cache. Caches are domain-local, so no lock is
   taken on the hot path, and bounded. *)

let memo_limit = 32768
let id_limit = 0x4000_0000

type caches = { implies_c : (int, bool) Hashtbl.t; conflicts_c : (int, bool) Hashtbl.t }

let caches_key =
  Domain.DLS.new_key (fun () ->
      { implies_c = Hashtbl.create 1024; conflicts_c = Hashtbl.create 1024 })

let memo cache k compute =
  match Hashtbl.find cache k with
  | v -> v
  | exception Not_found ->
    if Hashtbl.length cache >= memo_limit then Hashtbl.reset cache;
    let v = compute () in
    Hashtbl.add cache k v;
    v

let implies r s =
  (* Physical fast path: every predicate implies itself, and the certain
     predicate is implied by everything. *)
  if r == s || s == empty then true
  else if r.id < id_limit && s.id < id_limit then
    memo (Domain.DLS.get caches_key).implies_c
      ((r.id lsl 31) lor s.id)
      (fun () ->
        Pid.Set.subset s.completes r.completes && Pid.Set.subset s.fails r.fails)
  else Pid.Set.subset s.completes r.completes && Pid.Set.subset s.fails r.fails

let conflicts r s =
  (* A predicate is internally consistent, so it cannot conflict with
     itself; the certain predicate conflicts with nothing. *)
  if r == s || r == empty || s == empty then false
  else if r.id < id_limit && s.id < id_limit then
    memo (Domain.DLS.get caches_key).conflicts_c
      ((r.id lsl 31) lor s.id)
      (fun () ->
        (not (Pid.Set.disjoint r.completes s.fails))
        || not (Pid.Set.disjoint r.fails s.completes))
  else
    (not (Pid.Set.disjoint r.completes s.fails))
    || not (Pid.Set.disjoint r.fails s.completes)

let conjoin r s =
  if conflicts r s then invalid_arg "Predicate.conjoin: conflicting predicates";
  if r == s || s == empty then r
  else if r == empty then s
  else intern (Pid.Set.union r.completes s.completes) (Pid.Set.union r.fails s.fails)

(* Interning makes structural equality coincide with id equality. *)
let equal a b = a == b || a.id = b.id

let compare a b =
  let c = Pid.Set.compare a.completes b.completes in
  if c <> 0 then c else Pid.Set.compare a.fails b.fails

type fate = Completed | Failed

type resolution = Unchanged | Simplified of t | Falsified

let resolve t ~pid ~fate =
  match fate with
  | Completed ->
    if Pid.Set.mem pid t.fails then Falsified
    else if Pid.Set.mem pid t.completes then
      Simplified (intern (Pid.Set.remove pid t.completes) t.fails)
    else Unchanged
  | Failed ->
    if Pid.Set.mem pid t.completes then Falsified
    else if Pid.Set.mem pid t.fails then
      Simplified (intern t.completes (Pid.Set.remove pid t.fails))
    else Unchanged

let pp ppf t =
  let items =
    List.map (fun p -> "+" ^ Pid.to_string p) (Pid.Set.elements t.completes)
    @ List.map (fun p -> "-" ^ Pid.to_string p) (Pid.Set.elements t.fails)
  in
  Format.fprintf ppf "{%s}" (String.concat " " items)

let to_string t = Format.asprintf "%a" pp t
