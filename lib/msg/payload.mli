(** Message payloads.

    A closed data vocabulary rather than arbitrary OCaml values: payloads
    must be comparable (for tests), printable (for traces), and sizeable
    (message cost in the cost model depends on payload bytes). Keeping the
    type closed is also what makes the runtime's deterministic-replay
    cloning of receivers sound — logged receive results are plain data. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

val size_bytes : t -> int
(** Wire-size estimate used by {!Cost_model.message_cost}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Convenience constructors and partial projections (raising
    [Invalid_argument] on shape mismatch, for use in tests and examples
    where the protocol fixes the shape). *)

val int : int -> t
val str : string -> t
val pair : t -> t -> t
val get_int : t -> int
val get_str : t -> string
val get_pair : t -> t * t
