(** Message payloads.

    A closed data vocabulary rather than arbitrary OCaml values: payloads
    must be comparable (for tests), printable (for traces), and sizeable
    (message cost in the cost model depends on payload bytes). Keeping the
    type closed is also what makes the runtime's deterministic-replay
    cloning of receivers sound — logged receive results are plain data. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

val size_bytes : t -> int
(** Wire-size estimate used by {!Cost_model.message_cost}. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Convenience constructors and partial projections (raising
    [Invalid_argument] on shape mismatch, for use in tests and examples
    where the protocol fixes the shape). *)

(** {2 In-place binary codec}

    The ring-buffer message frames serialise payloads directly into
    preallocated slot buffers with this codec; a payload that does not fit
    the slot takes the frame's spill path instead. Encoding an [Int] — the
    common scalar case — is allocation-free; decoding allocates exactly the
    payload value returned. *)

val encoded_size : t -> int
(** Exact number of bytes {!encode_into} will write. *)

val encode_into : t -> buf:Bytes.t -> pos:int -> int option
(** [encode_into t ~buf ~pos] writes [t] at [pos] and returns the position
    one past the encoding, or [None] if it would not fit in [buf] (the
    caller's spill path). *)

val decode_from : buf:Bytes.t -> pos:int -> t * int
(** Inverse of {!encode_into}: the decoded payload and the position one
    past it. Raises [Invalid_argument] on a corrupt buffer. *)

val int : int -> t
val str : string -> t
val pair : t -> t -> t
val get_int : t -> int
val get_str : t -> string
val get_pair : t -> t * t
