type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

let rec size_bytes = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s
  | Pair (a, b) -> 2 + size_bytes a + size_bytes b
  | List l -> 4 + List.fold_left (fun acc x -> acc + size_bytes x) 0 l

let equal = ( = )
let compare = Stdlib.compare

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List l ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      l

let to_string t = Format.asprintf "%a" pp t

let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)

let get_int = function Int i -> i | _ -> invalid_arg "Payload.get_int"
let get_str = function Str s -> s | _ -> invalid_arg "Payload.get_str"
let get_pair = function Pair (a, b) -> (a, b) | _ -> invalid_arg "Payload.get_pair"
