type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Pair of t * t
  | List of t list

let rec size_bytes = function
  | Unit -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | Str s -> 4 + String.length s
  | Pair (a, b) -> 2 + size_bytes a + size_bytes b
  | List l -> 4 + List.fold_left (fun acc x -> acc + size_bytes x) 0 l

let equal = ( = )
let compare = Stdlib.compare

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int i -> Format.fprintf ppf "%d" i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List l ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      l

let to_string t = Format.asprintf "%a" pp t

let int i = Int i
let str s = Str s
let pair a b = Pair (a, b)

(* ------------------------------------------------------------------ *)
(* In-place binary codec, used by the ring-buffer message frames to
   serialise payloads into preallocated slot buffers. The format is a
   one-byte constructor tag followed by the constructor's data:

     0 Unit | 1 Bool false | 2 Bool true | 3 Int (8B LE) | 4 Float (8B LE)
     5 Str (4B LE length, bytes) | 6 Pair (a, b) | 7 List (4B LE count, items)

   Integers are written byte-by-byte rather than through
   [Bytes.set_int64_le] so that encoding an [Int] — the hot scalar case —
   allocates nothing (no boxed int64 intermediary). *)

let rec encoded_size = function
  | Unit | Bool _ -> 1
  | Int _ | Float _ -> 9
  | Str s -> 5 + String.length s
  | Pair (a, b) -> 1 + encoded_size a + encoded_size b
  | List l -> 5 + List.fold_left (fun acc x -> acc + encoded_size x) 0 l

let put_int63 buf pos v =
  (* Little-endian, alloc-free: OCaml ints are 63-bit, the top byte
     carries the sign through the arithmetic shift on decode. *)
  Bytes.unsafe_set buf pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set buf (pos + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
  Bytes.unsafe_set buf (pos + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
  Bytes.unsafe_set buf (pos + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
  Bytes.unsafe_set buf (pos + 7) (Char.unsafe_chr ((v asr 56) land 0xff))

let get_int63 buf pos =
  let b i = Char.code (Bytes.unsafe_get buf (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) lor (b 4 lsl 32)
  lor (b 5 lsl 40) lor (b 6 lsl 48) lor (b 7 lsl 56)

let put_u32 buf pos v =
  Bytes.unsafe_set buf pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set buf (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_u32 buf pos =
  let b i = Char.code (Bytes.unsafe_get buf (pos + i)) in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let rec encode_at buf pos = function
  | Unit ->
    Bytes.unsafe_set buf pos '\000';
    pos + 1
  | Bool false ->
    Bytes.unsafe_set buf pos '\001';
    pos + 1
  | Bool true ->
    Bytes.unsafe_set buf pos '\002';
    pos + 1
  | Int i ->
    Bytes.unsafe_set buf pos '\003';
    put_int63 buf (pos + 1) i;
    pos + 9
  | Float f ->
    Bytes.unsafe_set buf pos '\004';
    Bytes.set_int64_le buf (pos + 1) (Int64.bits_of_float f);
    pos + 9
  | Str s ->
    let n = String.length s in
    Bytes.unsafe_set buf pos '\005';
    put_u32 buf (pos + 1) n;
    Bytes.blit_string s 0 buf (pos + 5) n;
    pos + 5 + n
  | Pair (a, b) ->
    Bytes.unsafe_set buf pos '\006';
    encode_at buf (encode_at buf (pos + 1) a) b
  | List l ->
    Bytes.unsafe_set buf pos '\007';
    put_u32 buf (pos + 1) (List.length l);
    List.fold_left (fun p x -> encode_at buf p x) (pos + 5) l

let encode_into t ~buf ~pos =
  let n = encoded_size t in
  if pos < 0 || pos + n > Bytes.length buf then None
  else Some (encode_at buf pos t)

let payload_unit = Unit
let payload_false = Bool false
let payload_true = Bool true

let rec decode_at buf pos =
  match Bytes.get buf pos with
  | '\000' -> (payload_unit, pos + 1)
  | '\001' -> (payload_false, pos + 1)
  | '\002' -> (payload_true, pos + 1)
  | '\003' -> (Int (get_int63 buf (pos + 1)), pos + 9)
  | '\004' ->
    (Float (Int64.float_of_bits (Bytes.get_int64_le buf (pos + 1))), pos + 9)
  | '\005' ->
    let n = get_u32 buf (pos + 1) in
    (Str (Bytes.sub_string buf (pos + 5) n), pos + 5 + n)
  | '\006' ->
    let a, p = decode_at buf (pos + 1) in
    let b, p = decode_at buf p in
    (Pair (a, b), p)
  | '\007' ->
    let n = get_u32 buf (pos + 1) in
    let rec items acc p k =
      if k = 0 then (List (List.rev acc), p)
      else
        let x, p = decode_at buf p in
        items (x :: acc) p (k - 1)
    in
    items [] (pos + 5) n
  | c ->
    invalid_arg
      (Printf.sprintf "Payload.decode_from: bad constructor tag %d at %d"
         (Char.code c) pos)

let decode_from ~buf ~pos =
  if pos < 0 || pos >= Bytes.length buf then
    invalid_arg "Payload.decode_from: position out of range"
  else decode_at buf pos

let get_int = function Int i -> i | _ -> invalid_arg "Payload.get_int"
let get_str = function Str s -> s | _ -> invalid_arg "Payload.get_str"
let get_pair = function Pair (a, b) -> (a, b) | _ -> invalid_arg "Payload.get_pair"
