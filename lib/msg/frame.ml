(* A preallocated message frame: one slot of a ring-buffer mailbox.

   The messaging fast path never builds a [Message.t]: a send serialises
   its payload in place into the destination slot's fixed buffer with the
   {!Payload} codec and stamps the header fields; a receive decodes the
   slot back into a payload only at the moment of acceptance. Payloads too
   large for the slot buffer take the spill path: the frame holds the
   (immutable) payload value itself. Either way the payload is frozen at
   send time — the encoded bytes are a snapshot, and a spilled payload
   cannot be mutated because {!Payload.t} is immutable data.

   Frames are mutable and reused: once a slot is consumed it will be
   overwritten by a later send. Every delivery therefore deep-copies the
   frame ([copy_into]) into the destination ring — including duplicate
   injections, which would otherwise alias their original's slot and read
   corrupted bytes after the original is consumed and the slot recycled. *)

type t = {
  mutable occupied : bool;
  mutable sender : Pid.t;
  mutable dest : Pid.t;  (* logical destination (pre-world-fanout) *)
  mutable predicate : Predicate.t;
  mutable tag : string;
  mutable seq : int;  (* per-sender sequence number *)
  mutable uid : int;  (* per-engine send identity; duplicates share it *)
  mutable size : int;  (* wire size, frozen at send *)
  mutable len : int;  (* encoded bytes used in [buf]; -1 = spilled *)
  mutable spill : Payload.t;  (* [Payload.Unit] unless [len = -1] *)
  mutable cached : Message.t option;
      (* the materialised message, set at send when tracing (or a fault
         hook) needs one, so every trace event for this send shares one
         message value exactly as the heap-allocated path did *)
  buf : Bytes.t;
}

let slot_bytes = 64

let nil_pid = Pid.of_int (-1)

let create () =
  {
    occupied = false;
    sender = nil_pid;
    dest = nil_pid;
    predicate = Predicate.empty;
    tag = "";
    seq = 0;
    uid = 0;
    size = 0;
    len = 0;
    spill = Payload.Unit;
    cached = None;
    buf = Bytes.create slot_bytes;
  }

(* A single shared never-occupied frame: ring slots that currently hold
   no pooled frame point at it, so slot arrays can grow without creating
   a frame (and its buffer) per slot. Never filled. *)
let dummy = create ()

let occupied fr = fr.occupied
let sender fr = fr.sender
let dest fr = fr.dest
let predicate fr = fr.predicate
let tag fr = fr.tag
let seq fr = fr.seq
let uid fr = fr.uid
let size fr = fr.size
let spilled fr = fr.len < 0
let cached fr = fr.cached

let fill fr ~sender ~dest ~predicate ~tag ~seq ~uid ~size ~cached payload =
  fr.occupied <- true;
  fr.sender <- sender;
  fr.dest <- dest;
  fr.predicate <- predicate;
  fr.tag <- tag;
  fr.seq <- seq;
  fr.uid <- uid;
  fr.size <- size;
  fr.cached <- cached;
  match Payload.encode_into payload ~buf:fr.buf ~pos:0 with
  | Some len ->
    fr.len <- len;
    fr.spill <- Payload.Unit
  | None ->
    fr.len <- -1;
    fr.spill <- payload

let copy_into src dst =
  dst.occupied <- true;
  dst.sender <- src.sender;
  dst.dest <- src.dest;
  dst.predicate <- src.predicate;
  dst.tag <- src.tag;
  dst.seq <- src.seq;
  dst.uid <- src.uid;
  dst.size <- src.size;
  dst.cached <- src.cached;
  dst.len <- src.len;
  if src.len >= 0 then begin
    Bytes.blit src.buf 0 dst.buf 0 src.len;
    dst.spill <- Payload.Unit
  end
  else dst.spill <- src.spill

let payload fr =
  if fr.len >= 0 then fst (Payload.decode_from ~buf:fr.buf ~pos:0) else fr.spill

let message fr =
  match fr.cached with
  | Some m -> m
  | None ->
    {
      Message.sender = fr.sender;
      dest = fr.dest;
      predicate = fr.predicate;
      payload = payload fr;
      tag = fr.tag;
      seq = fr.seq;
      size = fr.size;
    }

let clear fr =
  (* Drop every heap reference so a tombstoned slot cannot retain a dead
     world's predicate, a large spilled payload, or a traced message. *)
  fr.occupied <- false;
  fr.predicate <- Predicate.empty;
  fr.tag <- "";
  fr.spill <- Payload.Unit;
  fr.cached <- None
