type t = {
  sender : Pid.t;
  dest : Pid.t;
  predicate : Predicate.t;
  payload : Payload.t;
  tag : string;
  seq : int;
  size : int;
}

let header_bytes = 32

let make ~sender ~dest ~predicate ?(tag = "") ~seq payload =
  { sender; dest; predicate; payload; tag; seq;
    size = header_bytes + Payload.size_bytes payload }

let size_bytes t = t.size

let pp ppf t =
  Format.fprintf ppf "%a->%a #%d %s%s%a %a" Pid.pp t.sender Pid.pp t.dest t.seq
    t.tag
    (if t.tag = "" then "" else " ")
    Predicate.pp t.predicate Payload.pp t.payload
