(** A preallocated message frame: one slot of a ring-buffer mailbox.

    The messaging fast path serialises payloads in place into a fixed
    per-slot buffer ({!slot_bytes} wide) with the {!Payload} codec instead
    of heap-allocating a {!Message.t} per send. Payloads that do not fit
    take the spill path: the frame keeps the immutable payload value.
    Either way the payload is frozen at send time.

    Frames are mutable and recycled, so anything that must outlive the
    slot (a delivery, a duplicate injection) deep-copies with
    {!copy_into}. *)

type t

val slot_bytes : int
(** Fixed size of each slot's inline payload buffer. *)

val create : unit -> t
(** A fresh, unoccupied frame with its own buffer. *)

val dummy : t
(** A single shared, never-occupied placeholder frame. Ring slots that
    hold no pooled frame point at it so slot arrays stay one word per
    slot. Must never be filled. *)

val occupied : t -> bool
val sender : t -> Pid.t
val dest : t -> Pid.t
val predicate : t -> Predicate.t
val tag : t -> string
val seq : t -> int

val uid : t -> int
(** Engine-global send identity. Deliveries and duplicates of one send
    share a uid; world-split mailbox filtering keys on it. *)

val size : t -> int
(** Wire size of the message, frozen at send time. *)

val spilled : t -> bool
(** True when the payload did not fit inline and is held boxed. *)

val cached : t -> Message.t option

val fill :
  t ->
  sender:Pid.t ->
  dest:Pid.t ->
  predicate:Predicate.t ->
  tag:string ->
  seq:int ->
  uid:int ->
  size:int ->
  cached:Message.t option ->
  Payload.t ->
  unit
(** Stamp the header fields and serialise the payload into the slot
    (spilling if oversized). [cached] carries the materialised message
    when tracing or fault hooks need one, so every event for this send
    shares a single message value. *)

val copy_into : t -> t -> unit
(** [copy_into src dst] deep-copies [src] into [dst]: header fields plus
    the encoded payload bytes. After the copy, mutating or recycling
    [src]'s slot cannot affect [dst]. *)

val payload : t -> Payload.t
(** Decode the payload (or return the spilled value). *)

val message : t -> Message.t
(** Materialise a {!Message.t} view: the cached one if present, otherwise
    a fresh record decoded from the slot. *)

val clear : t -> unit
(** Mark unoccupied and drop every heap reference the slot holds. *)
