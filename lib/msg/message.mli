(** Interprocess messages.

    "A message from Pm to Pj has the following three part structure: (1) a
    sending predicate, encapsulating the assumptions under which the sender
    sends the message; (2) the data comprising the message contents; (3)
    some control information, e.g., sender id, destination id" (section
    3.4.1). *)

type t = {
  sender : Pid.t;
  dest : Pid.t;
  predicate : Predicate.t;  (** The sender's assumptions at send time. *)
  payload : Payload.t;
  tag : string;  (** Protocol tag, part of the control information. *)
  seq : int;  (** Per-sender sequence number: IPC is reliable and FIFO. *)
  size : int;  (** Wire size, computed once at construction. *)
}

val header_bytes : int
(** Fixed per-message header estimate added to the payload size. Exposed
    so the engine's ring-buffer send path — which builds message records
    directly around preallocated frames — prices messages identically to
    {!make}. *)

val make :
  sender:Pid.t ->
  dest:Pid.t ->
  predicate:Predicate.t ->
  ?tag:string ->
  seq:int ->
  Payload.t ->
  t

val size_bytes : t -> int
(** Payload size plus a fixed header estimate, for message costing.
    Constant time: the payload tree is measured once, in {!make}. *)

val pp : Format.formatter -> t -> unit
