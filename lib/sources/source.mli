(** Source devices: non-idempotent state.

    The paper divides system state by idempotence (section 3.1): operations
    on {e sink} state (pages) can be retried invisibly, while operations on
    {e sources} — "for definiteness, consider ... a teletype device" —
    cannot. "While a process has predicates which are unsatisfied, it is
    restricted from causing observable side-effects, and thus cannot
    interface with sources" (section 3.4.2).

    This module enforces that rule:

    - a {!write} by a {e certain} process is emitted immediately;
    - a write by a speculative process is buffered, and flushed in order
      when the process's predicates resolve in its favour, or discarded
      when its world dies — so losing alternatives leave no trace;
    - a {!read} consumes the device's input script {e once} per position
      and buffers the value, so re-reads by replayed world-clones observe
      the same datum ("idempotency of some source state can be forced
      through buffering", section 6). *)

type t

val create : Engine.t -> name:string -> t
val name : t -> string

val write : Engine.ctx -> t -> string -> unit
(** Emit [line] on the device, subject to predicate gating as described
    above. Buffered lines of one process flush atomically and in order. *)

val read : Engine.ctx -> t -> string
(** Read the next input line for this process. Each process (identified by
    its {e logical} pid, so world-clones share a history) has its own
    cursor; positions already consumed from the script are served from the
    idempotence buffer. Raises [End_of_file] when the script is
    exhausted. *)

val feed : t -> string list -> unit
(** Append lines to the device's input script. *)

val set_emission_hook :
  t -> (time:float -> pid:Pid.t -> line:string -> certain:bool -> unit) option ->
  unit
(** Install (or clear) an online emission observer: called the instant a
    line reaches the device, with the emitter and whether it was certain
    at that moment. The analysis layer's sanitizer watches for
    [certain = false] — an uncertain emission is a violation of the
    paper's source rule {e as it happens}, not just in the post-mortem
    {!emissions} audit. *)

val force_flush : t -> Pid.t -> unit
(** Flush [pid]'s buffered speculative lines {e now}, bypassing the
    predicate gate. Never called by the runtime: like {!Trace.replace},
    this exists so the analysis layer's fault-seeding tests can corrupt an
    execution on purpose (emitting while uncertain) and confirm both the
    sanitizer and the post-mortem checker catch it. *)

val output : t -> (float * Pid.t * string) list
(** Lines actually emitted, oldest first, with emission time and the
    process that (eventually) owned them. *)

val emissions : t -> (float * Pid.t * string * bool) list
(** Like {!output} but each line also carries whether its writer was
    {e certain} at the moment of emission. A [false] flag is a violation of
    the paper's source rule — the analysis layer's sources check looks for
    exactly that. *)

val pending : t -> (Pid.t * string list) list
(** Buffered lines of still-speculative writers. *)

val discarded : t -> int
(** Number of buffered lines dropped because their writer's world died. *)
