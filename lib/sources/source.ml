type t = {
  engine : Engine.t;
  name_ : string;
  mutable script : string list;  (* unconsumed input *)
  read_buffer : (int, string) Hashtbl.t;  (* position -> value, consumed once *)
  mutable next_pos : int;  (* next script position to materialise *)
  cursors : (Pid.t, int) Hashtbl.t;  (* logical pid -> next read position *)
  mutable out : (float * Pid.t * string * bool) list;
  (* emitted, newest first; the bool records whether the writer was certain
     at the moment of emission (the transparency audit checks it) *)
  buffers : (Pid.t, string list ref) Hashtbl.t;  (* speculative writes, newest first *)
  gated : (Pid.t, unit) Hashtbl.t;  (* pids with a resolution watcher armed *)
  mutable discarded_ : int;
  mutable emission_hook :
    (time:float -> pid:Pid.t -> line:string -> certain:bool -> unit) option;
}

let create engine ~name =
  {
    engine;
    name_ = name;
    script = [];
    read_buffer = Hashtbl.create 16;
    next_pos = 0;
    cursors = Hashtbl.create 16;
    out = [];
    buffers = Hashtbl.create 16;
    gated = Hashtbl.create 16;
    discarded_ = 0;
    emission_hook = None;
  }

let name t = t.name_
let set_emission_hook t f = t.emission_hook <- f

let emit t pid line =
  let certain = Engine.certain_of t.engine pid in
  let time = Engine.now t.engine in
  t.out <- (time, pid, line, certain) :: t.out;
  match t.emission_hook with
  | Some f -> f ~time ~pid ~line ~certain
  | None -> ()

let flush_pid t pid =
  match Hashtbl.find_opt t.buffers pid with
  | None -> ()
  | Some lines ->
    List.iter (emit t pid) (List.rev !lines);
    Hashtbl.remove t.buffers pid

let discard_pid t pid =
  match Hashtbl.find_opt t.buffers pid with
  | None -> ()
  | Some lines ->
    t.discarded_ <- t.discarded_ + List.length !lines;
    Hashtbl.remove t.buffers pid

let write ctx t line =
  let pid = Engine.self ctx in
  if Engine.is_certain ctx then begin
    (* Anything buffered earlier must precede this line. *)
    flush_pid t pid;
    emit t pid line
  end
  else begin
    (match Hashtbl.find_opt t.buffers pid with
    | Some lines -> lines := line :: !lines
    | None -> Hashtbl.replace t.buffers pid (ref [ line ]));
    if not (Hashtbl.mem t.gated pid) then begin
      Hashtbl.replace t.gated pid ();
      Engine.on_resolution (Engine.engine ctx) pid (function
        | `Certain -> flush_pid t pid
        | `Dead -> discard_pid t pid)
    end
  end

let read ctx t =
  let eng = Engine.engine ctx in
  let pid = Engine.self ctx in
  let logical = Option.value ~default:pid (Engine.logical_of eng pid) in
  let pos = Option.value ~default:0 (Hashtbl.find_opt t.cursors logical) in
  let value =
    match Hashtbl.find_opt t.read_buffer pos with
    | Some v -> v
    | None -> (
      (* Consume the script exactly once for this position. *)
      match t.script with
      | [] -> raise End_of_file
      | v :: rest ->
        t.script <- rest;
        assert (pos = t.next_pos);
        Hashtbl.replace t.read_buffer pos v;
        t.next_pos <- t.next_pos + 1;
        v)
  in
  Hashtbl.replace t.cursors logical (pos + 1);
  value

let feed t lines = t.script <- t.script @ lines

let force_flush t pid = flush_pid t pid

let output t = List.rev_map (fun (time, pid, line, _) -> (time, pid, line)) t.out
let emissions t = List.rev t.out

let pending t =
  Hashtbl.fold (fun pid lines acc -> (pid, List.rev !lines) :: acc) t.buffers []
  |> List.sort (fun (a, _) (b, _) -> Pid.compare a b)

let discarded t = t.discarded_
