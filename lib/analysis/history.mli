(** Structured views over an execution trace.

    The checkers in {!Invariants} ask questions like "how many [Sync_won]
    events does this pid have" or "what was this process's exit status";
    this module answers them from one pass over a {!Trace.t}, so that each
    checker reads like the invariant it verifies. *)

type t

val of_trace : Trace.t -> t

(** {2 Process identity} *)

val name_of : t -> Pid.t -> string option
(** Spawn-time name, if the pid was spawned inside the traced window. *)

val parent_of : t -> Pid.t -> Pid.t option

val spawned : t -> Pid.t list
(** All spawned pids, in spawn order. *)

(** {2 Exits} *)

(** Parsed form of the exit-status strings recorded by the engine. *)
type exit_class =
  | Ok_exit
  | Failed_exit of string
  | Crashed_exit of string
  | Eliminated_exit of string

val classify_exit : string -> exit_class
(** Raises [Invalid_argument] on a string the engine never produces. *)

val exits_of : t -> Pid.t -> string list
(** The raw statuses of every [Exited] event for the pid (a well-formed
    trace has at most one). *)

(** {2 Synchronisation and rendezvous} *)

val sync_wins : t -> (Pid.t * int) list
(** [(pid, alternative index)] of every [Sync_won] event, in order. *)

val sync_wins_epochs : t -> (Pid.t * int * int) list
(** [(pid, alternative index, epoch)] of every [Sync_won] event, in order.
    Epoch 0 is an unsupervised block; >= 1 an incarnation under coordinator
    recovery ({!Concurrent.run_supervised}). *)

val sync_lates : t -> (Pid.t * int) list
val absorbs : t -> (Pid.t * Pid.t) list
(** [(parent, child)] of every [Absorbed] event. *)

(** {2 Worlds} *)

val accepts : t -> (Pid.t * Predicate.t * Message.t) list
(** [(dest, dest predicate at acceptance, message)] of every [Accepted]
    event. *)

val fates : t -> (Pid.t * Predicate.fate) list
val kills : t -> (Pid.t * string) list
(** [(pid, reason)] of every [Killed] event (dead-world sweep kills; direct
    eliminations appear only as [Exited]). *)

val sent : t -> Message.t list

(** {2 Faults} *)

val injections : t -> (string * Pid.t option * Message.t option) list
(** [(kind, pid, msg)] of every [Injected] event: the fault campaign's
    footprint on this execution. *)

val degradations : t -> (Pid.t * string) list
(** [(parent, reason)] of every [Degraded] event (alt-block fell back to
    sequential execution). *)

val site_crashes : t -> string list
(** Sites that crashed ([Site_crashed] events), in order. *)

val partitions : t -> (string list * string list) list
(** [(left, right)] of every [Partitioned] event, in order. *)

val heals : t -> (string list * string list) list

val recoveries : t -> (Pid.t * Pid.t * int) list
(** [(failed coordinator, successor, new epoch)] of every [Recovered]
    event, in order. *)

val delivery_batches : t -> (Pid.t * Pid.t * int) list
(** [(sender, dest, count)] of every [Delivered_batch] event, in order: a
    digest of how the engine coalesced same-instant deliveries. Purely
    observational — the semantic record of each delivery is still its own
    [Delivered] / [Accepted] event — so no invariant keys on it. *)

val faulted : t -> bool
(** At least one injection took effect. Checkers use this to decide whether
    a failure outcome may be excused by the campaign. *)

val count_sent_tag : t -> tag:string -> int
val count_accept_tag : t -> tag:string -> dest_ok:(Pid.t -> bool) -> int
