let check_isolation eng ~children ~scenario ~policy ~seed =
  let viol detail =
    Report.violation Report.Isolation ~scenario ~policy ~seed detail
  in
  let logs =
    List.filter_map
      (fun pid ->
        match Engine.space_of eng pid with
        | None -> None
        | Some sp -> Some (pid, sp, Address_space.written_pages sp))
      children
  in
  let violations = ref [] in
  let rec over_pairs = function
    | [] -> ()
    | (pid_a, _, log_a) :: rest ->
      List.iter
        (fun (pid_b, _, log_b) ->
          List.iter
            (fun (vpage, fid) ->
              if List.mem (vpage, fid) log_b then
                violations :=
                  viol
                    (Format.asprintf
                       "siblings %a and %a both wrote frame %d of virtual \
                        page %d without copy-on-write privatisation"
                       Pid.pp pid_a Pid.pp pid_b fid vpage)
                  :: !violations)
            log_a)
        rest;
      over_pairs rest
  in
  over_pairs logs;
  List.rev !violations

let check_sources src ~scenario ~policy ~seed =
  List.filter_map
    (fun (time, pid, line, certain) ->
      if certain then None
      else
        Some
          (Report.violation Report.Sources ~scenario ~policy ~seed
             (Format.asprintf
                "device %S: speculative process %a emitted %S at t=%.6f \
                 while its predicates were unresolved"
                (Source.name src) Pid.pp pid line time)))
    (Source.emissions src)
