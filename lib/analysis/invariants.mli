(** The paper's invariants, checked against whole executions.

    Each checker consumes a finished run of {!Concurrent.run_toplevel} —
    engine, trace, report — and verifies one family of properties from
    Smith & Maguire's transparency argument:

    - {!check_at_most_once}: exactly one alternative wins the
      synchronisation, every other synchroniser is told it is too late,
      and the winner's state is absorbed exactly once (section 3.2);
    - {!check_transparency}: the surviving address space, result value and
      source output are identical to a fresh {e sequential} execution of
      the winning alternative alone (section 3);
    - {!check_world}: no process accepted a message whose sending predicate
      conflicts with its own, fates are immutable, and falsified worlds
      were eliminated (sections 3.3-3.4);
    - {!check_elimination}: every spawned alternative exits exactly once,
      only the winner succeeds, and synchronisation losers abort
      (section 3.2.1);
    - {!check_accounting}: the report's [wasted_cpu], [sync_messages] and
      [child_cow_copies] reconcile with the engine's CPU ledger, the
      message trace and the frame store (section 4).

    {!check_all} additionally runs {!Race.check_isolation} and
    {!Race.check_sources}. *)

(** A checkable workload: how to seed the parent's state and build the
    block's alternatives, deterministically from a seed. *)
type scenario = {
  sc_name : string;
  uses_source : bool;
  source_script : string list;  (** Input fed to the device, if any. *)
  prepare : Engine.t -> Address_space.t -> unit;
      (** Seed the parent's address space before the block runs. *)
  alts :
    Engine.t -> seed:int -> source:Source.t option -> int Alternative.t list;
      (** Build the alternatives. Must be deterministic in [seed] (use
          {!Rng}), so the transparency checker can re-execute the winner
          in a fresh engine. *)
}

(** One finished, checkable execution. *)
type run = {
  engine : Engine.t;  (** Quiescent after the block. *)
  space : Address_space.t;  (** The parent's (preserved) address space. *)
  source : Source.t option;
  report : int Concurrent.report;
  policy : Concurrent.policy;
  scenario : scenario;
  seed : int;
  alts_count : int;
  sanitizer : Sanitizer.t option;
      (** Present when the run executed with [~sanitize:true]: the online
          monitor that watched the execution, flags included. *)
}

val run_scenario :
  ?faults:(Engine.t -> unit) ->
  ?sanitize:bool ->
  ?shards:int ->
  scenario -> policy:Concurrent.policy -> seed:int -> run
(** Execute the scenario under the policy: fresh engine
    ({!Cost_model.att_3b2}), tracked parent space, block run to
    quiescence via {!Concurrent.run_toplevel}. [faults] (e.g.
    [Faultplan.install plan]) is applied to the fresh engine before
    anything runs, so an injection campaign covers the whole execution;
    the transparency checker's sequential reference runs are always
    fault-free. With [~sanitize:true] (default false) a {!Sanitizer} is
    attached before anything spawns and watches the whole execution
    online. *)

val sequential_reference :
  scenario ->
  seed:int ->
  indices:int list ->
  int Alt_block.outcome option * Address_space.t * Source.t option
(** Execute the scenario's alternatives whose indices appear in [indices]
    {e sequentially} (first-fit, {!Alt_block.run_first}) in a fresh,
    fault-free engine, and return the outcome together with the resulting
    address space and source device. This is the oracle the transparency
    checkers compare a concurrent execution against; {!Sitefuzz} reuses it
    for supervised (coordinator-recovery) runs. *)

val check_at_most_once : run -> Report.violation list
val check_transparency : run -> Report.violation list
val check_world : run -> Report.violation list
val check_elimination : run -> Report.violation list
val check_accounting : run -> Report.violation list

val check_all : run -> Report.violation list
(** All five checkers plus the {!Race} checkers, concatenated. *)

val run_checked :
  ?faults:(Engine.t -> unit) ->
  ?sanitize:bool ->
  ?shards:int ->
  scenario ->
  policy:Concurrent.policy ->
  seed:int ->
  run * Report.violation list
(** {!run_scenario} followed by {!check_all}. The checkers are
    fault-aware: fault-caused block failures and policy-sanctioned
    sequential degradations are excused, but a {e selected} result must
    satisfy every invariant — faults included. With [~sanitize:true] the
    online sanitizer watches the run and is then cross-checked against
    the post-mortem verdict ({!Sanitizer.crosscheck}); agreement adds
    nothing (clean sweeps stay byte-identical), divergence appends
    {!Report.Sanitizer} violations. *)

val default_scenarios : scenario list
(** [counters] (racing writers over shared pages), [guarded] (one closed
    guard, one failing body), [teletype] (source-device reads and gated
    writes), [all-fail] (every alternative fails). *)

val find_scenario : string -> scenario option
(** Look a default scenario up by [sc_name]. The serving layer resolves
    each request's scenario name through this. *)

val check_report :
  scenario:string ->
  policy:Concurrent.policy ->
  seed:int ->
  'a Concurrent.report ->
  Report.violation list
(** Audit one block report's self-consistency without a trace: winner
    membership and at-most-once shape of the outcome, spawn bookkeeping,
    non-negative cost counters, zero consensus messages under a local
    latch. A sound subset of the replay checkers, cheap enough to run on
    every served request (the serving engines keep trace recording off). *)

val check_supervised_report :
  scenario:string ->
  policy:Concurrent.policy ->
  seed:int ->
  'a Concurrent.supervised_report ->
  Report.violation list
(** {!check_report} on the inner report, plus the recovery bookkeeping:
    one incarnation per recovery plus the original, recoveries fenced to
    consecutive epochs (2, 3, ...), the answering incarnation the last
    one launched (a stale epoch answering through the fence is the
    supervised analogue of a double win), and a decided block names its
    final coordinator. The serving layer audits every [--faults] request
    with this — a [Recovered] verdict must be exactly as trustworthy as
    a [Served] one. *)

val policy_matrix : Concurrent.policy list
(** Every combination of elimination strategy (3) x synchronisation mode
    (local latch, 3-node consensus) x guard placement (4), local
    placement: 24 policies. *)

(** One cell of the sweep matrix. *)
type cell = {
  cell_scenario : scenario;
  cell_policy : Concurrent.policy;
  cell_seed : int;
}

val matrix_cells :
  ?seeds:int ->
  ?scenarios:scenario list ->
  ?policies:Concurrent.policy list ->
  unit ->
  cell array
(** The (scenario, policy, seed in [1..seeds]) matrix in canonical sweep
    order: scenarios outermost, then policies, then seeds (default seeds
    per cell: 5). *)

val run_cells :
  ?jobs:int -> ?sanitize:bool -> ?shards:int -> cell array ->
  (run * Report.violation list) array
(** {!run_checked} over every cell, fanned out across [jobs] domains
    (default 1) via the persistent {!Parallel.shared} pool. Each cell
    constructs its whole engine-world from scratch, so cells share no
    mutable state (the audit is documented in [invariants.ml]); results
    come back in cell order regardless of [jobs], so a parallel sweep is
    byte-for-byte identical to a sequential one. [shards] runs every
    cell's engine sharded; the run-level contract makes the reports
    byte-identical for any value. *)

val run_matrix :
  ?seeds:int ->
  ?scenarios:scenario list ->
  ?policies:Concurrent.policy list ->
  ?jobs:int ->
  ?sanitize:bool ->
  ?shards:int ->
  unit ->
  Report.violation list * int
(** Run every (scenario, policy, seed in [1..seeds]) combination (default
    seeds per cell: 5) on [jobs] domains (default 1) and collect all
    violations, in cell order. Returns the violations and the number of
    runs executed. *)
