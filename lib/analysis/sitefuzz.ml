(* Site-failure campaigns over supervised (coordinator-recovery) blocks.

   Where {!Fuzz} attacks individual messages and processes, this module
   attacks whole failure domains: it builds a five-site topology, spreads
   the consensus voters one-per-site, runs the block under
   {!Concurrent.run_supervised}, and injects site crashes and network
   partitions from the plan seed. The checkers are epoch-aware versions of
   the core invariants: at most one synchronisation win {e per epoch}, at
   most one committed result {e across} epochs, transparency of any
   selected result against the sequential oracle, honest degradation when
   a voter majority is lost. *)

type campaign = {
  sg_name : string;
  sg_doc : string;
  plan : seed:int -> Faultplan.t;
  sg_majority_crash : bool;
      (* the campaign takes down a voter majority before any alternative
         can synchronise, so a clean Selected outcome would be a lie *)
}

let site_names = [ "s0"; "s1"; "s2"; "s3"; "s4" ]

(* Plan seeds are derived from the cell seed with odd multipliers disjoint
   from the {!Fuzz} campaigns', so no two campaigns anywhere share a
   jitter stream for the same cell. *)
let default_campaigns =
  [
    {
      sg_name = "crash-minority";
      sg_doc = "crash two voter sites (s1, s3); a 3-of-5 quorum survives";
      sg_majority_crash = false;
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 61) + 11)
            [
              Faultplan.crash_site ~at:0.003 ~jitter:0.002 "s1";
              Faultplan.crash_site ~at:0.010 ~jitter:0.002 "s3";
            ]);
    };
    (* The block's own schedule (att_3b2 cost model): children spawn at
       ~0.07 virtual seconds (parent setup and space forks), consensus
       traffic flies at ~0.08-0.10. Mid-flight campaigns aim there. *)
    {
      sg_name = "crash-coordinator";
      sg_doc = "crash s0 (coordinator, children, voter0) mid-run: watchdog \
                recovery on a surviving site";
      sg_majority_crash = false;
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 67) + 12)
            [ Faultplan.crash_site ~at:0.07 ~jitter:0.015 "s0" ]);
    };
    {
      sg_name = "partition-minority";
      sg_doc = "cut {s3,s4} off across the sync window; the majority side \
                keeps quorum";
      sg_majority_crash = false;
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 71) + 13)
            [
              Faultplan.partition_sites ~at:0.075 ~jitter:0.005
                ~heal_after:0.05 [ "s3"; "s4" ] [ "s0"; "s1"; "s2" ];
            ]);
    };
    {
      sg_name = "partition-quorum-loss";
      sg_doc = "isolate the coordinator's site across the sync window, then \
                heal: retries must carry the block over the outage";
      sg_majority_crash = false;
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 73) + 14)
            [
              Faultplan.partition_sites ~at:0.07 ~jitter:0.005
                ~heal_after:0.07
                [ "s0" ]
                [ "s1"; "s2"; "s3"; "s4" ];
            ]);
    };
    {
      sg_name = "crash-majority";
      sg_doc = "crash three voter sites before anyone can synchronise: the \
                block must degrade or fail, never select";
      sg_majority_crash = true;
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 79) + 15)
            [
              Faultplan.crash_site ~at:0.0002 ~jitter:0.0001 "s1";
              Faultplan.crash_site ~at:0.0003 ~jitter:0.0001 "s2";
              Faultplan.crash_site ~at:0.0004 ~jitter:0.0001 "s3";
            ]);
    };
  ]

let consensus5 =
  Concurrent.Consensus
    { nodes = 5; crashed = []; vote_delay = 0.0002; reply_timeout = 0.05 }

let default_policies =
  [
    (* Retry across the outage, fail honestly if it persists. *)
    {
      Concurrent.default_policy with
      Concurrent.sync = consensus5;
      sync_retries = 2;
      sync_backoff = 0.02;
    };
    (* Same, degrading to sequential execution rather than failing. *)
    {
      Concurrent.default_policy with
      Concurrent.sync = consensus5;
      sync_retries = 2;
      sync_backoff = 0.02;
      degradation = Concurrent.Sequential_fallback;
    };
  ]

(* Source devices and coordinator restarts do not mix (a restarted
   incarnation would re-read consumed input), so the site matrix runs the
   sourceless scenarios only. *)
let default_scenarios =
  List.filter
    (fun sc -> not sc.Invariants.uses_source)
    Invariants.default_scenarios

type cell = {
  sf_scenario : Invariants.scenario;
  sf_campaign : campaign;
  sf_policy : Concurrent.policy;
  sf_seed : int;
}

let cells ?(seeds = 3) ?(scenarios = default_scenarios)
    ?(campaigns = default_campaigns) ?(policies = default_policies) () =
  Array.of_list
    (List.concat_map
       (fun sc ->
         List.concat_map
           (fun cg ->
             List.concat_map
               (fun policy ->
                 List.init seeds (fun i ->
                     {
                       sf_scenario = sc;
                       sf_campaign = cg;
                       sf_policy = policy;
                       sf_seed = i + 1;
                     }))
               policies)
           campaigns)
       scenarios)

let describe_cell c =
  Printf.sprintf "%s/%s/%s/seed %d" c.sf_scenario.Invariants.sc_name
    c.sf_campaign.sg_name
    (Concurrent.describe c.sf_policy)
    c.sf_seed

type run = {
  sf_engine : Engine.t;
  sf_sites : Sites.t;
  sf_sr : int Concurrent.supervised_report;
  sf_cell : cell;
  sf_alts_count : int;
  sf_sanitizer : Sanitizer.t option;
}

let run_cell ?(sanitize = false) ?shards c =
  let engine =
    Engine.create ~model:Cost_model.att_3b2 ~seed:c.sf_seed ?shards ()
  in
  let sanitizer = if sanitize then Some (Sanitizer.attach engine) else None in
  let sites = Sites.create engine ~names:site_names in
  Faultplan.install ~sites (c.sf_campaign.plan ~seed:c.sf_seed) engine;
  let space =
    Address_space.create (Engine.frame_store engine) (Engine.model engine)
  in
  Address_space.set_tracking space true;
  c.sf_scenario.Invariants.prepare engine space;
  ignore (Address_space.drain_cost space);
  let alts = c.sf_scenario.Invariants.alts engine ~seed:c.sf_seed ~source:None in
  let sr =
    Concurrent.run_supervised engine ~policy:c.sf_policy ~space ~sites alts
  in
  {
    sf_engine = engine;
    sf_sites = sites;
    sf_sr = sr;
    sf_cell = c;
    sf_alts_count = List.length alts;
    sf_sanitizer = sanitizer;
  }

(* ------------------------------------------------------------------ *)
(* Epoch-aware checkers.                                               *)

let check rr =
  let c = rr.sf_cell in
  let sr = rr.sf_sr in
  let rep = sr.Concurrent.sr_report in
  let h = History.of_trace (Engine.trace rr.sf_engine) in
  let out = ref [] in
  let viol cls d =
    out :=
      Report.violation cls ~scenario:c.sf_scenario.Invariants.sc_name
        ~policy:(Concurrent.describe c.sf_policy)
        ~seed:c.sf_seed d
      :: !out
  in
  let wins = History.sync_wins_epochs h in
  (* At most one synchronisation win per epoch: the consensus semaphore is
     0-1 within an incarnation, whatever the sites did. *)
  let by_epoch = Hashtbl.create 8 in
  List.iter
    (fun (pid, idx, e) ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_epoch e) in
      Hashtbl.replace by_epoch e ((pid, idx) :: l))
    wins;
  Hashtbl.iter
    (fun e l ->
      if List.length l > 1 then
        viol Report.At_most_once
          (Printf.sprintf "%d Sync_won events within epoch %d" (List.length l)
             e))
    by_epoch;
  let final_wins = List.filter (fun (_, _, e) -> e = sr.Concurrent.sr_epoch) wins in
  (* Outcome-shaped checks, including transparency against the sequential
     oracle run on the final surviving space. *)
  let compare_space sspace =
    match sr.Concurrent.sr_space with
    | None ->
      viol Report.Transparency
        "a selected outcome left no surviving address space to audit"
    | Some sp ->
      if
        not
          (Page_map.snapshot_equal (Address_space.map sp)
             (Address_space.map sspace))
      then
        viol Report.Transparency
          "the surviving address space differs from a sequential execution \
           of the winning alternative alone"
  in
  (match rep.Concurrent.outcome with
  | Alt_block.Selected { index; value } when not rep.Concurrent.degraded -> (
    if c.sf_campaign.sg_majority_crash then
      viol Report.At_most_once
        "a majority of voter sites crashed before any alternative could \
         synchronise, yet the block claims a selected winner";
    (match (final_wins, rep.Concurrent.winner) with
    | [ (pid, i, _) ], Some w ->
      if not (Pid.equal pid w) then
        viol Report.At_most_once
          (Format.asprintf
             "epoch %d Sync_won by %a but the report names %a as the winner"
             sr.Concurrent.sr_epoch Pid.pp pid Pid.pp w);
      if i <> index then
        viol Report.At_most_once
          (Printf.sprintf
             "epoch %d Sync_won for alternative %d but the outcome selected \
              %d"
             sr.Concurrent.sr_epoch i index)
    | [], _ ->
      viol Report.At_most_once
        (Printf.sprintf
           "outcome is Selected but epoch %d recorded no Sync_won"
           sr.Concurrent.sr_epoch)
    | _ :: _, None ->
      viol Report.At_most_once "a selected outcome reports no winner pid"
    | ws, _ ->
      viol Report.At_most_once
        (Printf.sprintf "%d Sync_won events in the deciding epoch"
           (List.length ws)));
    match
      Invariants.sequential_reference c.sf_scenario ~seed:c.sf_seed
        ~indices:[ index ]
    with
    | Some (Alt_block.Selected { index = 0; value = value' }), sspace, _ ->
      if value' <> value then
        viol Report.Transparency
          (Printf.sprintf
             "winning alternative %d returned %d under site faults but %d \
              sequentially"
             index value value');
      compare_space sspace
    | Some _, _, _ ->
      viol Report.Transparency
        (Printf.sprintf "winning alternative %d fails when re-executed alone"
           index)
    | None, _, _ ->
      viol Report.Transparency "sequential reference execution did not \
                                complete")
  | Alt_block.Selected { index; value } -> (
    (* Degraded: the fallback ran the alternatives sequentially in the
       final incarnation's space, so the oracle is first-fit over all of
       them — and no epoch may claim a speculative win for the deciding
       incarnation. *)
    if final_wins <> [] then
      viol Report.At_most_once
        (Printf.sprintf
           "epoch %d degraded to sequential execution yet recorded Sync_won"
           sr.Concurrent.sr_epoch);
    let indices = List.init rr.sf_alts_count Fun.id in
    match
      Invariants.sequential_reference c.sf_scenario ~seed:c.sf_seed ~indices
    with
    | Some (Alt_block.Selected { index = index'; value = value' }), sspace, _
      ->
      if index' <> index || value' <> value then
        viol Report.Transparency
          (Printf.sprintf
             "degraded block selected alternative %d (value %d) but a \
              sequential execution selects %d (value %d)"
             index value index' value');
      compare_space sspace
    | Some (Alt_block.Block_failed _), _, _ ->
      viol Report.Transparency
        (Printf.sprintf
           "degraded block selected alternative %d but a sequential \
            execution fails"
           index)
    | None, _, _ ->
      viol Report.Transparency "sequential reference execution did not \
                                complete")
  | Alt_block.Block_failed _ ->
    (* Failure under a site campaign is honest (availability, not safety,
       is sacrificed) — but it must be a clean failure: no winner, and no
       win recorded for the epoch that reported it. *)
    (match rep.Concurrent.winner with
    | Some w ->
      viol Report.At_most_once
        (Format.asprintf "a failed block reports %a as a winner" Pid.pp w)
    | None -> ());
    if final_wins <> [] then
      viol Report.At_most_once
        (Printf.sprintf "epoch %d failed yet recorded Sync_won"
           sr.Concurrent.sr_epoch));
  (* Recovery bookkeeping: the report, the trace, and the topology agree. *)
  if sr.Concurrent.sr_incarnations <> 1 + List.length sr.Concurrent.sr_recoveries
  then
    viol Report.Accounting
      (Printf.sprintf "%d incarnations but %d recoveries"
         sr.Concurrent.sr_incarnations
         (List.length sr.Concurrent.sr_recoveries));
  if History.recoveries h <> sr.Concurrent.sr_recoveries then
    viol Report.Accounting
      "the trace's Recovered events do not match the supervised report";
  ignore
    (List.fold_left
       (fun prev (_, _, e) ->
         if e <> prev + 1 then
           viol Report.Accounting
             (Printf.sprintf
                "recovery epochs are not consecutive: %d follows %d" e prev);
         e)
       1 sr.Concurrent.sr_recoveries);
  let sorted = List.sort compare in
  if sorted (History.site_crashes h) <> sorted (Sites.crashed_sites rr.sf_sites)
  then
    viol Report.Accounting
      "traced Site_crashed events do not match the topology's crashed set";
  (* Elimination across incarnations: every child of every coordinator
     exits exactly once, and an [ok] exit is only legitimate for a child
     that won some epoch's synchronisation (the final winner, or an
     orphaned winner whose epoch was fenced before commit — its pages died
     with its incarnation). *)
  let won_some pid = List.exists (fun (p, _, _) -> Pid.equal p pid) wins in
  List.iter
    (fun child ->
      match History.exits_of h child with
      | [ st ] -> (
        let is_winner =
          Option.equal Pid.equal (Some child) rep.Concurrent.winner
        in
        match History.classify_exit st with
        | History.Ok_exit ->
          if (not is_winner) && not (won_some child) then
            viol Report.Elimination
              (Format.asprintf
                 "alternative %a exited ok without ever winning a \
                  synchronisation"
                 Pid.pp child)
        | _ ->
          if is_winner then
            viol Report.Elimination
              (Format.asprintf "the winner %a exited %S" Pid.pp child st))
      | [] ->
        viol Report.Elimination
          (Format.asprintf "child %a has no Exited event" Pid.pp child)
      | l ->
        viol Report.Elimination
          (Format.asprintf "child %a exited %d times" Pid.pp child
             (List.length l)))
    rep.Concurrent.children;
  if Engine.live_count rr.sf_engine <> 0 then
    viol Report.World
      (Printf.sprintf "%d processes still live at quiescence"
         (Engine.live_count rr.sf_engine));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The campaign driver.                                                *)

let summary rr =
  let sr = rr.sf_sr in
  let rep = sr.Concurrent.sr_report in
  let outcome =
    match rep.Concurrent.outcome with
    | Alt_block.Selected { index; value } ->
      Printf.sprintf "selected(%d)=%d" index value
    | Alt_block.Block_failed r -> Printf.sprintf "failed(%S)" r
  in
  let h = History.of_trace (Engine.trace rr.sf_engine) in
  Printf.sprintf
    "%s: %s epoch=%d incarnations=%d recoveries=%d degraded=%b crashed=[%s] \
     partitions=%d heals=%d injections=%d msgs=%d elapsed=%.9f wasted=%.9f"
    (describe_cell rr.sf_cell) outcome sr.Concurrent.sr_epoch
    sr.Concurrent.sr_incarnations
    (List.length sr.Concurrent.sr_recoveries)
    rep.Concurrent.degraded
    (String.concat "," (Sites.crashed_sites rr.sf_sites))
    (List.length (History.partitions h))
    (List.length (History.heals h))
    (List.length (History.injections h))
    rep.Concurrent.sync_messages rep.Concurrent.elapsed
    rep.Concurrent.wasted_cpu

type result = {
  cells_run : int;
  violations : Report.violation list;
  lines : string list;
  mismatches : string list;
  first_failing : cell option;
}

let render_violations vs =
  List.map (fun v -> Format.asprintf "%a" Report.pp_violation v) vs

(* [check] plus, when the cell ran sanitized, the streaming-vs-post-mortem
   cross-check (agreement adds nothing; divergence is a Sanitizer-class
   violation). *)
let check_crossed rr =
  let vs = check rr in
  match rr.sf_sanitizer with
  | None -> vs
  | Some sz ->
    Sanitizer.detach sz;
    let c = rr.sf_cell in
    vs
    @ Sanitizer.crosscheck sz ~oracle:vs
        ~scenario:c.sf_scenario.Invariants.sc_name
        ~policy:(Concurrent.describe c.sf_policy)
        ~seed:c.sf_seed

let run ?(jobs = 1) ?seeds ?scenarios ?campaigns ?policies ?(verify = false)
    ?sanitize ?shards () =
  let cs = cells ?seeds ?scenarios ?campaigns ?policies () in
  let results =
    Parallel.map_indexed_shared ~jobs
      (fun i ->
        let c = cs.(i) in
        let rr = run_cell ?sanitize ?shards c in
        let vs = check_crossed rr in
        let line = summary rr in
        let mismatch =
          if not verify then None
          else begin
            (* Determinism contract: a fresh engine, topology and plan from
               the same seeds must reproduce the digest and the violations
               byte for byte. *)
            let rr' = run_cell ?sanitize ?shards c in
            let vs' = check_crossed rr' in
            let line' = summary rr' in
            if line <> line' || render_violations vs <> render_violations vs'
            then
              Some
                (Printf.sprintf "%s\n  first : %s\n  second: %s"
                   (describe_cell c) line line')
            else None
          end
        in
        (line, vs, mismatch))
      (Array.length cs)
  in
  let violations =
    List.concat_map (fun (_, vs, _) -> vs) (Array.to_list results)
  in
  let lines = List.map (fun (l, _, _) -> l) (Array.to_list results) in
  let mismatches =
    List.filter_map (fun (_, _, m) -> m) (Array.to_list results)
  in
  let first_failing =
    let rec find i =
      if i >= Array.length results then None
      else
        let _, vs, _ = results.(i) in
        if vs <> [] then Some cs.(i) else find (i + 1)
    in
    find 0
  in
  { cells_run = Array.length cs; violations; lines; mismatches; first_failing }
