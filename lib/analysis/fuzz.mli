(** Fault-injection fuzzing: the invariant sweep under adversarial
    campaigns.

    The clean sweep ({!Invariants.run_matrix}) shows the paper's invariants
    hold on healthy executions; this module re-runs the same scenarios and
    checkers with a {!Faultplan} installed — dropped, duplicated, delayed
    and reordered consensus messages, crashed voters, killed children,
    timeout storms — across a campaign x policy x seed matrix. A faulted
    execution may honestly {e fail} (availability is allowed to suffer),
    but every invariant the checkers can still judge — at-most-once
    selection, transparency of any selected result, world soundness,
    elimination and accounting — must hold.

    Everything is deterministic: a cell is fully identified by
    (scenario, campaign, policy, seed), and re-running it produces a
    byte-identical summary line and violation report. {!run} can verify
    that contract on every cell ([~verify:true]). *)

(** A named, seed-parameterised fault plan. *)
type campaign = {
  cg_name : string;
  cg_doc : string;
  plan : seed:int -> Faultplan.t;
      (** The plan for one cell; [seed] is the cell seed, so each seed
          explores a different probabilistic footprint of the same
          campaign. *)
}

val default_campaigns : campaign list
(** [drop-replies], [drop-requests], [dup-replies], [reorder-consensus],
    [delay-storm], [voter-crash], [child-kill]. *)

val default_policies : Concurrent.policy list
(** Fuzzing-oriented policies: 3-node consensus with retry/backoff and
    [Fail_block], the same with [Sequential_fallback] (infinite and finite
    [alt_wait] deadlines), and a local-latch control row. *)

(** One cell of the fuzz matrix. *)
type cell = {
  fc_scenario : Invariants.scenario;
  fc_campaign : campaign;
  fc_policy : Concurrent.policy;
  fc_seed : int;
}

val cells :
  ?seeds:int ->
  ?scenarios:Invariants.scenario list ->
  ?campaigns:campaign list ->
  ?policies:Concurrent.policy list ->
  unit ->
  cell array
(** The matrix in canonical order: scenarios outermost, then campaigns,
    then policies, then seeds in [1..seeds] (default 5). *)

val run_cell :
  ?sanitize:bool -> ?shards:int -> cell ->
  Invariants.run * Report.violation list
(** One faulted, checked execution ({!Invariants.run_checked} with the
    campaign's plan installed; [sanitize] and [shards] as there). *)

val summary : cell -> Invariants.run -> string
(** A deterministic one-line digest of the cell's execution: outcome,
    degradation, attempts, injection count, message and CPU accounting.
    Byte-equal across re-runs of the same cell — the determinism
    contract's witness. *)

type result = {
  cells_run : int;
  violations : Report.violation list;  (** In cell order. *)
  lines : string list;  (** {!summary} of every cell, in cell order. *)
  mismatches : string list;
      (** Cells whose re-run diverged ([~verify:true] only; empty
          otherwise). Any entry is a broken determinism contract. *)
  first_failing : cell option;
      (** The earliest cell (in canonical matrix order) with a violation:
          the minimal reproduction coordinates. *)
}

val run :
  ?jobs:int ->
  ?seeds:int ->
  ?scenarios:Invariants.scenario list ->
  ?campaigns:campaign list ->
  ?policies:Concurrent.policy list ->
  ?verify:bool ->
  ?sanitize:bool ->
  ?shards:int ->
  unit ->
  result
(** Run the whole matrix, fanned over [jobs] domains (default 1) via the
    persistent {!Parallel.shared} pool — results are in cell order for
    any [jobs], and byte-identical for any [shards] (the run-level
    determinism contract).
    With [verify] (default false) each cell is executed twice and the
    summaries and violation reports compared. With [sanitize] every cell
    runs under the online {!Sanitizer}, cross-checked against the
    post-mortem oracle; agreement leaves the report byte-identical. *)

val describe_cell : cell -> string
(** ["scenario/campaign/policy/seed N"] — the replay coordinates. *)
