type exit_class =
  | Ok_exit
  | Failed_exit of string
  | Crashed_exit of string
  | Eliminated_exit of string

let strip_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.sub s 0 (String.length prefix) = prefix
  then Some (String.sub s (String.length prefix)
               (String.length s - String.length prefix))
  else None

let classify_exit s =
  if s = "ok" then Ok_exit
  else
    match strip_prefix ~prefix:"failed: " s with
    | Some r -> Failed_exit r
    | None -> (
      match strip_prefix ~prefix:"crashed: " s with
      | Some r -> Crashed_exit r
      | None -> (
        match strip_prefix ~prefix:"eliminated: " s with
        | Some r -> Eliminated_exit r
        | None -> invalid_arg ("History.classify_exit: " ^ s)))

type t = {
  spawns : (Pid.t, Pid.t option * string) Hashtbl.t;
  spawn_order : Pid.t list;
  exits : (Pid.t, string list) Hashtbl.t;  (* statuses, oldest first *)
  sync_wins : (Pid.t * int) list;
  sync_wins_epochs : (Pid.t * int * int) list;
  sync_lates : (Pid.t * int) list;
  absorbs : (Pid.t * Pid.t) list;
  accepts : (Pid.t * Predicate.t * Message.t) list;
  fates : (Pid.t * Predicate.fate) list;
  kills : (Pid.t * string) list;
  sent : Message.t list;
  injections : (string * Pid.t option * Message.t option) list;
  degradations : (Pid.t * string) list;
  site_crashes : string list;
  partitions : (string list * string list) list;
  heals : (string list * string list) list;
  recoveries : (Pid.t * Pid.t * int) list;
  delivery_batches : (Pid.t * Pid.t * int) list;  (* sender, dest, count *)
}

let of_trace trace =
  let spawns = Hashtbl.create 32 in
  let exits = Hashtbl.create 32 in
  let spawn_order = ref [] in
  let wins = ref [] and lates = ref [] and absorbs = ref [] in
  let accepts = ref [] and fates = ref [] and kills = ref [] in
  let sent = ref [] in
  let injections = ref [] and degradations = ref [] in
  let site_crashes = ref [] and partitions = ref [] and heals = ref [] in
  let recoveries = ref [] in
  let batches = ref [] in
  List.iter
    (fun (_, e) ->
      match e with
      | Trace.Spawned { pid; parent; name } ->
        Hashtbl.replace spawns pid (parent, name);
        spawn_order := pid :: !spawn_order
      | Trace.Exited { pid; status } ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt exits pid) in
        Hashtbl.replace exits pid (prev @ [ status ])
      | Trace.Sync_won { pid; index; epoch } ->
        wins := (pid, index, epoch) :: !wins
      | Trace.Sync_late { pid; index } -> lates := (pid, index) :: !lates
      | Trace.Absorbed { parent; child } ->
        absorbs := (parent, child) :: !absorbs
      | Trace.Accepted { dest; msg; dest_pred } ->
        accepts := (dest, dest_pred, msg) :: !accepts
      | Trace.Fate { pid; fate } -> fates := (pid, fate) :: !fates
      | Trace.Killed { pid; reason } -> kills := (pid, reason) :: !kills
      | Trace.Sent { msg } -> sent := msg :: !sent
      | Trace.Injected { kind; pid; msg } ->
        injections := (kind, pid, msg) :: !injections
      | Trace.Degraded { parent; reason } ->
        degradations := (parent, reason) :: !degradations
      | Trace.Site_crashed { site } -> site_crashes := site :: !site_crashes
      | Trace.Partitioned { left; right } ->
        partitions := (left, right) :: !partitions
      | Trace.Healed { left; right } -> heals := (left, right) :: !heals
      | Trace.Recovered { failed; successor; epoch } ->
        recoveries := (failed, successor, epoch) :: !recoveries
      | Trace.Delivered_batch { sender; dest; count } ->
        (* Batching is a scheduling detail: the per-message Delivered /
           Accepted records that follow the batch event carry the
           semantics. Kept only as an observability digest. *)
        batches := (sender, dest, count) :: !batches
      | Trace.Started _ | Trace.Delivered _ | Trace.Ignored _ | Trace.Split _
      | Trace.Fate_deferred _ | Trace.Sanitizer_flag _ | Trace.Note _ -> ())
    (Trace.events trace);
  {
    spawns;
    spawn_order = List.rev !spawn_order;
    exits;
    sync_wins = List.rev_map (fun (pid, index, _) -> (pid, index)) !wins;
    sync_wins_epochs = List.rev !wins;
    sync_lates = List.rev !lates;
    absorbs = List.rev !absorbs;
    accepts = List.rev !accepts;
    fates = List.rev !fates;
    kills = List.rev !kills;
    sent = List.rev !sent;
    injections = List.rev !injections;
    degradations = List.rev !degradations;
    site_crashes = List.rev !site_crashes;
    partitions = List.rev !partitions;
    heals = List.rev !heals;
    recoveries = List.rev !recoveries;
    delivery_batches = List.rev !batches;
  }

let name_of t pid = Option.map snd (Hashtbl.find_opt t.spawns pid)
let parent_of t pid = Option.join (Option.map fst (Hashtbl.find_opt t.spawns pid))
let spawned t = t.spawn_order
let exits_of t pid = Option.value ~default:[] (Hashtbl.find_opt t.exits pid)
let sync_wins t = t.sync_wins
let sync_wins_epochs t = t.sync_wins_epochs
let sync_lates t = t.sync_lates
let absorbs t = t.absorbs
let accepts t = t.accepts
let fates t = t.fates
let kills t = t.kills
let sent t = t.sent
let injections t = t.injections
let degradations t = t.degradations
let site_crashes t = t.site_crashes
let partitions t = t.partitions
let heals t = t.heals
let recoveries t = t.recoveries
let delivery_batches t = t.delivery_batches
let faulted t = t.injections <> []

let count_sent_tag t ~tag =
  List.length (List.filter (fun m -> m.Message.tag = tag) t.sent)

let count_accept_tag t ~tag ~dest_ok =
  List.length
    (List.filter
       (fun (dest, _, m) -> m.Message.tag = tag && dest_ok dest)
       t.accepts)
