(** The online sanitizer (altsan).

    A streaming monitor that consumes the engine's trace events, tracked
    page writes, and source emissions {e as they happen}, with state
    bounded by the live working set (processes, in-flight messages, live
    frames) rather than by run length — so it can watch executions whose
    trace recording is switched off entirely. Violations are flagged at
    the exact virtual time and pid of the offence and additionally traced
    as {!Trace.Sanitizer_flag} breadcrumbs.

    The streaming checks are {e sound subsets} of the post-mortem checker
    classes: a sanitizer flag of class [c] implies the post-mortem checker
    for [c] finds a violation on the same run. {!crosscheck} audits
    exactly that relation (plus completeness on the checks where both
    monitors test the same predicate) and reports divergence under
    {!Report.Sanitizer} — the two monitors disagreeing is itself a
    finding, with its own exit code.

    Checks performed online:

    - {b at-most-once}: duplicate latch wins, per-epoch double wins, wins
      after degradation or by fenced-off stale epochs, win+late and
      duplicate-late anomalies — flagged at the [Sync_won]/[Sync_late]
      event itself;
    - {b world}: acceptance of a message whose predicate conflicts with
      the acceptor's world — flagged at the [Accepted] event;
    - {b isolation}: two processes writing the same physical frame without
      a happens-before edge between the writes (vector clocks over
      spawn/send/accept/absorb), and any write to a deliberately shared
      address space with two live registrants — flagged at the write;
    - {b sources}: a line reaching a source device while its writer is
      speculative — flagged at emission time (requires
      {!observe_source}). *)

type t

type flag = {
  sf_time : float;  (** Virtual time of the offence. *)
  sf_class : Report.check_class;
  sf_pid : Pid.t option;  (** The process caught in the act. *)
  sf_detail : string;
}

val attach : Engine.t -> t
(** Install the sanitizer on an engine: claims the trace observer
    ({!Trace.set_observer}) and the frame store's write observer. Must be
    called before the monitored processes are spawned. One sanitizer per
    engine. *)

val detach : t -> unit
(** Remove the observers. The accumulated flags remain readable. *)

val next_block : t -> unit
(** Close the current alternative block's at-most-once scope: the win /
    late / epoch tallies, degradation latch and recovery fence reset so
    the next block's legal [Sync_won] is not mistaken for a duplicate
    win of the previous one. Happens-before state (vector clocks, frame
    ownership, in-flight message snapshots) and accumulated flags
    survive. The serving layer calls this between the jobs of a shared
    batch engine; single-block runs never need it. *)

val observe_source : t -> Source.t -> unit
(** Watch a source device for uncertain emissions (claims the device's
    emission hook). *)

val flags : t -> flag list
(** Everything flagged so far, oldest first. *)

val flag_count : t -> int

val state_size : t -> int
(** Total entries across the sanitizer's tables — what the boundedness
    regression asserts stays O(live working set) on long runs. *)

val violations :
  t -> scenario:string -> policy:string -> seed:int -> Report.violation list
(** The flags as {!Report.violation}s (class preserved, detail prefixed
    with the [t=...] / [pid=...] coordinates). *)

val crosscheck :
  t ->
  oracle:Report.violation list ->
  scenario:string -> policy:string -> seed:int ->
  Report.violation list
(** Compare the sanitizer's verdict against the post-mortem [oracle]
    violations for the same run. Returns divergence findings (class
    {!Report.Sanitizer}) only — an empty list means the two monitors
    agree, so adding the result to a clean report leaves it
    byte-identical. *)
