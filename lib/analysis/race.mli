(** Race detection over page access sets.

    With {!Address_space.set_tracking} enabled before an alternative block,
    every sibling's page map records which virtual pages it read and which
    physical frames it wrote. Copy-on-write isolation means sibling writes
    must always land in {e distinct} frames (each write to a shared frame is
    privatised first, and the store never reuses frame ids) — so any
    [(vpage, frame id)] pair appearing in two siblings' write logs is a
    mutation of shared state visible across the mutual-exclusion boundary. *)

val check_isolation :
  Engine.t ->
  children:Pid.t list ->
  scenario:string ->
  policy:string ->
  seed:int ->
  Report.violation list
(** Pairwise-intersect the write logs of the children's address spaces.
    Children without a space, or with tracking off, contribute nothing. *)

val check_sources :
  Source.t ->
  scenario:string ->
  policy:string ->
  seed:int ->
  Report.violation list
(** Every line emitted on the device must have been written (or flushed) by
    a process that was certain at emission time (section 3.4.2: speculative
    processes "cannot interface with sources"). *)
