(** Site-failure fuzzing: supervised blocks under crashing and partitioning
    failure domains.

    {!Fuzz} attacks messages and processes; this module attacks whole
    {e sites}. Each cell builds a five-site topology ({!site_names}),
    spreads five consensus voters one per site, runs the scenario's block
    under {!Concurrent.run_supervised} (so the coordinator itself may die
    and recover), and injects site crashes and partitions scheduled from
    the plan seed ({!Faultplan.crash_site}, {!Faultplan.partition_sites}).

    The checkers are epoch-aware: at most one [Sync_won] per incarnation
    epoch, exactly one committed result across all epochs (a failed or
    degraded block commits none and names no winner), transparency of any
    selected result against {!Invariants.sequential_reference} compared on
    the {e final} surviving space ([sr_space]), honest failure when a voter
    majority is lost, per-child exit accounting across every incarnation,
    and agreement between the supervised report, the trace, and the
    topology. Every cell is deterministic in (scenario, campaign, policy,
    seed); [~verify:true] re-runs each cell and compares byte-for-byte. *)

(** A named, seed-parameterised site-fault plan. *)
type campaign = {
  sg_name : string;
  sg_doc : string;
  plan : seed:int -> Faultplan.t;
  sg_majority_crash : bool;
      (** The campaign removes a voter majority before any alternative can
          synchronise: a non-degraded [Selected] outcome is flagged as a
          phantom winner. *)
}

val site_names : string list
(** The fixed topology: [s0] (coordinator and its children) .. [s4]. *)

val default_campaigns : campaign list
(** [crash-minority], [crash-coordinator], [partition-minority],
    [partition-quorum-loss], [crash-majority]. *)

val default_policies : Concurrent.policy list
(** 5-node consensus with retry/backoff, failing and degrading variants. *)

val default_scenarios : Invariants.scenario list
(** The sourceless {!Invariants.default_scenarios} (a restarted coordinator
    must not re-read consumed device input). *)

(** One cell of the site matrix. *)
type cell = {
  sf_scenario : Invariants.scenario;
  sf_campaign : campaign;
  sf_policy : Concurrent.policy;
  sf_seed : int;
}

val cells :
  ?seeds:int ->
  ?scenarios:Invariants.scenario list ->
  ?campaigns:campaign list ->
  ?policies:Concurrent.policy list ->
  unit ->
  cell array
(** The matrix in canonical order: scenarios, then campaigns, then
    policies, then seeds in [1..seeds] (default 3). *)

val describe_cell : cell -> string
(** ["scenario/campaign/policy/seed N"] — the replay coordinates. *)

(** One finished supervised execution under a site campaign. *)
type run = {
  sf_engine : Engine.t;
  sf_sites : Sites.t;
  sf_sr : int Concurrent.supervised_report;
  sf_cell : cell;
  sf_alts_count : int;
  sf_sanitizer : Sanitizer.t option;
      (** Present when the cell ran with [~sanitize:true]. *)
}

val run_cell : ?sanitize:bool -> ?shards:int -> cell -> run
(** Fresh engine, topology, plan and scenario state; the block run to
    quiescence under {!Concurrent.run_supervised}. With [sanitize] the
    online {!Sanitizer} watches the whole execution. [shards] runs the
    cell's engine sharded along the five-site topology; the run-level
    contract keeps the digest byte-identical for any value. *)

val check : run -> Report.violation list
(** The epoch-aware checkers described above. *)

val summary : run -> string
(** Deterministic one-line digest (outcome, epoch, incarnations,
    recoveries, crashed sites, accounting) — the determinism contract's
    witness. *)

type result = {
  cells_run : int;
  violations : Report.violation list;  (** In cell order. *)
  lines : string list;  (** {!summary} of every cell, in cell order. *)
  mismatches : string list;
      (** Cells whose re-run diverged ([~verify:true] only). *)
  first_failing : cell option;
      (** Earliest failing cell: minimal reproduction coordinates. *)
}

val run :
  ?jobs:int ->
  ?seeds:int ->
  ?scenarios:Invariants.scenario list ->
  ?campaigns:campaign list ->
  ?policies:Concurrent.policy list ->
  ?verify:bool ->
  ?sanitize:bool ->
  ?shards:int ->
  unit ->
  result
(** Run the whole matrix, fanned over [jobs] domains via the persistent
    {!Parallel.shared} pool (results in cell order for any [jobs], and
    byte-identical for any [shards]). With
    [verify] each cell executes twice and the digests and violations are
    compared byte-for-byte. With [sanitize] every cell runs under the
    online {!Sanitizer}, cross-checked against the epoch-aware post-mortem
    checkers. *)
