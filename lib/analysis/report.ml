type check_class =
  | At_most_once
  | Transparency
  | World
  | Elimination
  | Isolation
  | Sources
  | Accounting

let class_name = function
  | At_most_once -> "at-most-once"
  | Transparency -> "transparency"
  | World -> "world"
  | Elimination -> "elimination"
  | Isolation -> "isolation"
  | Sources -> "sources"
  | Accounting -> "accounting"

let class_provenance = function
  | At_most_once | Transparency | Elimination | Accounting ->
    "lib/core/concurrent.ml"
  | World -> "lib/runtime/engine.ml"
  | Isolation -> "lib/pages/page_map.ml"
  | Sources -> "lib/sources/source.ml"

let class_exit_code = function
  | At_most_once -> 10
  | Transparency -> 11
  | World -> 12
  | Elimination -> 13
  | Isolation -> 14
  | Sources -> 15
  | Accounting -> 16

let severity = function
  | At_most_once -> 0
  | Transparency -> 1
  | World -> 2
  | Elimination -> 3
  | Isolation -> 4
  | Sources -> 5
  | Accounting -> 6

type violation = {
  check : check_class;
  scenario : string;
  policy : string;
  seed : int;
  detail : string;
}

let violation check ~scenario ~policy ~seed detail =
  { check; scenario; policy; seed; detail }

let pp_violation ppf v =
  Format.fprintf ppf "%s:%s: %s (scenario %s, policy %s, seed %d)"
    (class_provenance v.check) (class_name v.check) v.detail v.scenario
    v.policy v.seed

let exit_code = function
  | [] -> 0
  | vs ->
    let worst =
      List.fold_left
        (fun acc v -> if severity v.check < severity acc then v.check else acc)
        (List.hd vs).check vs
    in
    class_exit_code worst
