type check_class =
  | At_most_once
  | Transparency
  | World
  | Elimination
  | Isolation
  | Sources
  | Accounting
  | Sanitizer

let all_classes =
  [
    At_most_once;
    Transparency;
    World;
    Elimination;
    Isolation;
    Sources;
    Accounting;
    Sanitizer;
  ]

let class_name = function
  | At_most_once -> "at-most-once"
  | Transparency -> "transparency"
  | World -> "world"
  | Elimination -> "elimination"
  | Isolation -> "isolation"
  | Sources -> "sources"
  | Accounting -> "accounting"
  | Sanitizer -> "sanitizer"

let class_provenance = function
  | At_most_once | Transparency | Elimination | Accounting ->
    "lib/core/concurrent.ml"
  | World -> "lib/runtime/engine.ml"
  | Isolation -> "lib/pages/page_map.ml"
  | Sources -> "lib/sources/source.ml"
  | Sanitizer -> "lib/analysis/sanitizer.ml"

(* ------------------------------------------------------------------ *)
(* The exit-code registry: the single source of truth for every exit
   code altcheck can produce. The CLI table (`altcheck codes`) and the
   docs are derived from this list; checker classes look their codes up
   here by label. *)

type code_info = {
  code : int;
  label : string;
  meaning : string;
  source : string;
}

let registry =
  [
    {
      code = 0;
      label = "ok";
      meaning = "all checks passed";
      source = "bin/altcheck.ml";
    };
    {
      code = 10;
      label = "at-most-once";
      meaning = "the at-most-once synchronisation admitted more than one winner";
      source = class_provenance At_most_once;
    };
    {
      code = 11;
      label = "transparency";
      meaning =
        "surviving state differs from a sequential run of the winner alone";
      source = class_provenance Transparency;
    };
    {
      code = 12;
      label = "world";
      meaning =
        "predicate/world unsoundness: conflicting acceptance, mutated fate, \
         or an unreaped falsified world";
      source = class_provenance World;
    };
    {
      code = 13;
      label = "elimination";
      meaning = "a spawned alternative is unaccounted for or escaped the block";
      source = class_provenance Elimination;
    };
    {
      code = 14;
      label = "isolation";
      meaning = "two live siblings mutated the same physical frame";
      source = class_provenance Isolation;
    };
    {
      code = 15;
      label = "sources";
      meaning = "a speculative process's output reached a source device";
      source = class_provenance Sources;
    };
    {
      code = 16;
      label = "accounting";
      meaning = "report overhead counters disagree with the engine's ledger";
      source = class_provenance Accounting;
    };
    {
      code = 17;
      label = "sanitizer";
      meaning =
        "the online sanitizer and the post-mortem oracle disagree, or a \
         sanitizer-only check fired";
      source = class_provenance Sanitizer;
    };
    {
      code = 20;
      label = "determinism";
      meaning = "a jobs-1 and a jobs-N sweep produced different reports";
      source = "lib/analysis/parallel.ml";
    };
    {
      code = 21;
      label = "lint-conflict";
      meaning =
        "altlint found alternatives that are provably or conservatively \
         conflicting";
      source = "lib/lint/lint.ml";
    };
    {
      code = 22;
      label = "lint-unknown";
      meaning =
        "altlint could not prove the alternatives exclusive (unknown implies \
         conflicting)";
      source = "lib/lint/lint.ml";
    };
    {
      code = 23;
      label = "serve-chaos";
      meaning =
        "the chaos-serve campaign found invariant violations, a phantom \
         winner, or a determinism divergence";
      source = "lib/serve/chaosserve.ml";
    };
    {
      code = 24;
      label = "serve-degrade";
      meaning =
        "the degradation-ladder benchmark regressed: ladder goodput below \
         the shed-only baseline, violations, or an invalid record";
      source = "lib/serve/chaosserve.ml";
    };
  ]

let code_of_label label =
  match List.find_opt (fun i -> i.label = label) registry with
  | Some i -> i.code
  | None -> invalid_arg ("Report.code_of_label: unregistered label " ^ label)

let code_determinism = code_of_label "determinism"
let code_lint_conflict = code_of_label "lint-conflict"
let code_lint_unknown = code_of_label "lint-unknown"

let class_exit_code c = code_of_label (class_name c)

let severity c =
  let rec idx i = function
    | [] -> invalid_arg "Report.severity"
    | x :: rest -> if x = c then i else idx (i + 1) rest
  in
  idx 0 all_classes

let pp_code_table ppf () =
  Format.fprintf ppf "%-6s %-14s %-28s %s@." "code" "label" "source" "meaning";
  List.iter
    (fun i ->
      Format.fprintf ppf "%-6d %-14s %-28s %s@." i.code i.label i.source
        i.meaning)
    registry

type violation = {
  check : check_class;
  scenario : string;
  policy : string;
  seed : int;
  detail : string;
}

let violation check ~scenario ~policy ~seed detail =
  { check; scenario; policy; seed; detail }

let pp_violation ppf v =
  Format.fprintf ppf "%s:%s: %s (scenario %s, policy %s, seed %d)"
    (class_provenance v.check) (class_name v.check) v.detail v.scenario
    v.policy v.seed

let exit_code = function
  | [] -> 0
  | vs ->
    let worst =
      List.fold_left
        (fun acc v -> if severity v.check < severity acc then v.check else acc)
        (List.hd vs).check vs
    in
    class_exit_code worst
