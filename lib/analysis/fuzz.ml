type campaign = {
  cg_name : string;
  cg_doc : string;
  plan : seed:int -> Faultplan.t;
}

(* Campaign plan seeds are derived from the cell seed with distinct odd
   multipliers so no two campaigns share a Bernoulli stream for the same
   cell, and none coincides with the engine's own seed. *)
let default_campaigns =
  [
    {
      cg_name = "drop-replies";
      cg_doc = "drop 30% of consensus replies (vote_rep)";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 31) + 1)
            [ Faultplan.message ~p:0.3 ~tag:"vote_rep" Faultplan.Drop ]);
    };
    {
      cg_name = "drop-requests";
      cg_doc = "drop 30% of consensus requests (vote_req)";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 37) + 2)
            [ Faultplan.message ~p:0.3 ~tag:"vote_req" Faultplan.Drop ]);
    };
    {
      cg_name = "dup-replies";
      cg_doc = "duplicate half of the consensus replies";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 41) + 3)
            [ Faultplan.message ~p:0.5 ~tag:"vote_rep" Faultplan.Duplicate ]);
    };
    {
      cg_name = "reorder-consensus";
      cg_doc = "reorder 40% of consensus traffic past its channel order";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 43) + 4)
            [
              Faultplan.message ~p:0.4 ~tag:"vote_rep" (Faultplan.Reorder 0.02);
              Faultplan.message ~p:0.4 ~tag:"vote_req" (Faultplan.Reorder 0.02);
            ]);
    };
    {
      cg_name = "delay-storm";
      cg_doc = "+0.25s on every message sent in [0.001, 0.05] (timeout storm)";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 47) + 5)
            [ Faultplan.storm ~window:(0.001, 0.05) 0.25 ]);
    };
    {
      cg_name = "voter-crash";
      cg_doc = "crash voter0 just after spawn; heal the partition at +0.1s";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 53) + 6)
            [ Faultplan.crash_process ~after:0.0005 ~revive_after:0.1 "voter0" ]);
    };
    {
      cg_name = "child-kill";
      cg_doc = "kill the first alternative child 3ms into its run";
      plan =
        (fun ~seed ->
          Faultplan.make ~seed:((seed * 59) + 7)
            [ Faultplan.kill_process ~after:0.003 "[" ]);
    };
  ]

let consensus3 =
  Concurrent.Consensus
    { nodes = 3; crashed = []; vote_delay = 0.0002; reply_timeout = 0.05 }

let default_policies =
  [
    (* Retry on no-quorum, fail honestly if the outage persists. *)
    {
      Concurrent.default_policy with
      Concurrent.sync = consensus3;
      sync_retries = 2;
      sync_backoff = 0.02;
    };
    (* Retry, and degrade to sequential execution rather than fail. *)
    {
      Concurrent.default_policy with
      Concurrent.sync = consensus3;
      sync_retries = 2;
      sync_backoff = 0.02;
      degradation = Concurrent.Sequential_fallback;
    };
    (* No retries, a tight alt_wait deadline, asynchronous elimination:
       the storm campaigns drive this one through the timeout-degrade
       path (and so through Ivar.read_timeout on the consensus path). *)
    {
      Concurrent.default_policy with
      Concurrent.sync = consensus3;
      elimination = Concurrent.Async_elim;
      timeout = 0.08;
      degradation = Concurrent.Sequential_fallback;
    };
    (* Local-latch control row: consensus-message campaigns find nothing
       to bite; process faults and storms still apply. *)
    { Concurrent.default_policy with Concurrent.elimination = Concurrent.Sync_elim };
  ]

type cell = {
  fc_scenario : Invariants.scenario;
  fc_campaign : campaign;
  fc_policy : Concurrent.policy;
  fc_seed : int;
}

let cells ?(seeds = 5) ?(scenarios = Invariants.default_scenarios)
    ?(campaigns = default_campaigns) ?(policies = default_policies) () =
  Array.of_list
    (List.concat_map
       (fun sc ->
         List.concat_map
           (fun cg ->
             List.concat_map
               (fun policy ->
                 List.init seeds (fun i ->
                     {
                       fc_scenario = sc;
                       fc_campaign = cg;
                       fc_policy = policy;
                       fc_seed = i + 1;
                     }))
               policies)
           campaigns)
       scenarios)

let describe_cell c =
  Printf.sprintf "%s/%s/%s/seed %d" c.fc_scenario.Invariants.sc_name
    c.fc_campaign.cg_name
    (Concurrent.describe c.fc_policy)
    c.fc_seed

let run_cell ?sanitize ?shards c =
  let faults eng = Faultplan.install (c.fc_campaign.plan ~seed:c.fc_seed) eng in
  Invariants.run_checked ~faults ?sanitize ?shards c.fc_scenario
    ~policy:c.fc_policy ~seed:c.fc_seed

let summary c (rr : Invariants.run) =
  let rep = rr.Invariants.report in
  let outcome =
    match rep.Concurrent.outcome with
    | Alt_block.Selected { index; value } ->
      Printf.sprintf "selected(%d)=%d" index value
    | Alt_block.Block_failed r -> Printf.sprintf "failed(%S)" r
  in
  let h = History.of_trace (Engine.trace rr.Invariants.engine) in
  Printf.sprintf
    "%s: %s degraded=%b attempted=%d injections=%d msgs=%d elapsed=%.9f \
     wasted=%.9f"
    (describe_cell c) outcome rep.Concurrent.degraded rep.Concurrent.attempted
    (List.length (History.injections h))
    rep.Concurrent.sync_messages rep.Concurrent.elapsed
    rep.Concurrent.wasted_cpu

type result = {
  cells_run : int;
  violations : Report.violation list;
  lines : string list;
  mismatches : string list;
  first_failing : cell option;
}

let render_violations vs =
  List.map (fun v -> Format.asprintf "%a" Report.pp_violation v) vs

let run ?(jobs = 1) ?seeds ?scenarios ?campaigns ?policies ?(verify = false)
    ?sanitize ?shards () =
  let cs = cells ?seeds ?scenarios ?campaigns ?policies () in
  let results =
    Parallel.map_indexed_shared ~jobs
      (fun i ->
        let c = cs.(i) in
        let rr, vs = run_cell ?sanitize ?shards c in
        let line = summary c rr in
        let mismatch =
          if not verify then None
          else begin
            (* The determinism contract: a fresh execution of the same
               cell — fresh engine, fresh plan from the same two seeds —
               must reproduce the summary and the violations byte for
               byte. *)
            let rr', vs' = run_cell ?sanitize ?shards c in
            let line' = summary c rr' in
            if line <> line' || render_violations vs <> render_violations vs'
            then
              Some
                (Printf.sprintf "%s\n  first : %s\n  second: %s"
                   (describe_cell c) line line')
            else None
          end
        in
        (line, vs, mismatch))
      (Array.length cs)
  in
  let violations =
    List.concat_map (fun (_, vs, _) -> vs) (Array.to_list results)
  in
  let lines = List.map (fun (l, _, _) -> l) (Array.to_list results) in
  let mismatches =
    List.filter_map (fun (_, _, m) -> m) (Array.to_list results)
  in
  let first_failing =
    let rec find i =
      if i >= Array.length results then None
      else
        let _, vs, _ = results.(i) in
        if vs <> [] then Some cs.(i) else find (i + 1)
    in
    find 0
  in
  { cells_run = Array.length cs; violations; lines; mismatches; first_failing }
