type scenario = {
  sc_name : string;
  uses_source : bool;
  source_script : string list;
  prepare : Engine.t -> Address_space.t -> unit;
  alts :
    Engine.t -> seed:int -> source:Source.t option -> int Alternative.t list;
}

type run = {
  engine : Engine.t;
  space : Address_space.t;
  source : Source.t option;
  report : int Concurrent.report;
  policy : Concurrent.policy;
  scenario : scenario;
  seed : int;
  alts_count : int;
  sanitizer : Sanitizer.t option;
}

let viol rr check detail =
  Report.violation check ~scenario:rr.scenario.sc_name
    ~policy:(Concurrent.describe rr.policy) ~seed:rr.seed detail

(* ------------------------------------------------------------------ *)
(* Running a scenario.                                                 *)

let mk_engine ?shards seed =
  Engine.create ~model:Cost_model.att_3b2 ~seed ?shards ()

let mk_space eng =
  Address_space.create (Engine.frame_store eng) (Engine.model eng)

let mk_source eng scenario =
  if not scenario.uses_source then None
  else begin
    let s = Source.create eng ~name:(scenario.sc_name ^ "-tty") in
    Source.feed s scenario.source_script;
    Some s
  end

let run_scenario ?faults ?(sanitize = false) ?shards scenario ~policy ~seed =
  let engine = mk_engine ?shards seed in
  (* The sanitizer attaches before anything is spawned (its vector clocks
     must see every Spawned event), and fault plans hook the engine before
     anything is spawned, so a campaign covers the whole execution (the
     transparency checker's reference runs stay fault-free: they are built
     by [sequential_reference] below). *)
  let sanitizer = if sanitize then Some (Sanitizer.attach engine) else None in
  (match faults with Some install -> install engine | None -> ());
  let space = mk_space engine in
  Address_space.set_tracking space true;
  scenario.prepare engine space;
  ignore (Address_space.drain_cost space);
  let source = mk_source engine scenario in
  (match (sanitizer, source) with
  | Some sz, Some src -> Sanitizer.observe_source sz src
  | _ -> ());
  let alts = scenario.alts engine ~seed ~source in
  let report = Concurrent.run_toplevel engine ~policy ~space alts in
  {
    engine;
    space;
    source;
    report;
    policy;
    scenario;
    seed;
    alts_count = List.length alts;
    sanitizer;
  }

(* ------------------------------------------------------------------ *)
(* At-most-once synchronisation.                                       *)

let check_at_most_once rr =
  let h = History.of_trace (Engine.trace rr.engine) in
  let out = ref [] in
  let add d = out := viol rr Report.At_most_once d :: !out in
  let wins = History.sync_wins h in
  let lates = History.sync_lates h in
  let winner = rr.report.Concurrent.winner in
  (if rr.report.Concurrent.degraded then begin
     (* The block abandoned speculation: the at-most-once obligation is
        that {e nothing} won — every child must have been prevented from
        committing before the sequential fallback ran. *)
     if wins <> [] then
       add
         "Sync_won recorded although the block degraded to sequential \
          execution";
     match winner with
     | Some w ->
       add
         (Format.asprintf
            "a degraded block reported %a as a speculative winner" Pid.pp w)
     | None -> ()
   end
   else
  match rr.report.Concurrent.outcome with
  | Alt_block.Selected { index; _ } -> (
    match wins with
    | [ (pid, i) ] ->
      if not (Option.equal Pid.equal (Some pid) winner) then
        add
          (Format.asprintf
             "Sync_won by %a but the report names %s as the winner" Pid.pp pid
             (match winner with
             | Some w -> Format.asprintf "%a" Pid.pp w
             | None -> "nobody"));
      if i <> index then
        add
          (Printf.sprintf
             "Sync_won for alternative %d but the outcome selected %d" i index)
    | [] -> add "outcome is Selected but no Sync_won event was recorded"
    | ws ->
      add
        (Printf.sprintf
           "%d Sync_won events in one block: the at-most-once latch fired \
            more than once"
           (List.length ws)))
  | Alt_block.Block_failed _ ->
    if wins <> [] then
      add "Sync_won recorded although the block reported failure");
  List.iter
    (fun (pid, _) ->
      if List.exists (fun (p, _) -> Pid.equal p pid) lates then
        add
          (Format.asprintf "%a both won and lost the synchronisation" Pid.pp
             pid))
    wins;
  let rec dup_late = function
    | [] -> ()
    | (pid, _) :: rest ->
      if List.exists (fun (p, _) -> Pid.equal p pid) rest then
        add
          (Format.asprintf "%a was told \"too late\" more than once" Pid.pp pid);
      dup_late (List.filter (fun (p, _) -> not (Pid.equal p pid)) rest)
  in
  dup_late lates;
  List.iter
    (fun (pid, _) ->
      if not (List.exists (Pid.equal pid) rr.report.Concurrent.children) then
        add
          (Format.asprintf "Sync_late for %a, which is not a block child"
             Pid.pp pid)
      else if Option.equal Pid.equal (Some pid) winner then
        add (Format.asprintf "the winner %a was also told \"too late\"" Pid.pp pid))
    lates;
  let absorbs = History.absorbs h in
  if List.length absorbs > 1 then
    add
      (Printf.sprintf "%d Absorbed rendezvous in one block"
         (List.length absorbs));
  (match (absorbs, winner) with
  | (_, child) :: _, Some w when not (Pid.equal child w) ->
    add
      (Format.asprintf "absorbed %a's pages but the winner is %a" Pid.pp child
         Pid.pp w)
  | (_, child) :: _, None ->
    add (Format.asprintf "absorbed %a's pages without a winner" Pid.pp child)
  | _ -> ());
  (match (rr.report.Concurrent.outcome, winner) with
  | Alt_block.Selected _, Some w
    when Engine.space_of rr.engine w <> None && absorbs = [] ->
    add "the winner owned an address space but no Absorbed rendezvous happened"
  | _ -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Transparency: compare against a fresh sequential run.               *)

let sequential_reference scenario ~seed ~indices =
  let engine = mk_engine seed in
  let space = mk_space engine in
  scenario.prepare engine space;
  ignore (Address_space.drain_cost space);
  let source = mk_source engine scenario in
  let outcome = ref None in
  let pid =
    Engine.spawn engine ~space ~cloneable:false ~name:"seq-ref" (fun ctx ->
        let alts = scenario.alts engine ~seed ~source in
        let chosen = List.filteri (fun i _ -> List.mem i indices) alts in
        outcome := Some (Alt_block.run_first ctx chosen))
  in
  Engine.preserve_space engine pid;
  Engine.run engine;
  (!outcome, space, source)

let source_lines = function
  | None -> []
  | Some s -> List.map (fun (_, _, l) -> l) (Source.output s)

let check_transparency rr =
  let v d = [ viol rr Report.Transparency d ] in
  let compare_state sspace ssource =
    let state_ok =
      Page_map.snapshot_equal
        (Address_space.map rr.space)
        (Address_space.map sspace)
    in
    (if state_ok then []
     else
       v
         "the surviving address space differs from a sequential execution \
          of the winning alternative alone")
    @
    let cl = source_lines rr.source and sl = source_lines ssource in
    if cl = sl then []
    else
      v
        (Printf.sprintf
           "source output differs from the sequential reference: [%s] vs [%s]"
           (String.concat "; " cl) (String.concat "; " sl))
  in
  match rr.report.Concurrent.outcome with
  | Alt_block.Block_failed "timeout" | Alt_block.Block_failed "consensus unreachable"
    ->
    (* The block gave up on the race (deadline, or the synchronisation
       layer was unreachable); there is no sequential counterpart to
       compare against. *)
    []
  | Alt_block.Block_failed _
    when History.faulted (History.of_trace (Engine.trace rr.engine)) ->
    (* An injected fault (dropped message, killed child, ...) may honestly
       fail a block that would succeed sequentially: availability is
       sacrificed, not transparency. What must {e never} happen — and is
       still checked below — is a faulted block {e selecting} a result
       that differs from the sequential semantics. *)
    []
  | Alt_block.Block_failed _ -> (
    let indices = List.init rr.alts_count Fun.id in
    match sequential_reference rr.scenario ~seed:rr.seed ~indices with
    | Some (Alt_block.Selected { index; _ }), _, _ ->
      v
        (Printf.sprintf
           "the block failed although a sequential execution selects \
            alternative %d"
           index)
    | Some (Alt_block.Block_failed _), sspace, ssource ->
      compare_state sspace ssource
    | None, _, _ -> v "sequential reference execution did not complete"
  )
  | Alt_block.Selected { index; value } when rr.report.Concurrent.degraded -> (
    (* The sequential fallback tried the alternatives in order, so the
       reference is a plain first-fit run over all of them — and the
       surviving state must still be indistinguishable from it. *)
    let indices = List.init rr.alts_count Fun.id in
    match sequential_reference rr.scenario ~seed:rr.seed ~indices with
    | Some (Alt_block.Selected { index = index'; value = value' }), sspace, ssource
      ->
      (if index' <> index || value' <> value then
         v
           (Printf.sprintf
              "degraded block selected alternative %d (value %d) but a \
               sequential execution selects %d (value %d)"
              index value index' value')
       else [])
      @ compare_state sspace ssource
    | Some (Alt_block.Block_failed _), _, _ ->
      v
        (Printf.sprintf
           "degraded block selected alternative %d but a sequential \
            execution fails"
           index)
    | None, _, _ -> v "sequential reference execution did not complete")
  | Alt_block.Selected { index; value } -> (
    match sequential_reference rr.scenario ~seed:rr.seed ~indices:[ index ] with
    | Some (Alt_block.Selected { index = 0; value = value' }), sspace, ssource
      ->
      (if value' <> value then
         v
           (Printf.sprintf
              "winning alternative %d returned %d concurrently but %d \
               sequentially"
              index value value')
       else [])
      @ compare_state sspace ssource
    | Some _, _, _ ->
      v
        (Printf.sprintf
           "winning alternative %d fails when re-executed alone" index)
    | None, _, _ -> v "sequential reference execution did not complete")

(* ------------------------------------------------------------------ *)
(* World soundness.                                                    *)

let check_world rr =
  let h = History.of_trace (Engine.trace rr.engine) in
  let out = ref [] in
  let add d = out := viol rr Report.World d :: !out in
  List.iter
    (fun (dest, dest_pred, m) ->
      if Predicate.conflicts dest_pred m.Message.predicate then
        add
          (Format.asprintf
             "%a accepted a message from %a whose predicate %s conflicts \
              with its own %s"
             Pid.pp dest Pid.pp m.Message.sender
             (Predicate.to_string m.Message.predicate)
             (Predicate.to_string dest_pred)))
    (History.accepts h);
  let fate_tbl = Hashtbl.create 16 in
  List.iter
    (fun (pid, fate) ->
      match Hashtbl.find_opt fate_tbl pid with
      | None -> Hashtbl.replace fate_tbl pid fate
      | Some f when f = fate -> ()
      | Some _ ->
        add (Format.asprintf "contradictory fates recorded for %a" Pid.pp pid))
    (History.fates h);
  List.iter
    (fun (pid, reason) ->
      if reason = "dead world" then
        let eliminated =
          List.exists
            (fun s ->
              match History.classify_exit s with
              | History.Eliminated_exit _ -> true
              | _ -> false)
            (History.exits_of h pid)
        in
        if not eliminated then
          add
            (Format.asprintf
               "%a belonged to a falsified world but was never eliminated"
               Pid.pp pid))
    (History.kills h);
  let live = Engine.live_count rr.engine in
  if live <> 0 then
    add (Printf.sprintf "%d processes still live at quiescence" live);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Elimination bookkeeping.                                            *)

let too_late_exit h pid =
  List.exists
    (fun s -> History.classify_exit s = History.Failed_exit "too late")
    (History.exits_of h pid)

let check_elimination rr =
  let h = History.of_trace (Engine.trace rr.engine) in
  let out = ref [] in
  let add d = out := viol rr Report.Elimination d :: !out in
  let children = rr.report.Concurrent.children in
  let winner = rr.report.Concurrent.winner in
  if rr.report.Concurrent.spawned <> List.length children then
    add
      (Printf.sprintf "report claims %d spawned alternatives but lists %d"
         rr.report.Concurrent.spawned (List.length children));
  List.iter
    (fun c ->
      (match History.exits_of h c with
      | [ st ] -> (
        let is_winner = Option.equal Pid.equal (Some c) winner in
        (match History.classify_exit st with
        | History.Ok_exit ->
          if not is_winner then
            add
              (Format.asprintf
                 "losing alternative %a exited ok: a second alternative's \
                  effects survived"
                 Pid.pp c)
        | _ ->
          if is_winner then
            add (Format.asprintf "the winner %a exited %S" Pid.pp c st));
        if rr.policy.Concurrent.elimination = Concurrent.No_elim then
          match History.classify_exit st with
          | History.Eliminated_exit "sibling elimination"
          | History.Eliminated_exit "alt_wait timeout" ->
            add
              (Format.asprintf
                 "the policy issues no eliminations, yet %a exited %S" Pid.pp
                 c st)
          | _ -> ())
      | [] ->
        add
          (Format.asprintf
             "child %a has no Exited event: the alternative leaked past the \
              block"
             Pid.pp c)
      | l ->
        add (Format.asprintf "child %a exited %d times" Pid.pp c (List.length l)));
      if Engine.status rr.engine c = None then
        add
          (Format.asprintf "child %a has no exit status at quiescence" Pid.pp c))
    children;
  let lates = History.sync_lates h in
  List.iter
    (fun (pid, _) ->
      if not (too_late_exit h pid) then
        add
          (Format.asprintf
             "%a lost the synchronisation but did not abort with \"too late\""
             Pid.pp pid))
    lates;
  List.iter
    (fun c ->
      if
        too_late_exit h c
        && not (List.exists (fun (p, _) -> Pid.equal p c) lates)
      then
        add
          (Format.asprintf "%a aborted \"too late\" without a Sync_late event"
             Pid.pp c))
    children;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Overhead accounting.                                                *)

let check_accounting rr =
  let h = History.of_trace (Engine.trace rr.engine) in
  let out = ref [] in
  let add d = out := viol rr Report.Accounting d :: !out in
  let rep = rr.report in
  let winner = rep.Concurrent.winner in
  let expected_waste =
    List.fold_left
      (fun acc c ->
        if Option.equal Pid.equal (Some c) winner then acc
        else acc +. Engine.cpu_time_of rr.engine c)
      0. rep.Concurrent.children
  in
  if
    Float.abs (rep.Concurrent.wasted_cpu -. expected_waste)
    > 1e-9 +. (1e-9 *. Float.abs expected_waste)
  then
    add
      (Printf.sprintf
         "wasted_cpu %.9f does not reconcile with the engine's per-child \
          CPU ledger %.9f"
         rep.Concurrent.wasted_cpu expected_waste);
  (match rr.policy.Concurrent.sync with
  | Concurrent.Local ->
    if rep.Concurrent.sync_messages <> 0 then
      add
        (Printf.sprintf "local latch reports %d sync messages"
           rep.Concurrent.sync_messages);
    let stray =
      History.count_sent_tag h ~tag:"vote_req"
      + History.count_sent_tag h ~tag:"vote_rep"
    in
    if stray <> 0 then
      add
        (Printf.sprintf
           "%d consensus protocol messages traced under the local latch" stray)
  | Concurrent.Consensus _ ->
    let live_voter pid =
      match History.name_of h pid with
      | Some n ->
        String.starts_with ~prefix:"voter" n
        && not (String.ends_with ~suffix:"(crashed)" n)
      | None -> false
    in
    let expected =
      History.count_accept_tag h ~tag:"vote_req" ~dest_ok:live_voter
      + History.count_sent_tag h ~tag:"vote_rep"
    in
    if rep.Concurrent.sync_messages <> expected then
      add
        (Printf.sprintf
           "report counts %d sync messages but the trace accounts for %d"
           rep.Concurrent.sync_messages expected));
  (match rr.policy.Concurrent.placement with
  | Concurrent.Local_spawn ->
    let quiescent =
      List.fold_left
        (fun acc c ->
          match Engine.space_of rr.engine c with
          | Some sp -> acc + Address_space.cow_copies sp
          | None -> acc)
        0 rep.Concurrent.children
    in
    let store_total = Frame_store.cow_copies (Engine.frame_store rr.engine) in
    (* A degraded parent re-runs alternatives inline: Alt_block.attempt
       forks the parent's own space, so post-fork writes charge
       copy-on-write faults to the parent, not to any child. In a
       non-degraded run the parent's counter is the absorbed winner's
       (Page_map.absorb folds the child's count into the parent), already
       present in the children's sum — counting it again would double it.
       A degraded run absorbed no winner, so the parent's counter is
       exactly its own inline faults. *)
    let parent_copies =
      if rep.Concurrent.degraded then Address_space.cow_copies rr.space else 0
    in
    if rep.Concurrent.child_cow_copies > quiescent then
      add
        (Printf.sprintf
           "report counts %d child copy-on-write faults but the children's \
            maps account for only %d"
           rep.Concurrent.child_cow_copies quiescent);
    if quiescent + parent_copies <> store_total then
      add
        (Printf.sprintf
           "children's (%d) and parent's (%d) copy-on-write counters do \
            not reconcile with the frame store's total (%d)"
           quiescent parent_copies store_total)
  | Concurrent.Remote_spawn | Concurrent.Remote_on_demand -> ());
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Everything.                                                         *)

let check_all rr =
  let policy = Concurrent.describe rr.policy in
  check_at_most_once rr @ check_transparency rr @ check_world rr
  @ check_elimination rr @ check_accounting rr
  @ Race.check_isolation rr.engine ~children:rr.report.Concurrent.children
      ~scenario:rr.scenario.sc_name ~policy ~seed:rr.seed
  @
  match rr.source with
  | Some s ->
    Race.check_sources s ~scenario:rr.scenario.sc_name ~policy ~seed:rr.seed
  | None -> []

let run_checked ?faults ?sanitize ?shards scenario ~policy ~seed =
  let rr = run_scenario ?faults ?sanitize ?shards scenario ~policy ~seed in
  let vs = check_all rr in
  match rr.sanitizer with
  | None -> (rr, vs)
  | Some sz ->
    (* The post-mortem checkers are the sanitizer's oracle: on every cell
       the streaming verdict must agree with the replay verdict. Agreement
       contributes nothing, so clean sweeps stay byte-identical; a
       divergence is a finding of its own class (exit code 17). *)
    Sanitizer.detach sz;
    let policy_s = Concurrent.describe policy in
    ( rr,
      vs
      @ Sanitizer.crosscheck sz ~oracle:vs ~scenario:scenario.sc_name
          ~policy:policy_s ~seed )

(* ------------------------------------------------------------------ *)
(* The default scenarios.                                              *)

let page_size_of sp = (Address_space.model sp).Cost_model.page_size

let counters =
  let prepare _eng sp =
    let p = page_size_of sp in
    Address_space.set_int sp ~addr:0 100;
    Address_space.set_int sp ~addr:p 200;
    Address_space.set_string sp ~addr:(2 * p) "baseline"
  in
  let alts _eng ~seed ~source:_ =
    List.init 3 (fun i ->
        Alternative.make
          ~name:(Printf.sprintf "ctr%d" i)
          (fun ctx ->
            let sp = Option.get (Engine.space ctx) in
            let p = page_size_of sp in
            let rng = Rng.create ~seed:((seed * 97) + i) in
            Engine.delay ctx (0.002 +. Rng.float rng 0.02);
            (* Racing read-modify-write of the shared counters: every
               sibling must privatise these pages copy-on-write. *)
            let v0 = Address_space.get_int sp ~addr:0 in
            Address_space.set_int sp ~addr:0 (v0 + i + 1);
            Address_space.set_int sp ~addr:p (((seed + i) * 7) land 0xffff);
            Address_space.set_int sp
              ~addr:((10 + i) * p)
              ((i * 1000) + (seed land 0xff));
            Engine.charge_memory ctx;
            (100 * i) + (seed land 0xfff)))
  in
  { sc_name = "counters"; uses_source = false; source_script = []; prepare; alts }

let guarded =
  let prepare _eng sp = Address_space.set_int sp ~addr:0 7 in
  let alts _eng ~seed ~source:_ =
    let n = 3 in
    let open_i = seed mod n in
    let failing_i = (open_i + 1) mod n in
    let closed_i = (open_i + 2) mod n in
    List.init n (fun i ->
        Alternative.make
          ~name:(Printf.sprintf "g%d" i)
          ~guard:(fun _ -> i <> closed_i)
          (fun ctx ->
            let sp = Option.get (Engine.space ctx) in
            let p = page_size_of sp in
            let rng = Rng.create ~seed:((seed * 53) + i) in
            Engine.delay ctx (0.001 +. Rng.float rng 0.01);
            if i = failing_i then raise (Alternative.Failed "rejected");
            Address_space.set_int sp ~addr:0 (seed + i);
            Address_space.set_string sp ~addr:(3 * p)
              (Printf.sprintf "winner=%d" i);
            Engine.charge_memory ctx;
            (10 * i) + (seed mod 100)))
  in
  { sc_name = "guarded"; uses_source = false; source_script = []; prepare; alts }

let teletype =
  let prepare _eng sp = Address_space.set_int sp ~addr:0 1 in
  let alts _eng ~seed ~source =
    let src = Option.get source in
    List.init 2 (fun i ->
        Alternative.make
          ~name:(Printf.sprintf "tty%d" i)
          (fun ctx ->
            let sp = Option.get (Engine.space ctx) in
            let p = page_size_of sp in
            let rng = Rng.create ~seed:((seed * 131) + i) in
            Engine.delay ctx (0.002 +. Rng.float rng 0.01);
            let line = Source.read ctx src in
            Source.write ctx src (Printf.sprintf "alt%d saw %s" i line);
            Address_space.set_string sp ~addr:(4 * p) line;
            Engine.charge_memory ctx;
            i + String.length line))
  in
  {
    sc_name = "teletype";
    uses_source = true;
    source_script = [ "alpha"; "beta" ];
    prepare;
    alts;
  }

let all_fail =
  let prepare _eng sp = Address_space.set_string sp ~addr:0 "untouched" in
  let alts _eng ~seed ~source:_ =
    List.init 2 (fun i ->
        Alternative.make
          ~name:(Printf.sprintf "f%d" i)
          (fun ctx ->
            let sp = Option.get (Engine.space ctx) in
            let rng = Rng.create ~seed:((seed * 17) + i) in
            Engine.delay ctx (0.001 +. Rng.float rng 0.005);
            (* Scratch write on a shared page: discarded with the loser. *)
            Address_space.set_int sp ~addr:64 (i + seed);
            Engine.charge_memory ctx;
            raise (Alternative.Failed "no result")))
  in
  { sc_name = "all-fail"; uses_source = false; source_script = []; prepare; alts }

let default_scenarios = [ counters; guarded; teletype; all_fail ]

let find_scenario name =
  List.find_opt (fun s -> String.equal s.sc_name name) default_scenarios

(* ------------------------------------------------------------------ *)
(* Per-request report checks.

   The serving layer answers each admitted request with a block report;
   these checks audit one report's self-consistency without a trace (the
   serving engines keep recording off for throughput — the trace-based
   checkers above need [run_scenario]'s full instrumentation). They are a
   sound subset of the post-mortem classes: any violation here implies
   the corresponding replay checker would find one too. *)

let check_report ~scenario ~policy ~seed (rep : _ Concurrent.report) =
  let out = ref [] in
  let add cls d =
    out :=
      Report.violation cls ~scenario ~policy:(Concurrent.describe policy) ~seed d
      :: !out
  in
  if rep.Concurrent.spawned <> List.length rep.Concurrent.children then
    add Report.Elimination
      (Printf.sprintf "report claims %d spawned alternatives but lists %d"
         rep.Concurrent.spawned
         (List.length rep.Concurrent.children));
  (match (rep.Concurrent.outcome, rep.Concurrent.winner) with
  | _, Some w when rep.Concurrent.degraded ->
    add Report.At_most_once
      (Format.asprintf "a degraded block reported %a as a speculative winner"
         Pid.pp w)
  | Alt_block.Selected _, Some w ->
    if not (List.exists (Pid.equal w) rep.Concurrent.children) then
      add Report.At_most_once
        (Format.asprintf "the winner %a is not a block child" Pid.pp w)
  | Alt_block.Selected _, None ->
    if not rep.Concurrent.degraded then
      add Report.At_most_once
        "outcome is Selected but the report names no winner"
  | Alt_block.Block_failed _, Some w ->
    add Report.At_most_once
      (Format.asprintf "a failed block reported %a as its winner" Pid.pp w)
  | Alt_block.Block_failed _, None -> ());
  if rep.Concurrent.wasted_cpu < 0. then
    add Report.Accounting
      (Printf.sprintf "negative wasted_cpu %.9f" rep.Concurrent.wasted_cpu);
  if rep.Concurrent.elapsed < 0. then
    add Report.Accounting
      (Printf.sprintf "negative elapsed %.9f" rep.Concurrent.elapsed);
  (match policy.Concurrent.sync with
  | Concurrent.Local ->
    if rep.Concurrent.sync_messages <> 0 then
      add Report.Accounting
        (Printf.sprintf "local latch reports %d sync messages"
           rep.Concurrent.sync_messages)
  | Concurrent.Consensus _ -> ());
  List.rev !out

(* The supervised variant: audit the inner report, then the recovery
   bookkeeping — a recovered request must look like exactly what it is,
   one epoch-fenced incarnation per restart, never a winner invented by
   a dead coordinator. *)
let check_supervised_report ~scenario ~policy ~seed
    (sr : _ Concurrent.supervised_report) =
  let out = ref (check_report ~scenario ~policy ~seed sr.Concurrent.sr_report) in
  let add cls d =
    out :=
      !out
      @ [ Report.violation cls ~scenario ~policy:(Concurrent.describe policy)
            ~seed d ]
  in
  let recoveries = List.length sr.Concurrent.sr_recoveries in
  if sr.Concurrent.sr_incarnations < 1 then
    add Report.Elimination "supervised block launched no incarnation";
  if sr.Concurrent.sr_incarnations <> recoveries + 1 then
    add Report.Elimination
      (Printf.sprintf "%d incarnations but %d recoveries"
         sr.Concurrent.sr_incarnations recoveries);
  if sr.Concurrent.sr_epoch <> sr.Concurrent.sr_incarnations then
    add Report.At_most_once
      (Printf.sprintf
         "report epoch %d is not the last incarnation's (%d): a stale \
          incarnation answered through the fence"
         sr.Concurrent.sr_epoch sr.Concurrent.sr_incarnations);
  List.iteri
    (fun i (_, _, epoch) ->
      if epoch <> i + 2 then
        add Report.At_most_once
          (Printf.sprintf "recovery %d fenced to epoch %d, expected %d" i
             epoch (i + 2)))
    sr.Concurrent.sr_recoveries;
  (match (sr.Concurrent.sr_report.Concurrent.outcome,
          sr.Concurrent.sr_coordinator) with
  | Alt_block.Selected _, None ->
    add Report.At_most_once
      "a decided supervised block has no final coordinator"
  | _ -> ());
  !out

(* ------------------------------------------------------------------ *)
(* The policy matrix.                                                  *)

let policy_matrix =
  let eliminations =
    [ Concurrent.Sync_elim; Concurrent.Async_elim; Concurrent.No_elim ]
  in
  let syncs =
    [
      Concurrent.Local;
      Concurrent.Consensus
        { nodes = 3; crashed = []; vote_delay = 0.0002; reply_timeout = 0.5 };
    ]
  in
  let guards =
    [
      Concurrent.Guard_in_child;
      Concurrent.Guard_before_spawn;
      Concurrent.Guard_at_sync;
      Concurrent.Guard_redundant;
    ]
  in
  List.concat_map
    (fun elimination ->
      List.concat_map
        (fun sync ->
          List.map
            (fun g ->
              { Concurrent.default_policy with elimination; sync; guards = g })
            guards)
        syncs)
    eliminations

(* ------------------------------------------------------------------ *)
(* The sweep, fanned out over a domain pool.

   Every cell of the (scenario, policy, seed) matrix is an independent
   simulation: {!run_scenario} builds a fresh [Engine.t] (own event
   queue, trace, frame store, process table, RNG), a fresh address
   space, and a fresh source device, and the checkers only read that
   run's state. Audit of everything a cell touches (2026-08, for this
   module's domain parallelism):

   - [Engine] / [Event_queue] / [Trace] / [Fate_registry]: all state
     hangs off the [Engine.t] created per cell; effect handlers are
     per-fiber, not global.
   - [Frame_store] / [Address_space] / [Page_map] / [Checkpoint]:
     reached only through the per-engine frame store.
   - [Majority] / [Source]: spawn processes inside the cell's engine;
     their counters live in the values returned by [create].
   - [Rng]: generators are values; scenarios derive theirs from the
     cell seed. [Pid.Allocator] instances are per-engine.
   - No module in alt_base, alt_pages, alt_predicate, alt_msg,
     alt_runtime, alt_consensus, alt_sources, altexec or alt_analysis
     defines top-level mutable state (checked: no module-level [ref],
     [Hashtbl.create], [Buffer.create] or [mutable] record fields
     reachable from a toplevel binding).

   Results are collected by {!Parallel.map_indexed} in index order, so a
   parallel sweep reports byte-for-byte what the sequential sweep
   reports, whatever the domain count. *)

type cell = { cell_scenario : scenario; cell_policy : Concurrent.policy; cell_seed : int }

let matrix_cells ?(seeds = 5) ?(scenarios = default_scenarios)
    ?(policies = policy_matrix) () =
  Array.of_list
    (List.concat_map
       (fun sc ->
         List.concat_map
           (fun policy ->
             List.init seeds (fun i ->
                 { cell_scenario = sc; cell_policy = policy; cell_seed = i + 1 }))
           policies)
       scenarios)

let run_cells ?(jobs = 1) ?sanitize ?shards cells =
  Parallel.map_indexed_shared ~jobs
    (fun i ->
      let c = cells.(i) in
      run_checked ?sanitize ?shards c.cell_scenario ~policy:c.cell_policy
        ~seed:c.cell_seed)
    (Array.length cells)

let run_matrix ?seeds ?scenarios ?policies ?jobs ?sanitize ?shards () =
  let cells = matrix_cells ?seeds ?scenarios ?policies () in
  let results = run_cells ?jobs ?sanitize ?shards cells in
  let violations =
    List.concat_map (fun (_, vs) -> vs) (Array.to_list results)
  in
  (violations, Array.length cells)
