(** Structured findings of the analysis layer.

    Every checker names its findings with a {!check_class}; the classes map
    to distinct process exit codes so that scripted runs of [altcheck] can
    tell {e which} invariant of the paper broke without parsing output. All
    exit codes [altcheck] can produce — checker classes, the determinism
    contract, and the lint verdicts — live in one {!registry}; the CLI
    table ([altcheck codes]) and the docs are derived from it. *)

(** The invariant families, in severity order (most fundamental first). *)
type check_class =
  | At_most_once
      (** Exactly one alternative synchronises; everyone else is too late
          (section 3.2: the at-most-once synchronisation). *)
  | Transparency
      (** The surviving state and result are bit-identical to a sequential
          execution of the winning alternative alone (section 3). *)
  | World
      (** Predicate/world soundness: no acceptance of a conflicting
          message, immutable fates, falsified worlds eliminated
          (sections 3.3-3.4). *)
  | Elimination
      (** Every spawned alternative is accounted for: one exit each, only
          the winner succeeds, losers terminate (section 3.2.1). *)
  | Isolation
      (** No two live siblings mutate the same physical frame: sink state
          updates are privatised copy-on-write (section 3.3). *)
  | Sources
      (** No speculative process's output reaches a source device
          (section 3.4.2). *)
  | Accounting
      (** The execution report's overhead counters reconcile with the
          engine's own measurements (section 4). *)
  | Sanitizer
      (** The online sanitizer ({!Sanitizer}) and the post-mortem checkers
          disagree on a run — one of the two monitors is wrong, which is
          itself a finding. Streaming flags that mirror a post-mortem class
          are reported under {e that} class; this class only covers
          divergence between the two. *)

val all_classes : check_class list
(** Every class, in severity (= declaration) order. *)

val class_name : check_class -> string
(** Short stable identifier, e.g. ["at-most-once"]. *)

val class_provenance : check_class -> string
(** The source file whose logic the class verifies,
    e.g. ["lib/core/concurrent.ml"]. *)

val class_exit_code : check_class -> int
(** Distinct nonzero process exit code per class (10-17), looked up in
    {!registry}. *)

(** {1 The exit-code registry} *)

type code_info = {
  code : int;  (** The process exit code. *)
  label : string;  (** Stable identifier ({!class_name} for checker classes). *)
  meaning : string;  (** One-line account, used by the CLI table and docs. *)
  source : string;  (** The source file the code's logic lives in. *)
}

val registry : code_info list
(** Every exit code [altcheck] can produce, in ascending order: [0] (ok),
    [10]-[17] (checker classes), [20] (determinism contract), [21]-[22]
    (lint verdicts). The single source of truth: the CLI and docs derive
    their tables from this list. *)

val code_of_label : string -> int
(** Look a code up by its label. Raises [Invalid_argument] on labels not in
    {!registry}. *)

val code_determinism : int
(** Exit code of a jobs-1 vs jobs-N report mismatch (20). *)

val code_lint_conflict : int
(** Exit code when [altcheck lint] finds conflicting alternatives (21). *)

val code_lint_unknown : int
(** Exit code when [altcheck lint] cannot analyse its input (22). *)

val pp_code_table : Format.formatter -> unit -> unit
(** The registry as an aligned text table, one code per line — what
    [altcheck codes] prints and what the README quotes. *)

type violation = {
  check : check_class;
  scenario : string;  (** Which workload tripped it. *)
  policy : string;  (** {!Concurrent.describe} of the policy in force. *)
  seed : int;
  detail : string;  (** Human-readable account of the failure. *)
}

val violation :
  check_class -> scenario:string -> policy:string -> seed:int -> string ->
  violation

val pp_violation : Format.formatter -> violation -> unit
(** One line: [file:check: detail (scenario, policy, seed)]. *)

val exit_code : violation list -> int
(** [0] for no violations; otherwise the exit code of the most severe
    class present (severity = declaration order of {!check_class}). *)

val severity : check_class -> int
(** Position in {!all_classes} (0 = most fundamental). *)
