(** Structured findings of the analysis layer.

    Every checker names its findings with a {!check_class}; the classes map
    to distinct process exit codes so that scripted runs of [altcheck] can
    tell {e which} invariant of the paper broke without parsing output. *)

(** The invariant families, in severity order (most fundamental first). *)
type check_class =
  | At_most_once
      (** Exactly one alternative synchronises; everyone else is too late
          (section 3.2: the at-most-once synchronisation). *)
  | Transparency
      (** The surviving state and result are bit-identical to a sequential
          execution of the winning alternative alone (section 3). *)
  | World
      (** Predicate/world soundness: no acceptance of a conflicting
          message, immutable fates, falsified worlds eliminated
          (sections 3.3-3.4). *)
  | Elimination
      (** Every spawned alternative is accounted for: one exit each, only
          the winner succeeds, losers terminate (section 3.2.1). *)
  | Isolation
      (** No two live siblings mutate the same physical frame: sink state
          updates are privatised copy-on-write (section 3.3). *)
  | Sources
      (** No speculative process's output reaches a source device
          (section 3.4.2). *)
  | Accounting
      (** The execution report's overhead counters reconcile with the
          engine's own measurements (section 4). *)

val class_name : check_class -> string
(** Short stable identifier, e.g. ["at-most-once"]. *)

val class_provenance : check_class -> string
(** The source file whose logic the class verifies,
    e.g. ["lib/core/concurrent.ml"]. *)

val class_exit_code : check_class -> int
(** Distinct nonzero process exit code per class (10-16). *)

type violation = {
  check : check_class;
  scenario : string;  (** Which workload tripped it. *)
  policy : string;  (** {!Concurrent.describe} of the policy in force. *)
  seed : int;
  detail : string;  (** Human-readable account of the failure. *)
}

val violation :
  check_class -> scenario:string -> policy:string -> seed:int -> string ->
  violation

val pp_violation : Format.formatter -> violation -> unit
(** One line: [file:check: detail (scenario, policy, seed)]. *)

val exit_code : violation list -> int
(** [0] for no violations; otherwise the exit code of the most severe
    class present (severity = declaration order of {!check_class}). *)
