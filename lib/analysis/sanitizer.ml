(* The online sanitizer: a streaming monitor over the engine's trace,
   page-write, and source-emission hooks. Where the post-mortem checkers
   replay a finished [History] (memory grows with run length, findings
   carry no "caught in the act" coordinates), the sanitizer consumes each
   event as it happens with state bounded by the live working set —
   processes, in-flight messages, live frames — and flags violations at
   the exact virtual time and pid of the offence.

   Happens-before is tracked with per-process vector clocks:

   - [Spawned]   child clock := parent clock joined with {child -> 1}
   - [Sent]      snapshot the sender's clock under (sender, seq), tick
   - [Accepted]  receiver clock := join with the snapshot, tick
   - [Absorbed]  parent clock := join with the winner child's clock

   Page writes reach the sanitizer through the frame store's write
   observer (tracked maps only). Two different maps writing the same
   physical frame is an isolation race unless the writes are ordered by
   happens-before — the one legal unordered-looking case, a parent
   rewriting frames it absorbed from the winner, is exactly the case the
   absorb join orders. *)

type flag = {
  sf_time : float;
  sf_class : Report.check_class;
  sf_pid : Pid.t option;
  sf_detail : string;
}

type owner =
  | Single of Pid.t
  | Shared of Pid.t list  (* deliberately shared space: >= 2 registrants *)

type t = {
  eng : Engine.t;
  clocks : (Pid.t, int Pid.Map.t) Hashtbl.t;
  msg_snap : (Pid.t * int, int Pid.Map.t) Hashtbl.t;
      (* clock snapshot at Sent, keyed (sender, seq); drained at
         Accepted / Ignored / injected drop so in-flight traffic bounds
         the table, not run length *)
  maps : (int, owner) Hashtbl.t;  (* page-map id -> owning process *)
  frames : (int * int, Pid.t * int Pid.Map.t) Hashtbl.t;
      (* (vpage, frame id) -> last writer and its clock at the write *)
  owned_frames : (Pid.t, (int * int) list ref) Hashtbl.t;
      (* writer -> its entries in [frames], for O(own) pruning *)
  dead : (Pid.t, unit) Hashtbl.t;  (* exited pids (liveness for Shared) *)
  mutable wins : (Pid.t * int * int) list;  (* (pid, index, epoch), newest first *)
  lates : (Pid.t, unit) Hashtbl.t;
  epoch_wins : (int, int) Hashtbl.t;
  mutable fence : int;  (* epochs below this were fenced by a recovery *)
  mutable degraded : bool;
  mutable sources_seen : int;
  mutable flags : flag list;  (* newest first *)
  mutable flag_count : int;
  mutable in_flag : bool;  (* re-entrancy guard while tracing a flag *)
}

(* ------------------------------------------------------------------ *)
(* Vector clocks.                                                      *)

let clock_of t pid =
  match Hashtbl.find_opt t.clocks pid with
  | Some c -> c
  | None -> Pid.Map.empty

let tick t pid =
  let c = clock_of t pid in
  let n = match Pid.Map.find_opt pid c with Some n -> n | None -> 0 in
  Hashtbl.replace t.clocks pid (Pid.Map.add pid (n + 1) c)

let join a b = Pid.Map.union (fun _ x y -> Some (max x y)) a b

(* [leq a b]: every component of [a] is known to [b] — the event that
   snapshotted [a] happens-before the holder of [b]. *)
let leq a b =
  Pid.Map.for_all
    (fun p n -> match Pid.Map.find_opt p b with Some m -> n <= m | None -> false)
    a

(* ------------------------------------------------------------------ *)
(* Flagging.                                                           *)

let flag t ?pid cls detail =
  let time = Engine.now t.eng in
  t.flags <- { sf_time = time; sf_class = cls; sf_pid = pid; sf_detail = detail } :: t.flags;
  t.flag_count <- t.flag_count + 1;
  if not t.in_flag then begin
    t.in_flag <- true;
    Trace.record (Engine.trace t.eng) ~time
      (Trace.Sanitizer_flag
         { check = Report.class_name cls; pid; detail });
    t.in_flag <- false
  end

(* ------------------------------------------------------------------ *)
(* Page-map registration and the write observer.                       *)

let register_map t pid =
  match Engine.space_of t.eng pid with
  | None -> ()
  | Some sp ->
    let id = Page_map.id (Address_space.map sp) in
    (match Hashtbl.find_opt t.maps id with
    | None -> Hashtbl.replace t.maps id (Single pid)
    | Some (Single p) when not (Pid.equal p pid) ->
      Hashtbl.replace t.maps id (Shared [ pid; p ])
    | Some (Shared ps) when not (List.exists (Pid.equal pid) ps) ->
      Hashtbl.replace t.maps id (Shared (pid :: ps))
    | Some _ -> ())

let note_owned t pid key =
  match Hashtbl.find_opt t.owned_frames pid with
  | Some l -> l := key :: !l
  | None -> Hashtbl.replace t.owned_frames pid (ref [ key ])

let prune_owned t pid =
  match Hashtbl.find_opt t.owned_frames pid with
  | None -> ()
  | Some l ->
    List.iter
      (fun key ->
        match Hashtbl.find_opt t.frames key with
        | Some (p, _) when Pid.equal p pid -> Hashtbl.remove t.frames key
        | _ -> ())
      !l;
    Hashtbl.remove t.owned_frames pid

let on_write t ~map ~vpage ~frame =
  match Hashtbl.find_opt t.maps map with
  | None -> ()  (* unregistered map (e.g. a degraded parent's inline fork):
                   no process attribution, stay conservative and silent —
                   the post-mortem oracle only audits block children *)
  | Some (Shared ps) ->
    let live = List.filter (fun p -> not (Hashtbl.mem t.dead p)) ps in
    if List.length live >= 2 then
      flag t ~pid:(List.hd live) Report.Isolation
        (Format.asprintf
           "write to frame %d (vpage %d) of an address space shared by %d \
            live siblings"
           frame vpage (List.length live))
  | Some (Single pid) -> (
    let key = (vpage, frame) in
    match Hashtbl.find_opt t.frames key with
    | None ->
      Hashtbl.replace t.frames key (pid, clock_of t pid);
      note_owned t pid key
    | Some (prev, _) when Pid.equal prev pid ->
      Hashtbl.replace t.frames key (pid, clock_of t pid)
    | Some (prev, snap) ->
      if leq snap (clock_of t pid) then begin
        (* Ordered handoff (absorb): re-own the frame. *)
        Hashtbl.replace t.frames key (pid, clock_of t pid);
        note_owned t pid key
      end
      else
        flag t ~pid Report.Isolation
          (Format.asprintf
             "%a wrote frame %d (vpage %d) concurrently with %a: the write \
              was not privatised copy-on-write"
             Pid.pp pid frame vpage Pid.pp prev))

(* ------------------------------------------------------------------ *)
(* Trace events.                                                       *)

let on_event t ~time:_ e =
  match e with
  | Trace.Sanitizer_flag _ -> ()  (* our own breadcrumbs *)
  | Trace.Spawned { pid; parent; _ } ->
    let base =
      match parent with
      | Some p ->
        tick t p;
        clock_of t p
      | None -> Pid.Map.empty
    in
    Hashtbl.replace t.clocks pid (join base (Pid.Map.singleton pid 1));
    register_map t pid
  | Trace.Sent { msg } ->
    let sender = msg.Message.sender in
    Hashtbl.replace t.msg_snap (sender, msg.Message.seq) (clock_of t sender);
    tick t sender
  | Trace.Accepted { dest; msg; dest_pred } ->
    let key = (msg.Message.sender, msg.Message.seq) in
    (match Hashtbl.find_opt t.msg_snap key with
    | Some snap ->
      Hashtbl.remove t.msg_snap key;
      Hashtbl.replace t.clocks dest (join (clock_of t dest) snap)
    | None -> ()  (* duplicate delivery: the join already happened *));
    tick t dest;
    if Predicate.conflicts dest_pred msg.Message.predicate then
      flag t ~pid:dest Report.World
        (Format.asprintf
           "%a accepted a message from %a whose predicate %s conflicts with \
            its own %s"
           Pid.pp dest Pid.pp msg.Message.sender
           (Predicate.to_string msg.Message.predicate)
           (Predicate.to_string dest_pred))
  | Trace.Ignored { msg; _ } ->
    Hashtbl.remove t.msg_snap (msg.Message.sender, msg.Message.seq)
  | Trace.Injected { kind = "drop" | "partition-drop"; msg = Some msg; _ } ->
    Hashtbl.remove t.msg_snap (msg.Message.sender, msg.Message.seq)
  | Trace.Absorbed { parent; child } ->
    Hashtbl.replace t.clocks parent (join (clock_of t parent) (clock_of t child));
    tick t parent;
    Hashtbl.remove t.clocks child
  | Trace.Sync_won { pid; index; epoch } ->
    t.wins <- (pid, index, epoch) :: t.wins;
    let per =
      match Hashtbl.find_opt t.epoch_wins epoch with Some n -> n | None -> 0
    in
    Hashtbl.replace t.epoch_wins epoch (per + 1);
    if List.length t.wins > 1 then
      flag t ~pid Report.At_most_once
        (Printf.sprintf
           "the at-most-once latch fired a second time (win %d of the block)"
           (List.length t.wins));
    if per + 1 > 1 then
      flag t ~pid Report.At_most_once
        (Printf.sprintf "%d Sync_won events within epoch %d" (per + 1) epoch);
    if epoch <> 0 && epoch < t.fence then
      flag t ~pid Report.At_most_once
        (Printf.sprintf
           "a stale incarnation won in epoch %d after voters were fenced to \
            epoch %d"
           epoch t.fence);
    if t.degraded then
      flag t ~pid Report.At_most_once
        "Sync_won recorded although the block degraded to sequential \
         execution";
    if Hashtbl.mem t.lates pid then
      flag t ~pid Report.At_most_once
        (Format.asprintf "%a both won and lost the synchronisation" Pid.pp pid)
  | Trace.Sync_late { pid; _ } ->
    if Hashtbl.mem t.lates pid then
      flag t ~pid Report.At_most_once
        (Format.asprintf "%a was told \"too late\" more than once" Pid.pp pid)
    else Hashtbl.replace t.lates pid ();
    if List.exists (fun (p, _, _) -> Pid.equal p pid) t.wins then
      flag t ~pid Report.At_most_once
        (Format.asprintf "the winner %a was also told \"too late\"" Pid.pp pid)
  | Trace.Degraded _ ->
    t.degraded <- true;
    (match t.wins with
    | (pid, _, _) :: _ ->
      flag t ~pid Report.At_most_once
        "the block degraded to sequential execution after a Sync_won"
    | [] -> ())
  | Trace.Recovered { epoch; _ } -> t.fence <- max t.fence epoch
  | Trace.Exited { pid; status } ->
    Hashtbl.replace t.dead pid ();
    (* Clocks of space-less processes are not needed once they exit:
       accepts of their in-flight messages join through [msg_snap]
       snapshots, not live clocks. Space owners keep theirs until the
       absorb rendezvous consumes it (winners) or their world dies
       (losers, pruned with their frames below). *)
    (match Engine.space_of t.eng pid with
    | None -> Hashtbl.remove t.clocks pid
    | Some _ ->
      if not (String.length status >= 2 && String.sub status 0 2 = "ok") then begin
        prune_owned t pid;
        Hashtbl.remove t.clocks pid
      end)
  | Trace.Killed { pid; _ } -> Hashtbl.replace t.dead pid ()
  (* [Delivered_batch] falls through here by design: attaching this
     observer makes the trace live, which forces the engine onto the
     per-entry delivery path, so sanitized runs never emit it. *)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let attach eng =
  let t =
    {
      eng;
      clocks = Hashtbl.create 64;
      msg_snap = Hashtbl.create 64;
      maps = Hashtbl.create 16;
      frames = Hashtbl.create 64;
      owned_frames = Hashtbl.create 16;
      dead = Hashtbl.create 64;
      wins = [];
      lates = Hashtbl.create 8;
      epoch_wins = Hashtbl.create 4;
      fence = 0;
      degraded = false;
      sources_seen = 0;
      flags = [];
      flag_count = 0;
      in_flag = false;
    }
  in
  Trace.set_observer (Engine.trace eng) (Some (fun ~time e -> on_event t ~time e));
  Frame_store.set_write_observer (Engine.frame_store eng)
    (Some (fun ~map ~vpage ~frame -> on_write t ~map ~vpage ~frame));
  t

let detach t =
  Trace.set_observer (Engine.trace t.eng) None;
  Frame_store.set_write_observer (Engine.frame_store t.eng) None

(* The at-most-once state is scoped to ONE alternative block: [wins],
   [lates], per-epoch tallies, the degradation latch and the recovery
   fence all describe "this block's" latch. A serving engine runs many
   independent blocks back to back on one engine; without this reset the
   second block's perfectly legal [Sync_won] would flag as a duplicate
   win of the first. Vector clocks, frame ownership and message
   snapshots deliberately survive — happens-before and isolation span
   the whole engine, whatever block a process belonged to. Accumulated
   flags also survive: they already happened. *)
let next_block t =
  t.wins <- [];
  Hashtbl.reset t.lates;
  Hashtbl.reset t.epoch_wins;
  t.fence <- 0;
  t.degraded <- false

let observe_source t src =
  t.sources_seen <- t.sources_seen + 1;
  Source.set_emission_hook src
    (Some
       (fun ~time:_ ~pid ~line ~certain ->
         if not certain then
           flag t ~pid Report.Sources
             (Printf.sprintf
                "speculative output %S reached source device %S before its \
                 writer's predicates resolved"
                line (Source.name src))))

let flags t = List.rev t.flags
let flag_count t = t.flag_count

let state_size t =
  Hashtbl.length t.clocks + Hashtbl.length t.msg_snap + Hashtbl.length t.maps
  + Hashtbl.length t.frames + Hashtbl.length t.lates
  + Hashtbl.length t.epoch_wins + List.length t.wins

(* ------------------------------------------------------------------ *)
(* Reporting and the oracle cross-check.                               *)

let violations t ~scenario ~policy ~seed =
  List.map
    (fun f ->
      Report.violation f.sf_class ~scenario ~policy ~seed
        (Printf.sprintf "[t=%.6f%s] %s" f.sf_time
           (match f.sf_pid with
           | Some p -> Format.asprintf " pid=%a" Pid.pp p
           | None -> "")
           f.sf_detail))
    (flags t)

let crosscheck t ~oracle ~scenario ~policy ~seed =
  let diverged = ref [] in
  let add d =
    diverged :=
      Report.violation Report.Sanitizer ~scenario ~policy ~seed d :: !diverged
  in
  let oracle_has cls = List.exists (fun v -> v.Report.check = cls) oracle in
  let sanitizer_has cls = List.exists (fun f -> f.sf_class = cls) t.flags in
  (* Everything the sanitizer flags must be visible to the oracle: the
     streaming checks are sound subsets of their post-mortem classes. *)
  List.iter
    (fun cls ->
      if sanitizer_has cls && not (oracle_has cls) then
        add
          (Printf.sprintf
             "the sanitizer flagged %s online but the post-mortem oracle is \
              silent"
             (Report.class_name cls)))
    [ Report.At_most_once; Report.World; Report.Isolation; Report.Sources ];
  (* And on the checks where the two monitors test the same predicate,
     completeness must hold too: an oracle finding the sanitizer slept
     through is a sanitizer bug. *)
  if t.sources_seen > 0 && oracle_has Report.Sources
     && not (sanitizer_has Report.Sources)
  then
    add
      "the post-mortem oracle found an uncertain source emission the \
       sanitizer did not flag at emission time";
  if oracle_has Report.Isolation && not (sanitizer_has Report.Isolation) then
    add
      "the post-mortem oracle found an isolation race the sanitizer did not \
       flag at write time";
  List.rev !diverged
