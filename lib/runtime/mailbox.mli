(** A ring-buffer mailbox with a bounded pool of preallocated frames.

    Serves both as a receiver's mailbox and as a per-channel outbox.
    Entries are addressed by absolute monotone positions that survive
    growth and removal: position [p] lives in physical slot
    [p land (slot_count - 1)] of the power-of-two position arrays.
    Removing from the middle tombstones the entry in place; the head
    advances only over leading tombstones.

    Each entry is either {e framed} — serialised in place into one of at
    most [capacity] pooled, recycled frames (the alloc-free fast path) —
    or {e spilled} — held as a plain immutable {!Message.t} when the
    pool is exhausted by a burst deeper than the ring. Overflow spills
    rather than blocks: sends are asynchronous, so the ring degrades to
    exactly the heap cost of the pre-ring engine, never deadlocks. The
    position-indexed accessors below hide which representation an entry
    uses. *)

type t

type cursor = { ctag : string; mutable cpos : int }
(** A per-tag scan cursor: every position before [cpos] is guaranteed to
    hold no live entry with tag [ctag], so tag-filtered receives can
    skip foreign traffic once instead of rescanning it on every poll.
    Cursors are lower bounds only — correctness never depends on them. *)

val default_capacity : int

val create : ?capacity:int -> unit -> t
(** [capacity] (default {!default_capacity}) bounds the frame pool and
    is rounded up to a power of two; frames are created lazily up to the
    bound and recycled thereafter. [~capacity:0] makes every entry take
    the spill path. *)

val length : t -> int
(** Number of live entries. *)

val is_empty : t -> bool

val capacity : t -> int
(** The frame-pool bound. *)

val head_pos : t -> int
(** First absolute position that may hold a live entry. *)

val tail_pos : t -> int
(** One past the newest absolute position. *)

val has_frame : t -> bool
(** Whether {!emplace_frame} can currently hand out a pooled frame. *)

val emplace_frame : t -> Frame.t
(** Append a framed entry at [tail_pos] and return its frame for the
    caller to {!Frame.fill} or {!Frame.copy_into} immediately. Only
    legal when {!has_frame} holds. *)

val emplace_spilled : t -> Message.t -> unit
(** Append a spilled entry at [tail_pos]: the overflow path, used when
    the frame pool is exhausted (or when the message already exists and
    sharing it is cheaper than re-encoding, e.g. fault-injected
    re-deliveries). *)

(** {2 Position-indexed access}

    All of these expect a position in [\[head_pos, tail_pos)]. A
    position may be a tombstone — check {!occupied_at}. *)

val occupied_at : t -> int -> bool

val tag_at : t -> int -> string
val sender_at : t -> int -> Pid.t
val predicate_at : t -> int -> Predicate.t

val message_at : t -> int -> Message.t
(** The entry as a message: the spilled message itself (no allocation),
    or a materialised view of the frame ({!Frame.message}). *)

val uid_at : t -> int -> int
(** The framed entry's send identity, or [-1] for a spilled entry
    (spilled entries are excluded by physical message identity
    instead — see {!copy_excluding}). *)

val frame_at : t -> int -> Frame.t
(** The pooled frame at a position, or an unoccupied placeholder if the
    entry is spilled or a tombstone. Delivery uses this to decide
    between deep-copying frame bytes and sharing a spilled message. *)

val remove : t -> int -> unit
(** Tombstone the entry at an absolute position: a framed entry's frame
    is cleared and returned to the pool; the head advances past any
    leading tombstones. No-op on an already empty slot. *)

val no_message : Message.t
(** A distinguished message value that is never a real entry: the "no
    acceptable message" sentinel the receive fast path returns instead of
    allocating an option. Compared physically. *)

val transfer_upto : t -> upto:int -> t -> unit
(** [transfer_upto src ~upto dst] moves every live entry in
    [\[head_pos src, upto)] into [dst] — framed entries deep-copy into a
    destination frame (or materialise and spill when [dst]'s pool is
    exhausted), spilled entries share the immutable message value — and
    clears them from [src], advancing its head once. The bulk form of
    per-entry deliver+{!remove} used by batched delivery. *)

val drop_upto : t -> upto:int -> unit
(** Remove every live entry in [\[head_pos, upto)]: the bulk discard for
    batches whose destination is dead. *)

val cursor : t -> string -> cursor
(** The ring's cursor for [tag], created at the current head on first
    use. *)

val copy_excluding : t -> uid:int -> msg:Message.t -> t
(** A fresh ring holding copies of every live entry except those that
    are the given send: framed entries matching [uid] (deep-copied
    otherwise — both rings may consume independently) and entries
    physically sharing [msg] (the accepted message; duplicate copies
    that spilled share their original's cached message value). Used when
    a world split clones a receiver minus the message being accepted. *)

val iter : t -> (pos:int -> Message.t -> unit) -> unit
(** Iterate live entries in position order, as messages. *)

(** {2 Introspection for tests and benchmarks} *)

val frames_made : t -> int
(** Frames created so far ([<= capacity]): stays flat once the pool is
    warm, however much traffic cycles through. *)

val spilled_total : t -> int
(** Total entries that ever took the overflow spill path {e into this
    ring}, whether they arrived through {!emplace_spilled}, the per-entry
    copy of {!transfer_upto}, or a whole-batch adoption (adopted spilled
    entries count exactly as the per-entry path would have counted
    them — the two flush paths must agree byte-for-byte). *)

val spilled_live : t -> int
(** Spilled entries currently live in [head, tail): the part of
    {!length} that is not backed by a pooled frame. *)
