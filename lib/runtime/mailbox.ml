(* A ring-buffer mailbox with a bounded pool of preallocated frames.

   Used both as a receiver's mailbox and as a channel's outbox. Entries
   are addressed by *absolute* monotone positions: [head] is the first
   position that may still hold a live entry, [tail] is one past the
   newest. A position maps to a physical slot by masking with the
   (power-of-two) slot-array length, so positions survive growth and
   removal — the engine's per-tag receive cursors depend on that
   stability.

   Each entry is either *framed* — its payload serialised in place into
   one of at most [capacity] pooled frames, the alloc-free fast path —
   or *spilled* — a plain immutable [Message.t], the overflow path taken
   when every pooled frame is in flight (a burst deeper than the ring's
   capacity). Frames are recycled through a free stack as entries are
   consumed, so sustained traffic that stays within capacity touches the
   heap only for the growable one-word-per-slot position arrays. Spilled
   entries deliberately cost what the pre-ring engine paid per message,
   no more: senders are asynchronous, so overflow degrades to heap
   messages rather than blocking.

   Removal from the middle tombstones the entry in place (the frame goes
   back to the pool); [head] advances only over leading tombstones. *)

type cursor = { ctag : string; mutable cpos : int }

(* Physical slot [i] holds a framed entry iff [frames.(i) != Frame.dummy]
   (equivalently: its frame is occupied), a spilled entry iff
   [msgs.(i) != no_msg]; never both. *)
type t = {
  mutable frames : Frame.t array;  (* pooled frame or [Frame.dummy] *)
  mutable msgs : Message.t array;  (* spilled message or [no_msg] *)
  mutable head : int;
  mutable tail : int;
  mutable live : int;  (* occupied entries in [head, tail) *)
  pool_cap : int;  (* bound on pooled frames *)
  mutable pool : Frame.t array;  (* free frames, a stack in [0, pool_n) *)
  mutable pool_n : int;
  mutable pool_made : int;  (* frames created so far, <= pool_cap *)
  mutable spilled_total : int;  (* entries that took the overflow path *)
  mutable spilled_live : int;  (* spilled entries currently in [head, tail) *)
  mutable cursors : cursor list;  (* per-tag receive cursors *)
}

let default_capacity = 64

(* Sentinel for empty / framed slots in [msgs]; compared physically. *)
let no_msg : Message.t =
  {
    Message.sender = Pid.of_int (-1);
    dest = Pid.of_int (-1);
    predicate = Predicate.empty;
    payload = Payload.Unit;
    tag = "";
    seq = -1;
    size = 0;
  }

let empty_frames : Frame.t array = [||]
let empty_msgs : Message.t array = [||]

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create ?(capacity = default_capacity) () =
  if capacity < 0 then invalid_arg "Mailbox.create: negative capacity";
  let cap = if capacity = 0 then 0 else pow2_at_least capacity 1 in
  {
    frames = empty_frames;
    msgs = empty_msgs;
    head = 0;
    tail = 0;
    live = 0;
    pool_cap = cap;
    pool = empty_frames;
    pool_n = 0;
    pool_made = 0;
    spilled_total = 0;
    spilled_live = 0;
    cursors = [];
  }

let length t = t.live
let is_empty t = t.live = 0
let capacity t = t.pool_cap
let head_pos t = t.head
let tail_pos t = t.tail
let frames_made t = t.pool_made
let spilled_total t = t.spilled_total
let spilled_live t = t.spilled_live

let grow_to t ncap =
  let ocap = Array.length t.frames in
  let omask = ocap - 1 and nmask = ncap - 1 in
  let nframes = Array.make ncap Frame.dummy in
  let nmsgs = Array.make ncap no_msg in
  for pos = t.head to t.tail - 1 do
    (* Consecutive positions stay distinct mod the larger length, so live
       entries keep their absolute positions across growth. *)
    nframes.(pos land nmask) <- t.frames.(pos land omask);
    nmsgs.(pos land nmask) <- t.msgs.(pos land omask)
  done;
  t.frames <- nframes;
  t.msgs <- nmsgs

let grow t =
  (* Quadrupling (not doubling) keeps the total words ever allocated for
     position arrays near 1.3x the final size: these arrays are the only
     per-entry heap cost of a deep burst, so the growth schedule shows up
     directly in words-per-message. *)
  let ocap = Array.length t.frames in
  grow_to t (if ocap = 0 then 8 else ocap * 4)

let ensure_room t =
  if t.tail - t.head >= Array.length t.frames then grow t

let reserve t extra =
  (* Size for a known burst in one step instead of climbing the growth
     ladder (each rung would allocate an intermediate array and re-home
     every live entry into it). *)
  let need = t.tail - t.head + extra in
  if need > Array.length t.frames then grow_to t (pow2_at_least need 8)

let has_frame t = t.pool_n > 0 || t.pool_made < t.pool_cap

let take_frame t =
  if t.pool_n > 0 then begin
    t.pool_n <- t.pool_n - 1;
    Array.unsafe_get t.pool t.pool_n
  end
  else begin
    t.pool_made <- t.pool_made + 1;
    Frame.create ()
  end

let give_back t fr =
  if Array.length t.pool = 0 then t.pool <- Array.make t.pool_cap Frame.dummy;
  Array.unsafe_set t.pool t.pool_n fr;
  t.pool_n <- t.pool_n + 1

let emplace_frame t =
  ensure_room t;
  let fr = take_frame t in
  t.frames.(t.tail land (Array.length t.frames - 1)) <- fr;
  t.tail <- t.tail + 1;
  t.live <- t.live + 1;
  fr

let emplace_spilled t m =
  ensure_room t;
  t.msgs.(t.tail land (Array.length t.msgs - 1)) <- m;
  t.tail <- t.tail + 1;
  t.live <- t.live + 1;
  t.spilled_total <- t.spilled_total + 1;
  t.spilled_live <- t.spilled_live + 1

let frame_at t pos =
  Array.unsafe_get t.frames (pos land (Array.length t.frames - 1))

let spilled_at t pos =
  Array.unsafe_get t.msgs (pos land (Array.length t.msgs - 1))

let occupied_at t pos =
  Frame.occupied (frame_at t pos) || spilled_at t pos != no_msg

let tag_at t pos =
  let fr = frame_at t pos in
  if Frame.occupied fr then Frame.tag fr else (spilled_at t pos).Message.tag

let sender_at t pos =
  let fr = frame_at t pos in
  if Frame.occupied fr then Frame.sender fr
  else (spilled_at t pos).Message.sender

let predicate_at t pos =
  let fr = frame_at t pos in
  if Frame.occupied fr then Frame.predicate fr
  else (spilled_at t pos).Message.predicate

let message_at t pos =
  let fr = frame_at t pos in
  if Frame.occupied fr then Frame.message fr else spilled_at t pos

let uid_at t pos =
  let fr = frame_at t pos in
  if Frame.occupied fr then Frame.uid fr else -1

let remove t pos =
  let i = pos land (Array.length t.frames - 1) in
  let fr = Array.unsafe_get t.frames i in
  let removed =
    if Frame.occupied fr then begin
      Frame.clear fr;
      Array.unsafe_set t.frames i Frame.dummy;
      give_back t fr;
      true
    end
    else if Array.unsafe_get t.msgs i != no_msg then begin
      Array.unsafe_set t.msgs i no_msg;
      t.spilled_live <- t.spilled_live - 1;
      true
    end
    else false
  in
  if removed then begin
    t.live <- t.live - 1;
    while t.head < t.tail && not (occupied_at t t.head) do
      t.head <- t.head + 1
    done
  end

let no_message = no_msg

(* Bulk operations for batched delivery: the flush path hands a whole
   contiguous run of outbox entries to one destination, so moving them
   with one call (and setting [head] once) beats per-entry remove+advance
   on the hot path. *)

(* Whole-batch adoption: when the destination is empty and the batch is
   the source's entire content, the destination takes the source's slot
   arrays and frame pool wholesale and the source inherits the (empty)
   arrays and pool the destination held. O(1) instead of O(batch), and in
   a streaming steady state the two rings simply circulate one set of
   arrays and frames between them. Entry content is bit-for-bit what the
   copying path would have produced: framed entries keep their serialised
   bytes, spilled entries keep their shared message value. *)
let adopt t dst =
  let fr = dst.frames and ms = dst.msgs and pl = dst.pool in
  let pn = dst.pool_n and pm = dst.pool_made in
  let pos = dst.tail in
  dst.frames <- t.frames;
  dst.msgs <- t.msgs;
  dst.head <- t.head;
  dst.tail <- t.tail;
  dst.live <- t.live;
  dst.pool <- t.pool;
  dst.pool_n <- t.pool_n;
  dst.pool_made <- t.pool_made;
  (* Adopted spilled entries took the overflow path into [dst] exactly as
     the copying path's [emplace_spilled] would have recorded: without
     this, [spilled_total] on the destination silently under-counts by the
     whole adopted batch and diverges from the per-entry path. [dst] is
     empty (adoption precondition), so its own [spilled_live] is 0. *)
  dst.spilled_total <- dst.spilled_total + t.spilled_live;
  dst.spilled_live <- t.spilled_live;
  t.frames <- fr;
  t.msgs <- ms;
  t.pool <- pl;
  t.pool_n <- pn;
  t.pool_made <- pm;
  t.head <- pos;
  t.tail <- pos;
  t.live <- 0;
  t.spilled_live <- 0;
  (* Both rings' absolute numbering just jumped; cursors are lower bounds
     tied to the old numbering, so reset them to the new heads. *)
  List.iter (fun c -> c.cpos <- dst.head) dst.cursors;
  List.iter (fun c -> c.cpos <- t.head) t.cursors

let transfer_upto t ~upto dst =
  let upto = if upto > t.tail then t.tail else upto in
  if upto > t.head then
    if dst.live = 0 && upto = t.tail && dst.pool_cap = t.pool_cap then
      adopt t dst
    else begin
    reserve dst (upto - t.head);
    let mask = Array.length t.frames - 1 in
    for pos = t.head to upto - 1 do
      let i = pos land mask in
      let fr = Array.unsafe_get t.frames i in
      if Frame.occupied fr then begin
        (* Framed entries deep-copy into a destination frame (both rings
           recycle independently), or materialise and spill when the
           destination pool is exhausted. *)
        (if has_frame dst then Frame.copy_into fr (emplace_frame dst)
         else emplace_spilled dst (Frame.message fr));
        Frame.clear fr;
        Array.unsafe_set t.frames i Frame.dummy;
        give_back t fr;
        t.live <- t.live - 1
      end
      else begin
        let m = Array.unsafe_get t.msgs i in
        if m != no_msg then begin
          (* Spilled entries share the immutable message value, exactly
             like the old heap path delivered it. *)
          emplace_spilled dst m;
          Array.unsafe_set t.msgs i no_msg;
          t.live <- t.live - 1;
          t.spilled_live <- t.spilled_live - 1
        end
      end
    done;
    t.head <- upto;
    while t.head < t.tail && not (occupied_at t t.head) do
      t.head <- t.head + 1
    done
  end

let drop_upto t ~upto =
  let upto = if upto > t.tail then t.tail else upto in
  if upto > t.head then begin
    let mask = Array.length t.frames - 1 in
    for pos = t.head to upto - 1 do
      let i = pos land mask in
      let fr = Array.unsafe_get t.frames i in
      if Frame.occupied fr then begin
        Frame.clear fr;
        Array.unsafe_set t.frames i Frame.dummy;
        give_back t fr;
        t.live <- t.live - 1
      end
      else if Array.unsafe_get t.msgs i != no_msg then begin
        Array.unsafe_set t.msgs i no_msg;
        t.live <- t.live - 1;
        t.spilled_live <- t.spilled_live - 1
      end
    done;
    t.head <- upto;
    while t.head < t.tail && not (occupied_at t t.head) do
      t.head <- t.head + 1
    done
  end

let cursor t tag =
  let rec find = function
    | [] ->
      let c = { ctag = tag; cpos = t.head } in
      t.cursors <- c :: t.cursors;
      c
    | c :: rest -> if String.equal c.ctag tag then c else find rest
  in
  find t.cursors

let copy_excluding t ~uid ~msg =
  let r = create ~capacity:t.pool_cap () in
  for pos = t.head to t.tail - 1 do
    let fr = frame_at t pos in
    if Frame.occupied fr then begin
      (* Exclusion is by send identity: the uid, plus the shared cached
         message value for duplicate copies that overflowed to the spill
         path (duplicates always carry a cached message). *)
      if not (Frame.uid fr = uid || Frame.message fr == msg) then begin
        if has_frame r then Frame.copy_into fr (emplace_frame r)
        else emplace_spilled r (Frame.message fr)
      end
    end
    else
      let m = spilled_at t pos in
      if m != no_msg && m != msg then emplace_spilled r m
  done;
  r

let iter t f =
  for pos = t.head to t.tail - 1 do
    if occupied_at t pos then f ~pos (message_at t pos)
  done
