(** Sink-state access from inside a simulated process.

    Thin wrappers over {!Heap} cells that view the cell through the calling
    process's own address space and charge any copy-on-write fault cost to
    the process's virtual clock immediately, so that memory behaviour is
    execution time (section 4.1 of the paper: runtime overhead "consists of
    copying memory areas which are shared ... when updates are attempted").

    All functions raise [Invalid_argument] if the calling process has no
    address space. *)

val heap : Engine.ctx -> Heap.t
(** The calling process's view of the shared heap layout: cells allocated
    by any ancestor can be dereferenced through it. *)

val get : Engine.ctx -> 'a Heap.cell -> 'a
val set : Engine.ctx -> 'a Heap.cell -> 'a -> unit

val read_bytes : Engine.ctx -> addr:int -> len:int -> bytes
val write_bytes : Engine.ctx -> addr:int -> bytes -> unit

val touch : Engine.ctx -> addr:int -> len:int -> unit
(** Dirty the page range (forces COW privatisation) and charge the copies. *)
