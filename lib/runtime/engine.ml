type cores = Infinite | Cores of int

type exit_status =
  | Exited_ok
  | Exited_failed of string
  | Crashed of string
  | Eliminated of string

exception Process_killed of string
exception Abort_process of string
exception Replay_divergence of string

(* One entry per effectful operation of a cloneable process, enough to
   re-execute its body deterministically up to a given point. *)
type log_entry =
  | L_delay of float
  | L_now of float
  | L_recv of Message.t
  | L_recv_opt of Message.t option
  | L_sent
  | L_random of int64

type proc_state =
  | Embryo
  | Running
  | Suspended
  | Dead of exit_status

type cpu_task = { mutable remaining : float; resume : unit -> unit }

type park =
  | Park_recv of {
      tag : string option;
      wake : Message.t -> unit;
      cancel : string -> unit;
    }
  | Park_ivar of { cancel : string -> unit }
  | Park_cpu of { task : cpu_task; cancel : string -> unit }

type pcb = {
  pid : Pid.t;
  logical : Pid.t;
  parent : Pid.t option;
  name : string;
  body : ctx -> unit;
  mutable state : proc_state;
  mutable park : park option;
  mutable predicate : Predicate.t;
  space : Address_space.t option;
  mutable mailbox : Mailbox.t;  (* ring of frames, arrival order *)
  mutable last_chan : channel option;  (* last outbound channel, a cache *)
  mutable doomed : string option;
  mutable cloneable : bool;
  mutable log : log_entry list;  (* newest first *)
  mutable replay : log_entry list;  (* oldest first; non-empty while replaying *)
  mutable send_seq : int;
  mutable exit_watchers : (exit_status -> unit) list;
  mutable res_watchers : ([ `Certain | `Dead ] -> unit) list;
  mutable preserve_space : bool;
  oblivious : bool;
  mutable site : string option;
  mutable shard : int;  (* owning shard; world copies inherit the original's *)
  rng : Rng.t;
      (* Per-process SplitMix64 stream, keyed (root seed, pid). A
         per-shard stream would make a process's draws depend on which
         other processes share its shard — and therefore on the shard
         count — breaking the shards-1 = shards-N contract; keying by
         pid is the finest shard-independent split of the root seed.
         Each shard owns exactly the streams of its resident
         processes. *)
}

and ctx = { engine : t; pcb : pcb }

and event = { mutable dead_ev : bool; run_ev : unit -> unit }

(* One (sender, logical dest) messaging channel: the per-sender FIFO
   clock, a ring-buffer outbox of in-flight frames, and the state of the
   currently open delivery batch.

   A batch is a single scheduled event that will hand a contiguous run of
   outbox frames to the receiver in one step. A later send may join the
   open batch only if (a) it is due at exactly the batch's flush time,
   (b) the event queue's stamp has not moved since the batch last grew —
   i.e. nothing else was scheduled in between — and (c) no event has
   executed since either. The stamp alone counts only pushes: a
   zero-delay timer that pops and runs between two sends at the same
   virtual time (say, filling an ivar whose waiter resumes synchronously
   and sends again) moves neither the stamp nor the flush time, yet an
   event did order between the two sends and must flush the open batch.
   With (a)–(c) together no event can possibly order between the batch's
   members and global (time, seq) order is preserved exactly as if each
   message had its own event. *)
and channel = {
  ch_sender : Pid.t;
  ch_dest : Pid.t;  (* logical destination *)
  outbox : Mailbox.t;
  ch_clock : floatarray;
      (* [0] = last scheduled delivery time (the per-sender FIFO clock),
         [1] = the open batch's flush time. A flat float pair rather than
         two mutable fields of this mixed record, so the send fast path
         stores and compares times without boxing a float per message. *)
  mutable ch_open : bool;
  mutable ch_watermark : int;  (* Event_queue.stamp when the batch last grew *)
  mutable ch_epoch : int;  (* events_processed when the batch was opened *)
  mutable ch_upto : upto;
}

(* The open batch's end position, shared with the scheduled flush closure
   so joins can extend the batch without touching the event queue. *)
and upto = { mutable u : int }

and fault_action =
  | F_deliver
  | F_drop
  | F_delay of float
  | F_duplicate
  | F_reorder of float

and t = {
  mutable vnow : float;
  (* --- The sharded scheduler -------------------------------------
     Processes are partitioned across [nshards] shards (along site
     failure domains; site-less processes hash by pid). Each shard owns
     an event queue; all queues share one engine-global stamp counter
     [next_stamp], so the execution order — the merge of the per-shard
     queues by (time, stamp) — is exactly the order the single-queue
     engine produces, whatever the shard count. Cross-shard message
     events are staged into per-(src, dst) outboxes and exchanged at
     conservative virtual-time barriers (window = earliest next local
     event time + the cost model's minimum message latency); staging
     never changes an event's (time, stamp) key, so it cannot change
     execution order — only queue residency and the barrier counters. *)
  nshards : int;
  queues : event Event_queue.t array;  (* one per shard *)
  staged : event Event_queue.t array;
      (* nshards² per-(src, dst) cross-shard outboxes, row-major
         [src * nshards + dst]; [||] when nshards = 1 *)
  mutable next_stamp : int;  (* engine-global (time, stamp) order *)
  mutable cur_shard : int;  (* shard whose event is executing *)
  shard_events : int array;  (* events executed, per shard *)
  mutable barriers : int;
  mutable cross_msgs : int;  (* messages staged across shards *)
  lookahead : float;  (* conservative window: minimum message latency *)
  site_shards : (string, int) Hashtbl.t;  (* site -> first-seen index *)
  mutable site_count : int;
  root_seed : int;
  debug_shard_local_epoch : bool;
      (* Test-only: re-derive the batch-join epoch guard from the
         sender shard's local execution counter instead of the
         engine-global one — the broken variant the regression test
         pins (see [outbox_push]). *)
  procs : (Pid.t, pcb) Hashtbl.t;
  worlds : (Pid.t, Pid.t list ref) Hashtbl.t;  (* logical pid -> copies *)
  alloc : Pid.Allocator.t;
  reg : Fate_registry.t;
  store : Frame_store.t;
  model_ : Cost_model.t;
  cores : cores;
  trace_ : Trace.t;
  cpu_tasks : (Pid.t, cpu_task) Hashtbl.t;
  cpu_used : (Pid.t, float ref) Hashtbl.t;
  mutable cpu_gen : int;
  mutable cpu_last : float;
  mutable cpu_tick_ev : event option;
  channels : (Pid.t * Pid.t, channel) Hashtbl.t;
  mutable next_uid : int;  (* engine-global send identity *)
  mutable mailbox_scanned : int;  (* slots visited by receive scans *)
  mutable events_processed : int;
  mutable live : int;
  mutable deferred : Pid.t list;  (* exited ok, fate deferred on predicates *)
  mutable stopped : bool;
  mutable sweeping : bool;
  mutable sweep_again : bool;
  mutable msg_fault : (Message.t -> fault_action) option;
  mutable spawn_hook : (Pid.t -> string -> unit) option;
  mutable site_hook :
    (pid:Pid.t ->
    parent:Pid.t option ->
    name:string ->
    explicit:string option ->
    string option)
    option;
  mutable delivery_fault : (Message.t -> dest:Pid.t -> bool) option;
}

(* Send and the receive fast paths no longer go through effects at all:
   [send] runs entirely in the caller's frame, and [receive] /
   [receive_timeout] only perform an effect to park when nothing in the
   mailbox is acceptable right now. *)
type _ Effect.t +=
  | E_delay : float -> unit Effect.t
  | E_now : float Effect.t
  | E_recv : string option -> Message.t Effect.t
  | E_recv_timeout : string option * float -> Message.t option Effect.t
  | E_random : int64 Effect.t
  | E_park : (wake:(unit -> unit) -> unit) -> unit Effect.t

let create ?(cores = Infinite) ?(model = Cost_model.uniform ()) ?(seed = 42)
    ?(trace = true) ?(shards = 1) ?(debug_shard_local_epoch = false) () =
  if shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  {
    vnow = 0.;
    nshards = shards;
    queues = Array.init shards (fun _ -> Event_queue.create ());
    staged =
      (if shards = 1 then [||]
       else Array.init (shards * shards) (fun _ -> Event_queue.create ()));
    next_stamp = 0;
    cur_shard = 0;
    shard_events = Array.make shards 0;
    barriers = 0;
    cross_msgs = 0;
    lookahead = model.Cost_model.msg_latency;
    site_shards = Hashtbl.create 8;
    site_count = 0;
    root_seed = seed;
    debug_shard_local_epoch;
    procs = Hashtbl.create 64;
    worlds = Hashtbl.create 64;
    alloc = Pid.Allocator.create ();
    reg = Fate_registry.create ();
    store = Frame_store.create ~page_size:model.Cost_model.page_size;
    model_ = model;
    cores;
    trace_ = Trace.create ~enabled:trace ();
    cpu_tasks = Hashtbl.create 16;
    cpu_used = Hashtbl.create 64;
    cpu_gen = 0;
    cpu_last = 0.;
    cpu_tick_ev = None;
    channels = Hashtbl.create 64;
    next_uid = 0;
    mailbox_scanned = 0;
    events_processed = 0;
    live = 0;
    deferred = [];
    stopped = false;
    sweeping = false;
    sweep_again = false;
    msg_fault = None;
    spawn_hook = None;
    site_hook = None;
    delivery_fault = None;
  }

let set_message_fault t f = t.msg_fault <- f
let set_spawn_hook t f = t.spawn_hook <- f
let set_site_hook t f = t.site_hook <- f
let set_delivery_fault t f = t.delivery_fault <- f

let now t = t.vnow
let model t = t.model_
let frame_store t = t.store
let trace t = t.trace_
let registry t = t.reg
let shards t = t.nshards

(* Aggregated across shards: the per-shard counters are the source of
   truth, and the barrier path only moves events between queues — it
   never executes or drops one — so the sum is exact. *)
let stats_events_processed t = Array.fold_left ( + ) 0 t.shard_events
let stats_shard_events t = Array.copy t.shard_events
let stats_barriers t = t.barriers
let stats_cross_shard_msgs t = t.cross_msgs
let stats_mailbox_scanned t = t.mailbox_scanned

(* Every event, on every shard queue and in every staging outbox, is
   stamped from this one counter: the merged execution order is the
   single-queue order by construction. *)
let push_on t shard ~at ev =
  let seq = t.next_stamp in
  t.next_stamp <- seq + 1;
  Event_queue.push_stamped t.queues.(shard) ~time:(Float.max at t.vnow) ~seq ev

let schedule_cancellable t ~at thunk =
  let ev = { dead_ev = false; run_ev = thunk } in
  push_on t t.cur_shard ~at ev;
  ev

let cancel_event ev = ev.dead_ev <- true

let schedule t ~at thunk = ignore (schedule_cancellable t ~at thunk)

let schedule_on t shard ~at thunk =
  push_on t shard ~at { dead_ev = false; run_ev = thunk }

(* Route a messaging event to the destination's shard. [src] is the
   {e sender process}'s shard — not [cur_shard], which during a shared
   CPU-scheduler tick is whichever shard the tick event happened to live
   on. Same-shard deliveries go straight onto the shard's own queue (the
   intra-shard fast path); cross-shard ones are staged into the
   (src, dst) outbox for the next barrier exchange. *)
let schedule_to_shard t ~src dst ~at thunk =
  if t.nshards = 1 || dst = src then schedule_on t dst ~at thunk
  else begin
    let seq = t.next_stamp in
    t.next_stamp <- seq + 1;
    Event_queue.push_stamped
      t.staged.((src * t.nshards) + dst)
      ~time:(Float.max at t.vnow) ~seq
      { dead_ev = false; run_ev = thunk };
    t.cross_msgs <- t.cross_msgs + 1
  end

let tr t e = Trace.record t.trace_ ~time:t.vnow e

let status_string = function
  | Exited_ok -> "ok"
  | Exited_failed r -> "failed: " ^ r
  | Crashed r -> "crashed: " ^ r
  | Eliminated r -> "eliminated: " ^ r

let proc_state_string = function
  | Embryo -> "embryo"
  | Running -> "running"
  | Suspended -> "suspended"
  | Dead st -> "dead (" ^ status_string st ^ ")"

(* ------------------------------------------------------------------ *)
(* CPU: egalitarian processor sharing over [cores] processors.         *)

let cpu_rate t =
  let n = Hashtbl.length t.cpu_tasks in
  if n = 0 then 1.0
  else
    match t.cores with
    | Infinite -> 1.0
    | Cores c -> Float.min 1.0 (float_of_int c /. float_of_int n)

let charge_cpu_used t pid amount =
  match Hashtbl.find_opt t.cpu_used pid with
  | Some r -> r := !r +. amount
  | None -> Hashtbl.replace t.cpu_used pid (ref amount)

let cpu_update t =
  let elapsed = t.vnow -. t.cpu_last in
  if elapsed > 0. then begin
    let rate = cpu_rate t in
    Hashtbl.iter
      (fun pid task ->
        task.remaining <- task.remaining -. (elapsed *. rate);
        charge_cpu_used t pid (elapsed *. rate))
      t.cpu_tasks
  end;
  t.cpu_last <- t.vnow

let rec cpu_reschedule t =
  t.cpu_gen <- t.cpu_gen + 1;
  (match t.cpu_tick_ev with
  | Some ev ->
    cancel_event ev;
    t.cpu_tick_ev <- None
  | None -> ());
  if Hashtbl.length t.cpu_tasks > 0 then begin
    let gen = t.cpu_gen in
    let rate = cpu_rate t in
    let min_rem =
      Hashtbl.fold
        (fun _ task acc -> Float.min acc (Float.max 0. task.remaining))
        t.cpu_tasks infinity
    in
    let at = t.vnow +. (min_rem /. rate) in
    t.cpu_tick_ev <- Some (schedule_cancellable t ~at (fun () -> cpu_tick t gen))
  end

and cpu_tick t gen =
  if gen = t.cpu_gen then begin
    cpu_update t;
    let done_ =
      Hashtbl.fold
        (fun pid task acc -> if task.remaining <= 1e-12 then (pid, task) :: acc else acc)
        t.cpu_tasks []
    in
    let done_ = List.sort (fun (a, _) (b, _) -> Pid.compare a b) done_ in
    List.iter (fun (pid, _) -> Hashtbl.remove t.cpu_tasks pid) done_;
    cpu_reschedule t;
    List.iter (fun (_, task) -> task.resume ()) done_
  end

let cpu_add t pid task =
  cpu_update t;
  Hashtbl.replace t.cpu_tasks pid task;
  cpu_reschedule t

let cpu_remove t pid =
  if Hashtbl.mem t.cpu_tasks pid then begin
    cpu_update t;
    Hashtbl.remove t.cpu_tasks pid;
    cpu_reschedule t
  end

(* ------------------------------------------------------------------ *)
(* Process table helpers.                                              *)

let find_pcb t pid = Hashtbl.find_opt t.procs pid

(* Partition along site failure domains: every site gets a first-seen
   index (assignment order is part of the deterministic execution, so
   the index is shard-count independent) and maps to [index mod
   nshards]; site-less processes hash by pid (the identity hash — pids
   are already densely allocated integers, so consecutive spawns
   round-robin). World-split clones do not come through here: a copy
   lives, and dies, on its original's shard. *)
let shard_of_pcb t pcb =
  if t.nshards = 1 then 0
  else
    match pcb.site with
    | Some s ->
      let idx =
        match Hashtbl.find_opt t.site_shards s with
        | Some i -> i
        | None ->
          let i = t.site_count in
          t.site_count <- i + 1;
          Hashtbl.replace t.site_shards s i;
          i
      in
      idx mod t.nshards
    | None -> Pid.to_int pcb.pid mod t.nshards

let shard_of t pid =
  match find_pcb t pid with Some pcb -> pcb.shard | None -> 0

(* The shard a delivery to [dest] belongs to. [dest] is a logical pid:
   its original pcb persists post-mortem in the process table, and world
   copies share the original's shard, so one lookup covers every copy. *)
let shard_of_dest t dest =
  if t.nshards = 1 then 0
  else
    match Hashtbl.find_opt t.procs dest with
    | Some pcb -> pcb.shard
    | None -> t.cur_shard

let is_alive pcb = match pcb.state with Dead _ -> false | _ -> true

let alive t pid = match find_pcb t pid with Some p -> is_alive p | None -> false

let status t pid =
  match find_pcb t pid with
  | Some { state = Dead s; _ } -> Some s
  | _ -> None

let predicate_of t pid = Option.map (fun p -> p.predicate) (find_pcb t pid)

let live_count t = t.live

let parked_pids t =
  Hashtbl.fold
    (fun pid pcb acc -> if is_alive pcb && pcb.park <> None then pid :: acc else acc)
    t.procs []
  |> List.sort Pid.compare

let log_push pcb e =
  if pcb.cloneable && pcb.replay = [] then pcb.log <- e :: pcb.log

let replay_next pcb =
  match pcb.replay with
  | [] -> None
  | e :: rest ->
    pcb.replay <- rest;
    Some e

let disable_cloning pcb =
  if pcb.cloneable then begin
    pcb.cloneable <- false;
    pcb.log <- []
  end

(* ------------------------------------------------------------------ *)
(* Fates, predicate sweep, world elimination.                          *)

let rec finalize t pcb st =
  match pcb.state with
  | Dead _ -> ()
  | _ ->
    pcb.state <- Dead st;
    pcb.park <- None;
    cpu_remove t pcb.pid;
    if not pcb.preserve_space then Option.iter Address_space.release pcb.space;
    t.live <- t.live - 1;
    tr t (Trace.Exited { pid = pcb.pid; status = status_string st });
    let watchers = pcb.exit_watchers in
    pcb.exit_watchers <- [];
    List.iter
      (fun w ->
        try w st
        with e ->
          tr t (Trace.Note ("exit watcher raised: " ^ Printexc.to_string e)))
      watchers;
    (match st with
    | Exited_ok -> (
      (* An alternative's predicate assumes its own completion; its exit is
         precisely what resolves that assumption. *)
      (match Predicate.resolve pcb.predicate ~pid:pcb.pid ~fate:Predicate.Completed with
      | Predicate.Simplified p -> pcb.predicate <- p
      | Predicate.Unchanged -> ()
      | Predicate.Falsified ->
        (* It assumed its own failure: an impossible world; drop the
           self-assumption and let the normal sweep handle the rest. *)
        ());
      match Fate_registry.normalize t.reg pcb.predicate with
      | `Dead ->
        fire_res_watchers t pcb `Dead;
        record_fate t pcb.pid Predicate.Failed
      | `Live p when Predicate.is_certain p ->
        fire_res_watchers t pcb `Certain;
        record_fate t pcb.pid Predicate.Completed
      | `Live p ->
        (* Completion is conditional on unresolved assumptions: defer the
           fate until they resolve (the process "cannot commit" yet). *)
        pcb.predicate <- p;
        t.deferred <- pcb.pid :: t.deferred;
        tr t (Trace.Fate_deferred pcb.pid))
    | Exited_failed _ | Crashed _ | Eliminated _ ->
      fire_res_watchers t pcb `Dead;
      record_fate t pcb.pid Predicate.Failed)

and fire_res_watchers t pcb outcome =
  let ws = pcb.res_watchers in
  pcb.res_watchers <- [];
  List.iter
    (fun w ->
      try w outcome
      with e ->
        tr t (Trace.Note ("resolution watcher raised: " ^ Printexc.to_string e)))
    ws

and record_fate t pid fate =
  (match Fate_registry.fate t.reg pid with
  | Some f when f = fate -> ()
  | _ ->
    Fate_registry.record t.reg pid fate;
    tr t (Trace.Fate { pid; fate }));
  sweep t

and kill t pid ~reason =
  match find_pcb t pid with
  | None -> ()
  | Some pcb -> (
    match pcb.state with
    | Dead _ -> ()
    | Embryo -> finalize t pcb (Eliminated reason)
    | Running -> pcb.doomed <- Some reason
    | Suspended -> (
      match pcb.park with
      | None ->
        (* Runnable (start scheduled): doom it; the start event checks. *)
        pcb.doomed <- Some reason
      | Some (Park_recv { cancel; _ })
      | Some (Park_ivar { cancel })
      | Some (Park_cpu { cancel; _ }) ->
        pcb.park <- None;
        cpu_remove t pcb.pid;
        cancel reason))

(* Re-examine every live process's predicate after new knowledge arrives:
   falsified worlds are eliminated, satisfied assumptions removed, parked
   receivers rescanned, deferred fates settled. *)
and sweep t =
  if t.sweeping then t.sweep_again <- true
  else begin
    t.sweeping <- true;
    let continue = ref true in
    while !continue do
      t.sweep_again <- false;
      let live =
        Hashtbl.fold (fun _ p acc -> if is_alive p then p :: acc else acc) t.procs []
        |> List.sort (fun a b -> Pid.compare a.pid b.pid)
      in
      List.iter
        (fun pcb ->
          if is_alive pcb then begin
            (match Fate_registry.normalize t.reg pcb.predicate with
            | `Dead ->
              tr t (Trace.Killed { pid = pcb.pid; reason = "dead world" });
              fire_res_watchers t pcb `Dead;
              kill t pcb.pid ~reason:"dead world"
            | `Live p ->
              let changed = not (Predicate.equal p pcb.predicate) in
              pcb.predicate <- p;
              if changed && Predicate.is_certain p then
                fire_res_watchers t pcb `Certain);
            (* A parked receiver may now be able to accept a message whose
               acceptance was deferred. *)
            if is_alive pcb then rescan_parked t pcb
          end)
        live;
      (* Settle deferred fates. *)
      let deferred = t.deferred in
      t.deferred <- [];
      let still =
        List.filter
          (fun pid ->
            match find_pcb t pid with
            | None -> false
            | Some pcb -> (
              match Fate_registry.normalize t.reg pcb.predicate with
              | `Dead ->
                fire_res_watchers t pcb `Dead;
                record_fate t pid Predicate.Failed;
                false
              | `Live p when Predicate.is_certain p ->
                pcb.predicate <- p;
                fire_res_watchers t pcb `Certain;
                record_fate t pid Predicate.Completed;
                false
              | `Live p ->
                pcb.predicate <- p;
                true))
          deferred
      in
      t.deferred <- still @ t.deferred;
      continue := t.sweep_again
    done;
    t.sweeping <- false
  end

(* ------------------------------------------------------------------ *)
(* Message scanning: accept / ignore / split (section 3.4.2).          *)

and try_receive t pcb tag : Message.t =
  (* Returns [Mailbox.no_message] (physical compare) when nothing is
     acceptable: the receive fast path runs once per message, so the
     sentinel saves an option cell per delivered message. *)
  let ring = pcb.mailbox in
  if Mailbox.is_empty ring then Mailbox.no_message
  else begin
    (* A tag-filtered receive starts at the ring's per-tag cursor: every
       position before it is known to hold no live frame with this tag, so
       repeated polls do not re-scan foreign traffic (the old list scan
       was quadratic in exactly that case). The cursor may be behind the
       head after consumptions; clamp it forward. *)
    let cur =
      match tag with
      | None -> None
      | Some wanted ->
        let c = Mailbox.cursor ring wanted in
        if c.Mailbox.cpos < Mailbox.head_pos ring then
          c.Mailbox.cpos <- Mailbox.head_pos ring;
        Some c
    in
    let start =
      match cur with None -> Mailbox.head_pos ring | Some c -> c.Mailbox.cpos
    in
    scan_mailbox t pcb ring tag cur [] start true
  end

(* Walk the ring in position order; honour per-sender FIFO when deferring.
   [blocked] (senders we must not overtake) is threaded as a list so the
   common no-deferral scan allocates nothing. [prefix] is true while every
   slot visited so far was a tombstone or tag-foreign, i.e. while the
   per-tag cursor may still advance over them. A top-level function rather
   than an inner closure: the receive fast path allocates nothing. The
   position-indexed accessors hide whether an entry is framed or spilled. *)
and scan_mailbox t pcb ring tag cur blocked pos prefix : Message.t =
  if pos >= Mailbox.tail_pos ring then Mailbox.no_message
  else begin
    t.mailbox_scanned <- t.mailbox_scanned + 1;
    if not (Mailbox.occupied_at ring pos) then begin
      advance_cursor cur pos prefix;
      scan_mailbox t pcb ring tag cur blocked (pos + 1) prefix
    end
    else
      let matches_tag =
        match tag with
        | None -> true
        | Some wanted -> String.equal (Mailbox.tag_at ring pos) wanted
      in
      if not matches_tag then begin
        advance_cursor cur pos prefix;
        scan_mailbox t pcb ring tag cur blocked (pos + 1) prefix
      end
      else if pcb.oblivious then begin
        (* Kernel-level services (consensus voters, devices) accept every
           message: they are part of process management, not of any world. *)
        let m = Mailbox.message_at ring pos in
        if Trace.live t.trace_ then
          tr t (Trace.Accepted { dest = pcb.pid; msg = m; dest_pred = pcb.predicate });
        Mailbox.remove ring pos;
        m
      end
      else if
        (* Empty-list check first: nothing is examined unless a sender has
           actually been deferred during this scan. *)
        (match blocked with
        | [] -> false
        | _ -> List.exists (Pid.equal (Mailbox.sender_at ring pos)) blocked)
      then scan_mailbox t pcb ring tag cur blocked (pos + 1) false
      else begin
        let spred = Mailbox.predicate_at ring pos in
        if Predicate.is_certain spred then begin
          (* The overwhelmingly common case: a sender with no unresolved
             assumptions. Normalisation would return the predicate
             unchanged and the receiver trivially implies it, so accept
             directly without allocating the `Live wrapper. *)
          let m = Mailbox.message_at ring pos in
          if Trace.live t.trace_ then
            tr t
              (Trace.Accepted { dest = pcb.pid; msg = m; dest_pred = pcb.predicate });
          Mailbox.remove ring pos;
          m
        end
        else
          match Fate_registry.normalize t.reg spred with
          | `Dead ->
            (* The sender's world died: the message never happened. *)
            if Trace.live t.trace_ then
              tr t
                (Trace.Ignored
                   {
                     dest = pcb.pid;
                     msg = Mailbox.message_at ring pos;
                     reason = "dead world";
                   });
            Mailbox.remove ring pos;
            advance_cursor cur pos prefix;
            scan_mailbox t pcb ring tag cur blocked (pos + 1) prefix
          | `Live s ->
            if Predicate.implies pcb.predicate s then begin
              let m = Mailbox.message_at ring pos in
              if Trace.live t.trace_ then
                tr t
                  (Trace.Accepted
                     { dest = pcb.pid; msg = m; dest_pred = pcb.predicate });
              Mailbox.remove ring pos;
              m
            end
            else if Predicate.conflicts pcb.predicate s then begin
              if Trace.live t.trace_ then
                tr t
                  (Trace.Ignored
                     {
                       dest = pcb.pid;
                       msg = Mailbox.message_at ring pos;
                       reason = "conflict";
                     });
              Mailbox.remove ring pos;
              advance_cursor cur pos prefix;
              scan_mailbox t pcb ring tag cur blocked (pos + 1) prefix
            end
            else begin
              (* The message requires new assumptions. *)
              match accept_with_split t pcb ring pos s with
              | Some m ->
                Mailbox.remove ring pos;
                m
              | None ->
                (* Keep waiting: do not overtake this sender (FIFO). *)
                scan_mailbox t pcb ring tag cur
                  (Mailbox.sender_at ring pos :: blocked)
                  (pos + 1) false
            end
      end
  end

and advance_cursor cur pos prefix =
  if prefix then
    match cur with None -> () | Some c -> c.Mailbox.cpos <- pos + 1

(* Receiver [pcb] is about to accept the message at [pos] of its ring,
   whose (normalized) sending predicate [s] extends the receiver's
   assumptions. Create the rejecting world as a replay clone, then let
   [pcb] proceed as the accepting world. Returns the accepted message, or
   [None] to defer; the caller removes the entry from the mailbox on
   acceptance. *)
and accept_with_split t pcb ring pos s : Message.t option =
  let sender = Mailbox.sender_at ring pos in
  let reject_pred =
    if Predicate.mem_completes pcb.predicate sender then None
    else Some (Predicate.assume_fails pcb.predicate sender)
  in
  let can_clone = pcb.cloneable in
  match reject_pred with
  | None ->
    (* The receiver already depends on the sender completing; the only new
       assumptions are the sender's own, which acceptance takes on. *)
    let m = Mailbox.message_at ring pos in
    adopt_sender_assumptions t pcb m s;
    Some m
  | Some reject_pred when can_clone ->
    let m = Mailbox.message_at ring pos in
    let clone_pid = Pid.Allocator.fresh t.alloc in
    let clone =
      make_pcb t ~pid:clone_pid ~logical:pcb.logical ~parent:pcb.parent
        ~name:(pcb.name ^ "~world") ~predicate:reject_pred ~space:None
        ~cloneable:true ~oblivious:false ~body:pcb.body
    in
    clone.replay <- List.rev pcb.log;
    clone.log <- pcb.log;
    (* The rejecting world keeps everything except the accepted send —
       keyed by send identity (and by shared message value for spilled
       entries), so an injected duplicate is excluded along with its
       original, exactly like the physical-equality filter on the old
       list mailbox. Framed entries are deep-copied: both worlds may
       consume their copies independently. *)
    clone.mailbox <-
      Mailbox.copy_excluding pcb.mailbox ~uid:(Mailbox.uid_at ring pos) ~msg:m;
    register_world t clone;
    t.live <- t.live + 1;
    (* World copies live wherever the original does: a site crash must take
       every copy of a resident process down with it — and the same goes
       for the shard, so one flush event reaches every copy. *)
    assign_site t clone ~explicit:pcb.site;
    clone.shard <- pcb.shard;
    tr t (Trace.Split { original = pcb.pid; clone = clone_pid; on = m });
    (match t.spawn_hook with Some h -> h clone_pid clone.name | None -> ());
    (* Charge the copy as a fork-base-cost start delay for the clone. *)
    schedule_on t clone.shard
      ~at:(t.vnow +. t.model_.Cost_model.fork_base)
      (fun () -> start_pcb t clone);
    adopt_sender_assumptions t pcb m s;
    Some m
  | Some _ ->
    (* Not cloneable: fall back to deferring until the sender resolves
       (pessimistic but semantics-preserving). *)
    if Trace.live t.trace_ then
      tr t
        (Trace.Ignored
           {
             dest = pcb.pid;
             msg = Mailbox.message_at ring pos;
             reason = "deferred (receiver not cloneable)";
           });
    None

and adopt_sender_assumptions t pcb m s =
  (* The trace records the predicate the receiver held when it decided to
     accept, not the conjoined one: the analysis layer re-derives the
     acceptance decision from it. *)
  let pred_at_accept = pcb.predicate in
  let p = Predicate.conjoin pcb.predicate s in
  let p =
    if Predicate.mem_completes p m.Message.sender then p
    else Predicate.assume_completes p m.Message.sender
  in
  pcb.predicate <- p;
  tr t (Trace.Accepted { dest = pcb.pid; msg = m; dest_pred = pred_at_accept })

and rescan_parked t pcb =
  match pcb.park with
  | Some (Park_recv { tag; wake; _ }) ->
    let m = try_receive t pcb tag in
    if m != Mailbox.no_message then wake m
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Process creation and the effect handler.                            *)

and make_pcb t ~pid ~logical ~parent ~name ~predicate ~space ~cloneable
    ~oblivious ~body =
  if Hashtbl.mem t.procs pid then
    invalid_arg "Engine.spawn: pid already in use";
  let pcb =
    {
      pid;
      logical;
      parent;
      name;
      body;
      state = Embryo;
      park = None;
      predicate;
      space;
      mailbox = Mailbox.create ();
      last_chan = None;
      doomed = None;
      cloneable = cloneable && space = None;
      log = [];
      replay = [];
      send_seq = 0;
      exit_watchers = [];
      res_watchers = [];
      preserve_space = false;
      oblivious;
      site = None;
      shard = 0;  (* settled after site assignment; clones inherit *)
      rng = Rng.stream ~seed:t.root_seed ~key:(Pid.to_int pid);
    }
  in
  Hashtbl.replace t.procs pid pcb;
  pcb

and assign_site t pcb ~explicit =
  pcb.site <-
    (match t.site_hook with
    | Some h -> h ~pid:pcb.pid ~parent:pcb.parent ~name:pcb.name ~explicit
    | None -> explicit)

and register_world t pcb =
  match Hashtbl.find_opt t.worlds pcb.logical with
  | Some l -> l := pcb.pid :: !l
  | None -> Hashtbl.replace t.worlds pcb.logical (ref [ pcb.pid ])

and start_pcb t pcb =
  match pcb.state with
  | Dead _ -> ()
  | Embryo -> (
    match pcb.doomed with
    | Some reason -> finalize t pcb (Eliminated reason)
    | None ->
      pcb.state <- Running;
      tr t (Trace.Started pcb.pid);
      run_body t pcb)
  | (Running | Suspended) as st ->
    failwith
      (Format.asprintf "Engine.start_pcb: process %a (%s) already started: %s"
         Pid.pp pcb.pid pcb.name (proc_state_string st))

and run_body t pcb =
  let ctx = { engine = t; pcb } in
  let check_doom : type a. (a, unit) Effect.Deep.continuation -> bool =
   fun k ->
    match pcb.doomed with
    | Some reason ->
      pcb.doomed <- None;
      Effect.Deep.discontinue k (Process_killed reason);
      true
    | None -> false
  in
  let handler =
    {
      Effect.Deep.retc = (fun () -> finalize t pcb Exited_ok);
      exnc =
        (fun e ->
          match e with
          | Process_killed r -> finalize t pcb (Eliminated r)
          | Abort_process r -> finalize t pcb (Exited_failed r)
          | e -> finalize t pcb (Crashed (Printexc.to_string e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_delay dt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_delay _) -> Effect.Deep.continue k ()
                  | Some _ ->
                    Effect.Deep.discontinue k
                      (Replay_divergence "expected delay")
                  | None ->
                    log_push pcb (L_delay dt);
                    if dt <= 0. then Effect.Deep.continue k ()
                    else begin
                      let armed = ref true in
                      let task =
                        {
                          remaining = dt;
                          resume =
                            (fun () ->
                              if !armed then begin
                                armed := false;
                                pcb.park <- None;
                                pcb.state <- Running;
                                Effect.Deep.continue k ()
                              end);
                        }
                      in
                      let cancel reason =
                        if !armed then begin
                          armed := false;
                          Effect.Deep.discontinue k (Process_killed reason)
                        end
                      in
                      pcb.state <- Suspended;
                      pcb.park <- Some (Park_cpu { task; cancel });
                      cpu_add t pcb.pid task
                    end
                end)
          | E_now ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_now v) -> Effect.Deep.continue k v
                  | Some _ ->
                    Effect.Deep.discontinue k (Replay_divergence "expected now")
                  | None ->
                    log_push pcb (L_now t.vnow);
                    Effect.Deep.continue k t.vnow
                end)
          | E_random ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_random v) -> Effect.Deep.continue k v
                  | Some _ ->
                    Effect.Deep.discontinue k
                      (Replay_divergence "expected random")
                  | None ->
                    let v = Rng.bits64 pcb.rng in
                    log_push pcb (L_random v);
                    Effect.Deep.continue k v
                end)
          | E_recv tag ->
            (* The caller ([receive]) already ran the replay and mailbox
               fast paths; performing the effect means nothing was
               acceptable, so this handler only parks. Scanning again here
               would both waste the scan and duplicate any Ignored
               (deferral) trace events the first scan recorded. *)
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  let armed = ref true in
                  let wake m =
                    if !armed then begin
                      armed := false;
                      pcb.park <- None;
                      pcb.state <- Running;
                      log_push pcb (L_recv m);
                      Effect.Deep.continue k m
                    end
                  in
                  let cancel reason =
                    if !armed then begin
                      armed := false;
                      Effect.Deep.discontinue k (Process_killed reason)
                    end
                  in
                  pcb.state <- Suspended;
                  pcb.park <- Some (Park_recv { tag; wake; cancel })
                end)
          | E_recv_timeout (tag, timeout) ->
            (* Park-only, like [E_recv]: the caller polled already. *)
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  let armed = ref true in
                  let timeout_ev = ref None in
                  let disarm () =
                    armed := false;
                    Option.iter cancel_event !timeout_ev
                  in
                  let wake m =
                    if !armed then begin
                      disarm ();
                      pcb.park <- None;
                      pcb.state <- Running;
                      log_push pcb (L_recv_opt (Some m));
                      Effect.Deep.continue k (Some m)
                    end
                  in
                  let timeout_wake () =
                    if !armed then begin
                      disarm ();
                      pcb.park <- None;
                      pcb.state <- Running;
                      log_push pcb (L_recv_opt None);
                      Effect.Deep.continue k None
                    end
                  in
                  let cancel reason =
                    if !armed then begin
                      disarm ();
                      Effect.Deep.discontinue k (Process_killed reason)
                    end
                  in
                  pcb.state <- Suspended;
                  pcb.park <- Some (Park_recv { tag; wake; cancel });
                  timeout_ev :=
                    Some
                      (schedule_cancellable t ~at:(t.vnow +. timeout) (fun () ->
                           timeout_wake ()))
                end)
          | E_park register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  disable_cloning pcb;
                  let armed = ref true in
                  let wake () =
                    if !armed then begin
                      armed := false;
                      pcb.park <- None;
                      pcb.state <- Running;
                      Effect.Deep.continue k ()
                    end
                  in
                  let cancel reason =
                    if !armed then begin
                      armed := false;
                      Effect.Deep.discontinue k (Process_killed reason)
                    end
                  in
                  pcb.state <- Suspended;
                  pcb.park <- Some (Park_ivar { cancel });
                  register ~wake
                end)
          | _ -> None);
    }
  in
  Effect.Deep.match_with pcb.body ctx handler

and channel_of t pcb ~dest =
  match pcb.last_chan with
  | Some c when Pid.equal c.ch_dest dest -> c
  | _ ->
    let key = (pcb.pid, dest) in
    let c =
      match Hashtbl.find_opt t.channels key with
      | Some c -> c
      | None ->
        let c =
          {
            ch_sender = pcb.pid;
            ch_dest = dest;
            outbox = Mailbox.create ();
            ch_clock =
              (let a = Float.Array.create 2 in
               Float.Array.set a 0 neg_infinity;
               Float.Array.set a 1 0.;
               a);
            ch_open = false;
            ch_watermark = -1;
            ch_epoch = -1;
            ch_upto = { u = 0 };
          }
        in
        Hashtbl.replace t.channels key c;
        c
    in
    pcb.last_chan <- Some c;
    c

(* Serialise one outgoing message into the channel's outbox (or spill it
   as a heap message when the ring's frame pool is exhausted by a burst)
   and make sure a flush event will hand it to the receiver at the time the
   caller just stored in [ch_clock.(0)] (passing it through the clock
   rather than as an argument keeps the float unboxed on the join path):
   join
   the open batch when that is provably order-preserving (same flush time
   and no event scheduled since the batch last grew), otherwise schedule a
   fresh flush — which takes exactly the event-queue slot the per-message
   delivery used to, so (time, seq) order is unchanged. *)
and outbox_push t chan ~src_shard ~sender ~predicate ~tag ~seq ~uid ~size
    ~cached payload =
  (if Mailbox.has_frame chan.outbox then
     Frame.fill
       (Mailbox.emplace_frame chan.outbox)
       ~sender ~dest:chan.ch_dest ~predicate ~tag ~seq ~uid ~size ~cached
       payload
   else
     let m =
       match cached with
       | Some m -> m
       | None ->
         { Message.sender; dest = chan.ch_dest; predicate; payload; tag; seq;
           size }
     in
     Mailbox.emplace_spilled chan.outbox m);
  let at = Float.Array.unsafe_get chan.ch_clock 0 in
  (* Both join guards must be engine-GLOBAL under sharding. The
     watermark is the global stamp counter (nothing was scheduled on any
     shard since the batch last grew) and the epoch is the global
     execution counter (no event executed on any shard since the batch
     opened). A per-shard epoch — the tempting "re-derive the counter
     the shard already keeps" refactor — falsely joins when an event on
     a different shard ordered between two sends: the merged (time,
     stamp) order saw an execution, the sender's shard counter did not.
     [debug_shard_local_epoch] keeps that broken variant compilable for
     the regression test that pins the divergence. *)
  let epoch =
    if t.debug_shard_local_epoch then t.shard_events.(t.cur_shard)
    else t.events_processed
  in
  if
    chan.ch_open
    && Float.Array.unsafe_get chan.ch_clock 1 = at
    && chan.ch_watermark = t.next_stamp
    && chan.ch_epoch = epoch
  then chan.ch_upto.u <- Mailbox.tail_pos chan.outbox
  else begin
    let upto = { u = Mailbox.tail_pos chan.outbox } in
    chan.ch_open <- true;
    Float.Array.unsafe_set chan.ch_clock 1 at;
    chan.ch_upto <- upto;
    schedule_to_shard t ~src:src_shard
      (shard_of_dest t chan.ch_dest)
      ~at
      (fun () -> flush_channel t chan upto);
    chan.ch_watermark <- t.next_stamp;
    chan.ch_epoch <- epoch
  end

and do_send t pcb ~dest ~tag payload =
  let predicate =
    (* Certain predicates normalise to themselves; skipping the call keeps
       the fast path free of the `Live wrapper allocation. *)
    if Predicate.is_certain pcb.predicate then pcb.predicate
    else
      match Fate_registry.normalize t.reg pcb.predicate with
      | `Live p -> p
      | `Dead -> pcb.predicate (* the sweep will kill us shortly *)
  in
  let seq = pcb.send_seq in
  pcb.send_seq <- seq + 1;
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let size = Message.header_bytes + Payload.size_bytes payload in
  let live = Trace.live t.trace_ in
  (* Materialise a message value only if someone will look at it: the
     trace, a message-fault plan, or a delivery-fault hook. It is threaded
     through the frames as [cached] so every event about this send shares
     one value, exactly like the heap-allocated path did. *)
  let msg =
    if live || t.msg_fault != None || t.delivery_fault != None then
      Some { Message.sender = pcb.pid; dest; predicate; payload; tag; seq; size }
    else None
  in
  (match msg with Some m when live -> tr t (Trace.Sent { msg = m }) | _ -> ());
  let chan = channel_of t pcb ~dest in
  (* Per-(sender, logical dest) FIFO: never deliver before an earlier send.
     The cost expression is inlined (rather than calling
     [Cost_model.message_cost]) so the float stays unboxed in this frame. *)
  let at =
    let earliest =
      t.vnow
      +. t.model_.Cost_model.msg_latency
      +. (float_of_int size *. t.model_.Cost_model.msg_per_byte)
    in
    let last = Float.Array.unsafe_get chan.ch_clock 0 in
    if last > earliest then last else earliest
  in
  match t.msg_fault with
  | None ->
    Float.Array.unsafe_set chan.ch_clock 0 at;
    outbox_push t chan ~src_shard:pcb.shard ~sender:pcb.pid ~predicate ~tag
      ~seq ~uid ~size
      ~cached:msg payload
  | Some f -> (
    let m = Option.get msg in
    let inject kind = tr t (Trace.Injected { kind; pid = None; msg = Some m }) in
    match f m with
    | F_deliver ->
      Float.Array.unsafe_set chan.ch_clock 0 at;
      outbox_push t chan ~src_shard:pcb.shard ~sender:pcb.pid ~predicate ~tag
        ~seq ~uid ~size
        ~cached:msg payload
    | F_drop ->
      (* The send happened; the network lost it. The channel clock still
         advances so that later sends keep their fault-free schedule. *)
      Float.Array.unsafe_set chan.ch_clock 0 at;
      inject "drop"
    | F_duplicate ->
      Float.Array.unsafe_set chan.ch_clock 0 at;
      inject "duplicate";
      (* Two frames, one send identity, independently serialised bytes:
         consuming (or corrupting) one copy cannot touch the other, but a
         world split still filters both out as a single logical send. *)
      outbox_push t chan ~src_shard:pcb.shard ~sender:pcb.pid ~predicate ~tag
        ~seq ~uid ~size
        ~cached:msg payload;
      outbox_push t chan ~src_shard:pcb.shard ~sender:pcb.pid ~predicate ~tag
        ~seq ~uid ~size
        ~cached:msg payload
    | F_delay extra ->
      (* Extra latency that also holds back later sends on the channel:
         per-sender FIFO is preserved, everything just arrives late. The
         message bypasses the outbox (its time would break the outbox's
         monotone order) and is delivered directly. *)
      let at = at +. Float.max 0. extra in
      Float.Array.unsafe_set chan.ch_clock 0 at;
      inject "delay";
      schedule_to_shard t ~src:pcb.shard (shard_of_dest t dest) ~at (fun () ->
          deliver_msg t m)
    | F_reorder extra ->
      (* Extra latency that does NOT advance the channel clock: a later
         send may overtake this message — a genuine FIFO violation. *)
      Float.Array.unsafe_set chan.ch_clock 0 at;
      inject "reorder";
      schedule_to_shard t ~src:pcb.shard
        (shard_of_dest t dest)
        ~at:(at +. Float.max 0. extra)
        (fun () -> deliver_msg t m))

(* Hand every entry of one delivery batch to the receiver. When the trace
   is live each entry is delivered, traced and rescanned in turn — byte-for-
   byte the event sequence the per-message engine produced, because the
   batch-join rule guarantees nothing could have ordered between them. When
   nobody is watching the trace (and no delivery-fault hook needs a
   per-copy veto interleaved with world splits), the destination's world
   copies are resolved once, all entries are enqueued, and each copy is
   rescanned once: unobservable (no user code can run mid-drain), and it
   turns n park/wake cycles of a pipelined receiver into one. *)
and flush_channel t chan upto =
  if chan.ch_open && chan.ch_upto == upto then chan.ch_open <- false;
  let outbox = chan.outbox in
  let live = Trace.live t.trace_ in
  if live || t.delivery_fault != None then begin
    if live then begin
      let n = upto.u - Mailbox.head_pos outbox in
      if n > 1 then
        tr t
          (Trace.Delivered_batch
             { sender = chan.ch_sender; dest = chan.ch_dest; count = n })
    end;
    while Mailbox.head_pos outbox < upto.u do
      let pos = Mailbox.head_pos outbox in
      deliver_pos t outbox pos ~dest:chan.ch_dest ~rescan:true;
      Mailbox.remove outbox pos
    done
  end
  else begin
    (match Hashtbl.find t.worlds chan.ch_dest with
    | l -> (
      match !l with
      | [ pid ] -> drain_batch_to t outbox upto pid
      | pids -> (
        while Mailbox.head_pos outbox < upto.u do
          let pos = Mailbox.head_pos outbox in
          List.iter
            (fun pid -> deliver_pos_to t outbox pos pid ~rescan:false)
            (List.rev pids);
          Mailbox.remove outbox pos
        done))
    | exception Not_found -> drain_batch_to t outbox upto chan.ch_dest);
    rescan_worlds t chan.ch_dest
  end

(* The single-world-copy bulk drain: destination pcb looked up once for
   the whole batch (liveness cannot change mid-drain — no user code runs
   until the rescan). *)
and drain_batch_to t outbox upto pid =
  match Hashtbl.find t.procs pid with
  | exception Not_found -> Mailbox.drop_upto outbox ~upto:upto.u
  | pcb ->
    if is_alive pcb then Mailbox.transfer_upto outbox ~upto:upto.u pcb.mailbox
    else Mailbox.drop_upto outbox ~upto:upto.u

(* Move one outbox entry into a destination ring: framed entries are
   deep-copied into a destination frame (or materialised and spilled if
   the destination pool is exhausted); spilled entries share the
   immutable message value, exactly like the old heap path did. *)
and deliver_entry outbox pos dst =
  let fr = Mailbox.frame_at outbox pos in
  if Frame.occupied fr then begin
    if Mailbox.has_frame dst then Frame.copy_into fr (Mailbox.emplace_frame dst)
    else Mailbox.emplace_spilled dst (Frame.message fr)
  end
  else Mailbox.emplace_spilled dst (Mailbox.message_at outbox pos)

(* Deliver one outbox entry to every world copy of its destination. *)
and deliver_pos t outbox pos ~dest ~rescan =
  match Hashtbl.find t.worlds dest with
  | l -> (
    match !l with
    | [ pid ] -> deliver_pos_to t outbox pos pid ~rescan
    | pids ->
      List.iter
        (fun pid -> deliver_pos_to t outbox pos pid ~rescan)
        (List.rev pids))
  | exception Not_found -> deliver_pos_to t outbox pos dest ~rescan

and deliver_pos_to t outbox pos pid ~rescan =
  match Hashtbl.find t.procs pid with
  | exception Not_found -> ()
  | pcb ->
    if is_alive pcb then begin
      let deliverable =
        (* Checked at delivery time, per destination copy: a site crash or
           partition that comes up while the message is in flight still
           loses it. The hook records its own trace events. *)
        match t.delivery_fault with
        | None -> true
        | Some f -> f (Mailbox.message_at outbox pos) ~dest:pid
      in
      if deliverable then begin
        deliver_entry outbox pos pcb.mailbox;
        if Trace.live t.trace_ then
          tr t (Trace.Delivered { dest = pid; msg = Mailbox.message_at outbox pos });
        if rescan then rescan_parked t pcb
      end
    end

and rescan_worlds t dest =
  match Hashtbl.find t.worlds dest with
  | l -> (
    match !l with
    | [ pid ] -> rescan_world_copy t pid
    | pids -> List.iter (fun pid -> rescan_world_copy t pid) (List.rev pids))
  | exception Not_found -> rescan_world_copy t dest

and rescan_world_copy t pid =
  match Hashtbl.find t.procs pid with
  | exception Not_found -> ()
  | pcb -> if is_alive pcb then rescan_parked t pcb

(* Direct delivery for messages that bypass the outbox (delayed/reordered
   fault injections): already materialised, so the message value is shared
   into the receivers' rings via the spill path — one value for every
   copy, exactly as the heap path delivered it. *)
and deliver_msg t (msg : Message.t) =
  let copies =
    match Hashtbl.find_opt t.worlds msg.Message.dest with
    | Some l -> List.rev !l
    | None -> [ msg.Message.dest ]
  in
  List.iter
    (fun pid ->
      match find_pcb t pid with
      | Some pcb when is_alive pcb ->
        let deliverable =
          match t.delivery_fault with None -> true | Some f -> f msg ~dest:pid
        in
        if deliverable then begin
          Mailbox.emplace_spilled pcb.mailbox msg;
          tr t (Trace.Delivered { dest = pid; msg });
          rescan_parked t pcb
        end
      | _ -> ())
    copies

(* ------------------------------------------------------------------ *)
(* Public spawning / running.                                          *)

let fresh_pids t n = List.init n (fun _ -> Pid.Allocator.fresh t.alloc)

let spawn t ?pid ?parent ?(predicate = Predicate.empty) ?space
    ?(cloneable = true) ?(oblivious = false) ?(start_delay = 0.)
    ?(name = "proc") ?site body =
  let pid = match pid with Some p -> p | None -> Pid.Allocator.fresh t.alloc in
  (match parent with
  | Some pp -> Option.iter disable_cloning (find_pcb t pp)
  | None -> ());
  let pcb =
    make_pcb t ~pid ~logical:pid ~parent ~name ~predicate ~space ~cloneable
      ~oblivious ~body
  in
  register_world t pcb;
  t.live <- t.live + 1;
  assign_site t pcb ~explicit:site;
  pcb.shard <- shard_of_pcb t pcb;
  tr t (Trace.Spawned { pid; parent; name });
  (match t.spawn_hook with Some h -> h pid name | None -> ());
  schedule_on t pcb.shard ~at:(t.vnow +. start_delay) (fun () -> start_pcb t pcb);
  pid

let on_exit t pid f =
  match find_pcb t pid with
  | None -> invalid_arg "Engine.on_exit: unknown pid"
  | Some pcb -> (
    match pcb.state with
    | Dead st -> f st
    | _ -> pcb.exit_watchers <- f :: pcb.exit_watchers)

let on_resolution t pid f =
  match find_pcb t pid with
  | None -> invalid_arg "Engine.on_resolution: unknown pid"
  | Some pcb -> (
    match Fate_registry.normalize t.reg pcb.predicate with
    | `Dead -> f `Dead
    | `Live p when Predicate.is_certain p && is_alive pcb -> f `Certain
    | _ -> (
      match pcb.state with
      | Dead (Exited_ok) -> pcb.res_watchers <- f :: pcb.res_watchers
      | Dead _ -> f `Dead
      | _ -> pcb.res_watchers <- f :: pcb.res_watchers))

let preserve_space t pid =
  match find_pcb t pid with
  | None -> invalid_arg "Engine.preserve_space: unknown pid"
  | Some pcb -> pcb.preserve_space <- true

let after t ~delay thunk = schedule t ~at:(t.vnow +. delay) thunk

(* Move every staged cross-shard event due inside the conservative
   window [horizon] onto its destination shard's queue. The entries keep
   their global (time, stamp) keys, so the exchange is order-neutral;
   the window is the earliest next local event time plus the minimum
   message latency — no event executing inside it can create a delivery
   due inside it, which is exactly the conservative-lookahead safety
   argument. *)
let barrier_exchange t ~horizon =
  t.barriers <- t.barriers + 1;
  let n = t.nshards in
  Array.iteri
    (fun idx q ->
      let dst = idx mod n in
      let continue = ref true in
      while !continue do
        match Event_queue.peek_key q with
        | Some (time, _) when time <= horizon -> (
          match Event_queue.pop_entry q with
          | Some (time, seq, ev) ->
            Event_queue.push_stamped t.queues.(dst) ~time ~seq ev
          | None -> continue := false)
        | _ -> continue := false
      done)
    t.staged

(* The head (time, stamp) minimum across an array of queues, with the
   index it was found at. *)
let min_head qs =
  let best = ref None in
  Array.iteri
    (fun i q ->
      match Event_queue.peek_key q with
      | None -> ()
      | Some (tm, sq) -> (
        match !best with
        | Some (bt, bs, _) when bt < tm || (bt = tm && bs < sq) -> ()
        | _ -> best := Some (tm, sq, i)))
    qs;
  !best

let run t =
  t.stopped <- false;
  if t.nshards = 1 then begin
    (* The 1-shard loop is the PR 8 loop verbatim: no head comparisons,
       no staging, no barriers. *)
    let q = t.queues.(0) in
    let rec loop () =
      if not t.stopped then
        match Event_queue.pop q with
        | None -> ()
        | Some (time, ev) ->
          if ev.dead_ev then loop ()
          else begin
            t.vnow <- Float.max t.vnow time;
            t.events_processed <- t.events_processed + 1;
            t.shard_events.(0) <- t.shard_events.(0) + 1;
            ev.run_ev ();
            loop ()
          end
    in
    loop ()
  end
  else begin
    (* Conservative sharded loop: execute the globally minimal (time,
       stamp) head across the shard queues — byte-identical to the
       single-queue merge by construction — exchanging staged
       cross-shard events at a barrier whenever one would be next. *)
    let rec loop () =
      if not t.stopped then
        match (min_head t.queues, min_head t.staged) with
        | None, None -> ()
        | None, Some (st, _, _) ->
          barrier_exchange t ~horizon:(st +. t.lookahead);
          loop ()
        | Some (qt, qs, shard), staged ->
          let staged_first =
            match staged with
            | Some (st, ss, _) -> st < qt || (st = qt && ss < qs)
            | None -> false
          in
          if staged_first then begin
            barrier_exchange t ~horizon:(qt +. t.lookahead);
            loop ()
          end
          else begin
            match Event_queue.pop t.queues.(shard) with
            | None -> assert false (* peeked non-empty just above *)
            | Some (time, ev) ->
              if ev.dead_ev then loop ()
              else begin
                t.cur_shard <- shard;
                t.vnow <- Float.max t.vnow time;
                t.events_processed <- t.events_processed + 1;
                t.shard_events.(shard) <- t.shard_events.(shard) + 1;
                ev.run_ev ();
                loop ()
              end
          end
    in
    loop ()
  end

let run_for t duration =
  schedule t ~at:(t.vnow +. duration) (fun () -> t.stopped <- true);
  run t

(* ------------------------------------------------------------------ *)
(* In-process operations.                                              *)

let self ctx = ctx.pcb.pid
let engine ctx = ctx.engine
let now_v _ctx = Effect.perform E_now
let delay _ctx dt = Effect.perform (E_delay dt)
let space ctx = ctx.pcb.space

let charge_memory ctx =
  match ctx.pcb.space with
  | None -> ()
  | Some sp ->
    let c = Address_space.drain_cost sp in
    if c > 0. then delay ctx c

(* The messaging operations run on the caller's own stack instead of
   performing an effect: [send] never suspends, and the receives only
   perform a (park-only) effect when nothing queued is acceptable. Raising
   [Process_killed] / [Replay_divergence] directly is equivalent to the
   old handler's [discontinue]: we are already inside the fiber, and the
   exception unwinds to [run_body]'s [exnc] either way. *)

let check_doomed pcb =
  match pcb.doomed with
  | Some reason ->
    pcb.doomed <- None;
    raise (Process_killed reason)
  | None -> ()

let send ctx ?(tag = "") dest payload =
  let pcb = ctx.pcb in
  check_doomed pcb;
  match replay_next pcb with
  | Some L_sent -> ()
  | Some _ -> raise (Replay_divergence "expected send")
  | None ->
    log_push pcb L_sent;
    do_send ctx.engine pcb ~dest ~tag payload

let receive ctx ?tag () =
  let pcb = ctx.pcb in
  check_doomed pcb;
  match replay_next pcb with
  | Some (L_recv m) -> m
  | Some _ -> raise (Replay_divergence "expected receive")
  | None ->
    let m = try_receive ctx.engine pcb tag in
    if m != Mailbox.no_message then begin
      log_push pcb (L_recv m);
      m
    end
    else Effect.perform (E_recv tag)

let receive_timeout ctx ?tag ~timeout () =
  let pcb = ctx.pcb in
  check_doomed pcb;
  match replay_next pcb with
  | Some (L_recv_opt r) -> r
  | Some _ -> raise (Replay_divergence "expected receive_timeout")
  | None ->
    let m = try_receive ctx.engine pcb tag in
    if m != Mailbox.no_message then begin
      log_push pcb (L_recv_opt (Some m));
      Some m
    end
    else if timeout <= 0. then begin
      (* Poll-only: nothing acceptable is queued right now, report that
         immediately without parking. *)
      log_push pcb (L_recv_opt None);
      None
    end
    else Effect.perform (E_recv_timeout (tag, timeout))

let cpu_time_of t pid =
  match Hashtbl.find_opt t.cpu_used pid with Some r -> !r | None -> 0.

let total_cpu_time t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.cpu_used 0.

let logical_of t pid = Option.map (fun p -> p.logical) (find_pcb t pid)
let space_of t pid = Option.bind (find_pcb t pid) (fun p -> p.space)
let name_of t pid = Option.map (fun p -> p.name) (find_pcb t pid)
let site_of t pid = Option.bind (find_pcb t pid) (fun p -> p.site)

let children_of t pid =
  Hashtbl.fold
    (fun cpid pcb acc ->
      match pcb.parent with
      | Some p when Pid.equal p pid -> cpid :: acc
      | _ -> acc)
    t.procs []
  |> List.sort Pid.compare

let certain_of t pid =
  match Fate_registry.fate t.reg pid with
  | Some Predicate.Completed -> true
  | Some Predicate.Failed -> false
  | None -> (
    match find_pcb t pid with
    | None -> false
    | Some pcb -> (
      match Fate_registry.normalize t.reg pcb.predicate with
      | `Live p -> Predicate.is_certain p
      | `Dead -> false))
let abort _ctx reason = raise (Abort_process reason)
let random_bits _ctx = Effect.perform E_random
let my_predicate ctx = ctx.pcb.predicate

let is_certain ctx =
  match Fate_registry.normalize ctx.engine.reg ctx.pcb.predicate with
  | `Live p -> Predicate.is_certain p
  | `Dead -> false

module Ivar = struct
  type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let try_fill iv v =
    match iv.value with
    | Some _ -> false
    | None ->
      iv.value <- Some v;
      let ws = iv.waiters in
      iv.waiters <- [];
      List.iter (fun w -> w ()) ws;
      true

  let is_filled iv = iv.value <> None
  let peek iv = iv.value

  let read ctx iv =
    disable_cloning ctx.pcb;
    match iv.value with
    | Some v -> v
    | None -> (
      Effect.perform (E_park (fun ~wake -> iv.waiters <- iv.waiters @ [ wake ]));
      match iv.value with
      | Some v -> v
      | None ->
        failwith
          (Format.asprintf
             "Engine.Ivar.read: process %a (%s, %s) woken with the ivar still \
              empty"
             Pid.pp ctx.pcb.pid ctx.pcb.name
             (proc_state_string ctx.pcb.state)))

  let read_timeout ctx iv ~timeout =
    disable_cloning ctx.pcb;
    match iv.value with
    | Some v -> Some v
    | None when timeout <= 0. ->
      (* Poll-only: report the current state without parking. *)
      None
    | None ->
      let eng = ctx.engine in
      Effect.perform
        (E_park
           (fun ~wake ->
             let ev =
               schedule_cancellable eng ~at:(eng.vnow +. timeout) (fun () ->
                   wake ())
             in
             (* A fill arriving first retires the pending timeout event so
                it cannot drag the virtual clock to the deadline. *)
             iv.waiters <-
               iv.waiters
               @ [
                   (fun () ->
                     cancel_event ev;
                     wake ());
                 ]));
      iv.value
end
