type cores = Infinite | Cores of int

type exit_status =
  | Exited_ok
  | Exited_failed of string
  | Crashed of string
  | Eliminated of string

exception Process_killed of string
exception Abort_process of string
exception Replay_divergence of string

(* One entry per effectful operation of a cloneable process, enough to
   re-execute its body deterministically up to a given point. *)
type log_entry =
  | L_delay of float
  | L_now of float
  | L_recv of Message.t
  | L_recv_opt of Message.t option
  | L_sent
  | L_random of int64

type proc_state =
  | Embryo
  | Running
  | Suspended
  | Dead of exit_status

type cpu_task = { mutable remaining : float; resume : unit -> unit }

type park =
  | Park_recv of {
      tag : string option;
      wake : Message.t -> unit;
      cancel : string -> unit;
    }
  | Park_ivar of { cancel : string -> unit }
  | Park_cpu of { task : cpu_task; cancel : string -> unit }

type pcb = {
  pid : Pid.t;
  logical : Pid.t;
  parent : Pid.t option;
  name : string;
  body : ctx -> unit;
  mutable state : proc_state;
  mutable park : park option;
  mutable predicate : Predicate.t;
  space : Address_space.t option;
  mutable mailbox : Message.t list;  (* arrival order *)
  mutable doomed : string option;
  mutable cloneable : bool;
  mutable log : log_entry list;  (* newest first *)
  mutable replay : log_entry list;  (* oldest first; non-empty while replaying *)
  mutable send_seq : int;
  mutable exit_watchers : (exit_status -> unit) list;
  mutable res_watchers : ([ `Certain | `Dead ] -> unit) list;
  mutable preserve_space : bool;
  oblivious : bool;
  mutable site : string option;
}

and ctx = { engine : t; pcb : pcb }

and event = { mutable dead_ev : bool; run_ev : unit -> unit }

and fault_action =
  | F_deliver
  | F_drop
  | F_delay of float
  | F_duplicate
  | F_reorder of float

and t = {
  mutable vnow : float;
  events : event Event_queue.t;
  procs : (Pid.t, pcb) Hashtbl.t;
  worlds : (Pid.t, Pid.t list ref) Hashtbl.t;  (* logical pid -> copies *)
  alloc : Pid.Allocator.t;
  reg : Fate_registry.t;
  store : Frame_store.t;
  model_ : Cost_model.t;
  cores : cores;
  trace_ : Trace.t;
  rng : Rng.t;
  cpu_tasks : (Pid.t, cpu_task) Hashtbl.t;
  cpu_used : (Pid.t, float ref) Hashtbl.t;
  mutable cpu_gen : int;
  mutable cpu_last : float;
  mutable cpu_tick_ev : event option;
  channels : (Pid.t * Pid.t, float) Hashtbl.t;  (* last delivery per channel *)
  mutable events_processed : int;
  mutable live : int;
  mutable deferred : Pid.t list;  (* exited ok, fate deferred on predicates *)
  mutable stopped : bool;
  mutable sweeping : bool;
  mutable sweep_again : bool;
  mutable msg_fault : (Message.t -> fault_action) option;
  mutable spawn_hook : (Pid.t -> string -> unit) option;
  mutable site_hook :
    (pid:Pid.t ->
    parent:Pid.t option ->
    name:string ->
    explicit:string option ->
    string option)
    option;
  mutable delivery_fault : (Message.t -> dest:Pid.t -> bool) option;
}

type _ Effect.t +=
  | E_delay : float -> unit Effect.t
  | E_now : float Effect.t
  | E_send : (Pid.t * string * Payload.t) -> unit Effect.t
  | E_recv : string option -> Message.t Effect.t
  | E_recv_timeout : string option * float -> Message.t option Effect.t
  | E_random : int64 Effect.t
  | E_park : (wake:(unit -> unit) -> unit) -> unit Effect.t

let create ?(cores = Infinite) ?(model = Cost_model.uniform ()) ?(seed = 42)
    ?(trace = true) () =
  {
    vnow = 0.;
    events = Event_queue.create ();
    procs = Hashtbl.create 64;
    worlds = Hashtbl.create 64;
    alloc = Pid.Allocator.create ();
    reg = Fate_registry.create ();
    store = Frame_store.create ~page_size:model.Cost_model.page_size;
    model_ = model;
    cores;
    trace_ = Trace.create ~enabled:trace ();
    rng = Rng.create ~seed;
    cpu_tasks = Hashtbl.create 16;
    cpu_used = Hashtbl.create 64;
    cpu_gen = 0;
    cpu_last = 0.;
    cpu_tick_ev = None;
    channels = Hashtbl.create 64;
    events_processed = 0;
    live = 0;
    deferred = [];
    stopped = false;
    sweeping = false;
    sweep_again = false;
    msg_fault = None;
    spawn_hook = None;
    site_hook = None;
    delivery_fault = None;
  }

let set_message_fault t f = t.msg_fault <- f
let set_spawn_hook t f = t.spawn_hook <- f
let set_site_hook t f = t.site_hook <- f
let set_delivery_fault t f = t.delivery_fault <- f

let now t = t.vnow
let model t = t.model_
let frame_store t = t.store
let trace t = t.trace_
let registry t = t.reg
let stats_events_processed t = t.events_processed

let schedule_cancellable t ~at thunk =
  let ev = { dead_ev = false; run_ev = thunk } in
  Event_queue.push t.events ~time:(Float.max at t.vnow) ev;
  ev

let cancel_event ev = ev.dead_ev <- true

let schedule t ~at thunk = ignore (schedule_cancellable t ~at thunk)

let tr t e = Trace.record t.trace_ ~time:t.vnow e

let status_string = function
  | Exited_ok -> "ok"
  | Exited_failed r -> "failed: " ^ r
  | Crashed r -> "crashed: " ^ r
  | Eliminated r -> "eliminated: " ^ r

let proc_state_string = function
  | Embryo -> "embryo"
  | Running -> "running"
  | Suspended -> "suspended"
  | Dead st -> "dead (" ^ status_string st ^ ")"

(* ------------------------------------------------------------------ *)
(* CPU: egalitarian processor sharing over [cores] processors.         *)

let cpu_rate t =
  let n = Hashtbl.length t.cpu_tasks in
  if n = 0 then 1.0
  else
    match t.cores with
    | Infinite -> 1.0
    | Cores c -> Float.min 1.0 (float_of_int c /. float_of_int n)

let charge_cpu_used t pid amount =
  match Hashtbl.find_opt t.cpu_used pid with
  | Some r -> r := !r +. amount
  | None -> Hashtbl.replace t.cpu_used pid (ref amount)

let cpu_update t =
  let elapsed = t.vnow -. t.cpu_last in
  if elapsed > 0. then begin
    let rate = cpu_rate t in
    Hashtbl.iter
      (fun pid task ->
        task.remaining <- task.remaining -. (elapsed *. rate);
        charge_cpu_used t pid (elapsed *. rate))
      t.cpu_tasks
  end;
  t.cpu_last <- t.vnow

let rec cpu_reschedule t =
  t.cpu_gen <- t.cpu_gen + 1;
  (match t.cpu_tick_ev with
  | Some ev ->
    cancel_event ev;
    t.cpu_tick_ev <- None
  | None -> ());
  if Hashtbl.length t.cpu_tasks > 0 then begin
    let gen = t.cpu_gen in
    let rate = cpu_rate t in
    let min_rem =
      Hashtbl.fold
        (fun _ task acc -> Float.min acc (Float.max 0. task.remaining))
        t.cpu_tasks infinity
    in
    let at = t.vnow +. (min_rem /. rate) in
    t.cpu_tick_ev <- Some (schedule_cancellable t ~at (fun () -> cpu_tick t gen))
  end

and cpu_tick t gen =
  if gen = t.cpu_gen then begin
    cpu_update t;
    let done_ =
      Hashtbl.fold
        (fun pid task acc -> if task.remaining <= 1e-12 then (pid, task) :: acc else acc)
        t.cpu_tasks []
    in
    let done_ = List.sort (fun (a, _) (b, _) -> Pid.compare a b) done_ in
    List.iter (fun (pid, _) -> Hashtbl.remove t.cpu_tasks pid) done_;
    cpu_reschedule t;
    List.iter (fun (_, task) -> task.resume ()) done_
  end

let cpu_add t pid task =
  cpu_update t;
  Hashtbl.replace t.cpu_tasks pid task;
  cpu_reschedule t

let cpu_remove t pid =
  if Hashtbl.mem t.cpu_tasks pid then begin
    cpu_update t;
    Hashtbl.remove t.cpu_tasks pid;
    cpu_reschedule t
  end

(* ------------------------------------------------------------------ *)
(* Process table helpers.                                              *)

let find_pcb t pid = Hashtbl.find_opt t.procs pid

let is_alive pcb = match pcb.state with Dead _ -> false | _ -> true

let alive t pid = match find_pcb t pid with Some p -> is_alive p | None -> false

let status t pid =
  match find_pcb t pid with
  | Some { state = Dead s; _ } -> Some s
  | _ -> None

let predicate_of t pid = Option.map (fun p -> p.predicate) (find_pcb t pid)

let live_count t = t.live

let parked_pids t =
  Hashtbl.fold
    (fun pid pcb acc -> if is_alive pcb && pcb.park <> None then pid :: acc else acc)
    t.procs []
  |> List.sort Pid.compare

let log_push pcb e =
  if pcb.cloneable && pcb.replay = [] then pcb.log <- e :: pcb.log

let replay_next pcb =
  match pcb.replay with
  | [] -> None
  | e :: rest ->
    pcb.replay <- rest;
    Some e

let disable_cloning pcb =
  if pcb.cloneable then begin
    pcb.cloneable <- false;
    pcb.log <- []
  end

(* ------------------------------------------------------------------ *)
(* Fates, predicate sweep, world elimination.                          *)

let rec finalize t pcb st =
  match pcb.state with
  | Dead _ -> ()
  | _ ->
    pcb.state <- Dead st;
    pcb.park <- None;
    cpu_remove t pcb.pid;
    if not pcb.preserve_space then Option.iter Address_space.release pcb.space;
    t.live <- t.live - 1;
    tr t (Trace.Exited { pid = pcb.pid; status = status_string st });
    let watchers = pcb.exit_watchers in
    pcb.exit_watchers <- [];
    List.iter
      (fun w ->
        try w st
        with e ->
          tr t (Trace.Note ("exit watcher raised: " ^ Printexc.to_string e)))
      watchers;
    (match st with
    | Exited_ok -> (
      (* An alternative's predicate assumes its own completion; its exit is
         precisely what resolves that assumption. *)
      (match Predicate.resolve pcb.predicate ~pid:pcb.pid ~fate:Predicate.Completed with
      | Predicate.Simplified p -> pcb.predicate <- p
      | Predicate.Unchanged -> ()
      | Predicate.Falsified ->
        (* It assumed its own failure: an impossible world; drop the
           self-assumption and let the normal sweep handle the rest. *)
        ());
      match Fate_registry.normalize t.reg pcb.predicate with
      | `Dead ->
        fire_res_watchers t pcb `Dead;
        record_fate t pcb.pid Predicate.Failed
      | `Live p when Predicate.is_certain p ->
        fire_res_watchers t pcb `Certain;
        record_fate t pcb.pid Predicate.Completed
      | `Live p ->
        (* Completion is conditional on unresolved assumptions: defer the
           fate until they resolve (the process "cannot commit" yet). *)
        pcb.predicate <- p;
        t.deferred <- pcb.pid :: t.deferred;
        tr t (Trace.Fate_deferred pcb.pid))
    | Exited_failed _ | Crashed _ | Eliminated _ ->
      fire_res_watchers t pcb `Dead;
      record_fate t pcb.pid Predicate.Failed)

and fire_res_watchers t pcb outcome =
  let ws = pcb.res_watchers in
  pcb.res_watchers <- [];
  List.iter
    (fun w ->
      try w outcome
      with e ->
        tr t (Trace.Note ("resolution watcher raised: " ^ Printexc.to_string e)))
    ws

and record_fate t pid fate =
  (match Fate_registry.fate t.reg pid with
  | Some f when f = fate -> ()
  | _ ->
    Fate_registry.record t.reg pid fate;
    tr t (Trace.Fate { pid; fate }));
  sweep t

and kill t pid ~reason =
  match find_pcb t pid with
  | None -> ()
  | Some pcb -> (
    match pcb.state with
    | Dead _ -> ()
    | Embryo -> finalize t pcb (Eliminated reason)
    | Running -> pcb.doomed <- Some reason
    | Suspended -> (
      match pcb.park with
      | None ->
        (* Runnable (start scheduled): doom it; the start event checks. *)
        pcb.doomed <- Some reason
      | Some (Park_recv { cancel; _ })
      | Some (Park_ivar { cancel })
      | Some (Park_cpu { cancel; _ }) ->
        pcb.park <- None;
        cpu_remove t pcb.pid;
        cancel reason))

(* Re-examine every live process's predicate after new knowledge arrives:
   falsified worlds are eliminated, satisfied assumptions removed, parked
   receivers rescanned, deferred fates settled. *)
and sweep t =
  if t.sweeping then t.sweep_again <- true
  else begin
    t.sweeping <- true;
    let continue = ref true in
    while !continue do
      t.sweep_again <- false;
      let live =
        Hashtbl.fold (fun _ p acc -> if is_alive p then p :: acc else acc) t.procs []
        |> List.sort (fun a b -> Pid.compare a.pid b.pid)
      in
      List.iter
        (fun pcb ->
          if is_alive pcb then begin
            (match Fate_registry.normalize t.reg pcb.predicate with
            | `Dead ->
              tr t (Trace.Killed { pid = pcb.pid; reason = "dead world" });
              fire_res_watchers t pcb `Dead;
              kill t pcb.pid ~reason:"dead world"
            | `Live p ->
              let changed = not (Predicate.equal p pcb.predicate) in
              pcb.predicate <- p;
              if changed && Predicate.is_certain p then
                fire_res_watchers t pcb `Certain);
            (* A parked receiver may now be able to accept a message whose
               acceptance was deferred. *)
            if is_alive pcb then rescan_parked t pcb
          end)
        live;
      (* Settle deferred fates. *)
      let deferred = t.deferred in
      t.deferred <- [];
      let still =
        List.filter
          (fun pid ->
            match find_pcb t pid with
            | None -> false
            | Some pcb -> (
              match Fate_registry.normalize t.reg pcb.predicate with
              | `Dead ->
                fire_res_watchers t pcb `Dead;
                record_fate t pid Predicate.Failed;
                false
              | `Live p when Predicate.is_certain p ->
                pcb.predicate <- p;
                fire_res_watchers t pcb `Certain;
                record_fate t pid Predicate.Completed;
                false
              | `Live p ->
                pcb.predicate <- p;
                true))
          deferred
      in
      t.deferred <- still @ t.deferred;
      continue := t.sweep_again
    done;
    t.sweeping <- false
  end

(* ------------------------------------------------------------------ *)
(* Message scanning: accept / ignore / split (section 3.4.2).          *)

and try_receive t pcb tag : Message.t option =
  (* Walk the mailbox in order; honour per-sender FIFO when deferring.
     [blocked] (senders we must not overtake) is threaded as a list so the
     common no-deferral scan allocates nothing. *)
  let rec scan blocked acc = function
    | [] ->
      pcb.mailbox <- List.rev acc;
      None
    | m :: rest ->
      let skip () = scan blocked (m :: acc) rest in
      let matches_tag =
        match tag with None -> true | Some wanted -> String.equal m.Message.tag wanted
      in
      if not matches_tag then skip ()
      else if pcb.oblivious then begin
        (* Kernel-level services (consensus voters, devices) accept every
           message: they are part of process management, not of any world. *)
        tr t (Trace.Accepted { dest = pcb.pid; msg = m; dest_pred = pcb.predicate });
        pcb.mailbox <- List.rev_append acc rest;
        Some m
      end
      else if
        (* Empty-list check first: no closure is built unless a sender has
           actually been deferred during this scan. *)
        (match blocked with
        | [] -> false
        | _ -> List.exists (Pid.equal m.Message.sender) blocked)
      then skip ()
      else begin
        match Fate_registry.normalize t.reg m.Message.predicate with
        | `Dead ->
          (* The sender's world died: the message never happened. *)
          tr t (Trace.Ignored { dest = pcb.pid; msg = m; reason = "dead world" });
          scan blocked acc rest
        | `Live s ->
          if Predicate.implies pcb.predicate s then begin
            tr t (Trace.Accepted { dest = pcb.pid; msg = m; dest_pred = pcb.predicate });
            pcb.mailbox <- List.rev_append acc rest;
            Some m
          end
          else if Predicate.conflicts pcb.predicate s then begin
            tr t (Trace.Ignored { dest = pcb.pid; msg = m; reason = "conflict" });
            scan blocked acc rest
          end
          else begin
            (* The message requires new assumptions. *)
            match accept_with_split t pcb m s with
            | `Accepted ->
              pcb.mailbox <- List.rev_append acc rest;
              Some m
            | `Deferred ->
              (* Keep waiting: do not overtake this sender (FIFO). *)
              scan (m.Message.sender :: blocked) (m :: acc) rest
          end
      end
  in
  scan [] [] pcb.mailbox

(* Receiver [pcb] is about to accept [m] whose (normalized) sending
   predicate [s] extends the receiver's assumptions. Create the rejecting
   world as a replay clone, then let [pcb] proceed as the accepting world. *)
and accept_with_split t pcb m s =
  let sender = m.Message.sender in
  let reject_pred =
    if Predicate.mem_completes pcb.predicate sender then None
    else Some (Predicate.assume_fails pcb.predicate sender)
  in
  let can_clone = pcb.cloneable in
  match reject_pred with
  | None ->
    (* The receiver already depends on the sender completing; the only new
       assumptions are the sender's own, which acceptance takes on. *)
    adopt_sender_assumptions t pcb m s;
    `Accepted
  | Some reject_pred when can_clone ->
    let clone_pid = Pid.Allocator.fresh t.alloc in
    let clone =
      make_pcb t ~pid:clone_pid ~logical:pcb.logical ~parent:pcb.parent
        ~name:(pcb.name ^ "~world") ~predicate:reject_pred ~space:None
        ~cloneable:true ~oblivious:false ~body:pcb.body
    in
    clone.replay <- List.rev pcb.log;
    clone.log <- pcb.log;
    clone.mailbox <-
      List.filter (fun m' -> not (m' == m)) pcb.mailbox;
    register_world t clone;
    t.live <- t.live + 1;
    (* World copies live wherever the original does: a site crash must take
       every copy of a resident process down with it. *)
    assign_site t clone ~explicit:pcb.site;
    tr t (Trace.Split { original = pcb.pid; clone = clone_pid; on = m });
    (match t.spawn_hook with Some h -> h clone_pid clone.name | None -> ());
    (* Charge the copy as a fork-base-cost start delay for the clone. *)
    schedule t ~at:(t.vnow +. t.model_.Cost_model.fork_base) (fun () ->
        start_pcb t clone);
    adopt_sender_assumptions t pcb m s;
    `Accepted
  | Some _ ->
    (* Not cloneable: fall back to deferring until the sender resolves
       (pessimistic but semantics-preserving). *)
    tr t
      (Trace.Ignored
         { dest = pcb.pid; msg = m; reason = "deferred (receiver not cloneable)" });
    `Deferred

and adopt_sender_assumptions t pcb m s =
  (* The trace records the predicate the receiver held when it decided to
     accept, not the conjoined one: the analysis layer re-derives the
     acceptance decision from it. *)
  let pred_at_accept = pcb.predicate in
  let p = Predicate.conjoin pcb.predicate s in
  let p =
    if Predicate.mem_completes p m.Message.sender then p
    else Predicate.assume_completes p m.Message.sender
  in
  pcb.predicate <- p;
  tr t (Trace.Accepted { dest = pcb.pid; msg = m; dest_pred = pred_at_accept })

and rescan_parked t pcb =
  match pcb.park with
  | Some (Park_recv { tag; wake; _ }) -> (
    match try_receive t pcb tag with Some m -> wake m | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Process creation and the effect handler.                            *)

and make_pcb t ~pid ~logical ~parent ~name ~predicate ~space ~cloneable
    ~oblivious ~body =
  if Hashtbl.mem t.procs pid then
    invalid_arg "Engine.spawn: pid already in use";
  let pcb =
    {
      pid;
      logical;
      parent;
      name;
      body;
      state = Embryo;
      park = None;
      predicate;
      space;
      mailbox = [];
      doomed = None;
      cloneable = cloneable && space = None;
      log = [];
      replay = [];
      send_seq = 0;
      exit_watchers = [];
      res_watchers = [];
      preserve_space = false;
      oblivious;
      site = None;
    }
  in
  Hashtbl.replace t.procs pid pcb;
  pcb

and assign_site t pcb ~explicit =
  pcb.site <-
    (match t.site_hook with
    | Some h -> h ~pid:pcb.pid ~parent:pcb.parent ~name:pcb.name ~explicit
    | None -> explicit)

and register_world t pcb =
  match Hashtbl.find_opt t.worlds pcb.logical with
  | Some l -> l := pcb.pid :: !l
  | None -> Hashtbl.replace t.worlds pcb.logical (ref [ pcb.pid ])

and start_pcb t pcb =
  match pcb.state with
  | Dead _ -> ()
  | Embryo -> (
    match pcb.doomed with
    | Some reason -> finalize t pcb (Eliminated reason)
    | None ->
      pcb.state <- Running;
      tr t (Trace.Started pcb.pid);
      run_body t pcb)
  | (Running | Suspended) as st ->
    failwith
      (Format.asprintf "Engine.start_pcb: process %a (%s) already started: %s"
         Pid.pp pcb.pid pcb.name (proc_state_string st))

and run_body t pcb =
  let ctx = { engine = t; pcb } in
  let check_doom : type a. (a, unit) Effect.Deep.continuation -> bool =
   fun k ->
    match pcb.doomed with
    | Some reason ->
      pcb.doomed <- None;
      Effect.Deep.discontinue k (Process_killed reason);
      true
    | None -> false
  in
  let handler =
    {
      Effect.Deep.retc = (fun () -> finalize t pcb Exited_ok);
      exnc =
        (fun e ->
          match e with
          | Process_killed r -> finalize t pcb (Eliminated r)
          | Abort_process r -> finalize t pcb (Exited_failed r)
          | e -> finalize t pcb (Crashed (Printexc.to_string e)));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | E_delay dt ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_delay _) -> Effect.Deep.continue k ()
                  | Some _ ->
                    Effect.Deep.discontinue k
                      (Replay_divergence "expected delay")
                  | None ->
                    log_push pcb (L_delay dt);
                    if dt <= 0. then Effect.Deep.continue k ()
                    else begin
                      let armed = ref true in
                      let task =
                        {
                          remaining = dt;
                          resume =
                            (fun () ->
                              if !armed then begin
                                armed := false;
                                pcb.park <- None;
                                pcb.state <- Running;
                                Effect.Deep.continue k ()
                              end);
                        }
                      in
                      let cancel reason =
                        if !armed then begin
                          armed := false;
                          Effect.Deep.discontinue k (Process_killed reason)
                        end
                      in
                      pcb.state <- Suspended;
                      pcb.park <- Some (Park_cpu { task; cancel });
                      cpu_add t pcb.pid task
                    end
                end)
          | E_now ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_now v) -> Effect.Deep.continue k v
                  | Some _ ->
                    Effect.Deep.discontinue k (Replay_divergence "expected now")
                  | None ->
                    log_push pcb (L_now t.vnow);
                    Effect.Deep.continue k t.vnow
                end)
          | E_random ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_random v) -> Effect.Deep.continue k v
                  | Some _ ->
                    Effect.Deep.discontinue k
                      (Replay_divergence "expected random")
                  | None ->
                    let v = Rng.bits64 t.rng in
                    log_push pcb (L_random v);
                    Effect.Deep.continue k v
                end)
          | E_send (dest, tag, payload) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some L_sent -> Effect.Deep.continue k ()
                  | Some _ ->
                    Effect.Deep.discontinue k (Replay_divergence "expected send")
                  | None ->
                    log_push pcb L_sent;
                    do_send t pcb ~dest ~tag payload;
                    Effect.Deep.continue k ()
                end)
          | E_recv tag ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_recv m) -> Effect.Deep.continue k m
                  | Some _ ->
                    Effect.Deep.discontinue k
                      (Replay_divergence "expected receive")
                  | None -> (
                    match try_receive t pcb tag with
                    | Some m ->
                      log_push pcb (L_recv m);
                      Effect.Deep.continue k m
                    | None ->
                      let armed = ref true in
                      let wake m =
                        if !armed then begin
                          armed := false;
                          pcb.park <- None;
                          pcb.state <- Running;
                          log_push pcb (L_recv m);
                          Effect.Deep.continue k m
                        end
                      in
                      let cancel reason =
                        if !armed then begin
                          armed := false;
                          Effect.Deep.discontinue k (Process_killed reason)
                        end
                      in
                      pcb.state <- Suspended;
                      pcb.park <- Some (Park_recv { tag; wake; cancel }))
                end)
          | E_recv_timeout (tag, timeout) ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  match replay_next pcb with
                  | Some (L_recv_opt r) -> Effect.Deep.continue k r
                  | Some _ ->
                    Effect.Deep.discontinue k
                      (Replay_divergence "expected receive_timeout")
                  | None -> (
                    match try_receive t pcb tag with
                    | Some m ->
                      log_push pcb (L_recv_opt (Some m));
                      Effect.Deep.continue k (Some m)
                    | None when timeout <= 0. ->
                      (* Poll-only: nothing acceptable is queued right now,
                         report that immediately without parking. *)
                      log_push pcb (L_recv_opt None);
                      Effect.Deep.continue k None
                    | None ->
                      let armed = ref true in
                      let timeout_ev = ref None in
                      let disarm () =
                        armed := false;
                        Option.iter cancel_event !timeout_ev
                      in
                      let wake m =
                        if !armed then begin
                          disarm ();
                          pcb.park <- None;
                          pcb.state <- Running;
                          log_push pcb (L_recv_opt (Some m));
                          Effect.Deep.continue k (Some m)
                        end
                      in
                      let timeout_wake () =
                        if !armed then begin
                          disarm ();
                          pcb.park <- None;
                          pcb.state <- Running;
                          log_push pcb (L_recv_opt None);
                          Effect.Deep.continue k None
                        end
                      in
                      let cancel reason =
                        if !armed then begin
                          disarm ();
                          Effect.Deep.discontinue k (Process_killed reason)
                        end
                      in
                      pcb.state <- Suspended;
                      pcb.park <- Some (Park_recv { tag; wake; cancel });
                      timeout_ev :=
                        Some
                          (schedule_cancellable t ~at:(t.vnow +. timeout)
                             (fun () -> timeout_wake ())))
                end)
          | E_park register ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                if check_doom k then ()
                else begin
                  disable_cloning pcb;
                  let armed = ref true in
                  let wake () =
                    if !armed then begin
                      armed := false;
                      pcb.park <- None;
                      pcb.state <- Running;
                      Effect.Deep.continue k ()
                    end
                  in
                  let cancel reason =
                    if !armed then begin
                      armed := false;
                      Effect.Deep.discontinue k (Process_killed reason)
                    end
                  in
                  pcb.state <- Suspended;
                  pcb.park <- Some (Park_ivar { cancel });
                  register ~wake
                end)
          | _ -> None);
    }
  in
  Effect.Deep.match_with pcb.body ctx handler

and do_send t pcb ~dest ~tag payload =
  let predicate =
    match Fate_registry.normalize t.reg pcb.predicate with
    | `Live p -> p
    | `Dead -> pcb.predicate (* the sweep will kill us shortly *)
  in
  let msg =
    Message.make ~sender:pcb.pid ~dest ~predicate ~tag ~seq:pcb.send_seq payload
  in
  pcb.send_seq <- pcb.send_seq + 1;
  tr t (Trace.Sent { msg });
  let cost = Cost_model.message_cost t.model_ ~bytes:(Message.size_bytes msg) in
  (* Per-(sender, logical dest) FIFO: never deliver before an earlier send. *)
  let key = (pcb.pid, dest) in
  let at =
    let earliest = t.vnow +. cost in
    match Hashtbl.find_opt t.channels key with
    | Some last when last > earliest -> last
    | _ -> earliest
  in
  let inject kind = tr t (Trace.Injected { kind; pid = None; msg = Some msg }) in
  match t.msg_fault with
  | None ->
    Hashtbl.replace t.channels key at;
    schedule t ~at (fun () -> deliver t msg)
  | Some f -> (
    match f msg with
    | F_deliver ->
      Hashtbl.replace t.channels key at;
      schedule t ~at (fun () -> deliver t msg)
    | F_drop ->
      (* The send happened; the network lost it. The channel clock still
         advances so that later sends keep their fault-free schedule. *)
      Hashtbl.replace t.channels key at;
      inject "drop"
    | F_duplicate ->
      Hashtbl.replace t.channels key at;
      inject "duplicate";
      schedule t ~at (fun () -> deliver t msg);
      schedule t ~at (fun () -> deliver t msg)
    | F_delay extra ->
      (* Extra latency that also holds back later sends on the channel:
         per-sender FIFO is preserved, everything just arrives late. *)
      let at = at +. Float.max 0. extra in
      Hashtbl.replace t.channels key at;
      inject "delay";
      schedule t ~at (fun () -> deliver t msg)
    | F_reorder extra ->
      (* Extra latency that does NOT advance the channel clock: a later
         send may overtake this message — a genuine FIFO violation. *)
      Hashtbl.replace t.channels key at;
      inject "reorder";
      schedule t ~at:(at +. Float.max 0. extra) (fun () -> deliver t msg))

and deliver t msg =
  let copies =
    match Hashtbl.find_opt t.worlds msg.Message.dest with
    | Some l -> List.rev !l
    | None -> [ msg.Message.dest ]
  in
  List.iter
    (fun pid ->
      match find_pcb t pid with
      | Some pcb when is_alive pcb ->
        let deliverable =
          (* Checked at delivery time, per destination copy: a site crash or
             partition that comes up while the message is in flight still
             loses it. The hook records its own trace events. *)
          match t.delivery_fault with None -> true | Some f -> f msg ~dest:pid
        in
        if deliverable then begin
          pcb.mailbox <- pcb.mailbox @ [ msg ];
          tr t (Trace.Delivered { dest = pid; msg });
          rescan_parked t pcb
        end
      | _ -> ())
    copies

(* ------------------------------------------------------------------ *)
(* Public spawning / running.                                          *)

let fresh_pids t n = List.init n (fun _ -> Pid.Allocator.fresh t.alloc)

let spawn t ?pid ?parent ?(predicate = Predicate.empty) ?space
    ?(cloneable = true) ?(oblivious = false) ?(start_delay = 0.)
    ?(name = "proc") ?site body =
  let pid = match pid with Some p -> p | None -> Pid.Allocator.fresh t.alloc in
  (match parent with
  | Some pp -> Option.iter disable_cloning (find_pcb t pp)
  | None -> ());
  let pcb =
    make_pcb t ~pid ~logical:pid ~parent ~name ~predicate ~space ~cloneable
      ~oblivious ~body
  in
  register_world t pcb;
  t.live <- t.live + 1;
  assign_site t pcb ~explicit:site;
  tr t (Trace.Spawned { pid; parent; name });
  (match t.spawn_hook with Some h -> h pid name | None -> ());
  schedule t ~at:(t.vnow +. start_delay) (fun () -> start_pcb t pcb);
  pid

let on_exit t pid f =
  match find_pcb t pid with
  | None -> invalid_arg "Engine.on_exit: unknown pid"
  | Some pcb -> (
    match pcb.state with
    | Dead st -> f st
    | _ -> pcb.exit_watchers <- f :: pcb.exit_watchers)

let on_resolution t pid f =
  match find_pcb t pid with
  | None -> invalid_arg "Engine.on_resolution: unknown pid"
  | Some pcb -> (
    match Fate_registry.normalize t.reg pcb.predicate with
    | `Dead -> f `Dead
    | `Live p when Predicate.is_certain p && is_alive pcb -> f `Certain
    | _ -> (
      match pcb.state with
      | Dead (Exited_ok) -> pcb.res_watchers <- f :: pcb.res_watchers
      | Dead _ -> f `Dead
      | _ -> pcb.res_watchers <- f :: pcb.res_watchers))

let preserve_space t pid =
  match find_pcb t pid with
  | None -> invalid_arg "Engine.preserve_space: unknown pid"
  | Some pcb -> pcb.preserve_space <- true

let after t ~delay thunk = schedule t ~at:(t.vnow +. delay) thunk

let run t =
  t.stopped <- false;
  let rec loop () =
    if not t.stopped then
      match Event_queue.pop t.events with
      | None -> ()
      | Some (time, ev) ->
        if ev.dead_ev then loop ()
        else begin
          t.vnow <- Float.max t.vnow time;
          t.events_processed <- t.events_processed + 1;
          ev.run_ev ();
          loop ()
        end
  in
  loop ()

let run_for t duration =
  schedule t ~at:(t.vnow +. duration) (fun () -> t.stopped <- true);
  run t

(* ------------------------------------------------------------------ *)
(* In-process operations.                                              *)

let self ctx = ctx.pcb.pid
let engine ctx = ctx.engine
let now_v _ctx = Effect.perform E_now
let delay _ctx dt = Effect.perform (E_delay dt)
let space ctx = ctx.pcb.space

let charge_memory ctx =
  match ctx.pcb.space with
  | None -> ()
  | Some sp ->
    let c = Address_space.drain_cost sp in
    if c > 0. then delay ctx c

let send _ctx ?(tag = "") dest payload = Effect.perform (E_send (dest, tag, payload))
let receive _ctx ?tag () = Effect.perform (E_recv tag)

let receive_timeout _ctx ?tag ~timeout () =
  Effect.perform (E_recv_timeout (tag, timeout))

let cpu_time_of t pid =
  match Hashtbl.find_opt t.cpu_used pid with Some r -> !r | None -> 0.

let total_cpu_time t = Hashtbl.fold (fun _ r acc -> acc +. !r) t.cpu_used 0.

let logical_of t pid = Option.map (fun p -> p.logical) (find_pcb t pid)
let space_of t pid = Option.bind (find_pcb t pid) (fun p -> p.space)
let name_of t pid = Option.map (fun p -> p.name) (find_pcb t pid)
let site_of t pid = Option.bind (find_pcb t pid) (fun p -> p.site)

let children_of t pid =
  Hashtbl.fold
    (fun cpid pcb acc ->
      match pcb.parent with
      | Some p when Pid.equal p pid -> cpid :: acc
      | _ -> acc)
    t.procs []
  |> List.sort Pid.compare

let certain_of t pid =
  match Fate_registry.fate t.reg pid with
  | Some Predicate.Completed -> true
  | Some Predicate.Failed -> false
  | None -> (
    match find_pcb t pid with
    | None -> false
    | Some pcb -> (
      match Fate_registry.normalize t.reg pcb.predicate with
      | `Live p -> Predicate.is_certain p
      | `Dead -> false))
let abort _ctx reason = raise (Abort_process reason)
let random_bits _ctx = Effect.perform E_random
let my_predicate ctx = ctx.pcb.predicate

let is_certain ctx =
  match Fate_registry.normalize ctx.engine.reg ctx.pcb.predicate with
  | `Live p -> Predicate.is_certain p
  | `Dead -> false

module Ivar = struct
  type 'a t = { mutable value : 'a option; mutable waiters : (unit -> unit) list }

  let create () = { value = None; waiters = [] }

  let try_fill iv v =
    match iv.value with
    | Some _ -> false
    | None ->
      iv.value <- Some v;
      let ws = iv.waiters in
      iv.waiters <- [];
      List.iter (fun w -> w ()) ws;
      true

  let is_filled iv = iv.value <> None
  let peek iv = iv.value

  let read ctx iv =
    disable_cloning ctx.pcb;
    match iv.value with
    | Some v -> v
    | None -> (
      Effect.perform (E_park (fun ~wake -> iv.waiters <- iv.waiters @ [ wake ]));
      match iv.value with
      | Some v -> v
      | None ->
        failwith
          (Format.asprintf
             "Engine.Ivar.read: process %a (%s, %s) woken with the ivar still \
              empty"
             Pid.pp ctx.pcb.pid ctx.pcb.name
             (proc_state_string ctx.pcb.state)))

  let read_timeout ctx iv ~timeout =
    disable_cloning ctx.pcb;
    match iv.value with
    | Some v -> Some v
    | None when timeout <= 0. ->
      (* Poll-only: report the current state without parking. *)
      None
    | None ->
      let eng = ctx.engine in
      Effect.perform
        (E_park
           (fun ~wake ->
             let ev =
               schedule_cancellable eng ~at:(eng.vnow +. timeout) (fun () ->
                   wake ())
             in
             (* A fill arriving first retires the pending timeout event so
                it cannot drag the virtual clock to the deadline. *)
             iv.waiters <-
               iv.waiters
               @ [
                   (fun () ->
                     cancel_event ev;
                     wake ());
                 ]));
      iv.value
end
