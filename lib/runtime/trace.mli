(** Execution traces.

    The engine records one {!event} per interesting action; tests assert on
    traces, and the worlds/elimination examples print them. Recording can be
    disabled for long benchmark runs. *)

type event =
  | Spawned of { pid : Pid.t; parent : Pid.t option; name : string }
  | Started of Pid.t
  | Exited of { pid : Pid.t; status : string }
  | Sent of { msg : Message.t }
  | Delivered of { dest : Pid.t; msg : Message.t }
  | Delivered_batch of { sender : Pid.t; dest : Pid.t; count : int }
      (** A channel flush handed [count] messages from one sender's outbox
          to their receiver in a single event-queue event. Emitted (before
          the per-message {!Delivered} events it covers) only when
          [count > 1]; a batch of one is indistinguishable from the
          pre-batching engine and is not announced. *)
  | Accepted of { dest : Pid.t; msg : Message.t; dest_pred : Predicate.t }
      (** [dest_pred] is the receiver's predicate {e before} it adopted any
          of the sender's assumptions: the analysis layer audits acceptance
          decisions against it. *)
  | Ignored of { dest : Pid.t; msg : Message.t; reason : string }
  | Split of { original : Pid.t; clone : Pid.t; on : Message.t }
  | Killed of { pid : Pid.t; reason : string }
  | Fate of { pid : Pid.t; fate : Predicate.fate }
  | Fate_deferred of Pid.t
  | Absorbed of { parent : Pid.t; child : Pid.t }
  | Sync_won of { pid : Pid.t; index : int; epoch : int }
      (** [epoch] is the block incarnation that won the latch: 0 for plain
          (unsupervised) blocks, >= 1 when a coordinator watchdog is
          involved ({!Concurrent.run_supervised}). At-most-once is audited
          {e across} epochs: one winner per block, ever. *)
  | Sync_late of { pid : Pid.t; index : int }
  | Injected of { kind : string; pid : Pid.t option; msg : Message.t option }
      (** A fault injection took effect: [kind] is one of ["drop"],
          ["duplicate"], ["delay"], ["reorder"] (message faults, recorded by
          the engine) or ["kill"], ["crash"], ["revive"] (process faults,
          recorded by the fault plan). The analysis layer uses these to tell
          a faulted execution from a clean one. *)
  | Degraded of { parent : Pid.t; reason : string }
      (** An alternative block abandoned speculation and fell back to
          sequential execution ([Concurrent.Sequential_fallback]). *)
  | Site_crashed of { site : string }
      (** A whole site failed: every resident process was killed and
          in-flight messages to or from it were dropped. Individual
          casualties are additionally traced as [Injected {kind="site-kill"}]
          / [Killed]. *)
  | Partitioned of { left : string list; right : string list }
      (** A network partition came up between the two site groups; messages
          crossing the cut are dropped (traced as
          [Injected {kind="partition-drop"}]) until a matching {!Healed}. *)
  | Healed of { left : string list; right : string list }
  | Recovered of { failed : Pid.t; successor : Pid.t; epoch : int }
      (** The coordinator watchdog restarted a dead block coordinator
          [failed] from its checkpoint as [successor], fencing voters to
          [epoch] so the stale incarnation can no longer win. *)
  | Sanitizer_flag of { check : string; pid : Pid.t option; detail : string }
      (** The online sanitizer ({!Sanitizer} in the analysis layer) caught
          an invariant violation {e while it happened}: [check] is the
          {!Report.class_name} of the invariant family, [pid] the process
          caught in the act, and the event's timestamp is the exact virtual
          time of the offence. Never emitted by the engine itself. *)
  | Note of string

type t

val create : ?enabled:bool -> unit -> t
val enabled : t -> bool
val set_enabled : t -> bool -> unit

val live : t -> bool
(** Whether {!record} currently has any effect: recording is enabled or an
    observer is installed. The engine's messaging hot path consults this
    to skip materialising trace-only message values — and to coalesce
    per-message delivery bookkeeping into batches — when no one is
    watching. *)

val record : t -> time:float -> event -> unit

val set_observer : t -> (time:float -> event -> unit) option -> unit
(** Install (or clear) an online observer: called on every {!record},
    {e even when recording is disabled}, so a streaming monitor can watch
    an execution whose trace is switched off to bound memory. The observer
    runs after the event is stored; it may itself call {!record} (the
    sanitizer appends {!Sanitizer_flag} events this way) but must guard
    against reacting to its own events. {!replace} and {!clear} do not
    notify the observer: they rewrite history rather than extend it. *)

val events : t -> (float * event) list
(** All recorded events, oldest first. *)

val find_all : t -> f:(event -> bool) -> (float * event) list
val count : t -> f:(event -> bool) -> int
val clear : t -> unit

val replace : t -> (float * event) list -> unit
(** Replace the recorded history wholesale (oldest first). Used by the
    checker's fault-seeding tests to hand the analysis layer a corrupted
    history; not something the engine ever does. *)

val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> t -> unit

val event_to_json : time:float -> event -> string
(** One event as a single-line JSON object [{"t":..., "ev":..., ...}]. *)

val to_jsonl : t -> string
(** The whole trace as JSON Lines (one {!event_to_json} line per event,
    oldest first), for inspection and diffing outside the process. *)
