(** The simulation event queue: a binary min-heap ordered by (time, insertion
    sequence). The sequence number makes simultaneous events fire in
    insertion order, so simulations are deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule [v] at [time]. Raises [Invalid_argument] if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_time : 'a t -> float option

val stamp : 'a t -> int
(** The sequence number the next {!push} will receive. Two observations of
    [stamp] are equal iff nothing was pushed in between, which is what the
    engine's channel layer uses to decide whether a message may join an
    already-scheduled delivery batch without reordering it against
    intervening events. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
