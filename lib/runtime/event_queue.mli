(** The simulation event queue: a binary min-heap ordered by (time, insertion
    sequence). The sequence number makes simultaneous events fire in
    insertion order, so simulations are deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** Schedule [v] at [time]. Raises [Invalid_argument] if [time] is NaN. *)

val push_stamped : 'a t -> time:float -> seq:int -> 'a -> unit
(** Schedule [v] at [time] with a caller-supplied sequence number. The
    sharded engine orders all events — across every shard queue and the
    cross-shard staging outboxes — by one engine-global (time, stamp)
    key, so stamps are issued centrally and entries may migrate between
    queues (a barrier exchange) without changing their position in the
    merged order. The queue's own counter is kept ahead of [seq], so
    mixing {!push} and [push_stamped] on one queue stays totally
    ordered. Raises [Invalid_argument] if [time] is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val pop_entry : 'a t -> (float * int * 'a) option
(** Like {!pop} but also returns the entry's sequence number, so a
    barrier exchange can re-queue it elsewhere with {!push_stamped}
    preserving its global key. *)

val peek_time : 'a t -> float option

val peek_key : 'a t -> (float * int) option
(** The (time, stamp) key of the earliest event, without removing it.
    The sharded run loop compares heads across queues with this. *)

val stamp : 'a t -> int
(** The sequence number the next {!push} will receive. Two observations of
    [stamp] are equal iff nothing was pushed in between, which is what the
    engine's channel layer uses to decide whether a message may join an
    already-scheduled delivery batch without reordering it against
    intervening events. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
