(** The simulated operating system: process management, virtual time,
    CPU scheduling, and predicate-aware interprocess communication.

    This is the substrate the paper assumes (section 3.1): independently
    schedulable processes, reliable FIFO message passing, sink state managed
    as copy-on-write pages, and a process-management component that
    interacts with the message layer. Execution is a deterministic
    discrete-event simulation: program code runs natively, and calls
    {!delay} to account the virtual CPU time its steps would take.

    {2 Programming model}

    A process body is an OCaml function over a {!ctx}. Inside a body, the
    operations of this module ({!delay}, {!send}, {!receive}, ...) may be
    used; they are implemented with effect handlers, so a body suspends and
    resumes transparently. Outside a body they raise
    [Effect.Unhandled].

    {2 Multiple worlds}

    Message receipt compares the receiver's predicate with the sender's, as
    in section 3.4.2 of the paper: implied predicates are accepted,
    conflicting ones ignored, and a message requiring {e new} assumptions
    splits the receiver in two. The paper splits with a COW fork; here a
    clone is produced by {e deterministic replay}: the engine logs every
    effectful operation of a cloneable process, and the clone re-executes
    the body consuming the log (performing no side effects and no virtual
    time), then continues live. A process that has spawned children or read
    an ivar is not cloneable; a split against a non-cloneable receiver falls
    back to deferring the message until the sender's fate resolves, which is
    pessimistic but semantics-preserving. *)

type t
(** An engine (one simulation). *)

exception Process_killed of string
(** Raised inside a body when the process is eliminated ({!kill}); bodies
    that wrap work in [try ... with] must re-raise it so elimination stays
    prompt. Exposed so instrumentation (e.g. the alt-block's attempt
    accounting) can tell an eliminated child from a crashed one. *)

exception Abort_process of string
(** Raised by {!abort}; same caveat as {!Process_killed}. *)

type ctx
(** A process's view of itself; passed to its body. *)

(** CPU capacity: [Infinite] gives every process its own processor (pure
    "real concurrency"); [Cores n] shares [n] processors among runnable
    processes, egalitarian processor-sharing (the paper's "virtual
    concurrency" through multiprocessing). *)
type cores = Infinite | Cores of int

(** How a process left the system. *)
type exit_status =
  | Exited_ok  (** Body returned: the alternative completed successfully. *)
  | Exited_failed of string  (** Guard unsatisfied / explicit {!abort}. *)
  | Crashed of string  (** Body raised an unexpected exception. *)
  | Eliminated of string  (** Killed: sibling elimination or a dead world. *)

val create :
  ?cores:cores ->
  ?model:Cost_model.t ->
  ?seed:int ->
  ?trace:bool ->
  ?shards:int ->
  ?debug_shard_local_epoch:bool ->
  unit ->
  t
(** A fresh engine. Default [cores] is [Infinite], default [model] is
    {!Cost_model.uniform}, default [seed] 42, tracing on.

    [shards] (default 1) partitions processes across that many scheduler
    shards along site failure domains (site-less processes hash by pid;
    world-split clones live on their original's shard). Each shard owns
    its own event queue, its residents' mailboxes and their per-process
    RNG streams; intra-shard messaging stays on the ring-buffer fast
    path, while cross-shard deliveries are staged into per-(src, dst)
    outboxes and exchanged at conservative virtual-time barriers whose
    window is the earliest next local event time plus the cost model's
    minimum message latency. All queues share one global (time, stamp)
    order, so every observable — trace, sanitizer state, consensus
    rounds, winners, statistics other than the barrier counters — is
    byte-identical to the 1-shard run (the run-level extension of the
    sweep-level jobs-1 = jobs-N contract). Raises [Invalid_argument] if
    [shards < 1].

    [debug_shard_local_epoch] (default false) is test-only: it re-derives
    the channel batch-join epoch guard from the sender shard's local
    execution counter instead of the engine-global one — a broken
    variant kept compilable so the regression test can pin the
    divergence it causes at [shards >= 2]. *)

val now : t -> float
(** Current virtual time (seconds). *)

val model : t -> Cost_model.t
val frame_store : t -> Frame_store.t
val trace : t -> Trace.t
val registry : t -> Fate_registry.t

val fresh_pids : t -> int -> Pid.t list
(** Pre-allocate pids, so that sibling predicates can be constructed before
    the siblings are spawned. Pids obtained here must be passed to
    {!spawn}'s [?pid] exactly once. *)

val spawn :
  t ->
  ?pid:Pid.t ->
  ?parent:Pid.t ->
  ?predicate:Predicate.t ->
  ?space:Address_space.t ->
  ?cloneable:bool ->
  ?oblivious:bool ->
  ?start_delay:float ->
  ?name:string ->
  ?site:string ->
  (ctx -> unit) ->
  Pid.t
(** Create a process. It becomes runnable [start_delay] (default 0) seconds
    from now. [cloneable] (default true) enables the effect log used for
    world-splitting; it is disabled automatically if the process spawns or
    reads an ivar. [oblivious] (default false) marks a kernel-level service
    (consensus voter, device driver) whose receives bypass predicate
    matching: it accepts every message and belongs to no world. [site]
    requests explicit placement on a simulated site; it is passed to the
    site hook (see {!set_site_hook}) as the [explicit] argument, or adopted
    directly when no hook is installed. The engine does not run anything
    until {!run}. *)

val on_exit : t -> Pid.t -> (exit_status -> unit) -> unit
(** Register a watcher called (at the process's exit time) when the pid
    exits. Fires immediately if it already exited. *)

val kill : t -> Pid.t -> reason:string -> unit
(** Eliminate a process: a parked process is unwound immediately (its
    [Fun.protect] cleanups run); a runnable or running process is doomed and
    unwinds at its next operation. Killing a dead pid is a no-op. *)

val alive : t -> Pid.t -> bool
val status : t -> Pid.t -> exit_status option
(** [None] while the process is still live (or never existed). *)

val predicate_of : t -> Pid.t -> Predicate.t option

val preserve_space : t -> Pid.t -> unit
(** Keep the pid's address space alive across its exit, so that a parent can
    absorb it at rendezvous (the default is to release it). *)

val after : t -> delay:float -> (unit -> unit) -> unit
(** Schedule an engine-level action [delay] seconds of virtual time from
    now (asynchronous sibling elimination uses this: the kill instructions
    are issued without charging the resuming parent). *)

val run : t -> unit
(** Run until no events remain. Processes still parked at quiescence (e.g.
    waiting for messages that will never come) are left suspended; inspect
    {!parked_pids}. *)

val run_for : t -> float -> unit
(** Run events up to [now + duration], then stop (remaining events stay
    queued). *)

val parked_pids : t -> Pid.t list
(** Processes blocked in {!receive} or {!Ivar.read} right now. *)

val live_count : t -> int

(** {2 Operations usable inside a process body} *)

val self : ctx -> Pid.t
val engine : ctx -> t
val now_v : ctx -> float
(** Current virtual time, recorded in the replay log. *)

val delay : ctx -> float -> unit
(** Consume [dt] seconds of CPU work. Under [Cores n] contention, the
    elapsed virtual time may exceed [dt]. *)

val space : ctx -> Address_space.t option
(** The process's paged address space, if it has one. *)

val charge_memory : ctx -> unit
(** Drain the address space's pending copy-on-write cost into {!delay}.
    Memory-heavy bodies should call this after bursts of writes; the [Mem]
    helpers do it automatically. *)

val send : ctx -> ?tag:string -> Pid.t -> Payload.t -> unit
(** Reliable FIFO send; stamps the message with the sender's current
    predicate and charges {!Cost_model.message_cost} latency before
    delivery. *)

val receive : ctx -> ?tag:string -> unit -> Message.t
(** Block until a message acceptable under the predicate rules (and matching
    [tag], if given) arrives. May split the receiver (see module doc). *)

val receive_timeout : ctx -> ?tag:string -> timeout:float -> unit -> Message.t option
(** Like {!receive} but gives up after [timeout] seconds of virtual time
    (needed by protocols that must survive silent peers, e.g. majority
    consensus over crashed voters). [timeout <= 0.] is a pure poll: it
    returns immediately with an already-queued acceptable message if there
    is one, [None] otherwise, never parking and never advancing virtual
    time — well-defined for watchdog polling loops and reply-drains. *)

val abort : ctx -> string -> 'a
(** Terminate this process with [Exited_failed]. *)

val random_bits : ctx -> int64
(** Deterministic per-engine randomness, recorded in the replay log. *)

val my_predicate : ctx -> Predicate.t

val is_certain : ctx -> bool
(** No unresolved assumptions: this process may touch source devices. *)

(** {2 Write-once cells (the local synchronisation latch)} *)

module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val try_fill : 'a t -> 'a -> bool
  (** At-most-once: [true] for the first caller, [false] ("too late") for
      all later ones. Callable from bodies and from engine callbacks. *)

  val is_filled : 'a t -> bool
  val peek : 'a t -> 'a option

  val read : ctx -> 'a t -> 'a
  (** Block until filled. Disables cloning for the calling process. *)

  val read_timeout : ctx -> 'a t -> timeout:float -> 'a option
  (** Like {!read} but gives up after [timeout] seconds of virtual time,
      returning [None]. A fill arriving exactly at the deadline wins.
      [timeout <= 0.] is a pure poll: the current contents (if any) are
      returned immediately, without parking or advancing virtual time. *)
end

(** {2 Engine-level hooks} *)

val record_fate : t -> Pid.t -> Predicate.fate -> unit
(** Record a fate explicitly (the alt-block synchroniser uses this when the
    winner is decided). Normally fates are recorded automatically at process
    exit; an exit with unresolved assumptions is deferred until they
    resolve. Triggers the predicate sweep: processes whose assumptions are
    falsified are eliminated, and resolution callbacks run. *)

val on_resolution : t -> Pid.t -> ([ `Certain | `Dead ] -> unit) -> unit
(** Call back when the pid's predicate becomes empty ([`Certain]) or its
    world dies ([`Dead]). Fires immediately if already decided. Used by the
    source-device layer to flush or discard gated side effects. *)

val stats_events_processed : t -> int
(** Events executed so far, aggregated across shards (the sum of
    {!stats_shard_events}; exact under the barrier path — a barrier
    moves events between queues, it never executes or drops one). *)

val shards : t -> int
(** The shard count the engine was created with. *)

val shard_of : t -> Pid.t -> int
(** The shard owning [pid] (0 for unknown pids; always 0 when
    [shards = 1]). Clones report their original's shard. *)

val stats_shard_events : t -> int array
(** Per-shard executed-event counts, index = shard. A fresh copy. *)

val stats_barriers : t -> int
(** Cross-shard barrier exchanges performed. 0 when [shards = 1]. This
    and {!stats_cross_shard_msgs} are scheduling-residency counters: they
    vary with the shard count and are deliberately excluded from the
    byte-identity contract. *)

val stats_cross_shard_msgs : t -> int
(** Message events staged into a cross-shard outbox. 0 when
    [shards = 1]. *)

val stats_mailbox_scanned : t -> int
(** Total mailbox slots visited by receive scans since the engine was
    created. Tag-filtered receives keep a per-tag cursor past the traffic
    they have already rejected, so repeated polls over a mailbox full of
    foreign-tag messages cost O(new messages), not O(mailbox) each — the
    regression tests pin a budget on this counter. *)

val cpu_time_of : t -> Pid.t -> float
(** Virtual CPU seconds consumed by the pid so far (its {!delay}s, scaled by
    actual processor share). The basis of the wasted-work / throughput
    metrics of section 4.1. *)

val total_cpu_time : t -> float
(** Sum of {!cpu_time_of} over all processes ever run. *)

val logical_of : t -> Pid.t -> Pid.t option
(** The logical identity of a physical process: differs from the pid only
    for world-split clones, which keep the identity of the original
    receiver. *)

val space_of : t -> Pid.t -> Address_space.t option
(** The pid's address space, if it was spawned with one. Works after the
    process has exited (the process table is retained for post-mortem
    inspection), though the space itself may have been released unless
    {!preserve_space} was called. *)

val certain_of : t -> Pid.t -> bool
(** Engine-level counterpart of {!is_certain}: whether the pid's existence
    is free of unresolved assumptions {e right now}. A pid whose fate is
    recorded as completed is certain; a failed or dead-world pid is not.
    Used by the source-device layer to stamp emissions, and by the analysis
    layer to audit them. *)

val name_of : t -> Pid.t -> string option
(** The name the pid was spawned with. Works after exit (post-mortem
    process table); [None] for unknown pids. *)

val site_of : t -> Pid.t -> string option
(** The site the pid was placed on (see {!set_site_hook}). Works after exit;
    [None] for unknown pids or when no placement was made. *)

val children_of : t -> Pid.t -> Pid.t list
(** Every process ever spawned with [~parent:pid] (live or dead), sorted by
    pid. The coordinator watchdog uses it to find orphaned alternatives of a
    dead parent. *)

(** {2 Fault injection}

    Hooks for the fault-plan layer ([lib/faultplan]). They sit below the
    predicate-matching semantics: a dropped or delayed message never reaches
    acceptance, exactly as if the (simulated) network had misbehaved. All
    decisions are taken by the installed plan, so an engine with no plan
    installed behaves bit-for-bit as before. *)

(** What to do with a message about to be scheduled for delivery.
    [F_delay] adds latency but preserves per-channel FIFO order (later sends
    on the same channel queue behind it); [F_reorder] adds latency {e
    without} holding the channel clock back, so a later message can overtake
    — the only way to violate FIFO, kept separate so campaigns can opt in
    deliberately. *)
type fault_action =
  | F_deliver
  | F_drop
  | F_delay of float
  | F_duplicate
  | F_reorder of float

val set_message_fault : t -> (Message.t -> fault_action) option -> unit
(** Install (or clear) the message-fault hook, consulted once per {!send}
    after normal latency is computed. Each non-[F_deliver] decision is
    recorded as a {!Trace.Injected} event. *)

val set_spawn_hook : t -> (Pid.t -> string -> unit) option -> unit
(** Install (or clear) a callback invoked at every process creation —
    {!spawn} and world-split clones alike — with the new pid and its name.
    The fault plan uses it to target processes by name pattern. *)

(** {2 Sites}

    Hooks for the site/topology layer ([lib/sites]). The engine itself knows
    nothing about placement policy: it stores one optional site label per
    process and defers every decision to the hooks. With no hooks installed
    the engine behaves bit-for-bit as before. *)

val set_site_hook :
  t ->
  (pid:Pid.t ->
  parent:Pid.t option ->
  name:string ->
  explicit:string option ->
  string option)
  option ->
  unit
(** Install (or clear) the placement hook, consulted at every process
    creation ({!spawn} and world-split clones alike). [explicit] is the
    [?site] given to {!spawn} (for clones: the original's site — a world
    copy must live, and die, with its original). The returned label becomes
    the process's site ({!site_of}); the hook is also where the topology
    layer records membership. *)

val set_delivery_fault : t -> (Message.t -> dest:Pid.t -> bool) option -> unit
(** Install (or clear) the delivery filter, consulted at {e delivery} time
    once per destination copy: [false] silently discards the copy's
    delivery. Unlike {!set_message_fault} (a send-time decision), this sees
    faults that arise while the message is in flight — a site crash or
    partition loses exactly the traffic that was crossing it. The filter is
    expected to record its own {!Trace.Injected} events. *)
