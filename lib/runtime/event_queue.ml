type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused when empty *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let ncap = max 16 (cap * 2) in
    let h = Array.make ncap t.heap.(0) in
    Array.blit t.heap 0 h 0 cap;
    t.heap <- h
  end

let push t ~time v =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let e = { time; seq = t.next_seq; value = v } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    lt t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && lt t.heap.(l) t.heap.(!smallest) then smallest := l;
        if r < t.size && lt t.heap.(r) t.heap.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.value)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
let size t = t.size
let is_empty t = t.size = 0

let clear t =
  t.size <- 0;
  t.heap <- [||]
