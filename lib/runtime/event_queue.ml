type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array;  (* slots >= size are None *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.heap.(i) with
  | Some e -> e
  | None -> invalid_arg "Event_queue: empty slot inside the heap"

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let ncap = max 16 (cap * 2) in
    let h = Array.make ncap None in
    Array.blit t.heap 0 h 0 cap;
    t.heap <- h
  end

let push_entry t e =
  grow t;
  t.heap.(t.size) <- Some e;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    lt (get t !i) (get t parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(!i) in
    t.heap.(!i) <- t.heap.(parent);
    t.heap.(parent) <- tmp;
    i := parent
  done

let push t ~time v =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let e = { time; seq = t.next_seq; value = v } in
  t.next_seq <- t.next_seq + 1;
  push_entry t e

let push_stamped t ~time ~seq v =
  if Float.is_nan time then invalid_arg "Event_queue.push_stamped: NaN time";
  (* Caller-supplied stamp: the sharded engine orders every event by one
     engine-global (time, stamp) key, so a queue must accept entries whose
     stamps were issued elsewhere (and keep its own counter ahead of them,
     so mixing [push] and [push_stamped] stays totally ordered). *)
  if seq >= t.next_seq then t.next_seq <- seq + 1;
  push_entry t { time; seq; value = v }

let remove_top t =
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    (* Clear the vacated slot: the heap array must not retain a live
       reference to an entry (and its closure payload) after it leaves
       the queue, or every popped event lives until its slot happens to
       be overwritten — a real leak in long simulations. *)
    t.heap.(t.size) <- None;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && lt (get t l) (get t !smallest) then smallest := l;
      if r < t.size && lt (get t r) (get t !smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.heap.(!i) in
        t.heap.(!i) <- t.heap.(!smallest);
        t.heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end
  else t.heap.(0) <- None

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    remove_top t;
    Some (top.time, top.value)
  end

let pop_entry t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    remove_top t;
    Some (top.time, top.seq, top.value)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let peek_key t =
  if t.size = 0 then None
  else
    let e = get t 0 in
    Some (e.time, e.seq)
let stamp t = t.next_seq
let size t = t.size
let is_empty t = t.size = 0

let clear t =
  (* Consistent with pop's slot clearing: keep the capacity, drop every
     reference. *)
  Array.fill t.heap 0 (Array.length t.heap) None;
  t.size <- 0
