type event =
  | Spawned of { pid : Pid.t; parent : Pid.t option; name : string }
  | Started of Pid.t
  | Exited of { pid : Pid.t; status : string }
  | Sent of { msg : Message.t }
  | Delivered of { dest : Pid.t; msg : Message.t }
  | Accepted of { dest : Pid.t; msg : Message.t }
  | Ignored of { dest : Pid.t; msg : Message.t; reason : string }
  | Split of { original : Pid.t; clone : Pid.t; on : Message.t }
  | Killed of { pid : Pid.t; reason : string }
  | Fate of { pid : Pid.t; fate : Predicate.fate }
  | Fate_deferred of Pid.t
  | Absorbed of { parent : Pid.t; child : Pid.t }
  | Sync_won of { pid : Pid.t; index : int }
  | Sync_late of { pid : Pid.t; index : int }
  | Note of string

type t = { mutable events : (float * event) list; mutable enabled : bool }

let create ?(enabled = true) () = { events = []; enabled }
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let record t ~time e = if t.enabled then t.events <- (time, e) :: t.events

let events t = List.rev t.events

let find_all t ~f = List.filter (fun (_, e) -> f e) (events t)
let count t ~f = List.length (find_all t ~f)
let clear t = t.events <- []

let pp_event ppf = function
  | Spawned { pid; parent; name } ->
    Format.fprintf ppf "spawn %a%s %s" Pid.pp pid
      (match parent with
      | None -> ""
      | Some p -> Format.asprintf " (parent %a)" Pid.pp p)
      name
  | Started pid -> Format.fprintf ppf "start %a" Pid.pp pid
  | Exited { pid; status } -> Format.fprintf ppf "exit %a: %s" Pid.pp pid status
  | Sent { msg } -> Format.fprintf ppf "send %a" Message.pp msg
  | Delivered { dest; msg } ->
    Format.fprintf ppf "deliver to %a: %a" Pid.pp dest Message.pp msg
  | Accepted { dest; msg } ->
    Format.fprintf ppf "accept by %a: %a" Pid.pp dest Message.pp msg
  | Ignored { dest; msg; reason } ->
    Format.fprintf ppf "ignore by %a (%s): %a" Pid.pp dest reason Message.pp msg
  | Split { original; clone; on } ->
    Format.fprintf ppf "split %a -> clone %a on %a" Pid.pp original Pid.pp clone
      Message.pp on
  | Killed { pid; reason } ->
    Format.fprintf ppf "kill %a (%s)" Pid.pp pid reason
  | Fate { pid; fate } ->
    Format.fprintf ppf "fate %a = %s" Pid.pp pid
      (match fate with Predicate.Completed -> "completed" | Predicate.Failed -> "failed")
  | Fate_deferred pid -> Format.fprintf ppf "fate deferred for %a" Pid.pp pid
  | Absorbed { parent; child } ->
    Format.fprintf ppf "absorb %a <- %a" Pid.pp parent Pid.pp child
  | Sync_won { pid; index } ->
    Format.fprintf ppf "sync won by %a (alternative %d)" Pid.pp pid index
  | Sync_late { pid; index } ->
    Format.fprintf ppf "sync too late for %a (alternative %d)" Pid.pp pid index
  | Note s -> Format.fprintf ppf "note: %s" s

let dump ppf t =
  List.iter
    (fun (time, e) -> Format.fprintf ppf "[%10.6f] %a@." time pp_event e)
    (events t)
