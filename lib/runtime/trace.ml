type event =
  | Spawned of { pid : Pid.t; parent : Pid.t option; name : string }
  | Started of Pid.t
  | Exited of { pid : Pid.t; status : string }
  | Sent of { msg : Message.t }
  | Delivered of { dest : Pid.t; msg : Message.t }
  | Delivered_batch of { sender : Pid.t; dest : Pid.t; count : int }
  | Accepted of { dest : Pid.t; msg : Message.t; dest_pred : Predicate.t }
  | Ignored of { dest : Pid.t; msg : Message.t; reason : string }
  | Split of { original : Pid.t; clone : Pid.t; on : Message.t }
  | Killed of { pid : Pid.t; reason : string }
  | Fate of { pid : Pid.t; fate : Predicate.fate }
  | Fate_deferred of Pid.t
  | Absorbed of { parent : Pid.t; child : Pid.t }
  | Sync_won of { pid : Pid.t; index : int; epoch : int }
  | Sync_late of { pid : Pid.t; index : int }
  | Injected of { kind : string; pid : Pid.t option; msg : Message.t option }
  | Degraded of { parent : Pid.t; reason : string }
  | Site_crashed of { site : string }
  | Partitioned of { left : string list; right : string list }
  | Healed of { left : string list; right : string list }
  | Recovered of { failed : Pid.t; successor : Pid.t; epoch : int }
  | Sanitizer_flag of { check : string; pid : Pid.t option; detail : string }
  | Note of string

type t = {
  mutable events : (float * event) list;
  mutable enabled : bool;
  mutable observer : (time:float -> event -> unit) option;
}

let create ?(enabled = true) () = { events = []; enabled; observer = None }
let enabled t = t.enabled

let live t =
  t.enabled || (match t.observer with Some _ -> true | None -> false)
let set_enabled t b = t.enabled <- b
let set_observer t f = t.observer <- f

let record t ~time e =
  if t.enabled then t.events <- (time, e) :: t.events;
  match t.observer with Some f -> f ~time e | None -> ()

let events t = List.rev t.events

let find_all t ~f = List.filter (fun (_, e) -> f e) (events t)
let count t ~f = List.length (find_all t ~f)
let clear t = t.events <- []

let replace t events = t.events <- List.rev events

let pp_event ppf = function
  | Spawned { pid; parent; name } ->
    Format.fprintf ppf "spawn %a%s %s" Pid.pp pid
      (match parent with
      | None -> ""
      | Some p -> Format.asprintf " (parent %a)" Pid.pp p)
      name
  | Started pid -> Format.fprintf ppf "start %a" Pid.pp pid
  | Exited { pid; status } -> Format.fprintf ppf "exit %a: %s" Pid.pp pid status
  | Sent { msg } -> Format.fprintf ppf "send %a" Message.pp msg
  | Delivered { dest; msg } ->
    Format.fprintf ppf "deliver to %a: %a" Pid.pp dest Message.pp msg
  | Delivered_batch { sender; dest; count } ->
    Format.fprintf ppf "deliver batch %a -> %a (%d messages)" Pid.pp sender
      Pid.pp dest count
  | Accepted { dest; msg; dest_pred } ->
    Format.fprintf ppf "accept by %a %a: %a" Pid.pp dest Predicate.pp dest_pred
      Message.pp msg
  | Ignored { dest; msg; reason } ->
    Format.fprintf ppf "ignore by %a (%s): %a" Pid.pp dest reason Message.pp msg
  | Split { original; clone; on } ->
    Format.fprintf ppf "split %a -> clone %a on %a" Pid.pp original Pid.pp clone
      Message.pp on
  | Killed { pid; reason } ->
    Format.fprintf ppf "kill %a (%s)" Pid.pp pid reason
  | Fate { pid; fate } ->
    Format.fprintf ppf "fate %a = %s" Pid.pp pid
      (match fate with Predicate.Completed -> "completed" | Predicate.Failed -> "failed")
  | Fate_deferred pid -> Format.fprintf ppf "fate deferred for %a" Pid.pp pid
  | Absorbed { parent; child } ->
    Format.fprintf ppf "absorb %a <- %a" Pid.pp parent Pid.pp child
  | Sync_won { pid; index; epoch } ->
    Format.fprintf ppf "sync won by %a (alternative %d%s)" Pid.pp pid index
      (if epoch = 0 then "" else Printf.sprintf ", epoch %d" epoch)
  | Sync_late { pid; index } ->
    Format.fprintf ppf "sync too late for %a (alternative %d)" Pid.pp pid index
  | Injected { kind; pid; msg } ->
    Format.fprintf ppf "inject %s%s%s" kind
      (match pid with
      | None -> ""
      | Some p -> Format.asprintf " %a" Pid.pp p)
      (match msg with
      | None -> ""
      | Some m -> Format.asprintf " %a" Message.pp m)
  | Degraded { parent; reason } ->
    Format.fprintf ppf "degrade %a to sequential (%s)" Pid.pp parent reason
  | Site_crashed { site } -> Format.fprintf ppf "site %s crashed" site
  | Partitioned { left; right } ->
    Format.fprintf ppf "partition {%s} | {%s}" (String.concat "," left)
      (String.concat "," right)
  | Healed { left; right } ->
    Format.fprintf ppf "heal {%s} | {%s}" (String.concat "," left)
      (String.concat "," right)
  | Recovered { failed; successor; epoch } ->
    Format.fprintf ppf "recover coordinator %a -> %a (epoch %d)" Pid.pp failed
      Pid.pp successor epoch
  | Sanitizer_flag { check; pid; detail } ->
    Format.fprintf ppf "sanitizer %s%s: %s" check
      (match pid with
      | None -> ""
      | Some p -> Format.asprintf " %a" Pid.pp p)
      detail
  | Note s -> Format.fprintf ppf "note: %s" s

let dump ppf t =
  List.iter
    (fun (time, e) -> Format.fprintf ppf "[%10.6f] %a@." time pp_event e)
    (events t)

(* ------------------------------------------------------------------ *)
(* JSONL export (hand-rolled: no JSON library in the dependency set).  *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_str s = "\"" ^ json_escape s ^ "\""

let json_str_list ss = "[" ^ String.concat "," (List.map json_str ss) ^ "]"
let json_pid p = string_of_int (Pid.to_int p)

let json_pid_list set =
  "[" ^ String.concat "," (List.map json_pid (Pid.Set.elements set)) ^ "]"

let json_pred p =
  Printf.sprintf "{\"completes\":%s,\"fails\":%s}"
    (json_pid_list (Predicate.must_complete p))
    (json_pid_list (Predicate.must_fail p))

let json_msg (m : Message.t) =
  Printf.sprintf
    "{\"sender\":%s,\"dest\":%s,\"tag\":%s,\"seq\":%d,\"predicate\":%s,\"payload\":%s}"
    (json_pid m.Message.sender) (json_pid m.Message.dest)
    (json_str m.Message.tag) m.Message.seq
    (json_pred m.Message.predicate)
    (json_str (Payload.to_string m.Message.payload))

let json_fields_of_event = function
  | Spawned { pid; parent; name } ->
    ( "spawned",
      Printf.sprintf "\"pid\":%s,\"parent\":%s,\"name\":%s" (json_pid pid)
        (match parent with None -> "null" | Some p -> json_pid p)
        (json_str name) )
  | Started pid -> ("started", Printf.sprintf "\"pid\":%s" (json_pid pid))
  | Exited { pid; status } ->
    ( "exited",
      Printf.sprintf "\"pid\":%s,\"status\":%s" (json_pid pid) (json_str status) )
  | Sent { msg } -> ("sent", Printf.sprintf "\"msg\":%s" (json_msg msg))
  | Delivered { dest; msg } ->
    ( "delivered",
      Printf.sprintf "\"dest\":%s,\"msg\":%s" (json_pid dest) (json_msg msg) )
  | Delivered_batch { sender; dest; count } ->
    ( "delivered_batch",
      Printf.sprintf "\"sender\":%s,\"dest\":%s,\"count\":%d" (json_pid sender)
        (json_pid dest) count )
  | Accepted { dest; msg; dest_pred } ->
    ( "accepted",
      Printf.sprintf "\"dest\":%s,\"dest_pred\":%s,\"msg\":%s" (json_pid dest)
        (json_pred dest_pred) (json_msg msg) )
  | Ignored { dest; msg; reason } ->
    ( "ignored",
      Printf.sprintf "\"dest\":%s,\"reason\":%s,\"msg\":%s" (json_pid dest)
        (json_str reason) (json_msg msg) )
  | Split { original; clone; on } ->
    ( "split",
      Printf.sprintf "\"original\":%s,\"clone\":%s,\"on\":%s" (json_pid original)
        (json_pid clone) (json_msg on) )
  | Killed { pid; reason } ->
    ( "killed",
      Printf.sprintf "\"pid\":%s,\"reason\":%s" (json_pid pid) (json_str reason) )
  | Fate { pid; fate } ->
    ( "fate",
      Printf.sprintf "\"pid\":%s,\"fate\":%s" (json_pid pid)
        (json_str
           (match fate with
           | Predicate.Completed -> "completed"
           | Predicate.Failed -> "failed")) )
  | Fate_deferred pid ->
    ("fate_deferred", Printf.sprintf "\"pid\":%s" (json_pid pid))
  | Absorbed { parent; child } ->
    ( "absorbed",
      Printf.sprintf "\"parent\":%s,\"child\":%s" (json_pid parent)
        (json_pid child) )
  | Sync_won { pid; index; epoch } ->
    ( "sync_won",
      Printf.sprintf "\"pid\":%s,\"index\":%d,\"epoch\":%d" (json_pid pid) index
        epoch )
  | Sync_late { pid; index } ->
    ( "sync_late",
      Printf.sprintf "\"pid\":%s,\"index\":%d" (json_pid pid) index )
  | Injected { kind; pid; msg } ->
    ( "injected",
      Printf.sprintf "\"kind\":%s,\"pid\":%s,\"msg\":%s" (json_str kind)
        (match pid with None -> "null" | Some p -> json_pid p)
        (match msg with None -> "null" | Some m -> json_msg m) )
  | Degraded { parent; reason } ->
    ( "degraded",
      Printf.sprintf "\"parent\":%s,\"reason\":%s" (json_pid parent)
        (json_str reason) )
  | Site_crashed { site } ->
    ("site_crashed", Printf.sprintf "\"site\":%s" (json_str site))
  | Partitioned { left; right } ->
    ( "partitioned",
      Printf.sprintf "\"left\":%s,\"right\":%s" (json_str_list left)
        (json_str_list right) )
  | Healed { left; right } ->
    ( "healed",
      Printf.sprintf "\"left\":%s,\"right\":%s" (json_str_list left)
        (json_str_list right) )
  | Recovered { failed; successor; epoch } ->
    ( "recovered",
      Printf.sprintf "\"failed\":%s,\"successor\":%s,\"epoch\":%d"
        (json_pid failed) (json_pid successor) epoch )
  | Sanitizer_flag { check; pid; detail } ->
    ( "sanitizer_flag",
      Printf.sprintf "\"check\":%s,\"pid\":%s,\"detail\":%s" (json_str check)
        (match pid with None -> "null" | Some p -> json_pid p)
        (json_str detail) )
  | Note s -> ("note", Printf.sprintf "\"text\":%s" (json_str s))

let event_to_json ~time e =
  let kind, fields = json_fields_of_event e in
  Printf.sprintf "{\"t\":%.9f,\"ev\":%s,%s}" time (json_str kind) fields

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (time, e) ->
      Buffer.add_string buf (event_to_json ~time e);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
