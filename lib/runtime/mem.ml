let space ctx =
  match Engine.space ctx with
  | Some sp -> sp
  | None -> invalid_arg "Mem: process has no address space"

let heap ctx = Heap.create ~base:0 (space ctx)

let get ctx cell =
  let sp = space ctx in
  let v = Heap.get (Heap.view (Heap.create sp) sp) cell in
  Engine.charge_memory ctx;
  v

let set ctx cell v =
  let sp = space ctx in
  Heap.set (Heap.view (Heap.create sp) sp) cell v;
  Engine.charge_memory ctx

let read_bytes ctx ~addr ~len =
  let b = Address_space.read_bytes (space ctx) ~addr ~len in
  Engine.charge_memory ctx;
  b

let write_bytes ctx ~addr b =
  Address_space.write_bytes (space ctx) ~addr b;
  Engine.charge_memory ctx

let touch ctx ~addr ~len =
  Address_space.touch (space ctx) ~addr ~len;
  Engine.charge_memory ctx
