type experiment = {
  id : string;
  title : string;
  paper_ref : string;
  run : jobs:int -> Format.formatter -> unit;
}

let fp = Format.fprintf

let hr ppf = fp ppf "  %s@." (String.make 72 '-')

(* Run [f] inside a root simulated process. *)
let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"exp-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> failwith "experiment process did not complete"

(* ------------------------------------------------------------------ *)
(* E1: the PI table of section 4.3.                                    *)

let e1_pi_table =
  {
    id = "table-4.3-pi";
    title = "Performance improvement of concurrent execution (PI)";
    paper_ref = "section 4.3 table (N=3, overhead=5)";
    run =
      (fun ~jobs:_ ppf ->
        fp ppf "  %-5s %-18s %9s %9s %9s %9s@." "row" "tau(C1,C2,C3)" "PI paper"
          "PI exact" "PI sim" "wasted";
        hr ppf;
        List.iter
          (fun (row : Analytic.row) ->
            (* Race the same costs in the simulator and recompute PI from the
               observed elapsed time plus the stipulated overhead of 5. *)
            let eng = Engine.create ~model:(Cost_model.uniform ()) ~trace:false () in
            let alts =
              Array.to_list
                (Array.mapi (fun i c -> Alternative.fixed ~cost:c i) row.Analytic.times)
            in
            let r = Concurrent.run_toplevel eng alts in
            let pi_sim =
              Stats.mean row.Analytic.times
              /. (r.Concurrent.elapsed +. row.Analytic.overhead)
            in
            fp ppf "  %-5s %-18s %9.2f %9.2f %9.2f %9.1f@." row.Analytic.label
              (String.concat ","
                 (Array.to_list
                    (Array.map (fun x -> Format.asprintf "%g" x) row.Analytic.times)))
              row.Analytic.pi_paper row.Analytic.pi_value pi_sim
              r.Concurrent.wasted_cpu)
          (Analytic.table_4_3 ());
        fp ppf
          "  (PI sim races the alternatives in the DES and re-applies the@.";
        fp ppf "   stipulated overhead of 5; it must equal PI exact.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E2: fork latency under the calibrated models.                       *)

let simulate_fork_latency model =
  let eng = Engine.create ~model ~trace:false () in
  let space =
    Address_space.create ~size_hint:(320 * 1024) (Engine.frame_store eng) model
  in
  in_process ~space eng (fun ctx ->
      let t0 = Engine.now_v ctx in
      let child = Address_space.fork (Option.get (Engine.space ctx)) in
      let setup = Address_space.drain_cost child in
      Engine.delay ctx setup;
      Address_space.release child;
      Engine.now_v ctx -. t0)

let e2_fork_latency =
  {
    id = "sec-4.4-fork";
    title = "Copy-on-write fork() latency, 320K address space";
    paper_ref = "section 4.4 (measured in Smith 1988)";
    run =
      (fun ~jobs:_ ppf ->
        fp ppf "  %-16s %10s %12s %12s@." "machine" "pages" "paper" "simulated";
        hr ppf;
        List.iter
          (fun (model, paper_ms) ->
            let sim = simulate_fork_latency model in
            fp ppf "  %-16s %10d %9.0f ms %9.1f ms@." model.Cost_model.name
              (Cost_model.pages_for model ~bytes:(320 * 1024))
              paper_ms (sim *. 1e3))
          [ (Cost_model.att_3b2, 31.); (Cost_model.hp_9000_350, 12.) ])
  }

(* ------------------------------------------------------------------ *)
(* E3: page-copy service rate.                                         *)

let simulate_copy_rate model ~pages =
  let eng = Engine.create ~model ~trace:false () in
  let bytes = pages * model.Cost_model.page_size in
  let space = Address_space.create ~size_hint:bytes (Engine.frame_store eng) model in
  let child_space = Address_space.fork space in
  ignore (Address_space.drain_cost child_space);
  let elapsed =
    in_process eng (fun ctx -> ignore ctx;
        (* Touch every page of the COW child and charge the fault costs. *)
        let t0 = Engine.now_v ctx in
        Address_space.touch child_space ~addr:0 ~len:bytes;
        Engine.delay ctx (Address_space.drain_cost child_space);
        Engine.now_v ctx -. t0)
  in
  float_of_int pages /. elapsed

let e3_page_copy_rate =
  {
    id = "sec-4.4-copyrate";
    title = "Copy-on-write page-copy service rate";
    paper_ref = "section 4.4";
    run =
      (fun ~jobs:_ ppf ->
        fp ppf "  %-16s %12s %16s %16s@." "machine" "page size" "paper"
          "simulated";
        hr ppf;
        List.iter
          (fun (model, paper_rate) ->
            let rate = simulate_copy_rate model ~pages:256 in
            fp ppf "  %-16s %10dB %11.0f p/s %11.0f p/s@." model.Cost_model.name
              model.Cost_model.page_size paper_rate rate)
          [ (Cost_model.att_3b2, 326.); (Cost_model.hp_9000_350, 1034.) ])
  }

(* ------------------------------------------------------------------ *)
(* E4: response time vs fraction of pages written.                     *)

let cow_response model ~fraction =
  let eng = Engine.create ~model ~trace:false () in
  let bytes = 320 * 1024 in
  let space = Address_space.create ~size_hint:bytes (Engine.frame_store eng) model in
  in_process ~space eng (fun ctx ->
      let t0 = Engine.now_v ctx in
      let child = Address_space.fork (Option.get (Engine.space ctx)) in
      Engine.delay ctx (Address_space.drain_cost child);
      let touch_bytes = int_of_float (fraction *. float_of_int bytes) in
      if touch_bytes > 0 then begin
        Address_space.touch child ~addr:0 ~len:touch_bytes;
        Engine.delay ctx (Address_space.drain_cost child)
      end;
      Address_space.release child;
      Engine.now_v ctx -. t0)

let e4_cow_fraction_sweep =
  {
    id = "fig-cow-fraction";
    title = "COW fork response time vs fraction of pages written (320K)";
    paper_ref = "Smith 1988, cited in section 4.4";
    run =
      (fun ~jobs:_ ppf ->
        fp ppf "  %-10s %18s %18s@." "fraction" "3B2 response" "HP response";
        hr ppf;
        List.iter
          (fun fr ->
            fp ppf "  %-10.1f %15.1f ms %15.1f ms@." fr
              (cow_response Cost_model.att_3b2 ~fraction:fr *. 1e3)
              (cow_response Cost_model.hp_9000_350 ~fraction:fr *. 1e3))
          [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ];
        fp ppf
          "  (shape: affine in the fraction written; slope = pages x copy cost,@.";
        fp ppf "   intercept = the fork latency of E2.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E5: remote fork.                                                    *)

let e5_remote_fork =
  {
    id = "sec-4.4-rfork";
    title = "Remote fork of a 70K process";
    paper_ref = "section 4.4 (Smith and Ioannidis 1989)";
    run =
      (fun ~jobs:_ ppf ->
        let model = Cost_model.distributed_lan in
        let pages = Cost_model.pages_for model ~bytes:(70 * 1024) in
        let mechanism = Cost_model.remote_spawn_cost model ~mapped_pages:pages in
        (* The special-purpose remote-execution protocol exchanges six
           messages (request, checkpoint-ready, fetch, ack, start, done). *)
        let observed = mechanism +. (6. *. model.Cost_model.msg_latency) in
        fp ppf "  %-34s %10s %12s@." "quantity" "paper" "model";
        hr ppf;
        fp ppf "  %-34s %9s %10.3f s@." "rfork mechanism (checkpoint+ship)"
          "<1.0 s" mechanism;
        fp ppf "  %-34s %9s %10.3f s@." "observed mean (with network delays)"
          "~1.3 s" observed)
  }

(* ------------------------------------------------------------------ *)
(* E6: schemes A / B / C.                                              *)

let e6_schemes =
  {
    id = "schemes-ABC";
    title = "Execution schemes: static (A), random (B), concurrent (C)";
    paper_ref = "section 4.2";
    run =
      (fun ~jobs:_ ppf ->
        let rng = Rng.create ~seed:2026 in
        let workloads =
          [
            Schemes.generate ~rng ~inputs:400 ~alternatives:3
              ~dist:(`Uniform (1., 3.)) ~description:"uniform(1,3): low dispersion";
            Schemes.generate ~rng ~inputs:400 ~alternatives:3
              ~dist:(`Exponential 10.) ~description:"exponential(10): high dispersion";
            Schemes.generate ~rng ~inputs:400 ~alternatives:3
              ~dist:(`Bimodal (1., 100., 0.3))
              ~description:"bimodal(1|100, p=0.3): database queries";
          ]
        in
        fp ppf "  %-42s %8s %8s %8s %8s %8s@." "workload (overhead 0.5)" "A"
          "B" "C" "oracle" "PI(C/B)";
        hr ppf;
        List.iter
          (fun w ->
            let e = Schemes.evaluate w ~overhead:0.5 in
            fp ppf "  %-42s %8.2f %8.2f %8.2f %8.2f %8.2f@."
              w.Schemes.description e.Schemes.scheme_a e.Schemes.scheme_b
              e.Schemes.scheme_c e.Schemes.oracle e.Schemes.pi_c_over_b)
          workloads;
        fp ppf "@.  Overhead sweep on the bimodal workload:@.";
        fp ppf "  %-10s %8s %8s %10s@." "overhead" "B" "C" "C wins?";
        hr ppf;
        let w = List.nth workloads 2 in
        List.iter
          (fun ov ->
            let e = Schemes.evaluate w ~overhead:ov in
            fp ppf "  %-10.1f %8.2f %8.2f %10s@." ov e.Schemes.scheme_b
              e.Schemes.scheme_c
              (if e.Schemes.pi_c_over_b > 1. then "yes" else "no"))
          [ 0.; 1.; 5.; 10.; 20.; 40. ])
  }

(* ------------------------------------------------------------------ *)
(* E7: recovery blocks.                                                *)

let e7_recovery_blocks =
  {
    id = "rb-speedup";
    title = "Recovery blocks: sequential vs concurrent under faults";
    paper_ref = "section 5.1 (cf. Kim 1984, Welch 1983)";
    run =
      (fun ~jobs ppf ->
        let trials = 60 in
        let run_config ~p_fault =
          (* Each trial builds both of its engines from scratch, so the
             trials fan out across the domain pool; per-trial results come
             back in trial order and the aggregation below is independent
             of [jobs]. *)
          let per_trial =
            Parallel.map_indexed_shared ~jobs
              (fun i ->
                let trial = i + 1 in
                let wl = Rng.create ~seed:(1000 + trial) in
                let t_primary = Rng.uniform_in wl ~lo:1. ~hi:3. in
                let t_secondary = Rng.uniform_in wl ~lo:2. ~hi:6. in
                let make_rb fault_seed =
                  let f = Fault.create ~seed:fault_seed in
                  (* A Wrong fault: the primary runs to completion and only
                     then fails its acceptance test, as a latent logic error
                     would. *)
                  let primary =
                    Fault.wrap f ~p:p_fault ~mode:Fault.Wrong
                      ~corrupt:(fun v -> -v)
                      (Recovery_block.alternate ~name:"primary" (fun ctx ->
                           Engine.delay ctx t_primary;
                           1))
                  in
                  let secondary =
                    Recovery_block.alternate ~name:"secondary" (fun ctx ->
                        Engine.delay ctx t_secondary;
                        2)
                  in
                  Recovery_block.make ~acceptance:(fun _ v -> v > 0)
                    [ primary; secondary ]
                in
                let eng = Engine.create ~trace:false () in
                let seq =
                  in_process eng (fun ctx ->
                      Recovery_block.run_sequential ctx (make_rb trial))
                in
                let eng = Engine.create ~trace:false () in
                let conc =
                  in_process eng (fun ctx ->
                      Recovery_block.run_concurrent ctx (make_rb trial))
                in
                let ok v =
                  match v with `Accepted _ -> true | `Failed -> false
                in
                ( seq.Recovery_block.elapsed,
                  conc.Recovery_block.elapsed,
                  ok seq.Recovery_block.verdict
                  = ok conc.Recovery_block.verdict ))
              trials
          in
          let seq =
            Stats.mean (Array.map (fun (s, _, _) -> s) per_trial)
          in
          let conc =
            Stats.mean (Array.map (fun (_, c, _) -> c) per_trial)
          in
          let agree =
            Array.fold_left
              (fun acc (_, _, a) -> if a then acc + 1 else acc)
              0 per_trial
          in
          (seq, conc, agree)
        in
        fp ppf "  %-14s %12s %12s %9s %9s@." "p(primary" "sequential"
          "concurrent" "speedup" "verdicts";
        fp ppf "  %-14s %12s %12s %9s %9s@." "  fault)" "mean (s)" "mean (s)" ""
          "agree";
        hr ppf;
        List.iter
          (fun p ->
            let seq, conc, agree = run_config ~p_fault:p in
            fp ppf "  %-14.1f %12.2f %12.2f %8.2fx %6d/%d@." p seq conc
              (seq /. conc) agree trials)
          [ 0.0; 0.2; 0.4; 0.6; 0.8 ];
        fp ppf
          "  (concurrent execution finds \"a rapid failure-free path\": its cost@.";
        fp ppf
          "   is the fastest accepted version, independent of the fault rate.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E8: OR-parallel Prolog.                                             *)

let or_program ~branches ~burn_fail ~burn_ok ~ok_position =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "burn(0).\nburn(N) :- N > 0, M is N - 1, burn(M).\n";
  for i = 0 to branches - 1 do
    if i = ok_position then
      Buffer.add_string buf
        (Printf.sprintf "route(r%d) :- burn(%d).\n" i burn_ok)
    else
      Buffer.add_string buf
        (Printf.sprintf "route(r%d) :- burn(%d), fail.\n" i burn_fail)
  done;
  Buffer.contents buf

let e8_prolog_or =
  {
    id = "prolog-or";
    title = "OR-parallel Prolog: racing clause branches";
    paper_ref = "section 5.2";
    run =
      (fun ~jobs:_ ppf ->
        fp ppf "  %-22s %10s %10s %9s %7s %9s@." "succeeding clause"
          "seq (inf)" "par (s)" "speedup" "COW" "wasted";
        hr ppf;
        List.iter
          (fun (label, pos) ->
            let db = Database.create () in
            ignore
              (Database.add_program db
                 (or_program ~branches:4 ~burn_fail:1500 ~burn_ok:50
                    ~ok_position:pos));
            let goal, _ = Parser.query "route(R)" in
            let r = Or_parallel.solve_sim ~seed:7 db goal in
            fp ppf "  %-22s %10d %10.4f %8.2fx %7d %9.3f@." label
              r.Or_parallel.seq_inferences r.Or_parallel.par_time
              r.Or_parallel.speedup r.Or_parallel.cow_copies
              r.Or_parallel.wasted_cpu)
          [ ("first of 4", 0); ("second of 4", 1); ("third of 4", 2);
            ("last of 4", 3) ];
        fp ppf
          "@.  (sequential cost grows with the failing prefix; OR-parallel cost@.";
        fp ppf
          "   is the succeeding branch plus overhead, wherever it sits.)@.";
        (* A real fork race on the same program. *)
        let db = Database.create () in
        ignore
          (Database.add_program db
             (or_program ~branches:4 ~burn_fail:60000 ~burn_ok:500 ~ok_position:3));
        let goal, _ = Parser.query "route(R)" in
        let rr = Or_parallel.solve_real ~timeout:60. db goal in
        fp ppf
          "@.  Real processes (this host): sequential %.4f s, racing %.4f s (winner %s)@."
          rr.Or_parallel.elapsed_sequential rr.Or_parallel.elapsed_parallel
          (match rr.Or_parallel.winner with
          | Some i -> Printf.sprintf "clause %d" i
          | None -> "none"))
  }

(* ------------------------------------------------------------------ *)
(* E9: elimination policy ablation.                                    *)

let e9_elimination =
  {
    id = "ablate-elim";
    title = "Sibling elimination: synchronous vs asynchronous";
    paper_ref =
      "section 3.2.1 (asynchronous elimination gives better execution time \
at the expense of throughput)";
    run =
      (fun ~jobs:_ ppf ->
        fp ppf "  %-14s %-8s %12s %12s %12s@." "kill latency" "policy"
          "elapsed (s)" "wasted (s)" "selection";
        hr ppf;
        List.iter
          (fun lat ->
            List.iter
              (fun (label, elim) ->
                let model =
                  { (Cost_model.uniform ()) with
                    kill_per_sibling = 0.05;
                    msg_latency = lat }
                in
                let eng = Engine.create ~model ~trace:false () in
                let r =
                  Concurrent.run_toplevel eng
                    ~policy:{ Concurrent.default_policy with elimination = elim }
                    (List.init 4 (fun i ->
                         Alternative.fixed ~cost:(1. +. float_of_int i) i))
                in
                fp ppf "  %-14.2f %-8s %12.3f %12.3f %12.3f@." lat label
                  r.Concurrent.elapsed r.Concurrent.wasted_cpu
                  r.Concurrent.selection_cost)
              [
                ("sync", Concurrent.Sync_elim); ("async", Concurrent.Async_elim);
                ("lost", Concurrent.No_elim);
              ])
          [ 0.05; 0.2; 0.5 ];
        fp ppf
          "  ('lost' = every elimination message lost: the too-late backup@.";
        fp ppf
          "   alone preserves at-most-once while the zombies run to the end.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E10: synchronisation ablation.                                      *)

let e10_consensus =
  {
    id = "ablate-consensus";
    title = "Synchronisation: local latch vs majority consensus";
    paper_ref = "section 3.2.1 (performance vs reliability trade-off)";
    run =
      (fun ~jobs:_ ppf ->
        let model = Cost_model.hp_9000_350 in
        let race policy =
          let eng = Engine.create ~model ~trace:false () in
          Concurrent.run_toplevel eng ~policy
            [ Alternative.fixed ~cost:0.5 "fast"; Alternative.fixed ~cost:1.0 "slow" ]
        in
        fp ppf "  %-26s %12s %14s %10s %12s@." "synchronisation" "elapsed (s)"
          "sync overhead" "messages" "tolerates";
        hr ppf;
        let local = race Concurrent.default_policy in
        fp ppf "  %-26s %12.4f %14.4f %10d %12s@." "local latch (1 node)"
          local.Concurrent.elapsed
          (local.Concurrent.elapsed -. 0.5 -. local.Concurrent.setup_cost)
          0 "0 faults";
        List.iter
          (fun nodes ->
            let r =
              race
                {
                  Concurrent.default_policy with
                  sync =
                    Concurrent.Consensus
                      { nodes; crashed = []; vote_delay = 0.002;
                        reply_timeout = 1.0 };
                }
            in
            fp ppf "  %-26s %12.4f %14.4f %10d %9d flt@."
              (Printf.sprintf "majority consensus (%d)" nodes)
              r.Concurrent.elapsed
              (r.Concurrent.elapsed -. 0.5 -. r.Concurrent.setup_cost)
              r.Concurrent.sync_messages
              ((nodes - 1) / 2))
          [ 3; 5; 7 ];
        (* Fault-tolerance demonstration. *)
        let r =
          race
            {
              Concurrent.default_policy with
              sync =
                Concurrent.Consensus
                  { nodes = 5; crashed = [ 0; 3 ]; vote_delay = 0.002;
                    reply_timeout = 0.3 };
            }
        in
        fp ppf "@.  With 2 of 5 consensus nodes crashed the block still commits: %s@."
          (match r.Concurrent.outcome with
          | Alt_block.Selected { value; _ } ->
            Printf.sprintf "winner %S, elapsed %.4f s" value r.Concurrent.elapsed
          | Alt_block.Block_failed m -> "FAILED: " ^ m))
  }

(* ------------------------------------------------------------------ *)
(* E11: real vs virtual concurrency.                                   *)

let e11_cores =
  {
    id = "ablate-cores";
    title = "PI vs available processors (processor sharing)";
    paper_ref = "section 4.2 (real vs virtual concurrency)";
    run =
      (fun ~jobs:_ ppf ->
        let times = [| 2.; 4.; 6.; 8. |] in
        fp ppf "  four alternatives, tau = (2, 4, 6, 8), zero overhead@.";
        fp ppf "  %-12s %12s %10s %10s@." "cores" "elapsed (s)" "PI" "wins?";
        hr ppf;
        List.iter
          (fun (label, cores) ->
            let eng = Engine.create ~cores ~trace:false () in
            let r =
              Concurrent.run_toplevel eng
                (Array.to_list (Array.mapi (fun i c -> Alternative.fixed ~cost:c i) times))
            in
            let pi = Stats.mean times /. r.Concurrent.elapsed in
            fp ppf "  %-12s %12.2f %10.2f %10s@." label r.Concurrent.elapsed pi
              (if pi > 1. then "yes" else "no"))
          [
            ("1", Engine.Cores 1); ("2", Engine.Cores 2); ("3", Engine.Cores 3);
            ("4", Engine.Cores 4); ("infinite", Engine.Infinite);
          ];
        fp ppf
          "  (with one processor the racing alternatives only steal cycles from@.";
        fp ppf
          "   the eventual winner: speculation needs real concurrency to win.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E12/E13: the host machine.                                          *)

let e12_real_machine =
  {
    id = "real-fork";
    title = "This host: fork latency and COW costs (cf. section 4.4)";
    paper_ref = "section 4.4, measured on 2026 hardware";
    run =
      (fun ~jobs:_ ppf ->
        let fork = Measure.fork_latency ~iters:30 () in
        fp ppf "  %-38s %14s@." "quantity" "this host";
        hr ppf;
        fp ppf "  %-38s %11.0f us   (paper: 31 ms 3B2, 12 ms HP)@."
          "fork+wait latency, 320K image (median)" (fork.Stats.median *. 1e6);
        let rate = Measure.page_copy_rate ~pages:2048 ~iters:7 () in
        fp ppf "  %-38s %11.0f p/s  (paper: 326 3B2, 1034 HP)@."
          "COW page-copy service rate" rate;
        fp ppf "@.  response time vs fraction written (2048 pages, medians):@.";
        List.iter
          (fun fr ->
            let s = Measure.cow_touch_time ~pages:2048 ~fraction:fr ~iters:7 () in
            fp ppf "    fraction %.2f: %8.0f us@." fr (s.Stats.median *. 1e6))
          [ 0.0; 0.25; 0.5; 0.75; 1.0 ])
  }

let e13_real_race =
  {
    id = "real-race";
    title = "This host: fastest-first racing of real processes";
    paper_ref = "the design itself, on the host OS";
    run =
      (fun ~jobs:_ ppf ->
        let sleeps = [ 0.12; 0.06; 0.03; 0.18 ] in
        let thunks =
          List.mapi
            (fun i s () ->
              Unix.sleepf s;
              i)
            sleeps
        in
        let t0 = Unix.gettimeofday () in
        List.iter (fun f -> ignore (f ())) thunks;
        let seq = Unix.gettimeofday () -. t0 in
        (match Fork_race.run ~timeout:30. thunks with
        | Fork_race.Winner { index; elapsed; _ } ->
          fp ppf "  four alternatives sleeping %s s@."
            (String.concat ", " (List.map (fun s -> Format.asprintf "%g" s) sleeps));
          fp ppf "  sequential (all in order): %8.3f s@." seq;
          fp ppf "  mean alternative:          %8.3f s@."
            (Stats.mean (Array.of_list sleeps));
          fp ppf "  fastest-first race:        %8.3f s (winner %d)@." elapsed index
        | _ -> fp ppf "  race failed unexpectedly@.");
        (* Algorithmic diversity: two list-sorting strategies, the paper's
           own running example (section 4.2). *)
        let n = 200_000 in
        let sorted_input = Array.init n Fun.id in
        let qsort a = let a = Array.copy a in Array.sort compare a; a.(0) in
        let scan_if_sorted a =
          (* An "insertion-sort-like" method that is O(n) on sorted input
             and refuses (fails) otherwise. *)
          let ok = ref true in
          for i = 0 to Array.length a - 2 do
            if a.(i) > a.(i + 1) then ok := false
          done;
          if !ok then a.(0) else failwith "not sorted"
        in
        match
          Fork_race.run ~timeout:30.
            [ (fun () -> qsort sorted_input); (fun () -> scan_if_sorted sorted_input) ]
        with
        | Fork_race.Winner { index; elapsed; _ } ->
          fp ppf
            "  sort race on sorted input (n=%d): winner = %s in %.4f s@." n
            (if index = 0 then "quicksort" else "linear scan")
            elapsed
        | _ -> fp ppf "  sort race failed unexpectedly@.")
  }

(* ------------------------------------------------------------------ *)
(* E17: AND- vs OR-parallelism.                                        *)

let e17_prolog_and =
  {
    id = "prolog-and";
    title = "AND-parallelism vs OR-parallelism";
    paper_ref =
      "section 5.2 (rule-level parallelism is centered on two types; OR \
maps closely to mutually exclusive alternatives)";
    run =
      (fun ~jobs:_ ppf ->
        let db = Database.with_prelude () in
        ignore
          (Database.add_program db
             ("burn(0). burn(N) :- N > 0, M is N - 1, burn(M).\n"
             ^ "taskA(done) :- burn(500).\n"
             ^ "taskB(done) :- burn(1500).\n"
             ^ "taskC(done) :- burn(3000).\n"
             ^ "any(a) :- burn(3000).\n"
             ^ "any(b) :- burn(1500).\n"
             ^ "any(c) :- burn(500).\n"));
        (* AND: all three independent tasks must complete. *)
        let and_goal, _ = Parser.query "taskA(X), taskB(Y), taskC(Z)" in
        let a = And_parallel.solve_sim db and_goal in
        (* OR: any one of three equivalent clauses suffices. *)
        let or_goal, _ = Parser.query "any(W)" in
        let o = Or_parallel.solve_sim db or_goal in
        fp ppf "  branch/conjunct work: ~500 / ~1500 / ~3000 inferences@.@.";
        fp ppf "  %-22s %12s %12s %10s %16s@." "parallelism" "seq (s)"
          "par (s)" "speedup" "bounded by";
        hr ppf;
        fp ppf "  %-22s %12.4f %12.4f %9.2fx %16s@." "AND (all must finish)"
          a.And_parallel.seq_time a.And_parallel.par_time
          a.And_parallel.speedup "sum/max";
        fp ppf "  %-22s %12.4f %12.4f %9.2fx %16s@."
          "OR (fastest wins)" o.Or_parallel.seq_time o.Or_parallel.par_time
          o.Or_parallel.speedup "first/min";
        fp ppf
          "@.  (AND-parallel time is the slowest conjunct: no elimination, and@.";
        fp ppf
          "   dependent conjuncts would need binding merges. OR-parallel time@.";
        fp ppf
          "   is the fastest branch: mutual exclusion means no merging — the@.";
        fp ppf "   reason the paper finds OR \"more interesting\".)@.")
  }

(* ------------------------------------------------------------------ *)
(* E14: guard placement ablation.                                      *)

let e14_guard_placement =
  {
    id = "ablate-guard";
    title = "Guard evaluation placement";
    paper_ref =
      "section 3.2 (guard before spawning, in the child, at sync, or \
redundantly)";
    run =
      (fun ~jobs:_ ppf ->
        (* Eight alternatives; six have closed guards. Selective guards
           make pre-spawn evaluation attractive; in-child keeps the parent
           path short; at-sync wastes the closed bodies' work. *)
        let alts guard_cost =
          List.init 8 (fun i ->
              let open_ = i >= 6 in
              Alternative.make ~name:(Printf.sprintf "a%d" i)
                ~guard:(fun ctx ->
                  Engine.delay ctx guard_cost;
                  open_)
                (fun ctx ->
                  Engine.delay ctx (1.0 +. (0.5 *. float_of_int i));
                  i))
        in
        fp ppf "  8 alternatives, 6 closed; guard evaluation costs 0.02 s@.";
        fp ppf "  %-16s %10s %12s %12s %12s@." "placement" "spawned"
          "elapsed (s)" "setup (s)" "wasted (s)";
        hr ppf;
        List.iter
          (fun (label, guards) ->
            let model =
              { (Cost_model.uniform ()) with fork_base = 0.05 }
            in
            let eng = Engine.create ~model ~trace:false () in
            let r =
              Concurrent.run_toplevel eng
                ~policy:{ Concurrent.default_policy with guards }
                (alts 0.02)
            in
            fp ppf "  %-16s %10d %12.3f %12.3f %12.3f@." label
              r.Concurrent.spawned r.Concurrent.elapsed r.Concurrent.setup_cost
              r.Concurrent.wasted_cpu)
          [
            ("before spawn", Concurrent.Guard_before_spawn);
            ("in child", Concurrent.Guard_in_child);
            ("at sync", Concurrent.Guard_at_sync);
            ("redundant", Concurrent.Guard_redundant);
          ];
        fp ppf
          "  (pre-spawn guards save six forks but serialise the evaluations in@.";
        fp ppf
          "   the parent; at-sync guards run closed bodies to completion.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E15: local vs remote placement.                                     *)

let e15_distributed_block =
  {
    id = "distributed-block";
    title = "Local COW children vs remote checkpoint/restart children";
    paper_ref = "section 5.1.2 (distributed execution of recovery blocks)";
    run =
      (fun ~jobs:_ ppf ->
        let model = Cost_model.distributed_lan in
        let run ~placement ~work =
          let eng = Engine.create ~model ~trace:false () in
          let space =
            Address_space.create ~size_hint:(70 * 1024)
              (Engine.frame_store eng) model
          in
          Concurrent.run_toplevel eng
            ~policy:{ Concurrent.default_policy with placement }
            ~space
            [
              Alternative.fixed ~cost:work 0;
              Alternative.fixed ~cost:(1.5 *. work) 1;
              Alternative.fixed ~cost:(2.0 *. work) 2;
            ]
        in
        fp ppf "  70K process image, 3 alternatives, tau = (w, 1.5w, 2w)@.";
        fp ppf "  %-12s %12s %14s %14s@." "work w (s)" "local (s)"
          "rfork eager" "on-demand";
        hr ppf;
        List.iter
          (fun work ->
            let local = (run ~placement:Concurrent.Local_spawn ~work).Concurrent.elapsed in
            let remote = (run ~placement:Concurrent.Remote_spawn ~work).Concurrent.elapsed in
            let od = (run ~placement:Concurrent.Remote_on_demand ~work).Concurrent.elapsed in
            fp ppf "  %-12g %12.3f %14.3f %14.3f@." work local remote od)
          [ 0.1; 1.0; 10.0; 100.0 ];
        fp ppf
          "  (in this single-machine model, local COW wins at every size: the@.";
        fp ppf
          "   rfork tax buys nothing unless remote nodes add real processors.@.";
        fp ppf "   With one local core but a processor per remote node:)@.";
        let run2 ~cores ~placement ~work =
          let eng = Engine.create ~cores ~model ~trace:false () in
          let space =
            Address_space.create ~size_hint:(70 * 1024)
              (Engine.frame_store eng) model
          in
          (Concurrent.run_toplevel eng
             ~policy:{ Concurrent.default_policy with placement }
             ~space
             [
               Alternative.fixed ~cost:work 0;
               Alternative.fixed ~cost:(1.5 *. work) 1;
               Alternative.fixed ~cost:(2.0 *. work) 2;
             ])
            .Concurrent.elapsed
        in
        fp ppf "  %-12s %12s %14s %14s@." "work w (s)" "local, 1 cpu"
          "eager, 3 cpu" "on-dem, 3 cpu";
        hr ppf;
        List.iter
          (fun work ->
            let local =
              run2 ~cores:(Engine.Cores 1) ~placement:Concurrent.Local_spawn ~work
            in
            let remote =
              run2 ~cores:Engine.Infinite ~placement:Concurrent.Remote_spawn ~work
            in
            let od =
              run2 ~cores:Engine.Infinite ~placement:Concurrent.Remote_on_demand
                ~work
            in
            fp ppf "  %-12g %12.3f %14.3f %14.3f@." work local remote od)
          [ 0.1; 1.0; 10.0; 100.0 ];
        fp ppf
          "  (on-demand migration — the Theimer et al. scheme the paper points@.";
        fp ppf
          "   to — removes almost the whole rfork tax for these read-mostly@.";
        fp ppf "   alternatives, moving the crossover an order of magnitude left.)@.")
  }

(* ------------------------------------------------------------------ *)
(* E16: replication combined with alternatives.                        *)

let e16_replication =
  {
    id = "replication";
    title = "Replicated alternatives: reliability vs execution time";
    paper_ref = "section 6 (replication combined with alternatives)";
    run =
      (fun ~jobs ppf ->
        let trials = 200 in
        let run_config ~replicas ~p_wrong =
          (* Per-trial fan-out: every trial owns its engine and RNG. *)
          let per_trial =
            Parallel.map_indexed_shared ~jobs
              (fun i ->
                let trial = i + 1 in
                let rng = Rng.create ~seed:(trial * 7919) in
                let version =
                  Alternative.make ~name:"v" (fun rctx ->
                      Engine.delay rctx 0.1;
                      if Rng.bernoulli rng ~p:p_wrong then
                        (* Each wrong answer is distinct garbage, as a memory
                           corruption would be. *)
                        1000 + Rng.int rng 1000000
                      else 42)
                in
                let alts =
                  if replicas = 1 then [ version ]
                  else [ Replicate.alternative ~replicas version ]
                in
                let eng = Engine.create ~trace:false () in
                let r = Concurrent.run_toplevel eng alts in
                let outcome =
                  match r.Concurrent.outcome with
                  | Alt_block.Selected { value = 42; _ } -> `Correct
                  | Alt_block.Selected _ -> `Wrong
                  | Alt_block.Block_failed _ -> `Failed
                in
                (outcome, r.Concurrent.elapsed))
              trials
          in
          let count o =
            Array.fold_left
              (fun acc (o', _) -> if o' = o then acc + 1 else acc)
              0 per_trial
          in
          ( float_of_int (count `Correct) /. float_of_int trials,
            float_of_int (count `Wrong) /. float_of_int trials,
            float_of_int (count `Failed) /. float_of_int trials,
            Stats.mean (Array.map snd per_trial) )
        in
        fp ppf "  one 0.1 s version; each execution yields garbage with prob p@.";
        fp ppf "  %-8s %-10s %10s %10s %10s %12s@." "p" "replicas" "correct"
          "wrong" "failed" "mean time";
        hr ppf;
        List.iter
          (fun p_wrong ->
            List.iter
              (fun replicas ->
                let ok, wrong, failed, t = run_config ~replicas ~p_wrong in
                fp ppf "  %-8.2f %-10d %9.0f%% %9.0f%% %9.0f%% %11.3f s@."
                  p_wrong replicas (100. *. ok) (100. *. wrong) (100. *. failed) t)
              [ 1; 3; 5 ])
          [ 0.1; 0.3 ];
        fp ppf
          "  (replication converts silently-wrong commits into either correct@.";
        fp ppf
          "   commits or detected failures, for one quorum's worth of time.)@.")
  }

let all =
  [
    e1_pi_table; e2_fork_latency; e3_page_copy_rate; e4_cow_fraction_sweep;
    e5_remote_fork; e6_schemes; e7_recovery_blocks; e8_prolog_or;
    e9_elimination; e10_consensus; e11_cores; e14_guard_placement;
    e15_distributed_block; e16_replication; e17_prolog_and; e12_real_machine;
    e13_real_race;
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run_all ?ids ?jobs ppf =
  let jobs = match jobs with Some j -> j | None -> Parallel.default_jobs () in
  let selected =
    match ids with
    | None -> all
    | Some ids -> List.filter_map find ids
  in
  List.iter
    (fun e ->
      fp ppf "@.== %s: %s@.   [%s]@.@." e.id e.title e.paper_ref;
      e.run ~jobs ppf)
    selected
