(** The evaluation harness: one function per table/figure of the paper (and
    per ablation called out in its prose), each printing the regenerated
    rows next to the values the paper reports. See EXPERIMENTS.md for the
    experiment index and DESIGN.md for the substitutions.

    All simulated experiments are deterministic; the [real-*] ones measure
    the host and vary run to run. *)

type experiment = {
  id : string;  (** Stable identifier, e.g. ["table-4.3-pi"]. *)
  title : string;
  paper_ref : string;  (** Paper section/table the experiment regenerates. *)
  run : jobs:int -> Format.formatter -> unit;
      (** [jobs] is the domain-pool width for experiments whose trials are
          mutually independent (E7 recovery blocks, E16 replication); the
          printed tables are identical for every value. Experiments whose
          structure is inherently one simulation ignore it. *)
}

val e1_pi_table : experiment
(** Table of section 4.3: PI for six triples of alternative times at
    overhead 5 — analytic, and re-measured by racing fixed-cost
    alternatives in the simulator. *)

val e2_fork_latency : experiment
(** Section 4.4: fork() of a 320K address space on the 3B2 (~31 ms) and the
    HP 9000/350 (~12 ms), reproduced by the calibrated cost model driving a
    simulated fork. *)

val e3_page_copy_rate : experiment
(** Section 4.4: copy-on-write page-copy service rates (326 2K-pages/s on
    the 3B2, 1034 4K-pages/s on the HP), re-measured by timing a burst of
    simulated COW faults. *)

val e4_cow_fraction_sweep : experiment
(** Smith 1988 (cited in section 4.4): COW fork response time as a function
    of the fraction of the address space written by the child — the
    "important independent variable". *)

val e5_remote_fork : experiment
(** Section 4.4: rfork() of a 70K process — just under 1 s of mechanism
    time, ~1.3 s observed including network delays. *)

val e6_schemes : experiment
(** Section 4.2: schemes A (static choice), B (random selection) and C
    (concurrent, fastest-first) across workload distributions; C wins
    when dispersion is large relative to overhead. *)

val e7_recovery_blocks : experiment
(** Section 5.1 (and Kim 1984 / Welch 1983): sequential vs concurrent
    recovery blocks under increasing primary-fault probability. *)

val e8_prolog_or : experiment
(** Section 5.2: OR-parallel Prolog; sequential vs racing clause branches,
    as a function of where the succeeding clause sits in the database,
    with the read-mostly page-sharing statistics of section 7. *)

val e9_elimination : experiment
(** Section 3.2.1 ablation: synchronous vs asynchronous sibling
    elimination — execution time vs wasted work. *)

val e10_consensus : experiment
(** Section 3.2.1 ablation: local latch vs majority consensus of 3/5/7
    nodes — the performance-for-reliability trade. *)

val e11_cores : experiment
(** Section 4.2 (real vs virtual concurrency): PI of the same block as the
    number of processors varies, under egalitarian processor sharing. *)

val e12_real_machine : experiment
(** The 2026 counterpart of section 4.4, measured with real [fork] on this
    host: fork latency, COW page-copy rate, and the fraction-written
    sweep. *)

val e13_real_race : experiment
(** Fastest-first racing of real processes (the design applied on the host
    OS): measured elapsed vs the sequential sum for a skewed workload. *)

val e14_guard_placement : experiment
(** Section 3.2 ablation: where the guard is evaluated (before spawning,
    in the child, at the synchronisation point, redundantly) — setup cost
    vs wasted work when guards are selective. *)

val e15_distributed_block : experiment
(** Section 5.1.2: the same block with local COW children vs remote
    checkpoint/restart children — where shipping the computation starts to
    pay off as the alternatives grow. *)

val e16_replication : experiment
(** Section 6: replication combined with alternatives — probability of a
    correct committed result vs per-replica wrong-value fault rate, and
    the execution-time price of the replica quorums. *)

val e17_prolog_and : experiment
(** Section 5.2: AND- vs OR-parallelism on matched workloads — AND waits
    for the slowest conjunct (speedup bounded by sum/max), OR takes the
    fastest branch (sum/min): why the paper's design targets OR. *)

val all : experiment list
(** Every experiment, in presentation order. *)

val find : string -> experiment option
(** Look up by [id]. *)

val run_all : ?ids:string list -> ?jobs:int -> Format.formatter -> unit
(** Run all (or the selected) experiments, with section headers. [jobs]
    (default {!Parallel.default_jobs}) is passed to each experiment's
    per-trial fan-out; it never changes the printed tables. *)
