(* Microbenchmarks for the memory hierarchy fast paths.

   Each benchmark reports two numbers: minor-heap words allocated per
   operation (deterministic, the number the zero-copy work optimises) and
   operations per second (indicative only; wall-clock noise is expected in
   CI). The scalar benchmarks are run twice — once through the in-place
   fast path and once through the byte-range path that the old accessors
   reduced to — so the emitted JSON documents the allocation reduction
   directly. The absorb benchmark varies the number of dirty pages at a
   fixed mapped-page count to exhibit the O(dirty) (rather than O(mapped))
   cost of [Page_map.absorb]. *)

type sample = {
  name : string;
  ops : int;
  minor_words_per_op : float;
  ops_per_sec : float;
}

(* [measure name ops f]: run [f ops] once as warm-up is the caller's
   business; here we only sample counters around the timed run. The two
   [Gc.minor_words] samples each box a float; that constant overhead is
   measured once and subtracted. *)
let probe_overhead =
  lazy
    (let a = Gc.minor_words () in
     let b = Gc.minor_words () in
     b -. a)

let measure name ops f =
  let overhead = Lazy.force probe_overhead in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  f ops;
  let t1 = Unix.gettimeofday () in
  let w1 = Gc.minor_words () in
  let words = Float.max 0. (w1 -. w0 -. overhead) in
  let dt = Float.max 1e-9 (t1 -. t0) in
  {
    name;
    ops;
    minor_words_per_op = words /. float_of_int ops;
    ops_per_sec = float_of_int ops /. dt;
  }

let page_size = 4096

let fresh_space () =
  let store = Frame_store.create ~page_size in
  let space = Address_space.create ~size_hint:(8 * page_size) store Cost_model.modern in
  ignore (Address_space.drain_cost space);
  space

(* ------------------------------------------------------------------ *)
(* Scalar reads and writes: fast path vs the byte-range path the old
   accessors used (allocate an 8-byte buffer, then box an int64).       *)

let scalar_sink = ref 0

let bench_read_fast space n =
  let s = ref 0 in
  for i = 1 to n do
    s := !s + Address_space.get_int space ~addr:((i land 7) * 8)
  done;
  scalar_sink := !s

let bench_read_bytes space n =
  let s = ref 0 in
  for i = 1 to n do
    let b = Address_space.read_bytes space ~addr:((i land 7) * 8) ~len:8 in
    s := !s + Int64.to_int (Bytes.get_int64_le b 0)
  done;
  scalar_sink := !s

let bench_write_fast space n =
  for i = 1 to n do
    Address_space.set_int space ~addr:((i land 7) * 8) i
  done

let bench_write_bytes space n =
  for i = 1 to n do
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int i);
    Address_space.write_bytes space ~addr:((i land 7) * 8) b
  done

(* ------------------------------------------------------------------ *)
(* Fork: O(1) regardless of how many pages the parent has mapped.       *)

let bench_fork ~mapped n =
  let store = Frame_store.create ~page_size in
  let m = Page_map.create store in
  for vp = 0 to mapped - 1 do
    ignore (Page_map.set_u8 m ~vpage:vp ~off:0 1)
  done;
  fun () ->
    measure
      (Printf.sprintf "fork_release/%d_mapped" mapped)
      n
      (fun n ->
        for _ = 1 to n do
          let child = Page_map.fork m in
          Page_map.release child
        done)

(* ------------------------------------------------------------------ *)
(* Absorb: fork a child, dirty [dirty] of [mapped] pages, absorb it
   back. Cost (time and, deterministically, allocation) must scale with
   [dirty], not with [mapped].                                          *)

let bench_absorb ~mapped ~dirty n =
  let store = Frame_store.create ~page_size in
  let parent = Page_map.create store in
  for vp = 0 to mapped - 1 do
    ignore (Page_map.set_u8 parent ~vpage:vp ~off:0 1)
  done;
  measure
    (Printf.sprintf "fork_dirty_absorb/%d_of_%d" dirty mapped)
    n
    (fun n ->
      for i = 1 to n do
        let child = Page_map.fork parent in
        for d = 0 to dirty - 1 do
          ignore (Page_map.set_u8 child ~vpage:d ~off:1 (i land 0xff))
        done;
        Page_map.absorb ~parent ~child
      done)

(* ------------------------------------------------------------------ *)
(* IPC: one sender streaming messages at a receiver, certain predicates
   throughout (the common case the interning fast paths serve).         *)

let ipc_engine n =
  let eng = Engine.create ~trace:false () in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to n do
          ignore (Engine.receive ctx ())
        done)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         for i = 1 to n do
           Engine.send ctx receiver (Payload.int i)
         done));
  eng

let bench_ipc n =
  (* Warm-up (the harness convention above): a full throwaway run first,
     so the timed run reuses already-faulted heap pages and warm code
     paths instead of measuring first-touch page faults. *)
  let warm = ipc_engine n in
  Engine.run warm;
  Gc.full_major ();
  let eng = ipc_engine n in
  measure "ipc/send_receive" n (fun _ -> Engine.run eng)

(* ------------------------------------------------------------------ *)

type report = {
  samples : sample list;
  absorb : sample list;  (* ordered by dirty count *)
  absorb_dirty : int list;
  absorb_mapped : int;
}

let run ?(scale = 1.0) () =
  let n base = int_of_float (float_of_int base *. scale) |> max 10 in
  (* Warm-up: fault every page the scalar loops touch so the timed runs
     exercise the steady state (private top-layer pages). *)
  let rspace = fresh_space () and wspace = fresh_space () in
  for i = 0 to 7 do
    Address_space.set_int rspace ~addr:(i * 8) (i * 1000);
    Address_space.set_int wspace ~addr:(i * 8) i
  done;
  bench_read_fast rspace 1000;
  bench_read_bytes rspace 1000;
  bench_write_fast wspace 1000;
  bench_write_bytes wspace 1000;
  let samples =
    [
      measure "read_int/fast" (n 1_000_000) (bench_read_fast rspace);
      measure "read_int/bytes" (n 200_000) (bench_read_bytes rspace);
      measure "write_int/fast" (n 1_000_000) (bench_write_fast wspace);
      measure "write_int/bytes" (n 200_000) (bench_write_bytes wspace);
      (let bench = bench_fork ~mapped:1024 (n 50_000) in
       bench ());
      bench_ipc (n 20_000);
    ]
  in
  let absorb_dirty = [ 1; 16; 256 ] in
  let absorb =
    List.map (fun dirty -> bench_absorb ~mapped:1024 ~dirty (n 200)) absorb_dirty
  in
  { samples; absorb; absorb_dirty; absorb_mapped = 1024 }

(* ------------------------------------------------------------------ *)

let sample_json b s =
  Printf.bprintf b
    "    {\"name\": %S, \"ops\": %d, \"minor_words_per_op\": %.4f, \
     \"ops_per_sec\": %.0f}"
    s.name s.ops s.minor_words_per_op s.ops_per_sec

let to_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"schema\": \"altbench-mem/1\",\n";
  Printf.bprintf b "  \"page_size\": %d,\n" page_size;
  Buffer.add_string b "  \"samples\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      sample_json b s)
    r.samples;
  Buffer.add_string b "\n  ],\n";
  Printf.bprintf b "  \"absorb_mapped\": %d,\n" r.absorb_mapped;
  Buffer.add_string b "  \"absorb_scaling\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      sample_json b s)
    r.absorb;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

let find r name = List.find (fun s -> s.name = name) (r.samples @ r.absorb)

(* Validation: the properties below are all allocation counts, which are
   deterministic, so they hold on any machine regardless of load. *)
let validate r =
  let errors = ref [] in
  let check cond msg = if not cond then errors := msg :: !errors in
  let words name = (find r name).minor_words_per_op in
  (* The int scalar fast paths must be allocation-free in steady state
     (the int64/float forms box their result by nature and are exempt). *)
  check
    (words "read_int/fast" < 0.01)
    (Printf.sprintf "read_int/fast allocates %.4f minor words/op (want 0)"
       (words "read_int/fast"));
  check
    (words "write_int/fast" < 0.01)
    (Printf.sprintf "write_int/fast allocates %.4f minor words/op (want 0)"
       (words "write_int/fast"));
  (* The byte-range path (what the old accessors did) must cost at least
     5x more, which documents the optimisation's headline reduction. *)
  check
    (words "read_int/bytes" >= 5.0 *. Float.max 1.0 (words "read_int/fast"))
    "read_int/bytes vs fast: reduction below 5x";
  check
    (words "write_int/bytes" >= 5.0 *. Float.max 1.0 (words "write_int/fast"))
    "write_int/bytes vs fast: reduction below 5x";
  (* Fork of a 1024-page map must not allocate anywhere near 1024 words:
     it is O(1), a few small tables. *)
  check
    (words "fork_release/1024_mapped" < 512.)
    (Printf.sprintf "fork allocates %.0f words/op for 1024 mapped pages"
       (words "fork_release/1024_mapped"));
  (* Absorb allocation must scale with the dirty count, not the mapped
     count: 256 dirty pages cost at least 16x what 1 dirty page costs,
     and 1 dirty page of 1024 mapped costs less than ~8 page copies. *)
  let a1 = words "fork_dirty_absorb/1_of_1024" in
  let a256 = words "fork_dirty_absorb/256_of_1024" in
  check (a256 >= 16. *. a1) "absorb: 256-dirty cost not >= 16x 1-dirty cost";
  check
    (a1 < 8. *. float_of_int (page_size / 8))
    (Printf.sprintf "absorb of 1 dirty page allocates %.0f words (O(mapped)?)" a1);
  (* The ring-buffer mailboxes put a hard ceiling on the messaging hot
     path: a send+receive pair may allocate at most the irreducible
     message-and-payload record cost (the pre-ring engine paid 150+
     words per pair on this benchmark). *)
  check
    (words "ipc/send_receive" < 20.)
    (Printf.sprintf
       "ipc/send_receive allocates %.2f minor words/op (ceiling 20: \
        ring-buffer mailbox regression)"
       (words "ipc/send_receive"));
  match !errors with [] -> Ok () | es -> Error (List.rev es)
