(** Microbenchmarks for the memory-hierarchy fast paths.

    Measures minor-heap words per operation (deterministic) and operations
    per second (indicative) for scalar page access, fork, absorb, and IPC,
    comparing the in-place fast paths against the byte-range paths the old
    accessors reduced to. Backs [altbench mem] and the [@perf-smoke]
    alias. *)

type sample = {
  name : string;
  ops : int;
  minor_words_per_op : float;
  ops_per_sec : float;
}

type report = {
  samples : sample list;
  absorb : sample list;
  absorb_dirty : int list;
  absorb_mapped : int;
}

val run : ?scale:float -> unit -> report
(** Run every benchmark. [scale] multiplies the iteration counts (use a
    small value for smoke tests). *)

val to_json : report -> string
(** Render as the [altbench-mem/1] JSON schema (the format committed as
    [BENCH_mem.json]). *)

val validate : report -> (unit, string list) result
(** Check the allocation contracts: zero minor words per scalar int
    read/write, a >= 5x reduction against the byte-range path, O(1) fork
    allocation, and absorb allocation scaling with the dirty count rather
    than the mapped count. All checks are allocation counts, so they are
    machine-independent. *)
