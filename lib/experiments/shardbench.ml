type cell = {
  sb_shards : int;
  sb_procs : int;
  sb_cross : float;
}

type sample = {
  s_cell : cell;
  s_digest : int64;
  s_events : int;
  s_barriers : int;
  s_cross_msgs : int;
  s_wall_s : float;
}

type report = {
  r_seed : int;
  r_rounds : int;
  r_sites : int;
  r_cores : int;
  r_samples : sample list;
  r_identical : bool;
  r_pool_jobs : int;
  r_pool_speedup : float;
}

let default_shards = [ 1; 2; 4 ]
let default_procs = [ 8; 24 ]
let default_cross = [ 0.0; 0.25; 0.75 ]
let sites = 4

(* SplitMix64 finalizer, used as the digest combiner. *)
let mix64 h k =
  let open Int64 in
  let x = add (logxor h (mul k 0x9E3779B97F4A7C15L)) 0x632BE59BD9B4E019L in
  let x = mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL in
  logxor x (shift_right_logical x 31)

(* One execution of the workload: [procs] oblivious workers spread
   round-robin over [sites] sites, each sending [rounds] messages to
   seeded partners — cross-site with probability [cross] — draining its
   own mailbox between rounds and after the last send. Every delivery is
   folded into the worker's digest word together with its receipt time,
   so a reordered, dropped or duplicated delivery under any shard count
   changes the digest. Returns (digest, events, barriers, cross_msgs). *)
let run_once ~seed ~rounds (c : cell) =
  let eng =
    Engine.create ~model:Cost_model.att_3b2 ~seed ~trace:false
      ~shards:c.sb_shards ()
  in
  let pids = Array.of_list (Engine.fresh_pids eng c.sb_procs) in
  let digests = Array.make c.sb_procs 0L in
  let peers_of i ~cross =
    let want j =
      j <> i && (if cross then j mod sites <> i mod sites
                 else j mod sites = i mod sites)
    in
    let same = List.filter want (List.init c.sb_procs (fun j -> j)) in
    if same <> [] then same
    else List.filter (fun j -> j <> i) (List.init c.sb_procs (fun j -> j))
  in
  let worker i ctx =
    let rng = Rng.create ~seed:((seed * 9176) + i) in
    let acc = ref 0L in
    let note (m : Message.t) =
      acc := mix64 !acc (Int64.of_int (Pid.to_int m.Message.sender));
      acc := mix64 !acc (Int64.of_int (Payload.get_int m.Message.payload));
      acc := mix64 !acc (Int64.bits_of_float (Engine.now_v ctx))
    in
    let drain_pending () =
      let rec go () =
        match Engine.receive_timeout ctx ~tag:"sb" ~timeout:0. () with
        | Some m -> note m; go ()
        | None -> ()
      in
      go ()
    in
    for round = 1 to rounds do
      let cross = Rng.bernoulli rng ~p:c.sb_cross in
      let peers = peers_of i ~cross in
      let peer = List.nth peers (Rng.int rng (List.length peers)) in
      Engine.send ctx ~tag:"sb" pids.(peer)
        (Payload.int ((i * 1_000_003) + round));
      drain_pending ();
      Engine.delay ctx 0.0005
    done;
    (* Quiesce: keep draining until half a virtual second passes with
       nothing arriving (virtual-time timeouts, so fully deterministic). *)
    let rec final () =
      match Engine.receive_timeout ctx ~tag:"sb" ~timeout:0.5 () with
      | Some m -> note m; final ()
      | None -> ()
    in
    final ();
    digests.(i) <- !acc
  in
  for i = 0 to c.sb_procs - 1 do
    ignore
      (Engine.spawn eng ~pid:pids.(i) ~cloneable:false ~oblivious:true
         ~name:(Printf.sprintf "w%d" i)
         ~site:(Printf.sprintf "s%d" (i mod sites))
         (worker i))
  done;
  Engine.run eng;
  let digest =
    let d =
      Array.fold_left (fun h w -> mix64 h w) (Int64.of_int seed) digests
    in
    mix64 d (Int64.of_int (Engine.stats_events_processed eng))
  in
  ( digest,
    Engine.stats_events_processed eng,
    Engine.stats_barriers eng,
    Engine.stats_cross_shard_msgs eng )

let cells ~shard_counts ~proc_counts ~cross_ratios =
  List.concat_map
    (fun procs ->
      List.concat_map
        (fun cross ->
          List.map
            (fun shards ->
              { sb_shards = shards; sb_procs = procs; sb_cross = cross })
            shard_counts)
        cross_ratios)
    proc_counts

let median a =
  let a = Array.copy a in
  Array.sort compare a;
  a.(Array.length a / 2)

let run ?(seed = 42) ?(rounds = 40) ?(shard_counts = default_shards)
    ?(proc_counts = default_procs) ?(cross_ratios = default_cross)
    ?(reps = 3) () =
  let cs = cells ~shard_counts ~proc_counts ~cross_ratios in
  let sample c =
    let digest = ref 0L and events = ref 0 in
    let barriers = ref 0 and cross_msgs = ref 0 in
    let walls =
      Array.init (max 1 reps) (fun _ ->
          let t0 = Unix.gettimeofday () in
          let d, e, b, x = run_once ~seed ~rounds c in
          let w = Unix.gettimeofday () -. t0 in
          digest := d;
          events := e;
          barriers := b;
          cross_msgs := x;
          w)
    in
    {
      s_cell = c;
      s_digest = !digest;
      s_events = !events;
      s_barriers = !barriers;
      s_cross_msgs = !cross_msgs;
      s_wall_s = median walls;
    }
  in
  let samples = List.map sample cs in
  (* The sweep-level speedup: the same independent cells dispatched once
     per domain count through the pool paths the harnesses use. *)
  let carr = Array.of_list cs in
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    ignore
      (Parallel.map_indexed_shared ~jobs
         (fun i -> run_once ~seed ~rounds carr.(i))
         (Array.length carr));
    Unix.gettimeofday () -. t0
  in
  let pool_jobs = max 1 (Parallel.default_jobs ()) in
  let seq_wall = timed 1 in
  let pool_wall = if pool_jobs = 1 then seq_wall else timed pool_jobs in
  let identical =
    List.for_all
      (fun procs ->
        List.for_all
          (fun cross ->
            let ds =
              List.filter_map
                (fun s ->
                  if s.s_cell.sb_procs = procs && s.s_cell.sb_cross = cross
                  then Some s.s_digest
                  else None)
                samples
            in
            match ds with [] -> true | d :: rest -> List.for_all (( = ) d) rest)
          cross_ratios)
      proc_counts
  in
  {
    r_seed = seed;
    r_rounds = rounds;
    r_sites = sites;
    r_cores = Parallel.default_jobs ();
    r_samples = samples;
    r_identical = identical;
    r_pool_jobs = pool_jobs;
    r_pool_speedup = (if pool_wall > 0. then seq_wall /. pool_wall else 1.);
  }

let validate r =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if not r.r_identical then
    err "digests diverge across shard counts (byte-identity broken)";
  let groups =
    List.sort_uniq compare
      (List.map (fun s -> (s.s_cell.sb_procs, s.s_cell.sb_cross)) r.r_samples)
  in
  List.iter
    (fun (procs, cross) ->
      let here =
        List.filter
          (fun s -> s.s_cell.sb_procs = procs && s.s_cell.sb_cross = cross)
          r.r_samples
      in
      let events = List.map (fun s -> s.s_events) here in
      (match events with
      | e :: rest when not (List.for_all (( = ) e) rest) ->
        err "procs=%d cross=%.2f: event counts differ across shard counts"
          procs cross
      | _ -> ());
      List.iter
        (fun s ->
          if s.s_cell.sb_shards = 1 && s.s_barriers <> 0 then
            err "procs=%d cross=%.2f shards=1: %d barriers (want 0)" procs
              cross s.s_barriers;
          if s.s_cell.sb_shards = 1 && s.s_cross_msgs <> 0 then
            err "procs=%d cross=%.2f shards=1: %d cross-shard msgs (want 0)"
              procs cross s.s_cross_msgs;
          if
            s.s_cell.sb_shards > 1 && cross > 0. && procs > sites
            && s.s_cross_msgs = 0
          then
            err
              "procs=%d cross=%.2f shards=%d: no cross-shard messages staged"
              procs cross s.s_cell.sb_shards)
        here)
    groups;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let to_json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  %S: %S,\n" "benchmark" "alt-shard");
  Buffer.add_string b (Printf.sprintf "  %S: %S,\n" "schema" "altbench-shard/1");
  Buffer.add_string b (Printf.sprintf "  %S: %d,\n" "seed" r.r_seed);
  Buffer.add_string b (Printf.sprintf "  %S: %d,\n" "rounds" r.r_rounds);
  Buffer.add_string b (Printf.sprintf "  %S: %d,\n" "sites" r.r_sites);
  Buffer.add_string b (Printf.sprintf "  %S: %d,\n" "cores" r.r_cores);
  Buffer.add_string b (Printf.sprintf "  %S: %b,\n" "identical" r.r_identical);
  Buffer.add_string b (Printf.sprintf "  %S: %d,\n" "pool_jobs" r.r_pool_jobs);
  Buffer.add_string b
    (Printf.sprintf "  %S: %.3f,\n" "pool_speedup" r.r_pool_speedup);
  Buffer.add_string b "  \"samples\": [\n";
  let n = List.length r.r_samples in
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {%S: %d, %S: %d, %S: %.2f, %S: %S, %S: %d, %S: %d, %S: %d, \
            %S: %.6f}%s\n"
           "shards" s.s_cell.sb_shards "procs" s.s_cell.sb_procs "cross"
           s.s_cell.sb_cross "digest"
           (Printf.sprintf "%016Lx" s.s_digest)
           "events" s.s_events "barriers" s.s_barriers "cross_shard_msgs"
           s.s_cross_msgs "wall_s" s.s_wall_s
           (if i = n - 1 then "" else ",")))
    r.r_samples;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
