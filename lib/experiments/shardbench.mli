(** The sharding crossover benchmark: when does splitting one engine's
    event loop across shards pay for its barriers?

    Ravi's "cost of concurrency" question, asked of the sharded
    scheduler: a seeded messaging workload (workers spread over a fixed
    site topology, a tunable fraction of sends crossing sites) runs at
    several shard counts, cross-shard ratios and process counts. Every
    cell reports its digest (which the determinism contract requires to
    be byte-identical across shard counts), the engine's event and
    barrier counters, and wall time; the report also times the whole cell
    matrix through the persistent {!Parallel.shared} pool against one
    domain, which is where the genuine multicore speedup lives (cells
    are independent engines; inside one engine the canonical event order
    is sequential by contract). Backs [altbench shard] and the
    [@shard-smoke] alias. *)

(** One point of the sweep. *)
type cell = {
  sb_shards : int;
  sb_procs : int;
  sb_cross : float;  (** Fraction of sends aimed at another site. *)
}

(** One measured cell. *)
type sample = {
  s_cell : cell;
  s_digest : int64;
      (** Folded over every delivered message (sender, payload, receipt
          time) and the engine's event count — the byte-identity
          witness. *)
  s_events : int;  (** {!Engine.stats_events_processed}. *)
  s_barriers : int;  (** {!Engine.stats_barriers} (0 when [sb_shards = 1]). *)
  s_cross_msgs : int;  (** {!Engine.stats_cross_shard_msgs}. *)
  s_wall_s : float;  (** Median wall seconds over the repetitions. *)
}

type report = {
  r_seed : int;
  r_rounds : int;  (** Sends per worker. *)
  r_sites : int;  (** Fixed site topology size. *)
  r_cores : int;
  r_samples : sample list;  (** In cell order. *)
  r_identical : bool;
      (** Every (procs, cross) group produced one digest across all its
          shard counts. *)
  r_pool_jobs : int;
  r_pool_speedup : float;
      (** Sequential wall time over shared-pool wall time for the whole
          cell matrix (independent engines — the sweep-level speedup).
          Wall-clock: report, don't gate (the CLI warns below 2 cores). *)
}

val default_shards : int list
val default_procs : int list
val default_cross : float list

val run :
  ?seed:int ->
  ?rounds:int ->
  ?shard_counts:int list ->
  ?proc_counts:int list ->
  ?cross_ratios:float list ->
  ?reps:int ->
  unit ->
  report
(** Run the sweep. [rounds] (default 40) scales virtual work per cell;
    [reps] (default 3) wall-time repetitions per cell, median kept.
    Deterministic in [seed] except the wall-clock fields. *)

val validate : report -> (unit, string list) result
(** The deterministic contracts: byte-identical digests across shard
    counts within every (procs, cross) group; zero barriers and zero
    cross-shard messages on every 1-shard cell; cross-shard messages
    actually staged (> 0) whenever [sb_shards > 1] and [sb_cross > 0];
    event counts equal across shard counts. Wall-clock numbers are
    deliberately not checked here. *)

val to_json : report -> string
(** Render as the [altbench-shard/1] JSON schema (the format committed
    as [BENCH_shard.json]). *)
