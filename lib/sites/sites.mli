(** Simulated failure domains: sites, site crashes, and network partitions.

    The paper justifies the majority-consensus latch (section 3.2.1) by the
    observation that a single synchronisation point "would be a single point
    of failure" across {e nodes} — this module gives the simulator the node
    concept that argument needs. A topology is a fixed set of named sites;
    every process created after {!create} is placed on exactly one site (an
    explicit [?site] on {!Engine.spawn} wins, otherwise a child runs where
    its parent runs, and parentless processes are spread round-robin).
    World-split clones always live — and die — with their original.

    Faults are site-granular and delivery-timed:
    - {!crash} kills every resident of a site and silently loses all
      in-flight traffic to or from it, forever;
    - {!partition} cuts the links between two site groups (messages
      crossing the cut are dropped) until a matching {!heal}.

    Every fault is traced ({!Trace.Site_crashed}, [Partitioned], [Healed])
    and every message it loses is traced as {!Trace.Injected} with kind
    ["site-drop"] or ["partition-drop"], so the analysis layer can tell a
    site-faulted execution from a clean one. All decisions are deterministic
    functions of the installation order and the engine's own scheduling, so
    identical seeds replay identical fault histories. *)

type t

val create : Engine.t -> names:string list -> t
(** Install a topology on the engine: claims {!Engine.set_site_hook} and
    {!Engine.set_delivery_fault}. Raises [Invalid_argument] on an empty or
    duplicated name list. One topology per engine; installing a second one
    silently replaces the first's hooks (use {!detach} to make that
    explicit). *)

val names : t -> string list
(** Site names, in declaration order. *)

val site_of : t -> Pid.t -> string option
(** Where the pid was placed ([None] only for processes spawned before the
    topology was installed). Works after the process exits. *)

val members : t -> string -> Pid.t list
(** Every process ever placed on the site (live or dead), sorted by pid.
    Raises [Invalid_argument] on an unknown site. *)

val is_crashed : t -> string -> bool

val alive_sites : t -> string list
(** Sites not crashed yet, in declaration order. *)

val crashed_sites : t -> string list

val crash : t -> string -> unit
(** Fail the site permanently: traces {!Trace.Site_crashed}, kills every
    resident (in pid order; each live casualty is first traced as
    [Injected {kind="site-kill"}]), and from now on loses every message
    whose sender or destination lives there. Idempotent. Raises
    [Invalid_argument] on an unknown site. *)

val partition : t -> left:string list -> right:string list -> unit
(** Cut every link between a site in [left] and a site in [right]; traces
    {!Trace.Partitioned}. Cuts accumulate (overlapping partitions are
    fine); intra-group traffic is unaffected. Raises [Invalid_argument] if
    either group is empty, mentions an unknown site, or the groups
    intersect. *)

val heal : t -> left:string list -> right:string list -> unit
(** Remove the cuts between [left] and [right] (whether or not each pair
    was cut); traces {!Trace.Healed}. Same argument validation as
    {!partition}. *)

val partitioned : t -> string -> string -> bool
(** Whether the link between the two sites is currently cut. *)

val detach : t -> unit
(** Uninstall this topology's hooks from the engine. Placement labels
    already assigned survive (they live in the process table); no further
    placement or filtering happens. *)
