type t = {
  engine : Engine.t;
  names : string array;
  members : (string, Pid.t list ref) Hashtbl.t;  (* per-site, newest first *)
  crashed : (string, unit) Hashtbl.t;
  mutable cuts : (string * string) list;  (* blocked unordered pairs *)
  mutable rr : int;  (* round-robin cursor for default placement *)
}

let tr t e = Trace.record (Engine.trace t.engine) ~time:(Engine.now t.engine) e

let names t = Array.to_list t.names

let known t site = Array.exists (String.equal site) t.names

let check_known t ~fn site =
  if not (known t site) then
    invalid_arg (Printf.sprintf "Sites.%s: unknown site %S" fn site)

let record_member t site pid =
  match Hashtbl.find_opt t.members site with
  | Some l -> l := pid :: !l
  | None -> Hashtbl.replace t.members site (ref [ pid ])

(* Placement: an explicit request wins; otherwise a process runs where its
   parent runs (a spawn is a local operation); parentless processes are
   spread round-robin. The cursor advances only on round-robin picks, and
   spawn order is deterministic, so placement is too. *)
let place t ~pid ~parent ~name:_ ~explicit =
  let site =
    match explicit with
    | Some s ->
      check_known t ~fn:"place" s;
      s
    | None -> (
      match Option.bind parent (Engine.site_of t.engine) with
      | Some s -> s
      | None ->
        let s = t.names.(t.rr mod Array.length t.names) in
        t.rr <- t.rr + 1;
        s)
  in
  record_member t site pid;
  Some site

let norm_pair a b = if String.compare a b <= 0 then (a, b) else (b, a)

let cut t a b =
  let p = norm_pair a b in
  List.exists (fun q -> q = p) t.cuts

let is_crashed t site = Hashtbl.mem t.crashed site

(* Delivery-time filter: a message is lost if either endpoint's site has
   crashed (in-flight traffic to or from a dead site never arrives) or if
   the link between the two sites is currently cut. Site-less processes
   (spawned before [create], if any) are unaffected. *)
let deliverable t msg ~dest =
  let eng = t.engine in
  let ssite = Engine.site_of eng msg.Message.sender in
  let dsite = Engine.site_of eng dest in
  let drop kind =
    tr t (Trace.Injected { kind; pid = Some dest; msg = Some msg });
    false
  in
  let crashed_end site =
    match site with Some s -> is_crashed t s | None -> false
  in
  if crashed_end ssite || crashed_end dsite then drop "site-drop"
  else
    match (ssite, dsite) with
    | Some a, Some b when (not (String.equal a b)) && cut t a b ->
      drop "partition-drop"
    | _ -> true

let create engine ~names =
  if names = [] then invalid_arg "Sites.create: no sites";
  let arr = Array.of_list names in
  Array.iteri
    (fun i s ->
      for j = i + 1 to Array.length arr - 1 do
        if String.equal s arr.(j) then
          invalid_arg (Printf.sprintf "Sites.create: duplicate site %S" s)
      done)
    arr;
  let t =
    {
      engine;
      names = arr;
      members = Hashtbl.create 8;
      crashed = Hashtbl.create 4;
      cuts = [];
      rr = 0;
    }
  in
  Engine.set_site_hook engine
    (Some (fun ~pid ~parent ~name ~explicit -> place t ~pid ~parent ~name ~explicit));
  Engine.set_delivery_fault engine (Some (fun msg ~dest -> deliverable t msg ~dest));
  t

let members t site =
  check_known t ~fn:"members" site;
  match Hashtbl.find_opt t.members site with
  | None -> []
  | Some l -> List.sort_uniq Pid.compare !l

let site_of t pid = Engine.site_of t.engine pid

let alive_sites t =
  Array.to_list t.names |> List.filter (fun s -> not (is_crashed t s))

let crashed_sites t =
  Array.to_list t.names |> List.filter (fun s -> is_crashed t s)

let crash t site =
  check_known t ~fn:"crash" site;
  if not (is_crashed t site) then begin
    Hashtbl.replace t.crashed site ();
    tr t (Trace.Site_crashed { site });
    (* Kill residents in pid order: iteration order must not depend on
       hash-table internals for the execution to replay byte-identically. *)
    List.iter
      (fun pid ->
        if Engine.alive t.engine pid then begin
          tr t (Trace.Injected { kind = "site-kill"; pid = Some pid; msg = None });
          Engine.kill t.engine pid ~reason:(Printf.sprintf "site %s crashed" site)
        end)
      (members t site)
  end

let check_groups t ~fn left right =
  if left = [] || right = [] then
    invalid_arg (Printf.sprintf "Sites.%s: empty site group" fn);
  List.iter (check_known t ~fn) left;
  List.iter (check_known t ~fn) right;
  List.iter
    (fun l ->
      if List.exists (String.equal l) right then
        invalid_arg
          (Printf.sprintf "Sites.%s: site %S on both sides of the cut" fn l))
    left

let cross_pairs left right =
  List.concat_map (fun l -> List.map (fun r -> norm_pair l r) right) left

let partition t ~left ~right =
  check_groups t ~fn:"partition" left right;
  let fresh =
    List.filter (fun p -> not (List.mem p t.cuts)) (cross_pairs left right)
  in
  t.cuts <- t.cuts @ fresh;
  tr t (Trace.Partitioned { left; right })

let heal t ~left ~right =
  check_groups t ~fn:"heal" left right;
  let gone = cross_pairs left right in
  t.cuts <- List.filter (fun p -> not (List.mem p gone)) t.cuts;
  tr t (Trace.Healed { left; right })

let partitioned t a b =
  check_known t ~fn:"partitioned" a;
  check_known t ~fn:"partitioned" b;
  cut t a b

let detach t =
  Engine.set_site_hook t.engine None;
  Engine.set_delivery_fault t.engine None
