(** Deterministic fault injection for recovery-block experiments.

    Recovery blocks exist to tolerate "mistakes in [the software's] own
    logic"; to evaluate them we need versions that fail on demand. A
    {!t} draws from a seeded stream, so every experiment is reproducible. *)

type t

val create : seed:int -> t

type mode =
  | Crash  (** The version raises instead of returning. *)
  | Wrong  (** The version returns a corrupted value (the acceptance test is
               expected to reject it). *)
  | Slow of float  (** The version takes this many extra seconds. *)

val wrap :
  t ->
  p:float ->
  mode:mode ->
  ?corrupt:('a -> 'a) ->
  'a Recovery_block.alternate ->
  'a Recovery_block.alternate
(** [wrap t ~p ~mode alt] misbehaves with probability [p] on each
    execution. [Wrong] requires [corrupt]: [Invalid_argument] is raised
    {e at wrap time}, so a misconfigured injector cannot masquerade as a
    failing alternative at run time. The draw is made before the version
    runs, so the failure pattern is identical between sequential and
    concurrent executions of the same seed when drawn per-alternate. *)

val always : mode:mode -> ?corrupt:('a -> 'a) ->
  'a Recovery_block.alternate -> 'a Recovery_block.alternate
(** Deterministically faulty version. *)
