type t = { rng : Rng.t }

let create ~seed = { rng = Rng.create ~seed }

type mode = Crash | Wrong | Slow of float

let apply_mode mode corrupt name ctx run =
  match mode with
  | Crash -> raise (Alternative.Failed (name ^ ": injected crash"))
  | Wrong -> (
    match corrupt with
    | Some f -> f (run ctx)
    | None -> invalid_arg "Fault: Wrong mode requires ~corrupt")
  | Slow extra ->
    Engine.delay ctx extra;
    run ctx

(* Eager: a [Wrong] injector without a corruptor is a configuration error,
   and raising it later, inside the child, would surface as "the alternative
   failed" — masking the misconfiguration as fault-tolerance data. *)
let validate mode corrupt =
  match (mode, corrupt) with
  | Wrong, None -> invalid_arg "Fault: Wrong mode requires ~corrupt"
  | (Crash | Wrong | Slow _), _ -> ()

let wrap t ~p ~mode ?corrupt (alt : 'a Recovery_block.alternate) =
  validate mode corrupt;
  {
    Recovery_block.name = alt.Recovery_block.name ^ "?";
    version =
      (fun ctx ->
        if Rng.bernoulli t.rng ~p then
          apply_mode mode corrupt alt.Recovery_block.name ctx
            alt.Recovery_block.version
        else alt.Recovery_block.version ctx);
  }

let always ~mode ?corrupt (alt : 'a Recovery_block.alternate) =
  validate mode corrupt;
  {
    Recovery_block.name = alt.Recovery_block.name ^ "!";
    version =
      (fun ctx ->
        apply_mode mode corrupt alt.Recovery_block.name ctx
          alt.Recovery_block.version);
  }
