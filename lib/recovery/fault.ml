type t = { rng : Rng.t }

let create ~seed = { rng = Rng.create ~seed }

type mode = Crash | Wrong | Slow of float

let apply_mode mode corrupt name ctx run =
  match mode with
  | Crash -> raise (Alternative.Failed (name ^ ": injected crash"))
  | Wrong -> (
    match corrupt with
    | Some f -> f (run ctx)
    | None -> invalid_arg "Fault: Wrong mode requires ~corrupt")
  | Slow extra ->
    Engine.delay ctx extra;
    run ctx

let wrap t ~p ~mode ?corrupt (alt : 'a Recovery_block.alternate) =
  {
    Recovery_block.name = alt.Recovery_block.name ^ "?";
    version =
      (fun ctx ->
        if Rng.bernoulli t.rng ~p then
          apply_mode mode corrupt alt.Recovery_block.name ctx
            alt.Recovery_block.version
        else alt.Recovery_block.version ctx);
  }

let always ~mode ?corrupt (alt : 'a Recovery_block.alternate) =
  {
    Recovery_block.name = alt.Recovery_block.name ^ "!";
    version =
      (fun ctx ->
        apply_mode mode corrupt alt.Recovery_block.name ctx
          alt.Recovery_block.version);
  }
