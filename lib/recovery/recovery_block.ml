type 'a alternate = { name : string; version : Engine.ctx -> 'a }

let alternate ?(name = "alternate") version = { name; version }

type 'a t = {
  alternates : 'a alternate list;
  acceptance : Engine.ctx -> 'a -> bool;
}

let make ~acceptance alternates =
  if alternates = [] then invalid_arg "Recovery_block.make: no alternates";
  { alternates; acceptance }

type 'a result = {
  verdict : [ `Accepted of int * 'a | `Failed ];
  elapsed : float;
  attempts : int;
  rollbacks : int;
  wasted_cpu : float;
}

let to_alternatives rb =
  List.map
    (fun alt ->
      Alternative.make ~name:alt.name (fun ctx ->
          let v = alt.version ctx in
          if rb.acceptance ctx v then v
          else raise (Alternative.Failed (alt.name ^ ": acceptance test failed"))))
    rb.alternates

let run_sequential ctx rb =
  let t0 = Engine.now_v ctx in
  let alts = Array.of_list (to_alternatives rb) in
  let rec go i attempts rollbacks =
    if i >= Array.length alts then
      {
        verdict = `Failed;
        elapsed = Engine.now_v ctx -. t0;
        attempts;
        rollbacks;
        wasted_cpu = 0.;
      }
    else
      match Alt_block.attempt ctx alts.(i) with
      | Ok v ->
        {
          verdict = `Accepted (i, v);
          elapsed = Engine.now_v ctx -. t0;
          attempts = attempts + 1;
          rollbacks;
          wasted_cpu = 0.;
        }
      | Error _ -> go (i + 1) (attempts + 1) (rollbacks + 1)
  in
  go 0 0 0

let run_concurrent ctx ?policy rb =
  let report = Concurrent.run ctx ?policy (to_alternatives rb) in
  let verdict =
    match report.Concurrent.outcome with
    | Alt_block.Selected { index; value } -> `Accepted (index, value)
    | Alt_block.Block_failed _ -> `Failed
  in
  {
    verdict;
    elapsed = report.Concurrent.elapsed;
    (* Alternates that actually ran to a verdict. Eliminated siblings never
       finished their acceptance test, so counting every spawn here (as
       this once did) overstated the block's coverage. *)
    attempts = report.Concurrent.attempted;
    rollbacks = 0;
    wasted_cpu = report.Concurrent.wasted_cpu;
  }

let distributed_policy ?(nodes = 3) ?(crashed = []) ?(vote_delay = 0.)
    ?(reply_timeout = 1.0) ?(timeout = 1e12) () =
  {
    Concurrent.default_policy with
    Concurrent.elimination = Concurrent.Async_elim;
    sync = Concurrent.Consensus { nodes; crashed; vote_delay; reply_timeout };
    timeout;
    guards = Concurrent.Guard_in_child;
    placement = Concurrent.Remote_spawn;
  }
