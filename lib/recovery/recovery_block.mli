(** Recovery blocks (Horning et al. 1974) and their distributed execution
    (paper, section 5.1).

    A recovery block gathers several independently written versions of a
    computation and a boolean {e acceptance test}. Sequentially, the primary
    runs first; if the acceptance test fails, the program state is rolled
    back and the next alternate is tried; if all alternates fail, the block
    fails. The paper's transformation runs the alternates concurrently —
    "fastest-first behaviour in an attempt to find a rapid failure-free
    path through the computation" — with the acceptance test folded into
    the guard (section 5.1.1) and majority-consensus synchronisation so
    that fault tolerance is not undermined by a single synchronisation
    point (section 5.1.2). *)

type 'a alternate = {
  name : string;
  version : Engine.ctx -> 'a;
      (** One software version. May update sink state via {!Mem}; raises or
          calls {!Engine.abort} on internal failure. *)
}

val alternate : ?name:string -> (Engine.ctx -> 'a) -> 'a alternate

type 'a t = {
  alternates : 'a alternate list;
      (** "Typically ordered on the basis of observed or estimated
          characteristics such as reliability and execution speed." *)
  acceptance : Engine.ctx -> 'a -> bool;
      (** The acceptance test, applied to each version's result. *)
}

val make : acceptance:(Engine.ctx -> 'a -> bool) -> 'a alternate list -> 'a t

type 'a result = {
  verdict : [ `Accepted of int * 'a | `Failed ];
      (** The alternate whose result passed the acceptance test, or block
          failure. *)
  elapsed : float;  (** Virtual seconds spent in the block. *)
  attempts : int;
      (** Alternates that ran their version (and acceptance test) to a
          verdict — sequentially: alternates tried, including the accepted
          one; concurrently: {!Concurrent}'s [attempted] count, which
          excludes alternates eliminated before finishing. *)
  rollbacks : int;  (** Sequential state restorations performed. *)
  wasted_cpu : float;  (** Concurrent: CPU burnt by eliminated siblings. *)
}

val run_sequential : Engine.ctx -> 'a t -> 'a result
(** The classical semantics: primary first, rollback and retry on
    acceptance failure. *)

val run_concurrent :
  Engine.ctx -> ?policy:Concurrent.policy -> 'a t -> 'a result
(** The paper's transformation: all alternates race as copy-on-write
    children; an alternate synchronises only if its own acceptance test
    passed, so the winner is the fastest {e accepted} version. *)

val distributed_policy :
  ?nodes:int -> ?crashed:int list -> ?vote_delay:float -> ?reply_timeout:float ->
  ?timeout:float -> unit -> Concurrent.policy
(** A {!Concurrent.policy} using majority-consensus synchronisation
    (default 3 nodes, none crashed), asynchronous elimination — the
    configuration section 5.1.2 prescribes for fault-tolerant distributed
    recovery blocks. *)

val to_alternatives : 'a t -> 'a Alternative.t list
(** The encoding used by {!run_concurrent}: each alternate's body runs the
    version and then its acceptance test, failing the alternative if the
    test rejects. Exposed for tests and custom drivers. *)
