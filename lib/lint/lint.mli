(** altlint: static alternative-independence analysis.

    Two analyses prove, before anything runs, that the members of an
    alternative block are {e mutually exclusive} — at most one of them can
    ever reach its synchronisation point successfully:

    - {!check_goal} examines the OR branches of a Prolog goal (the clauses
      whose heads unify with it, exactly {!Solve.branches}) and attempts a
      syntactic mutual-exclusivity proof: goal-instantiation discrimination
      (at most one clause head unifies), static failure (a top-level body
      conjunct is [fail]/[false], so the branch can never succeed), and
      complementary guard prefixes (one branch tests [X < Y] where another
      tests [Y =< X] on syntactically equal arguments). Two facts that both
      unify with the goal are a definite overlap {e witness}.
    - {!check_footprints} compares the {e declared} effect footprints
      ({!Alternative.footprint}) of a block's alternatives: write ranges,
      source-device use and message endpoints. Alternatives that declare no
      footprint are conservatively treated as conflicting with everything
      ({e unknown} implies {e conflicting}).

    Both analyses are {e sound for exclusivity}: an {!Independent} verdict
    is a proof, never a guess; anything unproven is {!Unknown}. A proven
    verdict licenses the consensus-elision fast path
    ([Concurrent.run ~exclusive:true]): when at most one alternative can
    synchronise, the distributed 0-1 semaphore decides nothing, and a local
    latch yields a byte-identical winner without the vote traffic
    (DESIGN.md section 7). *)

(** The three-valued result of either analysis. *)
type verdict =
  | Independent of { proof : string }
      (** Proven: at most one alternative can succeed (OR-branches), or the
          declared footprints are pairwise disjoint (footprint analysis). *)
  | Conflicting of { witness : string }
      (** Definitely not exclusive, with a concrete witness (two facts both
          unifying with the goal; two footprints naming the same page range,
          source, or endpoint). *)
  | Unknown of { reason : string }
      (** The analysis could not decide. Callers must treat this exactly
          like {!Conflicting} when deciding whether to elide consensus. *)

type finding = {
  target : string;  (** The goal (printed) or the block label. *)
  kind : string;  (** ["or-branches"] or ["footprints"]. *)
  branches : int;  (** Alternatives or unifying clauses examined. *)
  verdict : verdict;
}

val check_goal : Database.t -> Term.t -> finding
(** Analyse the OR branches of [goal] against the database. *)

val proven_exclusive : Database.t -> Term.t -> bool
(** [true] iff {!check_goal} returns {!Independent} — the form consumed by
    {!Or_parallel.solve_sim}'s [?exclusive]. *)

val check_footprints : label:string -> 'a Alternative.t list -> finding
(** Compare the declared footprints of a block's alternatives pairwise.
    Any alternative with no declared footprint makes the verdict
    {!Unknown} (unknown implies conflicting). *)

val verdict_name : verdict -> string
(** ["independent"], ["conflicting"] or ["unknown"]. *)

val verdict_detail : verdict -> string
(** The proof, witness or reason. *)

val finding_to_json : finding -> string
(** One finding as a single-line JSON object
    [{"target":...,"kind":...,"branches":N,"verdict":...,"detail":...}]. *)

val pp_finding : Format.formatter -> finding -> unit

val exit_code : finding list -> int
(** [0] when every finding is {!Independent};
    {!Report.code_lint_conflict} (21) when any is {!Conflicting};
    otherwise {!Report.code_lint_unknown} (22). *)
