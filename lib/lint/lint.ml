type verdict =
  | Independent of { proof : string }
  | Conflicting of { witness : string }
  | Unknown of { reason : string }

type finding = {
  target : string;
  kind : string;
  branches : int;
  verdict : verdict;
}

(* ------------------------------------------------------------------ *)
(* OR-branch mutual exclusivity.

   A branch is one clause whose (renamed-apart) head unifies with the
   goal — the same decomposition Solve.branches performs. The proof
   obligations are purely syntactic and err on the side of Unknown:

   - E1 goal discrimination: at most one clause head unifies with the
     goal as instantiated, so there is at most one branch at all.
   - Static failure: a clause whose body has a top-level conjunct [fail]
     or [false] can never succeed, whatever the bindings; if at most one
     branch survives this filter, the block is exclusive.
   - Complementary guard prefixes: each branch's body starts with a
     prefix of non-binding tests (comparisons, [==]/[\==], [\=]). If two
     branches carry complementary tests over syntactically equal,
     goal-derived arguments ([X < Y] against [Y =< X], [A =:= B] against
     [A =\= B], ...), at most one of the two can succeed: on ground
     arguments exactly one test holds, and a non-ground arithmetic
     comparison errors identically in both branches.

   Guard arguments are compared across branches through a {e path
   renaming}: after head unification, every variable reachable from the
   goal is renamed to a canonical index allocated per position in the
   resolved goal (functors along the way included in the position). Two
   branches' variables at the same goal position denote the same
   concrete value on any goal instance both heads unify with, so the
   renamed tests compare meaningfully whichever direction the unifier
   happened to bind (goal var to clause var or vice versa). A test
   mentioning a variable not reachable from the goal is clause-local
   and is conservatively dropped from the prefix.

   Soundness of the guard rule rests on the prefix being binding-free:
   no conjunct before (or among) the tests can rebind a variable the
   tests mention, so both branches evaluate their tests over the same
   goal bindings. *)

type branch = {
  br_index : int;  (* clause position in database order *)
  br_fact : bool;  (* body is None or the atom [true] *)
  br_static_fail : bool;  (* a top-level conjunct is fail/false *)
  br_tests : Term.t list;  (* canonicalised binding-free test prefix *)
}

let rec conjuncts t =
  match t with
  | Term.Compound (",", [| a; b |]) -> conjuncts a @ conjuncts b
  | t -> [ t ]

(* Canonical orientation: [a > b] becomes [b < a], [a >= b] becomes
   [b =< a], so complement detection only has to know [<] and [=<]. *)
let canonical t =
  match t with
  | Term.Compound (">", [| a; b |]) -> Term.Compound ("<", [| b; a |])
  | Term.Compound (">=", [| a; b |]) -> Term.Compound ("=<", [| b; a |])
  | t -> t

let is_test t =
  match t with
  | Term.Compound
      ( ("<" | "=<" | ">" | ">=" | "=:=" | "=\\=" | "==" | "\\==" | "\\="),
        [| _; _ |] ) ->
    true
  | _ -> false

(* The cross-branch canonical namespace: paths in the resolved goal to
   canonical variable indices. One table is shared by every branch of a
   goal, so equal paths yield equal indices. *)
type path_table = { paths : (string, int) Hashtbl.t; mutable next : int }

let canonical_of_path pt path =
  match Hashtbl.find_opt pt.paths path with
  | Some id -> id
  | None ->
    let id = pt.next in
    pt.next <- id + 1;
    Hashtbl.replace pt.paths path id;
    id

(* Walk the goal as resolved by this branch's head unifier and map each
   variable to the canonical index of its (first) position. *)
let branch_renaming pt resolved_goal =
  let map = Hashtbl.create 8 in
  let rec walk path t =
    match t with
    | Term.Var v ->
      if not (Hashtbl.mem map v) then
        Hashtbl.replace map v (canonical_of_path pt path)
    | Term.Compound (f, args) ->
      Array.iteri
        (fun i a ->
          walk (Printf.sprintf "%s.%s/%d:%d" path f (Array.length args) i) a)
        args
    | _ -> ()
  in
  walk "" resolved_goal;
  map

(* Rewrite a test into the canonical namespace; [None] if it mentions a
   variable the goal cannot reach (clause-local, hence incomparable). *)
let rec rewrite map t =
  match t with
  | Term.Var v ->
    Option.map (fun id -> Term.Var id) (Hashtbl.find_opt map v)
  | Term.Compound (f, args) -> (
    let out = Array.make (Array.length args) t in
    try
      Array.iteri
        (fun i a ->
          match rewrite map a with
          | Some a' -> out.(i) <- a'
          | None -> raise Exit)
        args;
      Some (Term.Compound (f, out))
    with Exit -> None)
  | t -> Some t

(* Complementary pairs over syntactically equal arguments. [<]/[=<] are
   mutually complementary only with their arguments swapped (a < b vs
   b =< a); the equality-shaped tests are symmetric in their arguments. *)
let complementary g1 g2 =
  let eq = Term.equal in
  match (g1, g2) with
  | Term.Compound ("<", [| a; b |]), Term.Compound ("=<", [| c; d |])
  | Term.Compound ("=<", [| c; d |]), Term.Compound ("<", [| a; b |]) ->
    eq a d && eq b c
  | Term.Compound ("=:=", [| a; b |]), Term.Compound ("=\\=", [| c; d |])
  | Term.Compound ("=\\=", [| c; d |]), Term.Compound ("=:=", [| a; b |])
  | Term.Compound ("==", [| a; b |]), Term.Compound ("\\==", [| c; d |])
  | Term.Compound ("\\==", [| c; d |]), Term.Compound ("==", [| a; b |]) ->
    (eq a c && eq b d) || (eq a d && eq b c)
  | _ -> false

let analyse_branch ~pt ~goal ~index (c : Parser.clause) s =
  let body_conjuncts =
    match c.Parser.body with
    | None -> []
    | Some b -> List.map (Subst.resolve s) (conjuncts b)
  in
  let is_fact =
    match body_conjuncts with [] | [ Term.Atom "true" ] -> true | _ -> false
  in
  let static_fail =
    List.exists
      (function Term.Atom ("fail" | "false") -> true | _ -> false)
      body_conjuncts
  in
  let map = branch_renaming pt (Subst.resolve s goal) in
  let rec test_prefix = function
    | g :: rest when is_test g -> (
      match rewrite map (canonical g) with
      | Some g -> g :: test_prefix rest
      | None -> test_prefix rest)
    | _ -> []
  in
  {
    br_index = index;
    br_fact = is_fact;
    br_static_fail = static_fail;
    br_tests = test_prefix body_conjuncts;
  }

let pair_exclusive b1 b2 =
  List.exists
    (fun g1 -> List.exists (fun g2 -> complementary g1 g2) b2.br_tests)
    b1.br_tests

let indices bs = String.concat "," (List.map (fun b -> string_of_int b.br_index) bs)

let check_goal db goal =
  let target = Term.to_string goal in
  let mk branches verdict = { target; kind = "or-branches"; branches; verdict } in
  match Term.functor_of goal with
  | None -> mk 0 (Unknown { reason = "goal is not callable" })
  | Some (name, arity) ->
    let clauses = Database.clauses db ~name ~arity in
    if clauses = [] then
      mk 0
        (Unknown
           { reason = Printf.sprintf "no clauses for %s/%d (builtin or undefined)" name arity })
    else begin
      (* Clauses are stored with variables numbered densely from 0
         (Database.normalise), so one offset renames every clause apart
         from the goal. *)
      let base = Term.max_var goal + 1 in
      let pt = { paths = Hashtbl.create 8; next = 0 } in
      let branches =
        clauses
        |> List.mapi (fun i c ->
               let head = Term.rename ~offset:base c.Parser.head in
               let body = Option.map (Term.rename ~offset:base) c.Parser.body in
               match Unify.unify Subst.empty goal head with
               | Some s ->
                 Some (analyse_branch ~pt ~goal ~index:i { Parser.head; body } s)
               | None -> None)
        |> List.filter_map Fun.id
      in
      let n = List.length branches in
      match branches with
      | [] ->
        mk 0
          (Independent
             { proof = "no clause head unifies with the goal (vacuously exclusive)" })
      | [ b ] ->
        mk 1
          (Independent
             {
               proof =
                 Printf.sprintf
                   "goal instantiation selects clause %d alone (head indexing)"
                   b.br_index;
             })
      | _ -> (
        let live, dead = List.partition (fun b -> not b.br_static_fail) branches in
        match live with
        | [] ->
          mk n
            (Independent
               {
                 proof =
                   Printf.sprintf
                     "every unifying clause (%s) has a top-level fail conjunct"
                     (indices dead);
               })
        | [ b ] ->
          mk n
            (Independent
               {
                 proof =
                   Printf.sprintf
                     "clauses %s can never succeed (top-level fail); only clause \
                      %d can win"
                     (indices dead) b.br_index;
               })
        | _ -> (
          (* Every pair of possibly-succeeding branches must be separated
             by complementary guards. *)
          let rec pairs = function
            | [] -> []
            | b :: rest -> List.map (fun b' -> (b, b')) rest @ pairs rest
          in
          let undecided =
            List.filter (fun (a, b) -> not (pair_exclusive a b)) (pairs live)
          in
          match undecided with
          | [] ->
            mk n
              (Independent
                 {
                   proof =
                     Printf.sprintf
                       "clauses %s carry pairwise complementary guard prefixes%s"
                       (indices live)
                       (if dead = [] then ""
                        else
                          Printf.sprintf " (clauses %s statically fail)"
                            (indices dead));
                 })
          | (a, b) :: _ ->
            if a.br_fact && b.br_fact then
              mk n
                (Conflicting
                   {
                     witness =
                       Printf.sprintf
                         "clauses %d and %d are both facts unifying with the \
                          goal: two branches succeed"
                         a.br_index b.br_index;
                   })
            else
              mk n
                (Unknown
                   {
                     reason =
                       Printf.sprintf
                         "clauses %d and %d are not proven disjoint (no \
                          complementary guards found)"
                         a.br_index b.br_index;
                   })))
    end

let proven_exclusive db goal =
  match (check_goal db goal).verdict with
  | Independent _ -> true
  | Conflicting _ | Unknown _ -> false

(* ------------------------------------------------------------------ *)
(* Declared effect footprints. *)

let ranges_overlap (a0, al) (b0, bl) = a0 < b0 + bl && b0 < a0 + al

let footprints_conflict (a : Alternative.footprint) (b : Alternative.footprint) =
  let pages =
    List.exists
      (fun ra -> List.exists (fun rb -> ranges_overlap ra rb) b.Alternative.writes)
      a.Alternative.writes
  in
  let touches (f : Alternative.footprint) =
    f.Alternative.reads_source || f.Alternative.writes_source
  in
  (* The source device is consumed by reads and gated on writes, so any
     two alternatives that both touch it are in conflict. *)
  let source = touches a && touches b in
  let endpoints =
    List.exists (fun e -> List.mem e b.Alternative.endpoints) a.Alternative.endpoints
  in
  if pages then Some "overlapping write ranges"
  else if source then Some "both touch the source device"
  else if endpoints then Some "shared message endpoint"
  else None

let check_footprints ~label alts =
  let n = List.length alts in
  let mk verdict = { target = label; kind = "footprints"; branches = n; verdict } in
  let declared =
    List.mapi (fun i (a : _ Alternative.t) -> (i, a.Alternative.footprint)) alts
  in
  let missing = List.filter_map (fun (i, f) -> if f = None then Some i else None) declared in
  if missing <> [] then
    mk
      (Unknown
         {
           reason =
             Printf.sprintf
               "alternative%s %s declare%s no footprint (unknown implies \
                conflicting)"
               (if List.length missing > 1 then "s" else "")
               (String.concat "," (List.map string_of_int missing))
               (if List.length missing > 1 then "" else "s");
         })
  else begin
    let fps =
      List.filter_map (fun (i, f) -> Option.map (fun f -> (i, f)) f) declared
    in
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    let conflict =
      List.find_map
        (fun ((i, fa), (j, fb)) ->
          Option.map
            (fun why -> Printf.sprintf "alternatives %d and %d: %s" i j why)
            (footprints_conflict fa fb))
        (pairs fps)
    in
    match conflict with
    | Some witness -> mk (Conflicting { witness })
    | None ->
      mk
        (Independent
           {
             proof =
               Printf.sprintf
                 "%d declared footprints are pairwise disjoint (pages, source, \
                  endpoints)"
                 n;
           })
  end

(* ------------------------------------------------------------------ *)
(* Rendering. *)

let verdict_name = function
  | Independent _ -> "independent"
  | Conflicting _ -> "conflicting"
  | Unknown _ -> "unknown"

let verdict_detail = function
  | Independent { proof } -> proof
  | Conflicting { witness } -> witness
  | Unknown { reason } -> reason

let finding_to_json f =
  Printf.sprintf
    "{\"target\":%S,\"kind\":%S,\"branches\":%d,\"verdict\":%S,\"detail\":%S}"
    f.target f.kind f.branches (verdict_name f.verdict)
    (verdict_detail f.verdict)

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s (%d branches) — %s" f.kind f.target
    (verdict_name f.verdict) f.branches (verdict_detail f.verdict)

let exit_code findings =
  if List.exists (fun f -> match f.verdict with Conflicting _ -> true | _ -> false) findings
  then Report.code_lint_conflict
  else if
    List.exists (fun f -> match f.verdict with Unknown _ -> true | _ -> false) findings
  then Report.code_lint_unknown
  else 0
