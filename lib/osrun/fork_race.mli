(** Fastest-first racing of real processes.

    The simulation runtime models the paper's design; this module {e is}
    the design, scaled down to one machine: each alternative runs in a real
    child created with [Unix.fork] (inheriting the parent's address space
    copy-on-write, exactly the mechanism the paper measures), the first
    child to deliver a successful result through its pipe wins, and the
    losing siblings are eliminated with SIGKILL. *)

type 'a outcome =
  | Winner of { index : int; value : 'a; elapsed : float }
      (** Alternative [index] finished first; [elapsed] is wall-clock
          seconds from spawn to selection. *)
  | All_failed of { elapsed : float }
      (** Every child exited without delivering a result. *)
  | Timed_out of { elapsed : float }
      (** The [alt_wait] timeout expired; all children were eliminated. *)

val run : ?timeout:float -> (unit -> 'a) list -> 'a outcome
(** [run alternatives] forks one child per alternative and returns the
    first successful result. A child "succeeds" by returning a value (sent
    to the parent with [Marshal], closure serialisation enabled) and
    "fails" by raising; a raised exception or a crash makes that child a
    non-candidate. Raises [Invalid_argument] on an empty list.

    Mutations a child makes to inherited OCaml state are invisible to the
    parent (separate address spaces — the OS's copy-on-write provides the
    isolation that {!Page_map} provides in simulation). The winner's state
    changes must therefore travel in the returned value; this is the
    "method result" discipline of the paper's message layer. *)

val run_exn : ?timeout:float -> (unit -> 'a) list -> 'a
(** Like {!run} but raises [Failure] unless there is a winner. *)
