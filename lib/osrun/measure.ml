(* Avoid a C stub dependency: 4096 is the page size on every platform we
   run on; allow an override for exotic hosts. *)
let page_size () =
  match Sys.getenv_opt "ALTEXEC_PAGE_SIZE" with
  | Some s -> int_of_string s
  | None -> 4096

let touch_all b =
  let ps = page_size () in
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    Bytes.unsafe_set b !i 'x';
    i := !i + ps
  done

let time_fork_over ~image ~child_work iters =
  if iters <= 0 then invalid_arg "Measure: iters must be positive";
  touch_all image;
  let samples =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        match Unix.fork () with
        | 0 ->
          child_work image;
          Unix._exit 0
        | pid ->
          ignore (Unix.waitpid [] pid);
          Unix.gettimeofday () -. t0)
  in
  Stats.summarize samples

let fork_latency ?(image_bytes = 320 * 1024) ~iters () =
  let image = Bytes.create image_bytes in
  time_fork_over ~image ~child_work:(fun _ -> ()) iters

let cow_touch_time ~pages ~fraction ~iters () =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Measure.cow_touch_time: fraction out of range";
  let ps = page_size () in
  let image = Bytes.create (pages * ps) in
  let to_touch = int_of_float (Float.round (fraction *. float_of_int pages)) in
  let child_work image =
    for p = 0 to to_touch - 1 do
      Bytes.unsafe_set image (p * ps) 'y'
    done
  in
  time_fork_over ~image ~child_work iters

let page_copy_rate ?(pages = 2048) ~iters () =
  let base = (cow_touch_time ~pages ~fraction:0. ~iters ()).Stats.median in
  let full = (cow_touch_time ~pages ~fraction:1. ~iters ()).Stats.median in
  let per_page = Float.max 1e-12 ((full -. base) /. float_of_int pages) in
  1. /. per_page
