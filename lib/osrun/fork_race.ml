type 'a outcome =
  | Winner of { index : int; value : 'a; elapsed : float }
  | All_failed of { elapsed : float }
  | Timed_out of { elapsed : float }

type child = {
  index : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable open_ : bool;
}

let kill_quietly pid =
  try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let reap_quietly pid =
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* The child computes, marshals the result onto its pipe, and exits without
   running the parent's at_exit handlers or flushing its stdio copies. *)
let spawn_child index f =
  let r, w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    Unix.close r;
    let code =
      try
        let v = f () in
        let data = Marshal.to_bytes v [ Marshal.Closures ] in
        let len = Bytes.length data in
        let rec write_all off =
          if off < len then
            let n = Unix.write w data off (len - off) in
            write_all (off + n)
        in
        write_all 0;
        0
      with _ -> 1
    in
    (try Unix.close w with Unix.Unix_error _ -> ());
    Unix._exit code
  | pid ->
    Unix.close w;
    { index; pid; fd = r; buf = Buffer.create 256; open_ = true }

let run ?timeout alternatives =
  if alternatives = [] then invalid_arg "Fork_race.run: empty list";
  let t0 = Unix.gettimeofday () in
  let children = List.mapi spawn_child alternatives in
  let eliminate_all () =
    List.iter
      (fun c ->
        if c.open_ then begin
          c.open_ <- false;
          Unix.close c.fd
        end;
        kill_quietly c.pid;
        reap_quietly c.pid)
      children
  in
  let chunk = Bytes.create 65536 in
  let rec wait () =
    let open_fds =
      List.filter_map (fun c -> if c.open_ then Some c.fd else None) children
    in
    if open_fds = [] then begin
      let elapsed = Unix.gettimeofday () -. t0 in
      List.iter (fun c -> reap_quietly c.pid) children;
      All_failed { elapsed }
    end
    else begin
      let remaining =
        match timeout with
        | None -> -1.
        | Some limit -> limit -. (Unix.gettimeofday () -. t0)
      in
      if timeout <> None && remaining <= 0. then begin
        eliminate_all ();
        Timed_out { elapsed = Unix.gettimeofday () -. t0 }
      end
      else begin
        let readable, _, _ = Unix.select open_fds [] [] remaining in
        if readable = [] then begin
          eliminate_all ();
          Timed_out { elapsed = Unix.gettimeofday () -. t0 }
        end
        else begin
          let won =
            List.find_map
              (fun c ->
                if c.open_ && List.memq c.fd readable then begin
                  let n = Unix.read c.fd chunk 0 (Bytes.length chunk) in
                  if n > 0 then begin
                    Buffer.add_subbytes c.buf chunk 0 n;
                    None
                  end
                  else begin
                    (* EOF: the child has finished (or crashed). *)
                    c.open_ <- false;
                    Unix.close c.fd;
                    reap_quietly c.pid;
                    if Buffer.length c.buf > 0 then
                      match Marshal.from_bytes (Buffer.to_bytes c.buf) 0 with
                      | value -> Some (c.index, value)
                      | exception _ -> None (* truncated: child crashed mid-write *)
                    else None
                  end
                end
                else None)
              children
          in
          match won with
          | Some (index, value) ->
            let elapsed = Unix.gettimeofday () -. t0 in
            (* Sibling elimination. *)
            List.iter
              (fun c ->
                if c.open_ then begin
                  c.open_ <- false;
                  Unix.close c.fd;
                  kill_quietly c.pid;
                  reap_quietly c.pid
                end)
              children;
            Winner { index; value; elapsed }
          | None -> wait ()
        end
      end
    end
  in
  wait ()

let run_exn ?timeout alternatives =
  match run ?timeout alternatives with
  | Winner { value; _ } -> value
  | All_failed _ -> failwith "Fork_race: all alternatives failed"
  | Timed_out _ -> failwith "Fork_race: timed out"
