(** Real-machine measurements of the paper's overhead constants.

    Section 4.4 reports fork latency and copy-on-write page-copy service
    rates measured on 1988 workstations. These functions measure the same
    quantities on the host this library runs on (experiment E12), using the
    same methodology: fork a child over an address space of known size, have
    it dirty a chosen fraction of the pages, and time the operation. *)

val page_size : unit -> int
(** The host's page size in bytes (usually 4096). *)

val fork_latency : ?image_bytes:int -> iters:int -> unit -> Stats.summary
(** Wall-clock seconds for [fork] + child [_exit] + [waitpid], with
    [image_bytes] (default 320 KiB, the paper's test size) of touched heap
    resident. [iters] must be positive. *)

val cow_touch_time :
  pages:int -> fraction:float -> iters:int -> unit -> Stats.summary
(** Wall-clock seconds for fork + the child write-touching [fraction] of
    [pages] (one byte per page, forcing one COW fault each) + exit + wait.
    The independent variable of the Smith 1988 response-time study. *)

val page_copy_rate : ?pages:int -> iters:int -> unit -> float
(** Estimated COW page-copy service rate (pages/second), from the slope
    between a 0%-touched and a 100%-touched run: the modern counterpart of
    the paper's "326 2K-pages/second (3B2), 1034 4K-pages/second (HP)". *)
