type clause = { head : Term.t; body : Term.t option }
type item = Clause of clause | Query of Term.t

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* Binary operator table: token -> (precedence, right_associative). In
   standard notation xfx operators have equal-precedence operands forbidden;
   we implement xfx as non-associative via left-climbing, which accepts a
   superset — fine for our purposes. *)
let binop = function
  | ":-" -> Some (1200, false)
  | ";" -> Some (1100, true)
  | "->" -> Some (1050, true)
  | "," -> Some (1000, true)
  | "=" | "\\=" | "is" | "<" | ">" | "=<" | ">=" | "=:=" | "=\\=" | "==" | "\\=="
    -> Some (700, false)
  | "+" | "-" -> Some (500, false)
  | "*" | "/" | "mod" -> Some (400, false)
  | _ -> None

type state = {
  mutable toks : Lexer.token list;
  vars : (string, int) Hashtbl.t;
  mutable next_var : int;
}

let peek st = match st.toks with [] -> Lexer.Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else fail "expected %s, found %a" what Lexer.pp_token (peek st)

let fresh_var st =
  let v = st.next_var in
  st.next_var <- v + 1;
  v

let named_var st name =
  if String.equal name "_" then fresh_var st
  else
    match Hashtbl.find_opt st.vars name with
    | Some v -> v
    | None ->
      let v = fresh_var st in
      Hashtbl.replace st.vars name v;
      v

(* Arguments and list elements live below the precedence of ','. *)
let arg_precedence = 999

let rec parse_expr st max_prec =
  let lhs = parse_primary st in
  climb st lhs max_prec

and climb st lhs max_prec =
  let op =
    (* Operators are symbolic ([Punct]) or alphabetic atoms ([is], [mod]). *)
    match peek st with
    | Lexer.Punct op -> Some op
    | Lexer.Atom op when binop op <> None -> Some op
    | _ -> None
  in
  match op with
  | Some op -> (
    match binop op with
    | Some (prec, right_assoc) when prec <= max_prec ->
      advance st;
      let rhs_max = if right_assoc then prec else prec - 1 in
      let rhs = parse_expr st rhs_max in
      climb st (Term.compound op [ lhs; rhs ]) max_prec
    | _ -> lhs)
  | None -> lhs

and parse_primary st =
  match peek st with
  | Lexer.Integer k ->
    advance st;
    Term.Int k
  | Lexer.Variable name ->
    advance st;
    Term.Var (named_var st name)
  | Lexer.Punct "-" ->
    (* Unary minus: constant-fold integers, else -(X). *)
    advance st;
    (match peek st with
    | Lexer.Integer k ->
      advance st;
      Term.Int (-k)
    | _ -> Term.compound "-" [ parse_expr st 200 ])
  | Lexer.Punct "\\+" ->
    (* Negation as failure, prefix, precedence 900 (fy). *)
    advance st;
    Term.compound "\\+" [ parse_expr st 900 ]
  | Lexer.Punct "(" ->
    advance st;
    let t = parse_expr st 1200 in
    expect st (Lexer.Punct ")") "')'";
    t
  | Lexer.Punct "[" ->
    advance st;
    parse_list st
  | Lexer.Punct "!" ->
    advance st;
    Term.Atom "!"
  | Lexer.Atom name ->
    advance st;
    if peek st = Lexer.Punct "(" then begin
      advance st;
      let args = parse_args st in
      expect st (Lexer.Punct ")") "')'";
      Term.compound name args
    end
    else Term.Atom name
  | tok -> fail "unexpected token %a" Lexer.pp_token tok

and parse_args st =
  let first = parse_expr st arg_precedence in
  if peek st = Lexer.Punct "," then begin
    advance st;
    first :: parse_args st
  end
  else [ first ]

and parse_list st =
  if peek st = Lexer.Punct "]" then begin
    advance st;
    Term.nil
  end
  else begin
    let elems = parse_args st in
    let tail =
      match peek st with
      | Lexer.Punct "|" ->
        advance st;
        let t = parse_expr st arg_precedence in
        t
      | _ -> Term.nil
    in
    expect st (Lexer.Punct "]") "']'";
    List.fold_right Term.cons elems tail
  end

let fresh_state toks = { toks; vars = Hashtbl.create 8; next_var = 0 }

let reset_clause_scope st =
  Hashtbl.reset st.vars;
  st.next_var <- 0

let parse_clause_body st =
  let body = parse_expr st 1200 in
  expect st Lexer.Dot "'.'";
  body

let parse_item st =
  match peek st with
  | Lexer.Punct "?-" ->
    advance st;
    Query (parse_clause_body st)
  | Lexer.Punct ":-" ->
    (* A directive; we treat it as a query as well. *)
    advance st;
    Query (parse_clause_body st)
  | _ -> (
    let head = parse_expr st 1200 in
    match head with
    | Term.Compound (":-", [| h; b |]) ->
      expect st Lexer.Dot "'.'";
      Clause { head = h; body = Some b }
    | _ ->
      expect st Lexer.Dot "'.'";
      Clause { head; body = None })

let program src =
  let st = fresh_state (Lexer.tokens src) in
  let rec go acc =
    if peek st = Lexer.Eof then List.rev acc
    else begin
      reset_clause_scope st;
      let item = parse_item st in
      go (item :: acc)
    end
  in
  go []

let clause_of_string src =
  match program src with
  | [ Clause c ] -> c
  | _ -> fail "expected exactly one clause"

let query src =
  let st = fresh_state (Lexer.tokens src) in
  (match peek st with
  | Lexer.Punct "?-" -> advance st
  | _ -> ());
  let goal = parse_expr st 1200 in
  (match peek st with
  | Lexer.Dot -> advance st
  | Lexer.Eof -> ()
  | tok -> fail "trailing input after query: %a" Lexer.pp_token tok);
  let names = Hashtbl.fold (fun name v acc -> (v, name) :: acc) st.vars [] in
  (goal, List.sort compare names)
