let rec occurs s v t =
  match Subst.walk s t with
  | Term.Var i -> i = v
  | Term.Atom _ | Term.Int _ -> false
  | Term.Compound (_, args) -> Array.exists (occurs s v) args

let rec unify ?(occurs_check = false) s a b =
  let a = Subst.walk s a and b = Subst.walk s b in
  match (a, b) with
  | Term.Var i, Term.Var j when i = j -> Some s
  | Term.Var i, t | t, Term.Var i ->
    if occurs_check && occurs s i t then None else Some (Subst.bind s i t)
  | Term.Atom x, Term.Atom y -> if String.equal x y then Some s else None
  | Term.Int x, Term.Int y -> if x = y then Some s else None
  | Term.Compound (f, xs), Term.Compound (g, ys) ->
    if String.equal f g && Array.length xs = Array.length ys then
      unify_arrays ~occurs_check s xs ys
    else None
  | (Term.Atom _ | Term.Int _ | Term.Compound _), _ -> None

and unify_arrays ?(occurs_check = false) s xs ys =
  if Array.length xs <> Array.length ys then None
  else begin
    let n = Array.length xs in
    let rec go s i =
      if i >= n then Some s
      else
        match unify ~occurs_check s xs.(i) ys.(i) with
        | Some s' -> go s' (i + 1)
        | None -> None
    in
    go s 0
  end
