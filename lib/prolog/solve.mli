(** SLD resolution with chronological backtracking.

    The sequential Prolog engine: goals are solved left-to-right, clauses
    tried in database order, bindings undone by persistence of {!Subst.t}.
    Builtins: conjunction, disjunction, if-then-else, cut, [=], [\=],
    [==], [\==], [is], arithmetic comparisons, [var]/[nonvar]/[atom]/
    [integer], negation as failure ([not/1] and [\+/1]), [call/1],
    [findall/3] and [forall/2].

    The solver counts {e inferences} (goals dispatched); the OR-parallel
    driver converts inference counts into simulated execution time, which
    is how "the execution time and control flow can vary greatly with the
    input" (section 7) becomes measurable in the simulator. *)

exception Prolog_error of string
(** Type errors, instantiation errors, unknown-predicate errors. *)

type result = {
  solutions : (int * Term.t) list list;
      (** Bindings of the query's variables, one list per solution, in
          discovery order. *)
  inferences : int;  (** Goals dispatched during the search. *)
  depth_exceeded : bool;
      (** Some path was pruned by the depth limit (so absence of solutions
          is not proof of failure). *)
}

val run :
  ?max_depth:int ->
  ?max_solutions:int ->
  ?occurs_check:bool ->
  Database.t ->
  Term.t ->
  result
(** Solve the goal against the database. [max_depth] (default 100_000)
    bounds the resolution depth; [max_solutions] (default: all) stops the
    search early. Unknown predicates raise {!Prolog_error}. *)

val succeeds : Database.t -> Term.t -> bool
(** At least one solution (first-solution search). *)

val first : Database.t -> Term.t -> (int * Term.t) list option
(** The first solution's bindings. *)

val query : Database.t -> string -> ((string * Term.t) list list, string) Stdlib.result
(** Parse and solve, mapping variable indices back to their source names.
    Errors (parse, type, instantiation) come back as [Error message]. *)

(** {2 Choice-point decomposition for OR-parallelism} *)

type branch = {
  branch_index : int;  (** Clause position in the database. *)
  goals : Term.t list;  (** Remaining goals after committing to the clause. *)
  subst : Subst.t;  (** Bindings from the head unification. *)
  next_var : int;  (** Variable counter after renaming apart. *)
}

val branches : Database.t -> Term.t -> branch list
(** The OR choice points of the goal's first resolution step: one branch
    per clause whose head unifies. A builtin goal yields no branches. *)

val run_branch :
  ?max_depth:int ->
  ?max_solutions:int ->
  Database.t ->
  query_vars:int list ->
  branch ->
  result
(** Continue one branch to completion, reporting bindings for
    [query_vars]. *)
