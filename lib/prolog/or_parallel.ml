type sim_report = {
  first_solution : (int * Term.t) list option;
  winner_branch : int option;
  branch_inferences : int array;
  seq_inferences : int;
  seq_time : float;
  par_time : float;
  speedup : float;
  cow_copies : int;
  wasted_cpu : float;
}

(* Pre-solve each branch (instantaneously, outside the simulation) to learn
   its work and outcome, then replay that work as simulated alternatives.
   The simulation thereby charges exactly the inference counts a real
   OR-parallel engine would execute. *)
let solve_sim ?(model = Cost_model.modern) ?(cores = Engine.Infinite) ?policy
    ?exclusive ?(inference_cost = 1e-4) ?(heap_bytes = 256 * 1024) ?(seed = 42)
    db goal =
  let qvars = Term.vars goal in
  let branches = Solve.branches db goal in
  let results =
    List.map
      (fun b -> (b, Solve.run_branch ~max_solutions:1 db ~query_vars:qvars b))
      branches
  in
  let branch_inferences =
    Array.of_list (List.map (fun (_, r) -> r.Solve.inferences) results)
  in
  (* The sequential engine walks the clauses in order: it pays for every
     failed branch before the first succeeding one. *)
  let seq = Solve.run ~max_solutions:1 db goal in
  let seq_inferences = seq.Solve.inferences in
  let seq_time = float_of_int seq_inferences *. inference_cost in
  let eng = Engine.create ~cores ~model ~seed ~trace:false () in
  let parent_space =
    Address_space.create ~size_hint:heap_bytes (Engine.frame_store eng) model
  in
  let alternatives =
    List.map
      (fun ((b : Solve.branch), (r : Solve.result)) ->
        let bytes = min heap_bytes (256 + (32 * r.Solve.inferences)) in
        Alternative.make ~name:(Printf.sprintf "clause%d" b.Solve.branch_index)
          ~footprint:(Alternative.footprint ~writes:[ (0, bytes) ] ())
          (fun ctx ->
            (* Binding/trail writes: every branch updates the same shared
               region (the binding environment), privatising pages lazily;
               volume scales with the branch's work, locality is high. *)
            (match Engine.space ctx with
            | Some sp ->
              Address_space.touch sp ~addr:0 ~len:bytes;
              Engine.charge_memory ctx
            | None -> ());
            Engine.delay ctx (float_of_int r.Solve.inferences *. inference_cost);
            match r.Solve.solutions with
            | sol :: _ -> (b.Solve.branch_index, sol)
            | [] -> raise (Alternative.Failed "branch has no solution")))
      results
  in
  match alternatives with
  | [] ->
    {
      first_solution = None;
      winner_branch = None;
      branch_inferences;
      seq_inferences;
      seq_time;
      par_time = 0.;
      speedup = 1.;
      cow_copies = 0;
      wasted_cpu = 0.;
    }
  | _ ->
    let report =
      Concurrent.run_toplevel eng ?policy ~space:parent_space ?exclusive
        alternatives
    in
    let first_solution, winner_branch =
      match report.Concurrent.outcome with
      | Alt_block.Selected { value = branch_idx, sol; _ } ->
        (Some sol, Some branch_idx)
      | Alt_block.Block_failed _ -> (None, None)
    in
    let par_time = report.Concurrent.elapsed in
    {
      first_solution;
      winner_branch;
      branch_inferences;
      seq_inferences;
      seq_time;
      par_time;
      speedup = (if par_time > 0. then seq_time /. par_time else 1.);
      cow_copies = report.Concurrent.child_cow_copies;
      wasted_cpu = report.Concurrent.wasted_cpu;
    }

type real_report = {
  value : (int * Term.t) list option;
  winner : int option;
  elapsed_parallel : float;
  elapsed_sequential : float;
}

let solve_real ?(timeout = 30.) db goal =
  let qvars = Term.vars goal in
  let branches = Solve.branches db goal in
  let t0 = Unix.gettimeofday () in
  let seq = Solve.run ~max_solutions:1 db goal in
  let elapsed_sequential = Unix.gettimeofday () -. t0 in
  match branches with
  | [] ->
    {
      value = (match seq.Solve.solutions with s :: _ -> Some s | [] -> None);
      winner = None;
      elapsed_parallel = elapsed_sequential;
      elapsed_sequential;
    }
  | _ ->
    let thunks =
      List.map
        (fun (b : Solve.branch) () ->
          match
            (Solve.run_branch ~max_solutions:1 db ~query_vars:qvars b)
              .Solve.solutions
          with
          | sol :: _ -> (b.Solve.branch_index, sol)
          | [] -> failwith "no solution in this branch")
        branches
    in
    (match Fork_race.run ~timeout thunks with
    | Fork_race.Winner { value = branch_idx, sol; elapsed; _ } ->
      {
        value = Some sol;
        winner = Some branch_idx;
        elapsed_parallel = elapsed;
        elapsed_sequential;
      }
    | Fork_race.All_failed { elapsed } | Fork_race.Timed_out { elapsed } ->
      { value = None; winner = None; elapsed_parallel = elapsed; elapsed_sequential })
