module IntMap = Map.Make (Int)

type t = Term.t IntMap.t

let empty = IntMap.empty
let is_empty = IntMap.is_empty
let cardinal = IntMap.cardinal

let bind s i t =
  if IntMap.mem i s then invalid_arg "Subst.bind: variable already bound";
  IntMap.add i t s

let lookup s i = IntMap.find_opt i s

let rec walk s t =
  match t with
  | Term.Var i -> (
    match IntMap.find_opt i s with Some t' -> walk s t' | None -> t)
  | _ -> t

let rec resolve s t =
  match walk s t with
  | Term.Compound (f, args) -> Term.Compound (f, Array.map (resolve s) args)
  | t' -> t'

let restrict s ~vars =
  List.filter_map
    (fun v ->
      match walk s (Term.Var v) with
      | Term.Var v' when v' = v -> None
      | _ -> Some (v, resolve s (Term.Var v)))
    vars
