(** Unification — "a sophisticated pattern matcher" (paper, section 7).

    Standard structural unification over {!Subst.t}. The occurs check is
    optional (off by default, as in most Prolog systems) but available for
    the property tests, which verify soundness of produced unifiers. *)

val unify : ?occurs_check:bool -> Subst.t -> Term.t -> Term.t -> Subst.t option
(** [unify s a b] extends [s] to a substitution under which [a] and [b] are
    equal, or returns [None]. *)

val unify_arrays :
  ?occurs_check:bool -> Subst.t -> Term.t array -> Term.t array -> Subst.t option
(** Pointwise unification of equal-length argument vectors; [None] on
    length mismatch. *)

val occurs : Subst.t -> int -> Term.t -> bool
(** Does the variable occur in the (walked) term? *)
