(** Arithmetic evaluation for [is/2] and the comparison builtins. *)

exception Eval_error of string

val eval : Subst.t -> Term.t -> int
(** Evaluate a ground arithmetic expression ([+ - * / mod], unary [-],
    [abs], [min], [max]) under the substitution. Raises {!Eval_error} on
    unbound variables, non-numeric leaves, or division by zero. *)

val compare_op : string -> (int -> int -> bool) option
(** The comparison behind [< > =< >= =:= =\=], if the name is one. *)
