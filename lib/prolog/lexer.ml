type token =
  | Atom of string
  | Variable of string
  | Integer of int
  | Punct of string
  | Dot
  | Eof

exception Lex_error of { pos : int; message : string }

let error pos message = raise (Lex_error { pos; message })

let is_lower c = c >= 'a' && c <= 'z'
let is_upper c = (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_alnum c = is_lower c || is_upper c || is_digit c
let is_layout c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let is_symbol_char c = String.contains "+-*/\\^<>=~:.?@#&" c

let tokens src =
  let n = String.length src in
  let out = ref [] in
  let emit tok = out := tok :: !out in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let rec skip_layout () =
    if !i < n then
      if is_layout src.[!i] then begin
        incr i;
        skip_layout ()
      end
      else if src.[!i] = '%' then begin
        while !i < n && src.[!i] <> '\n' do
          incr i
        done;
        skip_layout ()
      end
      else if src.[!i] = '/' && peek 1 = Some '*' then begin
        let start = !i in
        i := !i + 2;
        let rec close () =
          if !i + 1 >= n then error start "unterminated block comment"
          else if src.[!i] = '*' && src.[!i + 1] = '/' then i := !i + 2
          else begin
            incr i;
            close ()
          end
        in
        close ();
        skip_layout ()
      end
  in
  let take_while pred =
    let start = !i in
    while !i < n && pred src.[!i] do
      incr i
    done;
    String.sub src start (!i - start)
  in
  let quoted_atom () =
    let start = !i in
    incr i;
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then error start "unterminated quoted atom"
      else
        match src.[!i] with
        | '\'' when peek 1 = Some '\'' ->
          Buffer.add_char buf '\'';
          i := !i + 2;
          go ()
        | '\'' -> incr i
        | '\\' when peek 1 = Some 'n' ->
          Buffer.add_char buf '\n';
          i := !i + 2;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr i;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec loop () =
    skip_layout ();
    if !i >= n then emit Eof
    else begin
      let c = src.[!i] in
      if is_digit c then emit (Integer (int_of_string (take_while is_digit)))
      else if is_lower c then emit (Atom (take_while is_alnum))
      else if is_upper c then emit (Variable (take_while is_alnum))
      else if c = '\'' then emit (Atom (quoted_atom ()))
      else if c = '(' || c = ')' || c = '[' || c = ']' || c = ',' || c = '|'
              || c = ';' || c = '!' then begin
        incr i;
        emit (Punct (String.make 1 c))
      end
      else if is_symbol_char c then begin
        (* A '.' followed by layout or EOF terminates a clause. *)
        if c = '.' && (!i + 1 >= n || is_layout src.[!i + 1] || src.[!i + 1] = '%')
        then begin
          incr i;
          emit Dot
        end
        else emit (Punct (take_while is_symbol_char))
      end
      else error !i (Printf.sprintf "unexpected character %C" c);
      match !out with Eof :: _ -> () | _ -> loop ()
    end
  in
  loop ();
  List.rev !out

let pp_token ppf = function
  | Atom s -> Format.fprintf ppf "atom(%s)" s
  | Variable s -> Format.fprintf ppf "var(%s)" s
  | Integer k -> Format.fprintf ppf "int(%d)" k
  | Punct s -> Format.fprintf ppf "%S" s
  | Dot -> Format.fprintf ppf "."
  | Eof -> Format.fprintf ppf "<eof>"
