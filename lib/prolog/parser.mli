(** Parser for Prolog programs and queries.

    Recursive descent with precedence climbing over a conventional operator
    table ([;] 1100 xfy, [,] 1000 xfy, comparisons/[is]/[=] 700 xfx, [+ -]
    500 yfx, [* / mod] 400 yfx, unary [-] 200). Variables are numbered from
    0 within each clause or query, ['_'] is fresh at each occurrence. *)

type clause = { head : Term.t; body : Term.t option }
(** [body = None] is a fact; otherwise the body is a (possibly nested [','])
    conjunction term. *)

type item =
  | Clause of clause
  | Query of Term.t  (** A [?- Goal.] directive. *)

exception Parse_error of string

val program : string -> item list
(** Parse a whole program text. Raises {!Parse_error} (with position
    context) or {!Lexer.Lex_error}. *)

val clause_of_string : string -> clause
(** Parse exactly one clause. *)

val query : string -> Term.t * (int * string) list
(** Parse one goal (with or without a leading [?-] and trailing [.]);
    returns the goal and the (index, source name) pairs of its variables,
    for printing answers. *)
