(** Tokeniser for Edinburgh-style Prolog text.

    Supports unquoted and ['quoted'] atoms, variables, non-negative
    integers, symbolic atoms ([:-], [=..], comparison and arithmetic
    operators), list punctuation, [%] line comments and [/* */] block
    comments. The clause terminator is a [.] followed by layout or end of
    input. *)

type token =
  | Atom of string
  | Variable of string
  | Integer of int
  | Punct of string  (** ( ) [ ] , | ; and symbolic operator atoms *)
  | Dot  (** Clause terminator. *)
  | Eof

exception Lex_error of { pos : int; message : string }

val tokens : string -> token list
(** All tokens, ending with [Eof]. Raises {!Lex_error} on bad input. *)

val pp_token : Format.formatter -> token -> unit
