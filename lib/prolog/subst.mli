(** Substitutions: persistent maps from variable indices to terms.

    Bindings are {e triangular}: a bound term may itself contain bound
    variables, so observation goes through {!walk} (one step) or {!resolve}
    (deep). Persistence is what makes backtracking (and OR-parallel
    branching) a matter of keeping the old value — no trail needed. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val bind : t -> int -> Term.t -> t
(** Add a binding. Raises [Invalid_argument] if the variable is already
    bound (unification only binds free variables). *)

val lookup : t -> int -> Term.t option

val walk : t -> Term.t -> Term.t
(** Dereference a chain of variable bindings until reaching a non-variable
    or an unbound variable. *)

val resolve : t -> Term.t -> Term.t
(** Deep application: replace every bound variable in the term, recursively.
    The result contains only unbound variables. *)

val restrict : t -> vars:int list -> (int * Term.t) list
(** The answer bindings for the given (query) variables, resolved deep, in
    the order given. Unbound variables are omitted. *)
