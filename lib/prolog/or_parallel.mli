(** OR-parallel execution of Prolog choice points (paper, section 5.2).

    "More appropriate is rule-level parallelism ... OR-parallelism is more
    interesting to us, since it maps closely to our problem of attempting
    alternatives in parallel. The alternatives here are specialized to
    predicates." Each clause whose head unifies with the goal becomes one
    alternative of a block; the first branch to deliver a solution wins and
    its siblings are eliminated. "What our method does is copy, and since
    we choose only one alternative, no merging is necessary."

    Two drivers are provided: a simulated one, where branch work is charged
    to the virtual clock at a configurable cost per logical inference and
    binding updates exercise the copy-on-write pages; and a real one, where
    branches race as forked OS processes via {!Fork_race}. *)

type sim_report = {
  first_solution : (int * Term.t) list option;
      (** Bindings of the goal's variables for the winning branch's first
          solution; [None] if every branch failed. *)
  winner_branch : int option;  (** Clause index of the winner. *)
  branch_inferences : int array;  (** Work available in each branch. *)
  seq_inferences : int;
      (** Inferences a sequential engine spends reaching the first solution
          (clause order, including failed prefixes). *)
  seq_time : float;  (** [seq_inferences * inference_cost]. *)
  par_time : float;  (** Simulated elapsed time of the racing block. *)
  speedup : float;  (** [seq_time / par_time]. *)
  cow_copies : int;  (** Pages privatised by branch binding writes. *)
  wasted_cpu : float;  (** CPU burnt by eliminated branches. *)
}

val solve_sim :
  ?model:Cost_model.t ->
  ?cores:Engine.cores ->
  ?policy:Concurrent.policy ->
  ?exclusive:bool ->
  ?inference_cost:float ->
  ?heap_bytes:int ->
  ?seed:int ->
  Database.t ->
  Term.t ->
  sim_report
(** Race the goal's OR branches in a fresh simulation engine.
    [inference_cost] (default 1e-4 s) converts logical inferences to
    virtual CPU time; [heap_bytes] (default 256 KiB) sizes the parent
    process image whose pages the branches share copy-on-write; each
    branch write-touches a stack/trail-like region proportional to its
    inference count (high locality, as section 7 argues).

    [exclusive] is passed through to {!Concurrent.run_toplevel}: under a
    [Consensus] policy it elides the voter group when the branches have
    been {e proven} mutually exclusive. It is deliberately a parameter —
    obtain it from [Lint.proven_exclusive db goal] (the lint library sits
    above this one); never assert it by hand. *)

type real_report = {
  value : (int * Term.t) list option;
  winner : int option;
  elapsed_parallel : float;  (** Wall-clock seconds for the forked race. *)
  elapsed_sequential : float;  (** Wall-clock seconds, clause order. *)
}

val solve_real : ?timeout:float -> Database.t -> Term.t -> real_report
(** Race the branches as real forked processes and also time the
    sequential resolution, for the modern-hardware comparison. *)
