(** Prolog terms.

    Variables are integers (renamed apart per clause activation); lists use
    the classical ['.'/2] cons with the [[]] atom. *)

type t =
  | Var of int
  | Atom of string
  | Int of int
  | Compound of string * t array

val atom : string -> t
val var : int -> t
val int : int -> t
val compound : string -> t list -> t
(** [compound f []] collapses to [Atom f]. *)

val nil : t
val cons : t -> t -> t
val of_list : t list -> t
(** A proper Prolog list. *)

val to_list : t -> t list option
(** [Some elements] iff the term is a proper list. *)

val functor_of : t -> (string * int) option
(** Name and arity of an atom or compound; [None] for variables and
    integers. *)

val equal : t -> t -> bool

val vars : t -> int list
(** Distinct variables in first-occurrence order. *)

val max_var : t -> int
(** Largest variable index occurring, or [-1]. *)

val rename : offset:int -> t -> t
(** Shift every variable index by [offset] (renaming apart). *)

val pp : Format.formatter -> t -> unit
(** Conventional syntax: lists bracketed, operators infix where readable,
    variables as [_0], [_1], ... unless a name map is provided via
    {!pp_named}. *)

val pp_named : names:(int -> string option) -> Format.formatter -> t -> unit

val to_string : t -> string
