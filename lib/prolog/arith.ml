exception Eval_error of string

let error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let rec eval subst t =
  match Subst.walk subst t with
  | Term.Int k -> k
  | Term.Var _ -> error "arguments are not sufficiently instantiated"
  | Term.Atom a -> error "%s/0 is not an arithmetic function" a
  | Term.Compound (f, args) -> (
    match (f, args) with
    | "+", [| a; b |] -> eval subst a + eval subst b
    | "-", [| a; b |] -> eval subst a - eval subst b
    | "*", [| a; b |] -> eval subst a * eval subst b
    | "/", [| a; b |] ->
      let d = eval subst b in
      if d = 0 then error "division by zero" else eval subst a / d
    | "mod", [| a; b |] ->
      let d = eval subst b in
      if d = 0 then error "division by zero"
      else begin
        (* Prolog mod follows the divisor's sign. *)
        let m = eval subst a mod d in
        if (m < 0 && d > 0) || (m > 0 && d < 0) then m + d else m
      end
    | "-", [| a |] -> -eval subst a
    | "abs", [| a |] -> abs (eval subst a)
    | "min", [| a; b |] -> min (eval subst a) (eval subst b)
    | "max", [| a; b |] -> max (eval subst a) (eval subst b)
    | _ -> error "%s/%d is not an arithmetic function" f (Array.length args))

let compare_op = function
  | "<" -> Some ( < )
  | ">" -> Some ( > )
  | "=<" -> Some ( <= )
  | ">=" -> Some ( >= )
  | "=:=" -> Some ( = )
  | "=\\=" -> Some ( <> )
  | _ -> None
