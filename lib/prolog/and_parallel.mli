(** AND-parallelism, for contrast with OR-parallelism (paper, section 5.2).

    "The idea with AND-parallelism is that if we have a situation where
    goals A and B must be satisfied, we can pursue the satisfaction of A
    and B in parallel." The paper judges OR-parallelism "more interesting"
    for its design because OR branches are mutually exclusive — one wins,
    no merging — whereas AND conjuncts must {e all} succeed and their
    bindings must be combined.

    This module implements {e independent} AND-parallelism: the conjuncts
    of a goal are grouped by shared variables; variable-disjoint groups are
    solved in parallel and their first solutions concatenated (disjointness
    makes the merge trivial — the general case would need the
    binding-merge machinery the paper's design avoids). The elapsed time is
    the {e maximum} over groups, not the minimum: there is no fastest-first
    selection and no sibling elimination, which is precisely the structural
    difference from OR-parallelism that the experiments expose. *)

val conjuncts : Term.t -> Term.t list
(** Flatten a [','] tree into its conjuncts, left to right. *)

val independent_groups : Term.t list -> Term.t list list
(** Partition conjuncts into maximal groups connected by shared variables,
    preserving the left-to-right order within and across groups. Two
    conjuncts sharing no variable (directly or transitively) land in
    different groups. *)

type report = {
  solution : (int * Term.t) list option;
      (** Combined first-solution bindings of the goal's variables, or
          [None] if some group has no solution. *)
  groups : int;  (** Independent groups found. *)
  group_inferences : int array;  (** Work per group. *)
  seq_inferences : int;  (** Sequential resolution to the first solution. *)
  seq_time : float;
  par_time : float;  (** Simulated: all groups must finish. *)
  speedup : float;
}

val solve_sim :
  ?cores:Engine.cores ->
  ?inference_cost:float ->
  Database.t ->
  Term.t ->
  report
(** Solve the conjunction with independent AND-parallelism in a fresh
    simulation engine. A goal whose conjuncts all share variables yields a
    single group: the execution degenerates to the sequential one (plus
    spawn overhead), reported honestly. *)
