let rec conjuncts = function
  | Term.Compound (",", [| a; b |]) -> conjuncts a @ conjuncts b
  | t -> [ t ]

(* Union-find over conjunct indices, connected by shared variables. *)
let independent_groups goals =
  let goals = Array.of_list goals in
  let n = Array.length goals in
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(max ri rj) <- min ri rj
  in
  let owner : (int, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iteri
    (fun i g ->
      List.iter
        (fun v ->
          match Hashtbl.find_opt owner v with
          | Some j -> union i j
          | None -> Hashtbl.replace owner v i)
        (Term.vars g))
    goals;
  let buckets : (int, Term.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  Array.iteri
    (fun i g ->
      let r = find i in
      match Hashtbl.find_opt buckets r with
      | Some l -> l := g :: !l
      | None ->
        Hashtbl.replace buckets r (ref [ g ]);
        order := r :: !order)
    goals;
  List.rev_map (fun r -> List.rev !(Hashtbl.find buckets r)) !order

let conj_of = function
  | [] -> Term.Atom "true"
  | g :: rest ->
    List.fold_left (fun acc g' -> Term.compound "," [ acc; g' ]) g rest

type report = {
  solution : (int * Term.t) list option;
  groups : int;
  group_inferences : int array;
  seq_inferences : int;
  seq_time : float;
  par_time : float;
  speedup : float;
}

let solve_sim ?(cores = Engine.Infinite) ?(inference_cost = 1e-4) db goal =
  let qvars = Term.vars goal in
  let groups = independent_groups (conjuncts goal) in
  let results =
    List.map
      (fun group ->
        let g = conj_of group in
        Solve.run ~max_solutions:1 db g)
      groups
  in
  let group_inferences =
    Array.of_list (List.map (fun r -> r.Solve.inferences) results)
  in
  let seq = Solve.run ~max_solutions:1 db goal in
  let seq_time = float_of_int seq.Solve.inferences *. inference_cost in
  (* All groups must complete: run them as parallel processes and join. *)
  let eng = Engine.create ~cores ~trace:false () in
  let remaining = ref (List.length groups) in
  let done_ : unit Engine.Ivar.t = Engine.Ivar.create () in
  Array.iter
    (fun inferences ->
      let pid =
        Engine.spawn eng (fun ctx ->
            Engine.delay ctx (float_of_int inferences *. inference_cost))
      in
      Engine.on_exit eng pid (fun _ ->
          decr remaining;
          if !remaining = 0 then ignore (Engine.Ivar.try_fill done_ ())))
    group_inferences;
  let par_time = ref 0. in
  ignore
    (Engine.spawn eng ~cloneable:false (fun ctx ->
         Engine.Ivar.read ctx done_;
         par_time := Engine.now_v ctx));
  Engine.run eng;
  (* Combine first solutions: groups are variable-disjoint, so the merged
     bindings are consistent by construction. *)
  let solution =
    if List.exists (fun r -> r.Solve.solutions = []) results then None
    else
      Some
        (List.concat_map
           (fun (r : Solve.result) ->
             match r.Solve.solutions with
             | s :: _ -> List.filter (fun (v, _) -> List.mem v qvars) s
             | [] -> [])
           results)
  in
  {
    solution;
    groups = List.length groups;
    group_inferences;
    seq_inferences = seq.Solve.inferences;
    seq_time;
    par_time = !par_time;
    speedup = (if !par_time > 0. then seq_time /. !par_time else 1.);
  }
