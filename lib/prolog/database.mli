(** The clause database: "a database of predicate values and rules is used
    to construct a set of dependency relations" (paper, section 5.2).

    Clauses are stored under their head functor (first-argument indexing is
    deliberately absent: clause-order scanning is what creates the OR
    choice points the paper parallelises). Stored clauses are normalised so
    their variables start at 0; activation renames them apart. *)

type t

val create : unit -> t

val add : t -> Parser.clause -> unit
(** Append (assertz order). Raises [Invalid_argument] if the head is a
    variable or an integer. *)

val add_program : t -> string -> Term.t list
(** Parse and add every clause of the text; returns the goals of any
    [?-]/[:-] directives encountered (in order) without running them. *)

val clauses : t -> name:string -> arity:int -> Parser.clause list
(** Matching clauses in assertion order; [] for unknown predicates. *)

val predicates : t -> (string * int) list
(** Defined predicate indicators, sorted. *)

val clause_count : t -> int

val prelude : string
(** A small standard library in Prolog source form: [append/3], [member/2],
    [length/2], [reverse/2], [between/3], [last/2], [nth0/3], [select/3]. *)

val with_prelude : unit -> t
(** A database preloaded with {!prelude}. *)
