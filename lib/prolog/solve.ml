exception Prolog_error of string

let error fmt = Format.kasprintf (fun s -> raise (Prolog_error s)) fmt

type result = {
  solutions : (int * Term.t) list list;
  inferences : int;
  depth_exceeded : bool;
}

type st = {
  db : Database.t;
  max_depth : int;
  occurs_check : bool;
  mutable inferences : int;
  mutable depth_exceeded : bool;
  mutable next_var : int;
  mutable next_barrier : int;
}

exception Enough
exception Cut_signal of int

let fresh_barrier st =
  let b = st.next_barrier in
  st.next_barrier <- b + 1;
  b

let clause_var_count (c : Parser.clause) =
  let m = Term.max_var c.Parser.head in
  let m =
    match c.Parser.body with
    | None -> m
    | Some b -> max m (Term.max_var b)
  in
  m + 1

(* Solve [goals] under [subst]; call [sk] on each solution substitution.
   [cut_id] is the barrier a '!' in these goals cuts to. *)
let rec solve st depth cut_id subst goals sk =
  match goals with
  | [] -> sk subst
  | g :: rest -> (
    st.inferences <- st.inferences + 1;
    let g = Subst.walk subst g in
    match g with
    | Term.Var _ -> error "unbound variable used as a goal"
    | Term.Int _ -> error "integer used as a goal"
    | Term.Atom "true" -> solve st depth cut_id subst rest sk
    | Term.Atom ("fail" | "false") -> ()
    | Term.Atom "!" ->
      solve st depth cut_id subst rest sk;
      raise (Cut_signal cut_id)
    | Term.Compound (",", [| a; b |]) ->
      solve st depth cut_id subst (a :: b :: rest) sk
    | Term.Compound (";", [| Term.Compound ("->", [| cond; then_ |]); else_ |])
      ->
      solve_ite st depth cut_id subst ~cond ~then_ ~else_ rest sk
    | Term.Compound ("->", [| cond; then_ |]) ->
      solve_ite st depth cut_id subst ~cond ~then_ ~else_:(Term.Atom "fail")
        rest sk
    | Term.Compound (";", [| a; b |]) ->
      solve st depth cut_id subst (a :: rest) sk;
      solve st depth cut_id subst (b :: rest) sk
    | Term.Compound ("=", [| a; b |]) -> (
      match Unify.unify ~occurs_check:st.occurs_check subst a b with
      | Some s' -> solve st depth cut_id s' rest sk
      | None -> ())
    | Term.Compound ("\\=", [| a; b |]) -> (
      match Unify.unify ~occurs_check:st.occurs_check subst a b with
      | Some _ -> ()
      | None -> solve st depth cut_id subst rest sk)
    | Term.Compound ("is", [| lhs; rhs |]) -> (
      let v =
        try Arith.eval subst rhs with Arith.Eval_error m -> error "is/2: %s" m
      in
      match
        Unify.unify ~occurs_check:st.occurs_check subst lhs (Term.Int v)
      with
      | Some s' -> solve st depth cut_id s' rest sk
      | None -> ())
    | Term.Compound (("==" | "\\==") as op, [| a; b |]) ->
      let eq = Term.equal (Subst.resolve subst a) (Subst.resolve subst b) in
      if eq = String.equal op "==" then solve st depth cut_id subst rest sk
    | Term.Compound (op, [| a; b |]) when Arith.compare_op op <> None -> (
      match Arith.compare_op op with
      | Some cmp ->
        let x, y =
          try (Arith.eval subst a, Arith.eval subst b)
          with Arith.Eval_error m -> error "%s/2: %s" op m
        in
        if cmp x y then solve st depth cut_id subst rest sk
      | None -> assert false)
    | Term.Compound ("var", [| a |]) -> (
      match Subst.walk subst a with
      | Term.Var _ -> solve st depth cut_id subst rest sk
      | _ -> ())
    | Term.Compound ("nonvar", [| a |]) -> (
      match Subst.walk subst a with
      | Term.Var _ -> ()
      | _ -> solve st depth cut_id subst rest sk)
    | Term.Compound ("atom", [| a |]) -> (
      match Subst.walk subst a with
      | Term.Atom _ -> solve st depth cut_id subst rest sk
      | _ -> ())
    | Term.Compound ("integer", [| a |]) -> (
      match Subst.walk subst a with
      | Term.Int _ -> solve st depth cut_id subst rest sk
      | _ -> ())
    | Term.Compound (("not" | "\\+"), [| goal |]) ->
      if not (has_solution st depth subst goal) then
        solve st depth cut_id subst rest sk
    | Term.Compound ("findall", [| template; goal; out |]) -> (
      let results = ref [] in
      let b = fresh_barrier st in
      (try
         solve st (depth + 1) b subst [ goal ] (fun s' ->
             results := Subst.resolve s' template :: !results)
       with Cut_signal b' when b' = b -> ());
      let collected = Term.of_list (List.rev !results) in
      match Unify.unify ~occurs_check:st.occurs_check subst out collected with
      | Some s' -> solve st depth cut_id s' rest sk
      | None -> ())
    | Term.Compound ("forall", [| cond; action |]) ->
      (* forall(C, A): no solution of C lacks a solution of A. *)
      let counterexample = ref false in
      let b = fresh_barrier st in
      (try
         solve st (depth + 1) b subst [ cond ] (fun s' ->
             if not (has_solution st depth s' action) then begin
               counterexample := true;
               raise (Cut_signal b)
             end)
       with Cut_signal b' when b' = b -> ());
      if not !counterexample then solve st depth cut_id subst rest sk
    | Term.Compound ("call", [| goal |]) ->
      solve st depth cut_id subst (goal :: rest) sk
    | Term.Atom _ | Term.Compound _ -> solve_user st depth subst g rest sk)

(* If-then-else commits to the first solution of the condition. *)
and solve_ite st depth cut_id subst ~cond ~then_ ~else_ rest sk =
  let committed = ref None in
  let b = fresh_barrier st in
  (try
     solve st (depth + 1) b subst [ cond ] (fun s' ->
         committed := Some s';
         raise (Cut_signal b))
   with Cut_signal b' when b' = b -> ());
  match !committed with
  | Some s' -> solve st depth cut_id s' (then_ :: rest) sk
  | None -> solve st depth cut_id subst (else_ :: rest) sk

(* Negation as failure: does the goal have at least one solution? *)
and has_solution st depth subst goal =
  let found = ref false in
  let b = fresh_barrier st in
  (try
     solve st (depth + 1) b subst [ goal ] (fun _ ->
         found := true;
         raise (Cut_signal b))
   with Cut_signal b' when b' = b -> ());
  !found

and solve_user st depth subst g rest sk =
  if depth >= st.max_depth then st.depth_exceeded <- true
  else begin
    let name, arity =
      match Term.functor_of g with
      | Some f -> f
      | None -> assert false
    in
    let clauses = Database.clauses st.db ~name ~arity in
    if clauses = [] then error "unknown predicate %s/%d" name arity;
    let b = fresh_barrier st in
    try
      List.iter
        (fun (clause : Parser.clause) ->
          let offset = st.next_var in
          st.next_var <- offset + clause_var_count clause;
          let head = Term.rename ~offset clause.Parser.head in
          match Unify.unify ~occurs_check:st.occurs_check subst g head with
          | None -> ()
          | Some s' ->
            let goals =
              match clause.Parser.body with
              | None -> rest
              | Some body -> Term.rename ~offset body :: rest
            in
            solve st (depth + 1) b s' goals sk)
        clauses
    with Cut_signal b' when b' = b -> ()
  end

let make_st ?(max_depth = 100_000) ?(occurs_check = false) db ~next_var =
  {
    db;
    max_depth;
    occurs_check;
    inferences = 0;
    depth_exceeded = false;
    next_var;
    next_barrier = 1;
  }

let collect st ~max_solutions ~qvars ~subst ~goals =
  let solutions = ref [] in
  let count = ref 0 in
  let sk s =
    solutions := Subst.restrict s ~vars:qvars :: !solutions;
    incr count;
    match max_solutions with
    | Some m when !count >= m -> raise Enough
    | _ -> ()
  in
  (try solve st 0 0 subst goals sk with
  | Enough -> ()
  | Cut_signal _ -> ());
  {
    solutions = List.rev !solutions;
    inferences = st.inferences;
    depth_exceeded = st.depth_exceeded;
  }

let run ?max_depth ?max_solutions ?occurs_check db goal =
  let st = make_st ?max_depth ?occurs_check db ~next_var:(Term.max_var goal + 1) in
  collect st ~max_solutions ~qvars:(Term.vars goal) ~subst:Subst.empty
    ~goals:[ goal ]

let succeeds db goal = (run ~max_solutions:1 db goal).solutions <> []

let first db goal =
  match (run ~max_solutions:1 db goal).solutions with
  | s :: _ -> Some s
  | [] -> None

let query db src =
  match Parser.query src with
  | exception Parser.Parse_error m -> Error ("parse error: " ^ m)
  | exception Lexer.Lex_error { message; _ } -> Error ("lex error: " ^ message)
  | goal, names -> (
    match run db goal with
    | exception Prolog_error m -> Error m
    | { solutions; _ } ->
      let name_of v =
        match List.assoc_opt v names with
        | Some n -> n
        | None -> "_" ^ string_of_int v
      in
      Ok
        (List.map
           (fun bindings -> List.map (fun (v, t) -> (name_of v, t)) bindings)
           solutions))

type branch = {
  branch_index : int;
  goals : Term.t list;
  subst : Subst.t;
  next_var : int;
}

let branches db goal =
  match Term.functor_of goal with
  | None -> []
  | Some (name, arity) ->
    let base = Term.max_var goal + 1 in
    let clauses = Database.clauses db ~name ~arity in
    List.concat
      (List.mapi
         (fun i (clause : Parser.clause) ->
           (* Each branch is independent, so they can share the same
              renaming offset. *)
           let head = Term.rename ~offset:base clause.Parser.head in
           match Unify.unify Subst.empty goal head with
           | None -> []
           | Some subst ->
             let goals =
               match clause.Parser.body with
               | None -> []
               | Some body -> [ Term.rename ~offset:base body ]
             in
             [
               {
                 branch_index = i;
                 goals;
                 subst;
                 next_var = base + clause_var_count clause;
               };
             ])
         clauses)

let run_branch ?max_depth ?max_solutions db ~query_vars branch =
  let st = make_st ?max_depth db ~next_var:branch.next_var in
  collect st ~max_solutions ~qvars:query_vars ~subst:branch.subst
    ~goals:branch.goals
