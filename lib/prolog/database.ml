type t = {
  table : (string * int, Parser.clause list ref) Hashtbl.t;
  mutable order : (string * int) list;  (* first-definition order, reversed *)
  mutable count : int;
}

let create () = { table = Hashtbl.create 64; order = []; count = 0 }

(* Normalise a clause so its variables are 0..k densely (parser output
   already satisfies this, but clauses can also be built programmatically). *)
let normalise (c : Parser.clause) =
  let whole =
    match c.Parser.body with
    | None -> c.Parser.head
    | Some b -> Term.compound ":-" [ c.Parser.head; b ]
  in
  let vars = Term.vars whole in
  let map = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace map v i) vars;
  let rec go = function
    | Term.Var v -> Term.Var (Hashtbl.find map v)
    | (Term.Atom _ | Term.Int _) as t -> t
    | Term.Compound (f, args) -> Term.Compound (f, Array.map go args)
  in
  match go whole with
  | Term.Compound (":-", [| h; b |]) -> { Parser.head = h; body = Some b }
  | h -> { Parser.head = h; body = None }

let add t clause =
  match Term.functor_of clause.Parser.head with
  | None -> invalid_arg "Database.add: clause head must be callable"
  | Some key ->
    let clause = normalise clause in
    (match Hashtbl.find_opt t.table key with
    | Some l -> l := !l @ [ clause ]
    | None ->
      Hashtbl.replace t.table key (ref [ clause ]);
      t.order <- key :: t.order);
    t.count <- t.count + 1

let add_program t src =
  let items = Parser.program src in
  List.filter_map
    (function
      | Parser.Clause c ->
        add t c;
        None
      | Parser.Query g -> Some g)
    items

let clauses t ~name ~arity =
  match Hashtbl.find_opt t.table (name, arity) with
  | Some l -> !l
  | None -> []

let predicates t = List.sort compare (List.rev t.order)
let clause_count t = t.count

let prelude =
  {|
append([], Ys, Ys).
append([X|Xs], Ys, [X|Zs]) :- append(Xs, Ys, Zs).

member(X, [X|_]).
member(X, [_|Xs]) :- member(X, Xs).

length([], 0).
length([_|Xs], N) :- length(Xs, M), N is M + 1.

reverse(Xs, Ys) :- rev_acc(Xs, [], Ys).
rev_acc([], Acc, Acc).
rev_acc([X|Xs], Acc, Ys) :- rev_acc(Xs, [X|Acc], Ys).

between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).

last([X], X).
last([_|Xs], X) :- last(Xs, X).

nth0(0, [X|_], X).
nth0(N, [_|Xs], X) :- N > 0, M is N - 1, nth0(M, Xs, X).

select(X, [X|Xs], Xs).
select(X, [Y|Xs], [Y|Ys]) :- select(X, Xs, Ys).
|}

let with_prelude () =
  let t = create () in
  ignore (add_program t prelude);
  t
