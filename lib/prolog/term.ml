type t =
  | Var of int
  | Atom of string
  | Int of int
  | Compound of string * t array

let atom s = Atom s
let var i = Var i
let int i = Int i

let compound f = function
  | [] -> Atom f
  | args -> Compound (f, Array.of_list args)

let nil = Atom "[]"
let cons h t = Compound (".", [| h; t |])

let of_list l = List.fold_right cons l nil

let to_list t =
  let rec go acc = function
    | Atom "[]" -> Some (List.rev acc)
    | Compound (".", [| h; tl |]) -> go (h :: acc) tl
    | _ -> None
  in
  go [] t

let functor_of = function
  | Atom f -> Some (f, 0)
  | Compound (f, args) -> Some (f, Array.length args)
  | Var _ | Int _ -> None

let rec equal a b =
  match (a, b) with
  | Var i, Var j -> i = j
  | Atom x, Atom y -> String.equal x y
  | Int x, Int y -> x = y
  | Compound (f, xs), Compound (g, ys) ->
    String.equal f g
    && Array.length xs = Array.length ys
    && Array.for_all2 equal xs ys
  | (Var _ | Atom _ | Int _ | Compound _), _ -> false

let vars t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Var i ->
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.replace seen i ();
        acc := i :: !acc
      end
    | Atom _ | Int _ -> ()
    | Compound (_, args) -> Array.iter go args
  in
  go t;
  List.rev !acc

let max_var t =
  let rec go m = function
    | Var i -> max m i
    | Atom _ | Int _ -> m
    | Compound (_, args) -> Array.fold_left go m args
  in
  go (-1) t

let rec rename ~offset = function
  | Var i -> Var (i + offset)
  | (Atom _ | Int _) as t -> t
  | Compound (f, args) -> Compound (f, Array.map (rename ~offset) args)

let infix_operators =
  [ "="; "\\="; "is"; "<"; ">"; "=<"; ">="; "=:="; "=\\="; "+"; "-"; "*"; "/"; "mod" ]

let pp_named ~names ppf t =
  let var_name i =
    match names i with Some s -> s | None -> "_" ^ string_of_int i
  in
  let rec go ppf = function
    | Var i -> Format.pp_print_string ppf (var_name i)
    | Atom s -> Format.pp_print_string ppf s
    | Int i -> Format.pp_print_int ppf i
    | Compound (".", [| _; _ |]) as t -> pp_list ppf t
    | Compound (f, [| a; b |]) when List.mem f infix_operators ->
      Format.fprintf ppf "%a %s %a" go_arg a f go_arg b
    | Compound (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           go)
        args
  and go_arg ppf t =
    (* Parenthesise nested operator applications for readability. *)
    match t with
    | Compound (f, [| _; _ |]) when List.mem f infix_operators ->
      Format.fprintf ppf "(%a)" go t
    | _ -> go ppf t
  and pp_list ppf t =
    let rec elems ppf = function
      | Atom "[]" -> ()
      | Compound (".", [| h; (Compound (".", _) as tl) |]) ->
        Format.fprintf ppf "%a, %a" go h elems tl
      | Compound (".", [| h; Atom "[]" |]) -> go ppf h
      | Compound (".", [| h; tl |]) -> Format.fprintf ppf "%a|%a" go h go tl
      | t -> go ppf t
    in
    Format.fprintf ppf "[%a]" elems t
  in
  go ppf t

let pp ppf t = pp_named ~names:(fun _ -> None) ppf t
let to_string t = Format.asprintf "%a" pp t
