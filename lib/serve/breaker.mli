(** Per-site circuit breakers, deterministic in virtual time.

    One breaker per (batch engine, site). [bk_threshold] consecutive
    failures attributed to the site open the breaker for [bk_cooldown]
    virtual seconds; coordinator placement then routes around it. When
    the cooldown elapses, the next {!allow} query half-opens the breaker
    and admits exactly one probe request: the probe's success closes the
    breaker, its failure reopens it for a fresh cooldown.

    Everything is driven by virtual-time observations the serving layer
    already makes (job completion verdicts, supervised recovery
    records), never the wall clock, so breaker trajectories are a pure
    function of the run's seeds — replay-identical, and scoped to one
    batch engine so jobs-1 = jobs-N holds batch by batch. *)

type t

type state =
  | Closed  (** Healthy: requests flow. *)
  | Open of { until : float }
      (** Tripped: no placement until virtual time [until]. *)
  | Half_open  (** Cooldown elapsed; one probe is in flight. *)

type config = {
  bk_threshold : int;  (** Consecutive failures that trip the breaker. *)
  bk_cooldown : float;  (** Virtual seconds an open breaker holds. *)
}

val default : config
(** 3 consecutive failures, 0.5 s cooldown. *)

val create : config -> t
(** A closed breaker. [bk_threshold >= 1], [bk_cooldown > 0]
    ([Invalid_argument] otherwise). *)

val allow : t -> now:float -> bool
(** May a request be placed on this site at virtual time [now]?
    Transitions [Open] to [Half_open] when the cooldown has elapsed —
    the caller that sees the transition {e is} the probe, atomically, so
    no two requests can both claim the probe slot. *)

val record_success : t -> unit
(** A request on this site completed cleanly: reset the failure run and
    close the breaker (a successful probe re-admits the site). *)

val record_failure : t -> now:float -> unit
(** A request on this site failed. In [Closed], counts toward the
    threshold and may trip the breaker; in [Half_open], the probe failed
    — reopen with a fresh cooldown; in [Open], tally only. *)

val state : t -> state

val opens : t -> int
(** Times the breaker tripped (Closed/Half_open to Open transitions) —
    reported in the serve metrics. *)
