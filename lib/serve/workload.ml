type request = {
  rq_id : int;
  rq_tenant : int;
  rq_arrival : float;
  rq_scenario : string;
  rq_policy : int;
  rq_seed : int;
  rq_work : float;
}

type config = {
  wl_seed : int;
  wl_requests : int;
  wl_rate : float;
  wl_tenants : int;
  wl_zipf : float;
  wl_tail : float;
  wl_tail_cap : float;
  wl_scenarios : string list;
  wl_policies : int;
}

let default =
  {
    wl_seed = 1;
    wl_requests = 2000;
    wl_rate = 200.;
    wl_tenants = 100;
    wl_zipf = 1.1;
    wl_tail = 1.5;
    wl_tail_cap = 20.;
    wl_scenarios = [ "counters"; "guarded" ];
    wl_policies = 8;
  }

(* Zipf sampling by inversion over the precomputed CDF: tenant k gets
   weight (k+1)^-s. The table is built once per [generate]; requests
   then cost one uniform draw and a binary search. *)
let zipf_cdf ~tenants ~s =
  let w = Array.init tenants (fun k -> (float_of_int (k + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0. w in
  let cdf = Array.make tenants 0. in
  let acc = ref 0. in
  for k = 0 to tenants - 1 do
    acc := !acc +. (w.(k) /. total);
    cdf.(k) <- !acc
  done;
  cdf.(tenants - 1) <- 1.;
  cdf

let zipf_pick cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if u <= cdf.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(* Bounded Pareto via inverse transform: heavy-tailed service demand
   without unbounded outliers that would make a smoke run open-ended. *)
let pareto rng ~shape ~cap =
  let u = Rng.float rng 1. in
  Float.min cap ((1. -. u) ** (-1. /. shape))

let validate c =
  if c.wl_requests < 0 then invalid_arg "Workload.generate: negative requests";
  if c.wl_rate <= 0. then invalid_arg "Workload.generate: rate must be > 0";
  if c.wl_tenants < 1 then invalid_arg "Workload.generate: no tenants";
  if c.wl_scenarios = [] then invalid_arg "Workload.generate: no scenarios";
  if c.wl_policies < 1 then invalid_arg "Workload.generate: no policies";
  if c.wl_tail <= 0. then invalid_arg "Workload.generate: tail shape <= 0"

let generate c =
  validate c;
  let rng = Rng.create ~seed:c.wl_seed in
  let cdf = zipf_cdf ~tenants:c.wl_tenants ~s:c.wl_zipf in
  let scenarios = Array.of_list c.wl_scenarios in
  let clock = ref 0. in
  Array.init c.wl_requests (fun i ->
      (* One fixed draw order per request — interarrival, tenant,
         scenario, policy, seed, work — so the stream replays exactly. *)
      clock := !clock +. Rng.exponential rng ~mean:(1. /. c.wl_rate);
      let tenant = zipf_pick cdf (Rng.float rng 1.) in
      let scenario = scenarios.(Rng.int rng (Array.length scenarios)) in
      let policy = Rng.int rng c.wl_policies in
      let seed = 1 + Rng.int rng 9973 in
      let work = pareto rng ~shape:c.wl_tail ~cap:c.wl_tail_cap in
      {
        rq_id = i;
        rq_tenant = tenant;
        rq_arrival = !clock;
        rq_scenario = scenario;
        rq_policy = policy;
        rq_seed = seed;
        rq_work = work;
      })
