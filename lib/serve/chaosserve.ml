(* Chaos-serve: the two robustness campaigns the serving layer is gated
   on.

   [degrade] ramps an open-loop overload through the server twice per
   load step — once with the degradation ladder, once with the
   shed-only baseline (same meter, same thresholds, every rung below
   full service sheds) — and records goodput at each step. The ladder
   must never do worse: at every step its goodput is >= the baseline's,
   with zero invariant violations on either side. The record is
   committed as BENCH_degrade.json.

   [chaos] serves an overloaded stream under a seeded fault campaign
   (coordinator crashes and healed partitions mid-consensus, per
   batch), with the ladder, the breakers, the online sanitizer and the
   per-request audits all on, and then proves the whole thing is still
   a pure function of its seeds: zero violations, replay-identical,
   jobs-1 = jobs-N byte-identical. *)

(* Both campaigns run deliberately hot: few lanes against hundreds of
   arrivals per virtual second, so the controller's meter actually
   climbs the ladder. The tenant quota is opened wide — admission
   refusals here should come from the ladder (the thing under test),
   not the per-tenant buckets. *)
let campaign_workload ~seed ~requests ~rate =
  {
    Workload.default with
    Workload.wl_seed = seed;
    wl_requests = requests;
    wl_rate = rate;
  }

let campaign_server ~lanes ~shed_only =
  {
    Server.default with
    Server.sv_lanes = lanes;
    sv_quota_rate = 1e6;
    sv_quota_burst = 1000;
    sv_ladder =
      {
        (Controller.default ~lanes) with
        Controller.dc_enabled = true;
        dc_shed_only = shed_only;
      };
  }

(* ------------------------------------------------------------------ *)
(* The degradation-ladder benchmark.                                   *)

type degrade_step = {
  ds_rate : float;
  ds_ladder_good : int;
  ds_ladder_degraded : int;
  ds_ladder_shed : int;
  ds_ladder_violations : int;
  ds_shed_only_good : int;
  ds_shed_only_shed : int;
  ds_shed_only_violations : int;
  ds_horizon : float;
  ds_ladder_goodput : float;
  ds_shed_only_goodput : float;
}

type degrade_record = {
  dg_seed : int;
  dg_requests_per_step : int;
  dg_lanes : int;
  dg_steps : degrade_step list;
  dg_violations : int;
  dg_regressed : bool;
}

let default_rates = [ 100.; 200.; 400.; 800. ]

let good (r : Server.result) =
  r.Server.served + r.Server.degraded + r.Server.recovered

let degrade ?(requests_per_step = 250) ?(rates = default_rates)
    ?(lanes = 8) ~seed () =
  let steps =
    List.map
      (fun rate ->
        let wl = campaign_workload ~seed ~requests:requests_per_step ~rate in
        let arrivals = Workload.generate wl in
        (* Goodput over the fixed arrival horizon, not each run's own
           makespan: both sides face the same offered load for the same
           virtual span, so "good answers per horizon second" is the
           apples-to-apples figure — a baseline that sheds almost
           everything would otherwise flatter itself with a short
           makespan. *)
        let horizon =
          Array.fold_left
            (fun acc (rq : Workload.request) ->
              Float.max acc rq.Workload.rq_arrival)
            0. arrivals
        in
        let ladder = Server.run wl (campaign_server ~lanes ~shed_only:false) in
        let shed_only =
          Server.run wl (campaign_server ~lanes ~shed_only:true)
        in
        let goodput r =
          if horizon > 0. then float_of_int (good r) /. horizon else 0.
        in
        {
          ds_rate = rate;
          ds_ladder_good = good ladder;
          ds_ladder_degraded = ladder.Server.degraded;
          ds_ladder_shed = ladder.Server.shed;
          ds_ladder_violations = List.length ladder.Server.violations;
          ds_shed_only_good = good shed_only;
          ds_shed_only_shed = shed_only.Server.shed;
          ds_shed_only_violations = List.length shed_only.Server.violations;
          ds_horizon = horizon;
          ds_ladder_goodput = goodput ladder;
          ds_shed_only_goodput = goodput shed_only;
        })
      rates
  in
  let violations =
    List.fold_left
      (fun acc s -> acc + s.ds_ladder_violations + s.ds_shed_only_violations)
      0 steps
  in
  let regressed =
    List.exists (fun s -> s.ds_ladder_goodput < s.ds_shed_only_goodput) steps
  in
  {
    dg_seed = seed;
    dg_requests_per_step = requests_per_step;
    dg_lanes = lanes;
    dg_steps = steps;
    dg_violations = violations;
    dg_regressed = regressed;
  }

let degrade_required_fields =
  [
    "benchmark"; "seed"; "requests_per_step"; "lanes"; "steps"; "violations";
    "regressed";
  ]

let degrade_to_json (d : degrade_record) =
  let step s =
    String.concat "\n"
      [
        "    {";
        Printf.sprintf "      %S: %.1f," "rate" s.ds_rate;
        Printf.sprintf "      %S: %d," "ladder_good" s.ds_ladder_good;
        Printf.sprintf "      %S: %d," "ladder_degraded" s.ds_ladder_degraded;
        Printf.sprintf "      %S: %d," "ladder_shed" s.ds_ladder_shed;
        Printf.sprintf "      %S: %d," "ladder_violations"
          s.ds_ladder_violations;
        Printf.sprintf "      %S: %d," "shed_only_good" s.ds_shed_only_good;
        Printf.sprintf "      %S: %d," "shed_only_shed" s.ds_shed_only_shed;
        Printf.sprintf "      %S: %d," "shed_only_violations"
          s.ds_shed_only_violations;
        Printf.sprintf "      %S: %.4f," "horizon_s" s.ds_horizon;
        Printf.sprintf "      %S: %.2f," "ladder_goodput_per_s"
          s.ds_ladder_goodput;
        Printf.sprintf "      %S: %.2f" "shed_only_goodput_per_s"
          s.ds_shed_only_goodput;
        "    }";
      ]
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  %S: %S," "benchmark" "alt-degrade";
      Printf.sprintf "  %S: %d," "seed" d.dg_seed;
      Printf.sprintf "  %S: %d," "requests_per_step" d.dg_requests_per_step;
      Printf.sprintf "  %S: %d," "lanes" d.dg_lanes;
      Printf.sprintf "  %S: [" "steps";
      String.concat ",\n" (List.map step d.dg_steps);
      "  ],";
      Printf.sprintf "  %S: %d," "violations" d.dg_violations;
      Printf.sprintf "  %S: %b" "regressed" d.dg_regressed;
      "}";
      "";
    ]

let degrade_validate contents =
  let has_field f =
    let needle = Printf.sprintf "%S:" f in
    let nlen = String.length needle in
    let rec scan i =
      i + nlen <= String.length contents
      && (String.sub contents i nlen = needle || scan (i + 1))
    in
    scan 0
  in
  match
    List.filter (fun f -> not (has_field f)) degrade_required_fields
  with
  | [] -> Ok (List.length degrade_required_fields)
  | missing -> Error missing

(* ------------------------------------------------------------------ *)
(* The chaos-serve campaign.                                           *)

type chaos_outcome = {
  ch_requests : int;
  ch_served : int;
  ch_degraded : int;
  ch_recovered : int;
  ch_failed : int;
  ch_shed : int;
  ch_breaker_opens : int;
  ch_violations : Report.violation list;
  ch_digest : int64;
  ch_replay_identical : bool;
  ch_jobs_identical : bool;
}

let chaos_ok o =
  o.ch_violations = [] && o.ch_replay_identical && o.ch_jobs_identical

let chaos ?(requests = 240) ?(rate = 400.) ?(jobs = 1) ~seed () =
  let wl = campaign_workload ~seed ~requests ~rate in
  let sv =
    {
      (campaign_server ~lanes:8 ~shed_only:false) with
      Server.sv_faults = Some seed;
      (* A finite budget so a recovery that cannot land in time is an
         honest loss instead of an unbounded retry loop. *)
      sv_deadline = 5.0;
      (* Hair-trigger breakers: each batch sees at most a couple of
         coordinator losses, and the campaign should exercise the
         open -> route-around -> half-open path, not just count to
         three. *)
      sv_breaker = { Breaker.bk_threshold = 1; bk_cooldown = 0.5 };
      sv_sanitize = true;
      sv_jobs = jobs;
    }
  in
  let r = Server.run wl sv in
  let d = Server.digest r in
  let replay = Server.digest (Server.run wl sv) in
  let jobs_identical =
    if jobs <= 1 then true
    else Server.digest (Server.run wl { sv with Server.sv_jobs = 1 }) = d
  in
  {
    ch_requests = requests;
    ch_served = r.Server.served;
    ch_degraded = r.Server.degraded;
    ch_recovered = r.Server.recovered;
    ch_failed = r.Server.failed;
    ch_shed = r.Server.shed;
    ch_breaker_opens = r.Server.breaker_opens;
    ch_violations = r.Server.violations;
    ch_digest = d;
    ch_replay_identical = replay = d;
    ch_jobs_identical = jobs_identical;
  }
