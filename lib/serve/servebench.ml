type metrics = {
  m_requests : int;
  m_served : int;
  m_degraded : int;
  m_recovered : int;
  m_failed : int;
  m_shed : int;
  m_shed_overload : int;
  m_shed_rate : float;
  m_goodput : float;
  m_breaker_opens : int;
  m_ladder_transitions : int;
  m_p50 : float;
  m_p99 : float;
  m_p999 : float;
  m_makespan : float;
  m_rps : float;
  m_batches : int;
  m_occupancy : int array;
  m_violations : int;
}

let metrics_of (sv : Server.config) (r : Server.result) =
  let n = Array.length r.Server.responses in
  let latencies =
    Array.of_list
      (Array.fold_right
         (fun (rs : Server.response) acc ->
           match rs.Server.rs_verdict with
           | Server.Rejected _ -> acc
           | _ -> rs.Server.rs_latency :: acc)
         r.Server.responses [])
  in
  let pct p = if latencies = [||] then 0. else Stats.percentile latencies ~p in
  let makespan =
    Array.fold_left
      (fun acc (rs : Server.response) -> Float.max acc rs.Server.rs_completion)
      0. r.Server.responses
  in
  let good = r.Server.served + r.Server.degraded + r.Server.recovered in
  let executed = good + r.Server.failed in
  let occupancy = Array.make (max 1 sv.Server.sv_max_batch) 0 in
  Array.iter
    (fun (bs : Server.batch_stat) ->
      let k = min bs.Server.bs_size (Array.length occupancy) - 1 in
      occupancy.(k) <- occupancy.(k) + 1)
    r.Server.batches;
  {
    m_requests = n;
    m_served = r.Server.served;
    m_degraded = r.Server.degraded;
    m_recovered = r.Server.recovered;
    m_failed = r.Server.failed;
    m_shed = r.Server.shed;
    m_shed_overload = r.Server.shed_overload;
    m_shed_rate = (if n = 0 then 0. else float_of_int r.Server.shed /. float_of_int n);
    m_goodput = (if makespan > 0. then float_of_int good /. makespan else 0.);
    m_breaker_opens = r.Server.breaker_opens;
    m_ladder_transitions = r.Server.ladder_transitions;
    m_p50 = pct 50.;
    m_p99 = pct 99.;
    m_p999 = pct 99.9;
    m_makespan = makespan;
    m_rps = (if makespan > 0. then float_of_int executed /. makespan else 0.);
    m_batches = Array.length r.Server.batches;
    m_occupancy = occupancy;
    m_violations = List.length r.Server.violations;
  }

type verification = {
  v_replay_identical : bool;
  v_jobs_identical : bool;
  v_digest : int64;
}

type pool_cost = {
  pc_spawn_s : float;
  pc_reuse_s : float;
}

(* What the persistent pool saves: dispatching a trivial wave through a
   freshly created pool (create + dispatch + join — the per-batch-wave
   price the serving loop used to pay) versus through the already-warm
   shared pool. Both time the same no-op wave so the difference is pure
   domain spawn/join cost. Wall-clock and load-dependent by nature, so
   the numbers are reported, never gated on. *)
let measure_pool_cost ~jobs =
  let jobs = max 1 jobs in
  if jobs = 1 then { pc_spawn_s = 0.; pc_reuse_s = 0. }
  else begin
    let iters = 5 in
    let wave () = ignore (Sys.opaque_identity 0) in
    (* Warm the shared pool outside the timed region. *)
    ignore (Parallel.map_indexed_shared ~jobs (fun _ -> wave ()) jobs);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Parallel.map_indexed ~jobs (fun _ -> wave ()) jobs)
    done;
    let fresh = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    let t1 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Parallel.map_indexed_shared ~jobs (fun _ -> wave ()) jobs)
    done;
    let reused = (Unix.gettimeofday () -. t1) /. float_of_int iters in
    { pc_spawn_s = fresh; pc_reuse_s = reused }
  end

let run_verified wl (sv : Server.config) =
  let r = Server.run wl sv in
  let d = Server.digest r in
  let replay = Server.digest (Server.run wl sv) in
  let jobs_identical =
    if sv.Server.sv_jobs <= 1 then true
    else Server.digest (Server.run wl { sv with Server.sv_jobs = 1 }) = d
  in
  (r, metrics_of sv r, { v_replay_identical = replay = d;
                         v_jobs_identical = jobs_identical; v_digest = d })

let required_fields =
  [
    "benchmark"; "seed"; "requests"; "rate"; "tenants"; "lanes"; "max_batch";
    "window_s"; "quota_rate"; "quota_burst"; "jobs"; "cores"; "served";
    "degraded"; "recovered"; "failed"; "shed"; "shed_overload"; "shed_rate";
    "goodput_per_s"; "breaker_opens"; "ladder_transitions"; "faults_seed";
    "latency_p50_s"; "latency_p99_s";
    "latency_p999_s"; "makespan_s"; "req_per_sec"; "batches";
    "batch_occupancy"; "violations"; "digest"; "replay_identical";
    "jobs_identical"; "shards"; "pool_spawn_s"; "pool_reuse_s";
  ]

let to_json (wl : Workload.config) (sv : Server.config) (m : metrics)
    (v : verification) (pc : pool_cost) =
  let occupancy =
    "["
    ^ String.concat ", "
        (Array.to_list (Array.map string_of_int m.m_occupancy))
    ^ "]"
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  %S: %S," "benchmark" "alt-serve";
      Printf.sprintf "  %S: %d," "seed" wl.Workload.wl_seed;
      Printf.sprintf "  %S: %d," "requests" wl.Workload.wl_requests;
      Printf.sprintf "  %S: %.1f," "rate" wl.Workload.wl_rate;
      Printf.sprintf "  %S: %d," "tenants" wl.Workload.wl_tenants;
      Printf.sprintf "  %S: %d," "lanes" sv.Server.sv_lanes;
      Printf.sprintf "  %S: %d," "max_batch" sv.Server.sv_max_batch;
      Printf.sprintf "  %S: %.4f," "window_s" sv.Server.sv_window;
      Printf.sprintf "  %S: %.1f," "quota_rate" sv.Server.sv_quota_rate;
      Printf.sprintf "  %S: %d," "quota_burst" sv.Server.sv_quota_burst;
      Printf.sprintf "  %S: %d," "jobs" sv.Server.sv_jobs;
      Printf.sprintf "  %S: %d," "shards" sv.Server.sv_shards;
      Printf.sprintf "  %S: %d," "cores" (Parallel.default_jobs ());
      Printf.sprintf "  %S: %d," "served" m.m_served;
      Printf.sprintf "  %S: %d," "degraded" m.m_degraded;
      Printf.sprintf "  %S: %d," "recovered" m.m_recovered;
      Printf.sprintf "  %S: %d," "failed" m.m_failed;
      Printf.sprintf "  %S: %d," "shed" m.m_shed;
      Printf.sprintf "  %S: %d," "shed_overload" m.m_shed_overload;
      Printf.sprintf "  %S: %.4f," "shed_rate" m.m_shed_rate;
      Printf.sprintf "  %S: %.1f," "goodput_per_s" m.m_goodput;
      Printf.sprintf "  %S: %d," "breaker_opens" m.m_breaker_opens;
      Printf.sprintf "  %S: %d," "ladder_transitions" m.m_ladder_transitions;
      Printf.sprintf "  %S: %d," "faults_seed"
        (match sv.Server.sv_faults with Some s -> s | None -> -1);
      Printf.sprintf "  %S: %.6f," "latency_p50_s" m.m_p50;
      Printf.sprintf "  %S: %.6f," "latency_p99_s" m.m_p99;
      Printf.sprintf "  %S: %.6f," "latency_p999_s" m.m_p999;
      Printf.sprintf "  %S: %.6f," "makespan_s" m.m_makespan;
      Printf.sprintf "  %S: %.1f," "req_per_sec" m.m_rps;
      Printf.sprintf "  %S: %d," "batches" m.m_batches;
      Printf.sprintf "  %S: %s," "batch_occupancy" occupancy;
      Printf.sprintf "  %S: %d," "violations" m.m_violations;
      Printf.sprintf "  %S: %.6f," "pool_spawn_s" pc.pc_spawn_s;
      Printf.sprintf "  %S: %.6f," "pool_reuse_s" pc.pc_reuse_s;
      Printf.sprintf "  %S: %S," "digest" (Printf.sprintf "%016Lx" v.v_digest);
      Printf.sprintf "  %S: %b," "replay_identical" v.v_replay_identical;
      Printf.sprintf "  %S: %b" "jobs_identical" v.v_jobs_identical;
      "}";
      "";
    ]

let validate contents =
  let has_field f =
    (* Keys are unique in the emitted object, so a substring probe of the
       quoted key is a sufficient smoke check (same idiom as altcheck
       bench). *)
    let needle = Printf.sprintf "%S:" f in
    let nlen = String.length needle in
    let rec scan i =
      i + nlen <= String.length contents
      && (String.sub contents i nlen = needle || scan (i + 1))
    in
    scan 0
  in
  match List.filter (fun f -> not (has_field f)) required_fields with
  | [] -> Ok (List.length required_fields)
  | missing -> Error missing
