(* The deterministic degradation ladder.

   An admission controller driven purely by virtual-time signals. The
   load meter is a leaky bucket of *estimated* work: each admitted
   request deposits [dc_est_service * rq_work] estimated work-seconds,
   and the bucket drains at the lane capacity ([dc_lanes] work-seconds
   per virtual second). The backlog-per-lane that remains is exactly
   the queueing delay a new arrival should expect if the estimate is
   right — a plan-time stand-in for lane occupancy and queue depth,
   computable before any batch executes (actual service times are not
   known at admission time, and using them would make admission depend
   on execution order, breaking the jobs-1 = jobs-N contract).

   The second signal is the recent shed rate: exponentially decayed
   (window [dc_window]) counts of arrivals and sheds. A stream that is
   already shedding is pushed down the ladder faster,
   [pressure = backlog_per_lane * (1 + shed_fraction)].

   Each request class (scenario, policy) walks its own ladder rung
   under the shared meter, one rung per decision, with hysteresis: a
   class steps *down* (cheaper service) when pressure reaches its
   current rung's threshold, and steps back *up* only when pressure has
   fallen below the previous rung's threshold times
   [1 - dc_hysteresis] — so the ladder does not flap when pressure
   hovers at a boundary.

   Rungs (the tentpole's ladder):
     0  full service — the policy the request asked for
        (majority consensus for consensus policies);
     1  consensus elision — lint-proven exclusive scenarios keep their
        at-most-once guarantee through `?exclusive` (local latch, zero
        sync messages); other classes downgrade sync to the local
        latch;
     2  sequential fallback — first-fit `Alt_block.run_first`, no
        speculation at all;
     3  shed — an honest `Rejected {Overload}`, no tokens consumed,
        no work metered.

   [dc_shed_only] is the baseline the degrade benchmark compares
   against: the same meter, thresholds and hysteresis, but every rung
   below full service sheds instead of degrading. *)

type config = {
  dc_enabled : bool;
  dc_shed_only : bool;
  dc_est_service : float;
  dc_lanes : int;
  dc_latch_at : float;
  dc_seq_at : float;
  dc_shed_at : float;
  dc_hysteresis : float;
  dc_window : float;
}

let default ~lanes =
  {
    dc_enabled = false;
    dc_shed_only = false;
    dc_est_service = 0.2;
    dc_lanes = max 1 lanes;
    dc_latch_at = 0.4;
    dc_seq_at = 1.2;
    dc_shed_at = 3.0;
    dc_hysteresis = 0.25;
    dc_window = 0.5;
  }

type decision = Admit of { level : int } | Shed of { backlog : float }

type t = {
  cfg : config;
  mutable outstanding : float;  (* estimated work-seconds not yet drained *)
  mutable last : float;  (* virtual time of the last decision *)
  mutable dec_arrivals : float;  (* decayed arrival count *)
  mutable dec_sheds : float;  (* decayed overload-shed count *)
  levels : (string, int) Hashtbl.t;  (* class -> current rung *)
  mutable transitions : int;
  mutable overload_sheds : int;
  mutable peak_pressure : float;
}

let create cfg =
  if cfg.dc_lanes < 1 then invalid_arg "Controller.create: lanes must be >= 1";
  if cfg.dc_est_service <= 0. then
    invalid_arg "Controller.create: est_service must be > 0";
  if not (cfg.dc_latch_at < cfg.dc_seq_at && cfg.dc_seq_at < cfg.dc_shed_at)
  then invalid_arg "Controller.create: thresholds must increase up the ladder";
  if cfg.dc_hysteresis < 0. || cfg.dc_hysteresis >= 1. then
    invalid_arg "Controller.create: hysteresis must be in [0, 1)";
  if cfg.dc_window <= 0. then
    invalid_arg "Controller.create: window must be > 0";
  {
    cfg;
    outstanding = 0.;
    last = 0.;
    dec_arrivals = 0.;
    dec_sheds = 0.;
    levels = Hashtbl.create 16;
    transitions = 0;
    overload_sheds = 0;
    peak_pressure = 0.;
  }

let threshold cfg = function
  | 0 -> cfg.dc_latch_at
  | 1 -> cfg.dc_seq_at
  | _ -> cfg.dc_shed_at

(* Advance the meter to [now]: drain the leaky bucket at lane capacity
   and decay the rate counters. Monotone [now] is the arrival stream's
   own guarantee. *)
let advance t ~now =
  let dt = now -. t.last in
  if dt > 0. then begin
    t.outstanding <-
      Float.max 0. (t.outstanding -. (dt *. float_of_int t.cfg.dc_lanes));
    let decay = Float.exp (-.dt /. t.cfg.dc_window) in
    t.dec_arrivals <- t.dec_arrivals *. decay;
    t.dec_sheds <- t.dec_sheds *. decay;
    t.last <- now
  end

let pressure t =
  let backlog = t.outstanding /. float_of_int t.cfg.dc_lanes in
  let shed_frac =
    if t.dec_arrivals <= 0. then 0. else t.dec_sheds /. t.dec_arrivals
  in
  backlog *. (1. +. shed_frac)

let decide t ~cls ~now ~work =
  if not t.cfg.dc_enabled then Admit { level = 0 }
  else begin
    advance t ~now;
    let p = pressure t in
    if p > t.peak_pressure then t.peak_pressure <- p;
    let current =
      match Hashtbl.find_opt t.levels cls with Some l -> l | None -> 0
    in
    let next =
      if current < 3 && p >= threshold t.cfg current then current + 1
      else if
        current > 0
        && p <= threshold t.cfg (current - 1) *. (1. -. t.cfg.dc_hysteresis)
      then current - 1
      else current
    in
    if next <> current then begin
      Hashtbl.replace t.levels cls next;
      t.transitions <- t.transitions + 1
    end;
    let effective =
      if t.cfg.dc_shed_only && next > 0 then 3 else next
    in
    t.dec_arrivals <- t.dec_arrivals +. 1.;
    if effective >= 3 then begin
      (* Sheds deposit nothing: refused work never occupies a lane. *)
      t.dec_sheds <- t.dec_sheds +. 1.;
      t.overload_sheds <- t.overload_sheds + 1;
      Shed { backlog = t.outstanding /. float_of_int t.cfg.dc_lanes }
    end
    else begin
      t.outstanding <- t.outstanding +. (t.cfg.dc_est_service *. work);
      Admit { level = effective }
    end
  end

let level t ~cls =
  match Hashtbl.find_opt t.levels cls with Some l -> l | None -> 0

let transitions t = t.transitions
let overload_sheds t = t.overload_sheds
let peak_pressure t = t.peak_pressure
