(** Per-tenant admission quota: a token bucket in GCRA form.

    The bucket holds [burst] tokens, refills at [rate] tokens per virtual
    second, and each admitted request consumes one. The implementation is
    the generic-cell-rate form — the theoretical arrival time is computed
    {e fresh} from an integer admission counter on every decision
    ([base + steps/rate]), never accumulated float-by-float — so the
    admit/shed pattern at exact virtual-time boundaries is drift-free
    over millions of requests: request 10^6 sees the same arithmetic as
    request 1. *)

type t

val create : rate:float -> burst:int -> t
(** A full bucket. [rate > 0], [burst >= 1] ([Invalid_argument]
    otherwise). *)

val admit : t -> now:float -> bool
(** Admission decision at virtual time [now] (calls must have
    nondecreasing [now]). [true] consumes a token; [false] is a shed —
    the state does not change, so shed traffic never pushes the
    refill schedule around. Equivalent to {!conforming} followed, on
    success, by {!charge}. *)

val conforming : t -> now:float -> bool
(** The pure half of {!admit}: would a request at [now] conform? Changes
    nothing — the composition layer checks every applicable class with
    this before consuming from any of them. *)

val charge : t -> now:float -> unit
(** The commit half of {!admit}: consume one token at [now]. Only
    meaningful directly after {!conforming} returned [true] at the same
    [now] (the GCRA re-anchor assumes a conforming arrival). *)

val admit_all : t list -> now:float -> bool
(** Composite admission across quota classes (per-tenant, per-scenario,
    global, ...): [true] — and one token consumed from {e every} bucket
    — iff all of them conform at [now]. A request denied by any class
    consumes from none, so a tenant-shed request cannot drain the global
    bucket out from under other tenants. The decision is evaluated in
    list order with plain integer GCRA arithmetic: bit-exact at boundary
    rates, like the single-bucket path. *)

val admitted : t -> int
(** Requests admitted so far. *)

val tokens : t -> now:float -> float
(** Tokens available at [now], in [0, burst] — introspection for tests
    and for honest shed responses. *)
