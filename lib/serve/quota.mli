(** Per-tenant admission quota: a token bucket in GCRA form.

    The bucket holds [burst] tokens, refills at [rate] tokens per virtual
    second, and each admitted request consumes one. The implementation is
    the generic-cell-rate form — the theoretical arrival time is computed
    {e fresh} from an integer admission counter on every decision
    ([base + steps/rate]), never accumulated float-by-float — so the
    admit/shed pattern at exact virtual-time boundaries is drift-free
    over millions of requests: request 10^6 sees the same arithmetic as
    request 1. *)

type t

val create : rate:float -> burst:int -> t
(** A full bucket. [rate > 0], [burst >= 1] ([Invalid_argument]
    otherwise). *)

val admit : t -> now:float -> bool
(** Admission decision at virtual time [now] (calls must have
    nondecreasing [now]). [true] consumes a token; [false] is a shed —
    the state does not change, so shed traffic never pushes the
    refill schedule around. *)

val admitted : t -> int
(** Requests admitted so far. *)

val tokens : t -> now:float -> float
(** Tokens available at [now], in [0, burst] — introspection for tests
    and for honest shed responses. *)
