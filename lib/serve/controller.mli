(** The deterministic degradation ladder: virtual-time admission control
    that walks each request class down

    {v majority consensus -> latch elision -> sequential fallback -> shed v}

    instead of paying worst-case synchronisation at every load level.

    Signals are virtual-time only — a leaky-bucket backlog meter of
    {e estimated} admitted work (drained at lane capacity; the plan-time
    stand-in for lane occupancy and queue depth) and an exponentially
    decayed shed-rate window. Never the wall clock, and never actual
    service times (unknown at admission time, and order-dependent), so
    the ladder's trajectory is a pure function of the arrival stream and
    the config: replay-identical, and independent of [sv_jobs] and
    [sv_shards].

    Each class (scenario, policy) holds its own rung over the shared
    meter and moves one rung per decision, with hysteresis: down at its
    rung's pressure threshold, back up only below the previous rung's
    threshold scaled by [1 - dc_hysteresis] — no flapping when pressure
    hovers at a boundary. *)

type config = {
  dc_enabled : bool;  (** [false]: every decision is full service. *)
  dc_shed_only : bool;
      (** Baseline mode for the degrade benchmark: identical meter and
          rung walk, but any rung below full service sheds instead of
          degrading. *)
  dc_est_service : float;
      (** Estimated virtual service seconds per unit of [rq_work]. *)
  dc_lanes : int;  (** Drain capacity: work-seconds per virtual second. *)
  dc_latch_at : float;  (** Pressure that steps rung 0 -> 1. *)
  dc_seq_at : float;  (** 1 -> 2. *)
  dc_shed_at : float;  (** 2 -> 3 (shed). *)
  dc_hysteresis : float;  (** Fractional undershoot required to step up. *)
  dc_window : float;  (** Decay window of the shed-rate signal (s). *)
}

val default : lanes:int -> config
(** Disabled, shed-only off, 0.2 s estimated service, thresholds
    0.4 / 1.2 / 3.0 backlog-seconds per lane, 25% hysteresis, 0.5 s
    window. Enable with [{ (default ~lanes) with dc_enabled = true }]. *)

type t

val create : config -> t
(** Validates the config: increasing thresholds, [dc_hysteresis] in
    [0, 1), positive estimate and window ([Invalid_argument]
    otherwise). *)

(** One admission decision. *)
type decision =
  | Admit of { level : int }
      (** Serve at rung [level] (0 full, 1 latch elision, 2 sequential
          fallback). Deposits the request's estimated work in the
          meter. *)
  | Shed of { backlog : float }
      (** Rung 3 (or any rung below 0 in shed-only mode): refuse
          honestly. [backlog] is the backlog-seconds-per-lane the meter
          held — the client is told exactly how overloaded the server
          believed itself to be. Deposits nothing. *)

val decide : t -> cls:string -> now:float -> work:float -> decision
(** Decide for one arrival of class [cls] at virtual time [now] with
    work multiplier [work]. Calls must have nondecreasing [now] (the
    arrival stream's own order). With [dc_enabled = false] this is a
    constant [Admit {level = 0}] and touches no state. *)

val level : t -> cls:string -> int
(** The class's current rung (0 when never seen). *)

val transitions : t -> int
(** Rung moves so far, all classes — the flap measure tests bound. *)

val overload_sheds : t -> int
(** Requests refused by the ladder (not by quota). *)

val peak_pressure : t -> float
(** High-water pressure the meter reached — reported in the metrics. *)
