(** The serving layer's robustness campaigns: the degradation-ladder
    benchmark (ladder vs shed-only goodput under ramped overload,
    committed as [BENCH_degrade.json]) and the chaos-serve campaign
    (faults x overload, audited and determinism-checked). [altserve
    --degrade-bench] and [altserve --faults/--chaos] drive these; their
    failures map to the registry codes [serve-degrade] and
    [serve-chaos] ({!Report.registry}). *)

(** One load step of the degrade benchmark: the same offered stream
    served with the ladder and with the shed-only baseline. "Good" =
    [Served] + [Served_degraded] + [Recovered]. *)
type degrade_step = {
  ds_rate : float;  (** Offered arrivals per virtual second. *)
  ds_ladder_good : int;
  ds_ladder_degraded : int;
  ds_ladder_shed : int;
  ds_ladder_violations : int;
  ds_shed_only_good : int;
  ds_shed_only_shed : int;
  ds_shed_only_violations : int;
  ds_horizon : float;  (** The step's arrival horizon (virtual s). *)
  ds_ladder_goodput : float;  (** Good answers per horizon second. *)
  ds_shed_only_goodput : float;
}

type degrade_record = {
  dg_seed : int;
  dg_requests_per_step : int;
  dg_lanes : int;
  dg_steps : degrade_step list;
  dg_violations : int;  (** Across every run on both sides. *)
  dg_regressed : bool;
      (** The ladder's goodput fell below the shed-only baseline's at
          some step — the regression the benchmark gates on. *)
}

val degrade :
  ?requests_per_step:int ->
  ?rates:float list ->
  ?lanes:int ->
  seed:int ->
  unit ->
  degrade_record
(** Ramp the overload (default 250 requests per step at 100/200/400/800
    req/s into 8 lanes) and serve each step twice: ladder on, and the
    shed-only baseline (identical meter, thresholds and hysteresis —
    every rung below full service sheds). Goodput is measured over the
    step's fixed arrival horizon, so both sides are normalised by the
    same offered load. *)

val degrade_required_fields : string list

val degrade_to_json : degrade_record -> string
(** The committed [BENCH_degrade.json] record (hand-rolled JSON, unique
    keys — the repo's bench idiom). *)

val degrade_validate : string -> (int, string list) result
(** Probe a record for every required field: [Ok count] or
    [Error missing]. *)

(** The chaos campaign's verdict: the serve counters, every violation
    the per-request audits and the sanitizer raised, and the
    determinism witnesses. *)
type chaos_outcome = {
  ch_requests : int;
  ch_served : int;
  ch_degraded : int;
  ch_recovered : int;
  ch_failed : int;
  ch_shed : int;
  ch_breaker_opens : int;
  ch_violations : Report.violation list;
  ch_digest : int64;
  ch_replay_identical : bool;
  ch_jobs_identical : bool;
}

val chaos_ok : chaos_outcome -> bool
(** No violations, replay-identical, jobs-1 = jobs-N. *)

val chaos : ?requests:int -> ?rate:float -> ?jobs:int -> seed:int -> unit ->
  chaos_outcome
(** Serve an overloaded stream (default 240 requests at 400 req/s into
    8 lanes, ladder on) under the seeded fault campaign
    ([sv_faults = Some seed]: per-batch coordinator crashes and healed
    partitions, supervised recovery, breakers), with the online
    sanitizer attached and every request audited — then replay it, and
    re-run it on one domain when [jobs > 1], comparing digests. *)
