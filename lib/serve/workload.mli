(** Deterministic open-loop workload generation.

    "Millions of simulated users" as a replayable experiment: one seeded
    SplitMix64 stream drives Poisson arrivals over Zipf-distributed
    tenants, with a heavy-tailed (bounded Pareto) per-request work
    multiplier. The generator is {e open-loop} — arrival times never
    depend on service times or responses, so the same seed produces the
    same request array byte for byte, whatever the server does with it. *)

(** One request: a tenant asking for one alternative block, named by
    scenario / policy / seed exactly as an [altcheck] matrix cell is. *)
type request = {
  rq_id : int;  (** Dense arrival index, 0-based. *)
  rq_tenant : int;  (** Zipf-distributed tenant in [0, tenants). *)
  rq_arrival : float;  (** Virtual arrival time (Poisson process). *)
  rq_scenario : string;  (** An {!Invariants.default_scenarios} name. *)
  rq_policy : int;  (** Index into {!Invariants.policy_matrix}. *)
  rq_seed : int;  (** The block's scenario seed. *)
  rq_work : float;  (** Heavy-tail service multiplier, in [1, tail_cap]. *)
}

type config = {
  wl_seed : int;
  wl_requests : int;  (** Arrivals to generate. *)
  wl_rate : float;  (** Mean arrivals per virtual second. *)
  wl_tenants : int;
  wl_zipf : float;  (** Zipf exponent (popularity skew; 0 = uniform). *)
  wl_tail : float;  (** Pareto shape of the work multiplier. *)
  wl_tail_cap : float;  (** Truncation of the work multiplier. *)
  wl_scenarios : string list;  (** Scenario names drawn uniformly. *)
  wl_policies : int;  (** Policies drawn from the matrix's first [n]. *)
}

val default : config
(** Seed 1, 2000 requests at 200 req/s over 100 tenants (Zipf 1.1),
    Pareto 1.5 work capped at 20x, scenarios [counters]/[guarded],
    the policy matrix's first 8 policies. *)

val generate : config -> request array
(** The full arrival sequence, in nondecreasing [rq_arrival] order with
    [rq_id] dense from 0. Same config, same array — byte for byte. *)
