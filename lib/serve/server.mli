(** The request-driven serving layer.

    Each {!Workload.request} names an alternative block — scenario,
    policy, seed — and the server answers it with the block's winner and
    an honest cost report, or refuses it with an explicit [Rejected]
    verdict. Admitted requests are batched with {e compatible} jobs
    (same scenario, policy {e and} degradation rung: they share engine
    configuration and effective policy, so one engine serves the whole
    batch) and batches execute on a fixed set of lanes.

    Under overload the server degrades {e deterministically} rather than
    collapsing: a virtual-time admission controller ({!Controller})
    walks each request class down the ladder

    {v consensus -> proven-exclusive elision / local latch ->
       sequential fallback -> shed v}

    and every downgrade is reported honestly in the verdict. Under a
    fault campaign ([sv_faults]) consensus requests run supervised
    ({!Concurrent.run_supervised}): injected coordinator crashes and
    partitions are recovered behind epoch fences within the request's
    deadline and retry budget, per-site circuit breakers ({!Breaker})
    steer placement away from failing sites, and recovered answers are
    audited by {!Invariants.check_supervised_report} to be exactly as
    trustworthy as first-try ones.

    Determinism contract: the whole pipeline — admission decisions,
    ladder rungs, batch boundaries, fault schedules, breaker state,
    dispatch order, per-request responses — is a pure function of the
    workload and server configs; every signal the controller and the
    breakers consume is virtual-time, never wall-clock. Batches may
    {e execute} on several domains ([sv_jobs]), but each batch builds
    its entire engine-world (sites, fault plan, breakers, sanitizer)
    from its own seed and results are folded back in batch order, so
    [sv_jobs = 1] and [sv_jobs = n] are byte-identical ({!digest}
    equal). *)

(** Why a request was refused. Both are honest verdicts, not errors —
    the client is told exactly why, and nothing was charged or run. *)
type reject_cause =
  | Quota_exhausted of { tokens : float }
      (** Shed at admission: some applicable quota class held [tokens]
          < 1 (the minimum across tenant, scenario and global buckets —
          the binding constraint). No bucket was charged. *)
  | Overload of { backlog : float }
      (** Shed by the degradation ladder's bottom rung: the class was at
          rung 3 with an estimated [backlog] (virtual seconds of queued
          work per lane) behind it. *)

(** What the server answered. *)
type verdict =
  | Served of { alt : int; value : int }
      (** Full service: the block ran exactly as its policy asked and
          selected alternative [alt] with result [value]. *)
  | Served_degraded of { alt : int; value : int; level : int }
      (** Served from ladder rung [level] (1 = consensus elided to a
          proven-exclusive or local latch, 2 = sequential fallback). The
          answer satisfies at-most-once — degraded, never wrong. *)
  | Recovered of { alt : int; value : int; epochs : int }
      (** Served across a coordinator loss: the supervised block decided
          in epoch [epochs] (> 1) after recovery, behind the voters'
          epoch fence. Audited like any other win — no phantom winner. *)
  | Rejected of reject_cause
  | Failed of string  (** The block genuinely failed; the reason. *)

type response = {
  rs_id : int;  (** The request's [rq_id]. *)
  rs_tenant : int;
  rs_batch : int;  (** Executing batch id; [-1] when rejected. *)
  rs_verdict : verdict;
  rs_completion : float;
      (** Virtual completion time. Rejections complete at arrival. *)
  rs_latency : float;  (** [completion - arrival]; [0.] for rejections. *)
  rs_elapsed : float;  (** The block's own virtual elapsed time. *)
  rs_wasted : float;  (** Speculation's [wasted_cpu] for this block. *)
}

type batch_stat = {
  bs_id : int;
  bs_scenario : string;
  bs_policy : int;
  bs_level : int;  (** The ladder rung the whole batch executed at. *)
  bs_size : int;
  bs_close : float;  (** When the batch closed (full, or window expiry). *)
  bs_start : float;  (** When a lane picked it up. *)
  bs_done : float;  (** [bs_start + overhead + sum of job services]. *)
}

type config = {
  sv_lanes : int;  (** Service lanes (virtual executors). *)
  sv_max_batch : int;  (** Occupancy that closes a batch immediately. *)
  sv_window : float;  (** Max virtual time a batch waits open. *)
  sv_quota_rate : float;  (** Per-tenant token refill rate (tokens/s). *)
  sv_quota_burst : int;  (** Per-tenant bucket depth. *)
  sv_scenario_rate : float;
      (** Per-scenario quota class, shared by every tenant ([<= 0.]
          disables it, the default). A request must conform to {e all}
          applicable classes before any is charged
          ({!Quota.admit_all}). *)
  sv_scenario_burst : int;
  sv_global_rate : float;
      (** Whole-server quota class ([<= 0.] disables it, the default). *)
  sv_global_burst : int;
  sv_ladder : Controller.config;
      (** The degradation ladder (disabled by default:
          {!Controller.default} with [dc_enabled = false]). *)
  sv_deadline : float;
      (** Per-request virtual-time budget, measured on the batch engine
          from block entry ([infinity] = none, the default). Threaded
          into the block's rendezvous wait, its consensus retry backoff
          and the supervised relaunch loop, so no retry path can overrun
          it. *)
  sv_faults : int option;
      (** [Some seed] runs every batch under a seeded fault campaign:
          five named sites, coordinator crashes and healed partitions
          injected mid-consensus (batch id selects the rule, [seed]
          fixes the jitter), consensus requests supervised. [None]
          (default) serves fault-free. *)
  sv_retry_budget : int;
      (** Max supervised relaunches per request (default 2), on top of
          the deadline bound. *)
  sv_breaker : Breaker.config;  (** Per-site circuit breakers. *)
  sv_overhead : float;  (** Fixed per-batch dispatch cost (s). *)
  sv_sanitize : bool;  (** Attach the online sanitizer to each engine. *)
  sv_jobs : int;  (** Domains executing batches. *)
  sv_shards : int;
      (** Event-loop shards inside each batch engine ({!Engine.create}
          [?shards]); results are byte-identical for any value. *)
}

val default : config
(** 64 lanes (a block's mean service time is ~0.2 virtual seconds, so 64
    lanes keep the default 200 req/s open-loop load below saturation),
    batches of up to 8 closing after 0.05s, tenant quota 50 tokens/s
    with burst 10, scenario/global quota classes and the ladder
    disabled, no deadline, no faults, retry budget 2, default breakers,
    0.0005s dispatch overhead, no sanitizer, 1 job. With the defaults
    the pipeline is byte-identical to the pre-ladder server. *)

type result = {
  responses : response array;  (** Indexed by [rq_id]. *)
  batches : batch_stat array;  (** In dispatch order. *)
  violations : Report.violation list;
      (** Per-request report audits ({!Invariants.check_report},
          {!Invariants.check_supervised_report} for supervised runs)
          plus sanitizer flags; empty on a healthy run. *)
  served : int;
  degraded : int;  (** [Served_degraded] answers. *)
  recovered : int;  (** [Recovered] answers. *)
  failed : int;
  shed : int;  (** All [Rejected] verdicts (quota + overload). *)
  shed_overload : int;  (** ... of which the ladder's bottom rung shed. *)
  breaker_opens : int;  (** Circuit-breaker trips across all batches. *)
  ladder_transitions : int;  (** Rung changes across all classes. *)
  peak_pressure : float;  (** Highest pressure the controller saw. *)
}

val run : Workload.config -> config -> result
(** Generate the workload and serve it to completion. *)

val digest : result -> int64
(** FNV-1a over every response's rendered fields — the replay fingerprint
    [altserve --verify-determinism] and the jobs-1-vs-N check compare. *)
