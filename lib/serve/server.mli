(** The request-driven serving layer.

    Each {!Workload.request} names an alternative block — scenario,
    policy, seed — and the server answers it with the block's winner and
    an honest cost report, or sheds it with an explicit [Rejected]
    verdict when the tenant's token bucket is empty. Admitted requests
    are batched with {e compatible} jobs (same scenario and policy: they
    share engine configuration, so one engine serves the whole batch)
    and batches execute on a fixed set of lanes.

    Determinism contract: the whole pipeline — admission decisions,
    batch boundaries, dispatch order, per-request responses — is a pure
    function of the workload and server configs. Batches may {e execute}
    on several domains ([sv_jobs]), but each batch builds its entire
    engine-world from its own seed and results are folded back in batch
    order, so [sv_jobs = 1] and [sv_jobs = n] are byte-identical
    ({!digest} equal). *)

(** What the server answered. *)
type verdict =
  | Served of { alt : int; value : int }
      (** The block selected alternative [alt] with result [value]. *)
  | Failed of string  (** The block genuinely failed; the reason. *)
  | Rejected of { tokens : float }
      (** Shed at admission: the tenant's bucket held [tokens] < 1. An
          honest verdict, not an error — the client is told exactly why. *)

type response = {
  rs_id : int;  (** The request's [rq_id]. *)
  rs_tenant : int;
  rs_batch : int;  (** Executing batch id; [-1] when rejected. *)
  rs_verdict : verdict;
  rs_completion : float;
      (** Virtual completion time. Rejections complete at arrival. *)
  rs_latency : float;  (** [completion - arrival]; [0.] for rejections. *)
  rs_elapsed : float;  (** The block's own virtual elapsed time. *)
  rs_wasted : float;  (** Speculation's [wasted_cpu] for this block. *)
}

type batch_stat = {
  bs_id : int;
  bs_scenario : string;
  bs_policy : int;
  bs_size : int;
  bs_close : float;  (** When the batch closed (full, or window expiry). *)
  bs_start : float;  (** When a lane picked it up. *)
  bs_done : float;  (** [bs_start + overhead + sum of job services]. *)
}

type config = {
  sv_lanes : int;  (** Service lanes (virtual executors). *)
  sv_max_batch : int;  (** Occupancy that closes a batch immediately. *)
  sv_window : float;  (** Max virtual time a batch waits open. *)
  sv_quota_rate : float;  (** Per-tenant token refill rate (tokens/s). *)
  sv_quota_burst : int;  (** Per-tenant bucket depth. *)
  sv_overhead : float;  (** Fixed per-batch dispatch cost (s). *)
  sv_sanitize : bool;  (** Attach the online sanitizer to each engine. *)
  sv_jobs : int;  (** Domains executing batches. *)
  sv_shards : int;
      (** Event-loop shards inside each batch engine ({!Engine.create}
          [?shards]); results are byte-identical for any value. *)
}

val default : config
(** 64 lanes (a block's mean service time is ~0.2 virtual seconds, so 64
    lanes keep the default 200 req/s open-loop load below saturation),
    batches of up to 8 closing after 0.05s, quota 50 tokens/s with burst
    10, 0.0005s dispatch overhead, no sanitizer, 1 job. *)

type result = {
  responses : response array;  (** Indexed by [rq_id]. *)
  batches : batch_stat array;  (** In dispatch order. *)
  violations : Report.violation list;
      (** Per-request report audits ({!Invariants.check_report}) plus
          sanitizer flags; empty on a healthy run. *)
  served : int;
  failed : int;
  shed : int;
}

val run : Workload.config -> config -> result
(** Generate the workload and serve it to completion. *)

val digest : result -> int64
(** FNV-1a over every response's rendered fields — the replay fingerprint
    [altserve --verify-determinism] and the jobs-1-vs-N check compare. *)
