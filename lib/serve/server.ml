type reject_cause =
  | Quota_exhausted of { tokens : float }
  | Overload of { backlog : float }

type verdict =
  | Served of { alt : int; value : int }
  | Served_degraded of { alt : int; value : int; level : int }
  | Recovered of { alt : int; value : int; epochs : int }
  | Rejected of reject_cause
  | Failed of string

type response = {
  rs_id : int;
  rs_tenant : int;
  rs_batch : int;
  rs_verdict : verdict;
  rs_completion : float;
  rs_latency : float;
  rs_elapsed : float;
  rs_wasted : float;
}

type batch_stat = {
  bs_id : int;
  bs_scenario : string;
  bs_policy : int;
  bs_level : int;
  bs_size : int;
  bs_close : float;
  bs_start : float;
  bs_done : float;
}

type config = {
  sv_lanes : int;
  sv_max_batch : int;
  sv_window : float;
  sv_quota_rate : float;
  sv_quota_burst : int;
  sv_scenario_rate : float;
  sv_scenario_burst : int;
  sv_global_rate : float;
  sv_global_burst : int;
  sv_ladder : Controller.config;
  sv_deadline : float;
  sv_faults : int option;
  sv_retry_budget : int;
  sv_breaker : Breaker.config;
  sv_overhead : float;
  sv_sanitize : bool;
  sv_jobs : int;
  sv_shards : int;
}

let default =
  {
    sv_lanes = 64;
    sv_max_batch = 8;
    sv_window = 0.05;
    sv_quota_rate = 50.;
    sv_quota_burst = 10;
    sv_scenario_rate = 0.;
    sv_scenario_burst = 1;
    sv_global_rate = 0.;
    sv_global_burst = 1;
    sv_ladder = Controller.default ~lanes:64;
    sv_deadline = infinity;
    sv_faults = None;
    sv_retry_budget = 2;
    sv_breaker = Breaker.default;
    sv_overhead = 0.0005;
    sv_sanitize = false;
    sv_jobs = 1;
    sv_shards = 1;
  }

type result = {
  responses : response array;
  batches : batch_stat array;
  violations : Report.violation list;
  served : int;
  degraded : int;
  recovered : int;
  failed : int;
  shed : int;
  shed_overload : int;
  breaker_opens : int;
  ladder_transitions : int;
  peak_pressure : float;
}

(* ------------------------------------------------------------------ *)
(* Phase 1: admission and batch formation.

   A single sequential scan over the (already time-ordered) arrivals.
   Everything here is plain arithmetic on the request stream — no
   engine, no parallelism — so the admission decisions, ladder rungs and
   batch boundaries are trivially a function of the two configs. Batches
   are keyed by (scenario, policy, ladder rung): jobs in one batch share
   an engine and an effective policy, so they must agree on everything
   that shapes both. *)

type open_batch = {
  ob_seq : int;  (* open order, breaks deadline ties deterministically *)
  ob_scenario : string;
  ob_policy : int;
  ob_level : int;
  ob_deadline : float;
  mutable ob_jobs : Workload.request list;  (* newest first *)
  mutable ob_count : int;
}

type closed_batch = {
  cb_id : int;
  cb_scenario : string;
  cb_policy : int;
  cb_level : int;
  cb_close : float;
  cb_jobs : Workload.request array;  (* arrival order *)
}

let close_batch ~id ~at ob =
  {
    cb_id = id;
    cb_scenario = ob.ob_scenario;
    cb_policy = ob.ob_policy;
    cb_level = ob.ob_level;
    cb_close = at;
    cb_jobs = Array.of_list (List.rev ob.ob_jobs);
  }

type admission_stats = {
  ad_shed_overload : int;
  ad_transitions : int;
  ad_peak_pressure : float;
}

let plan (wl : Workload.config) (sv : config) (requests : Workload.request array)
    =
  let tenant_quotas =
    Array.init wl.Workload.wl_tenants (fun _ ->
        Quota.create ~rate:sv.sv_quota_rate ~burst:sv.sv_quota_burst)
  in
  (* The optional wider quota classes: per-scenario and global buckets.
     A request must pass every applicable class; the conforming/charge
     split inside [Quota.admit_all] guarantees a shed consumes from
     none. *)
  let scenario_quotas =
    if sv.sv_scenario_rate <= 0. then []
    else
      List.map
        (fun s ->
          (s, Quota.create ~rate:sv.sv_scenario_rate ~burst:sv.sv_scenario_burst))
        wl.Workload.wl_scenarios
  in
  let global_quota =
    if sv.sv_global_rate <= 0. then None
    else Some (Quota.create ~rate:sv.sv_global_rate ~burst:sv.sv_global_burst)
  in
  let ladder = Controller.create sv.sv_ladder in
  let opens : open_batch list ref = ref [] in
  let open_seq = ref 0 in
  let closed = ref [] in
  let n_closed = ref 0 in
  let rejected = ref [] in
  let emit_close ~at ob =
    closed := close_batch ~id:!n_closed ~at ob :: !closed;
    incr n_closed
  in
  (* Expire every open batch whose window ended at or before [now], in
     (deadline, open order): between two arrivals the window timers are
     the only events, and they fire in time order. *)
  let expire now =
    let due, live =
      List.partition (fun ob -> ob.ob_deadline <= now) !opens
    in
    opens := live;
    List.sort
      (fun a b ->
        match compare a.ob_deadline b.ob_deadline with
        | 0 -> compare a.ob_seq b.ob_seq
        | c -> c)
      due
    |> List.iter (fun ob -> emit_close ~at:ob.ob_deadline ob)
  in
  Array.iter
    (fun (rq : Workload.request) ->
      let now = rq.Workload.rq_arrival in
      expire now;
      let buckets =
        (tenant_quotas.(rq.Workload.rq_tenant)
         :: (match List.assoc_opt rq.Workload.rq_scenario scenario_quotas with
            | Some q -> [ q ]
            | None -> []))
        @ (match global_quota with Some q -> [ q ] | None -> [])
      in
      if not (Quota.admit_all buckets ~now) then begin
        (* The honest refusal names the binding constraint: the fewest
           tokens any applicable class held. *)
        let tokens =
          List.fold_left
            (fun acc q -> Float.min acc (Quota.tokens q ~now))
            infinity buckets
        in
        rejected := (rq, Quota_exhausted { tokens }) :: !rejected
      end
      else begin
        let cls =
          rq.Workload.rq_scenario ^ "/" ^ string_of_int rq.Workload.rq_policy
        in
        match
          Controller.decide ladder ~cls ~now ~work:rq.Workload.rq_work
        with
        | Controller.Shed { backlog } ->
            rejected := (rq, Overload { backlog }) :: !rejected
        | Controller.Admit { level } ->
            let key ob =
              String.equal ob.ob_scenario rq.Workload.rq_scenario
              && ob.ob_policy = rq.Workload.rq_policy
              && ob.ob_level = level
            in
            let ob =
              match List.find_opt key !opens with
              | Some ob -> ob
              | None ->
                  let ob =
                    {
                      ob_seq = !open_seq;
                      ob_scenario = rq.Workload.rq_scenario;
                      ob_policy = rq.Workload.rq_policy;
                      ob_level = level;
                      ob_deadline = now +. sv.sv_window;
                      ob_jobs = [];
                      ob_count = 0;
                    }
                  in
                  incr open_seq;
                  opens := !opens @ [ ob ];
                  ob
            in
            ob.ob_jobs <- rq :: ob.ob_jobs;
            ob.ob_count <- ob.ob_count + 1;
            if ob.ob_count >= sv.sv_max_batch then begin
              opens := List.filter (fun o -> o != ob) !opens;
              emit_close ~at:now ob
            end
      end)
    requests;
  expire infinity;
  let stats =
    {
      ad_shed_overload = Controller.overload_sheds ladder;
      ad_transitions = Controller.transitions ladder;
      ad_peak_pressure = Controller.peak_pressure ladder;
    }
  in
  (Array.of_list (List.rev !closed), List.rev !rejected, stats)

(* ------------------------------------------------------------------ *)
(* Phase 2: batch execution.

   One engine per batch, jobs run back to back on it. The engine's seed
   is derived from (workload seed, batch id) only, and batches share no
   mutable state — sites topology, fault plan, circuit breakers and
   sanitizer are all scoped to the batch engine — so executing batches
   on N domains in any order gives the same per-batch results as one
   domain in dispatch order. Trace recording stays off (these runs are
   throughput, not post-mortem); the sanitizer, when requested, watches
   through the trace observer, which is live even with recording off. *)

type job_result = {
  jr_verdict : verdict;
  jr_elapsed : float;
  jr_wasted : float;
  jr_violations : Report.violation list;
}

let resolve_scenario name =
  match Invariants.find_scenario name with
  | Some sc -> sc
  | None -> invalid_arg (Printf.sprintf "Server.run: unknown scenario %S" name)

let resolve_policy idx =
  match List.nth_opt Invariants.policy_matrix idx with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Server.run: policy index %d" idx)

(* The serving layer's static exclusivity registry: scenarios whose
   alternatives are provably mutually exclusive by construction, the
   proof obligation `?exclusive` demands. "guarded" builds one closed
   guard, one alternative that always raises, and exactly one that can
   succeed; "all-fail" has no succeeding alternative at all. "counters"
   and "teletype" race genuinely independent successes and must keep
   their distributed latch. (The same judgement Lint's [Independent]
   verdict encodes for Prolog goals, hand-established here because these
   scenarios are OCaml closures.) *)
let proven_exclusive = function "guarded" | "all-fail" -> true | _ -> false

(* Five named failure domains per faulted batch engine, like the
   altcheck sites campaigns: voters spread across all five, coordinators
   placed per epoch. *)
let fault_sites = [ "s0"; "s1"; "s2"; "s3"; "s4" ]

(* The per-batch chaos campaign, derived from the batch id alone (the
   plan seed mixes in the fault seed): a third of the batches lose the
   first coordinator site mid-request, a third suffer a healed
   partition that isolates it, a third run clean. 0.06-0.08 s is the
   consensus window of the first job (children spawn ~0.07 s in,
   consensus traffic runs ~0.08-0.10 s), so the injection lands
   mid-decision; later jobs in the batch inherit the crashed topology,
   which is what exercises placement and the circuit breakers. *)
let fault_rules cb_id =
  match cb_id mod 3 with
  | 0 -> [ Faultplan.crash_site ~at:0.06 ~jitter:0.02 "s0" ]
  | 1 ->
      [
        Faultplan.partition_sites ~at:0.06 ~jitter:0.02 ~heal_after:0.08
          [ "s0" ]
          [ "s1"; "s2"; "s3"; "s4" ];
      ]
  | _ -> []

(* Ladder rung 2: first-fit sequential execution in a fresh root
   process, no speculation. The report is fabricated — honestly: it
   claims no winner, no children and no sync traffic, and flags itself
   degraded, which is exactly the shape [Invariants.check_report]
   demands of a sequential fallback. *)
let run_sequential engine ~space alts =
  let outcome = ref None in
  let t0 = Engine.now engine in
  let pid =
    Engine.spawn engine ~space ~cloneable:false ~name:"alt-seq" (fun ctx ->
        outcome := Some (Alt_block.run_first ctx alts))
  in
  Engine.preserve_space engine pid;
  Engine.run engine;
  (!outcome, Engine.now engine -. t0)

let execute_batch (wl : Workload.config) (sv : config) (cb : closed_batch) =
  let engine =
    Engine.create ~model:Cost_model.att_3b2
      ~seed:((wl.Workload.wl_seed * 1_000_003) + cb.cb_id)
      ~trace:false ~shards:(max 1 sv.sv_shards) ()
  in
  let sites =
    match sv.sv_faults with
    | None -> None
    | Some fseed ->
        let sites = Sites.create engine ~names:fault_sites in
        let plan =
          Faultplan.make
            ~seed:((fseed * 1_000_003) + cb.cb_id)
            (fault_rules cb.cb_id)
        in
        Faultplan.install ~sites plan engine;
        Some sites
  in
  let breakers = Hashtbl.create 8 in
  let breaker site =
    match Hashtbl.find_opt breakers site with
    | Some b -> b
    | None ->
        let b = Breaker.create sv.sv_breaker in
        Hashtbl.add breakers site b;
        b
  in
  let sanitizer = if sv.sv_sanitize then Some (Sanitizer.attach engine) else None in
  let scenario = resolve_scenario cb.cb_scenario in
  let policy = resolve_policy cb.cb_policy in
  let consensus_policy =
    match policy.Concurrent.sync with
    | Concurrent.Consensus _ -> true
    | Concurrent.Local -> false
  in
  (* The batch's rung, resolved to an execution mode once. A rung-1
     class keeps its at-most-once story: scenarios in the static
     exclusivity registry elide consensus through `?exclusive` (same
     winner, zero sync messages); everything else downgrades to the
     local latch. A rung-1 request that already asked for the local
     latch gets exactly what it asked for — that is full service, not a
     degradation, and is labelled honestly as such. *)
  let eff_policy, eff_exclusive, eff_level =
    match cb.cb_level with
    | 0 -> (policy, false, 0)
    | 1 when consensus_policy && proven_exclusive cb.cb_scenario ->
        (policy, true, 1)
    | 1 when consensus_policy ->
        ({ policy with Concurrent.sync = Concurrent.Local }, false, 1)
    | 1 -> (policy, false, 0)
    | _ -> ({ policy with Concurrent.sync = Concurrent.Local }, false, 2)
  in
  Array.map
    (fun (rq : Workload.request) ->
      let space =
        Address_space.create (Engine.frame_store engine) (Engine.model engine)
      in
      Address_space.set_tracking space true;
      scenario.Invariants.prepare engine space;
      ignore (Address_space.drain_cost space);
      let source =
        if not scenario.Invariants.uses_source then None
        else begin
          let s =
            Source.create engine
              ~name:
                (Printf.sprintf "%s-tty-%d" scenario.Invariants.sc_name
                   rq.Workload.rq_id)
          in
          Source.feed s scenario.Invariants.source_script;
          Some s
        end
      in
      (match (sanitizer, source) with
      | Some sz, Some src -> Sanitizer.observe_source sz src
      | _ -> ());
      let alts =
        scenario.Invariants.alts engine ~seed:rq.Workload.rq_seed ~source
      in
      let t_start = Engine.now engine in
      let deadline = t_start +. sv.sv_deadline in
      let jr =
        if eff_level = 2 then begin
          let outcome, elapsed = run_sequential engine ~space alts in
          match outcome with
          | None ->
              (* The root died mid-fallback (site fault): no outcome,
                 no invented one. *)
              {
                jr_verdict = Failed "coordinator lost";
                jr_elapsed = elapsed;
                jr_wasted = 0.;
                jr_violations = [];
              }
          | Some outcome ->
              let attempted =
                match outcome with
                | Alt_block.Selected { index; _ } -> index + 1
                | Alt_block.Block_failed _ -> List.length alts
              in
              let rep =
                {
                  Concurrent.outcome;
                  winner = None;
                  children = [];
                  elapsed;
                  setup_cost = 0.;
                  spawned = 0;
                  selection_cost = 0.;
                  wasted_cpu = 0.;
                  child_cow_copies = 0;
                  sync_messages = 0;
                  attempted;
                  degraded = true;
                }
              in
              let violations =
                Invariants.check_report ~scenario:cb.cb_scenario
                  ~policy:eff_policy ~seed:rq.Workload.rq_seed rep
              in
              let verdict =
                match outcome with
                | Alt_block.Selected { index; value } ->
                    Served_degraded { alt = index; value; level = 2 }
                | Alt_block.Block_failed reason -> Failed reason
              in
              {
                jr_verdict = verdict;
                jr_elapsed = elapsed;
                jr_wasted = 0.;
                jr_violations = violations;
              }
        end
        else begin
          let supervise =
            Option.is_some sites && consensus_policy && eff_level = 0
          in
          if supervise then begin
            let sites = Option.get sites in
            let avoid =
              List.filter
                (fun s -> not (Breaker.allow (breaker s) ~now:t_start))
                fault_sites
            in
            let sr =
              Concurrent.run_supervised engine ~policy ~space
                ~max_restarts:sv.sv_retry_budget ~deadline ~avoid_sites:avoid
                ~sites alts
            in
            let now = Engine.now engine in
            (* Every incarnation that died charges its site's breaker;
               the final incarnation settles its own site by outcome. *)
            List.iter
              (fun (failed, _successor, _epoch) ->
                match Engine.site_of engine failed with
                | Some s -> Breaker.record_failure (breaker s) ~now
                | None -> ())
              sr.Concurrent.sr_recoveries;
            (match sr.Concurrent.sr_site with
            | Some s -> (
                match sr.Concurrent.sr_report.Concurrent.outcome with
                | Alt_block.Selected _ -> Breaker.record_success (breaker s)
                | Alt_block.Block_failed _ ->
                    Breaker.record_failure (breaker s) ~now)
            | None -> ());
            let violations =
              Invariants.check_supervised_report ~scenario:cb.cb_scenario
                ~policy ~seed:rq.Workload.rq_seed sr
            in
            let rep = sr.Concurrent.sr_report in
            let verdict =
              match rep.Concurrent.outcome with
              | Alt_block.Selected { index; value } ->
                  if sr.Concurrent.sr_recoveries <> [] then
                    Recovered
                      { alt = index; value; epochs = sr.Concurrent.sr_epoch }
                  else Served { alt = index; value }
              | Alt_block.Block_failed reason -> Failed reason
            in
            {
              jr_verdict = verdict;
              jr_elapsed = rep.Concurrent.elapsed;
              jr_wasted = rep.Concurrent.wasted_cpu;
              jr_violations = violations;
            }
          end
          else begin
            match
              Concurrent.run_toplevel engine ~policy:eff_policy ~space
                ~exclusive:eff_exclusive ~deadline alts
            with
            | rep ->
                let violations =
                  Invariants.check_report ~scenario:cb.cb_scenario
                    ~policy:eff_policy ~seed:rq.Workload.rq_seed rep
                in
                let verdict =
                  match rep.Concurrent.outcome with
                  | Alt_block.Selected { index; value } when eff_level > 0 ->
                      Served_degraded { alt = index; value; level = eff_level }
                  | Alt_block.Selected { index; value } ->
                      Served { alt = index; value }
                  | Alt_block.Block_failed reason -> Failed reason
                in
                {
                  jr_verdict = verdict;
                  jr_elapsed = rep.Concurrent.elapsed;
                  jr_wasted = rep.Concurrent.wasted_cpu;
                  jr_violations = violations;
                }
            | exception Failure _ when Option.is_some sites ->
                (* The unsupervised root was killed by the fault campaign
                   (rung >= 1 trades the watchdog away, and local-latch
                   blocks never had one): an honest loss, never a made-up
                   answer. *)
                {
                  jr_verdict = Failed "coordinator lost";
                  jr_elapsed = Engine.now engine -. t_start;
                  jr_wasted = 0.;
                  jr_violations = [];
                }
          end
        end
      in
      (* The engine hosts the next job's block too: reset the sanitizer's
         at-most-once scope so job n+1's win is not a "duplicate" of job
         n's. *)
      (match sanitizer with Some sz -> Sanitizer.next_block sz | None -> ());
      jr)
    cb.cb_jobs
  |> fun results ->
  let sz_viols =
    match sanitizer with
    | None -> []
    | Some sz ->
        Sanitizer.detach sz;
        Sanitizer.violations sz ~scenario:cb.cb_scenario
          ~policy:(Concurrent.describe policy)
          ~seed:cb.cb_id
  in
  let opens =
    List.fold_left
      (fun acc site ->
        match Hashtbl.find_opt breakers site with
        | Some b -> acc + Breaker.opens b
        | None -> acc)
      0 fault_sites
  in
  (results, sz_viols, opens)

(* ------------------------------------------------------------------ *)
(* Phase 3: the lane timeline.

   Virtual executors. Batches are dispatched in id (= close) order to
   the earliest-free lane, lowest index winning ties; a batch's service
   time is the dispatch overhead plus each job's own virtual elapsed
   time scaled by its heavy-tail work multiplier, and jobs complete in
   order at the running prefix sum. All plain folds — determinism needs
   no argument here. *)

let run (wl : Workload.config) (sv : config) =
  if sv.sv_lanes < 1 then invalid_arg "Server.run: lanes must be >= 1";
  if sv.sv_max_batch < 1 then invalid_arg "Server.run: max_batch must be >= 1";
  if sv.sv_window < 0. then invalid_arg "Server.run: negative window";
  if sv.sv_overhead < 0. then invalid_arg "Server.run: negative overhead";
  if sv.sv_deadline <= 0. then invalid_arg "Server.run: deadline must be > 0";
  if sv.sv_retry_budget < 0 then
    invalid_arg "Server.run: negative retry budget";
  let requests = Workload.generate wl in
  List.iter
    (fun name -> ignore (resolve_scenario name))
    wl.Workload.wl_scenarios;
  if wl.Workload.wl_policies > List.length Invariants.policy_matrix then
    invalid_arg "Server.run: wl_policies exceeds the policy matrix";
  let batches, rejected, ad = plan wl sv requests in
  let executed =
    Parallel.map_indexed_shared ~jobs:(max 1 sv.sv_jobs)
      (fun i -> execute_batch wl sv batches.(i))
      (Array.length batches)
  in
  let responses =
    Array.make (Array.length requests)
      {
        rs_id = -1;
        rs_tenant = -1;
        rs_batch = -1;
        rs_verdict = Failed "unreached";
        rs_completion = 0.;
        rs_latency = 0.;
        rs_elapsed = 0.;
        rs_wasted = 0.;
      }
  in
  List.iter
    (fun ((rq : Workload.request), cause) ->
      responses.(rq.Workload.rq_id) <-
        {
          rs_id = rq.Workload.rq_id;
          rs_tenant = rq.Workload.rq_tenant;
          rs_batch = -1;
          rs_verdict = Rejected cause;
          rs_completion = rq.Workload.rq_arrival;
          rs_latency = 0.;
          rs_elapsed = 0.;
          rs_wasted = 0.;
        })
    rejected;
  let lane_free = Array.make sv.sv_lanes 0. in
  let violations = ref [] in
  let served = ref 0 and failed = ref 0 in
  let degraded = ref 0 and recovered = ref 0 in
  let breaker_opens = ref 0 in
  let stats =
    Array.mapi
      (fun b (cb : closed_batch) ->
        let jobs, sz_viols, opens = executed.(b) in
        breaker_opens := !breaker_opens + opens;
        let lane = ref 0 in
        for l = 1 to sv.sv_lanes - 1 do
          if lane_free.(l) < lane_free.(!lane) then lane := l
        done;
        let start = Float.max cb.cb_close lane_free.(!lane) in
        let t = ref (start +. sv.sv_overhead) in
        Array.iteri
          (fun j (rq : Workload.request) ->
            let jr = jobs.(j) in
            t := !t +. (jr.jr_elapsed *. rq.Workload.rq_work);
            (match jr.jr_verdict with
            | Served _ -> incr served
            | Served_degraded _ -> incr degraded
            | Recovered _ -> incr recovered
            | Failed _ -> incr failed
            | Rejected _ -> assert false (* rejections never reach a batch *));
            violations := List.rev_append jr.jr_violations !violations;
            responses.(rq.Workload.rq_id) <-
              {
                rs_id = rq.Workload.rq_id;
                rs_tenant = rq.Workload.rq_tenant;
                rs_batch = cb.cb_id;
                rs_verdict = jr.jr_verdict;
                rs_completion = !t;
                rs_latency = !t -. rq.Workload.rq_arrival;
                rs_elapsed = jr.jr_elapsed;
                rs_wasted = jr.jr_wasted;
              })
          cb.cb_jobs;
        violations := List.rev_append sz_viols !violations;
        lane_free.(!lane) <- !t;
        {
          bs_id = cb.cb_id;
          bs_scenario = cb.cb_scenario;
          bs_policy = cb.cb_policy;
          bs_level = cb.cb_level;
          bs_size = Array.length cb.cb_jobs;
          bs_close = cb.cb_close;
          bs_start = start;
          bs_done = !t;
        })
      batches
  in
  {
    responses;
    batches = stats;
    violations = List.rev !violations;
    served = !served;
    degraded = !degraded;
    recovered = !recovered;
    failed = !failed;
    shed = List.length rejected;
    shed_overload = ad.ad_shed_overload;
    breaker_opens = !breaker_opens;
    ladder_transitions = ad.ad_transitions;
    peak_pressure = ad.ad_peak_pressure;
  }

(* ------------------------------------------------------------------ *)

let render_verdict = function
  | Served { alt; value } -> Printf.sprintf "served:%d:%d" alt value
  | Served_degraded { alt; value; level } ->
      Printf.sprintf "degraded:L%d:%d:%d" level alt value
  | Recovered { alt; value; epochs } ->
      Printf.sprintf "recovered:e%d:%d:%d" epochs alt value
  | Failed reason -> Printf.sprintf "failed:%s" reason
  | Rejected (Quota_exhausted { tokens }) ->
      Printf.sprintf "rejected:%.17g" tokens
  | Rejected (Overload { backlog }) ->
      Printf.sprintf "rejected:overload:%.17g" backlog

let render_response rs =
  Printf.sprintf "%d|%d|%d|%s|%.17g|%.17g|%.17g|%.17g" rs.rs_id rs.rs_tenant
    rs.rs_batch (render_verdict rs.rs_verdict) rs.rs_completion rs.rs_latency
    rs.rs_elapsed rs.rs_wasted

let digest r =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s
  in
  Array.iter (fun rs -> mix (render_response rs)) r.responses;
  !h
