type verdict =
  | Served of { alt : int; value : int }
  | Failed of string
  | Rejected of { tokens : float }

type response = {
  rs_id : int;
  rs_tenant : int;
  rs_batch : int;
  rs_verdict : verdict;
  rs_completion : float;
  rs_latency : float;
  rs_elapsed : float;
  rs_wasted : float;
}

type batch_stat = {
  bs_id : int;
  bs_scenario : string;
  bs_policy : int;
  bs_size : int;
  bs_close : float;
  bs_start : float;
  bs_done : float;
}

type config = {
  sv_lanes : int;
  sv_max_batch : int;
  sv_window : float;
  sv_quota_rate : float;
  sv_quota_burst : int;
  sv_overhead : float;
  sv_sanitize : bool;
  sv_jobs : int;
  sv_shards : int;
}

let default =
  {
    sv_lanes = 64;
    sv_max_batch = 8;
    sv_window = 0.05;
    sv_quota_rate = 50.;
    sv_quota_burst = 10;
    sv_overhead = 0.0005;
    sv_sanitize = false;
    sv_jobs = 1;
    sv_shards = 1;
  }

type result = {
  responses : response array;
  batches : batch_stat array;
  violations : Report.violation list;
  served : int;
  failed : int;
  shed : int;
}

(* ------------------------------------------------------------------ *)
(* Phase 1: admission and batch formation.

   A single sequential scan over the (already time-ordered) arrivals.
   Everything here is plain arithmetic on the request stream — no
   engine, no parallelism — so the admission decisions and batch
   boundaries are trivially a function of the two configs. Batches are
   keyed by (scenario, policy): jobs in one batch share an engine, so
   they must agree on everything that shapes it. *)

type open_batch = {
  ob_seq : int;  (* open order, breaks deadline ties deterministically *)
  ob_scenario : string;
  ob_policy : int;
  ob_deadline : float;
  mutable ob_jobs : Workload.request list;  (* newest first *)
  mutable ob_count : int;
}

type closed_batch = {
  cb_id : int;
  cb_scenario : string;
  cb_policy : int;
  cb_close : float;
  cb_jobs : Workload.request array;  (* arrival order *)
}

let close_batch ~id ~at ob =
  {
    cb_id = id;
    cb_scenario = ob.ob_scenario;
    cb_policy = ob.ob_policy;
    cb_close = at;
    cb_jobs = Array.of_list (List.rev ob.ob_jobs);
  }

let plan (wl : Workload.config) (sv : config) (requests : Workload.request array)
    =
  let quotas =
    Array.init wl.Workload.wl_tenants (fun _ ->
        Quota.create ~rate:sv.sv_quota_rate ~burst:sv.sv_quota_burst)
  in
  let opens : open_batch list ref = ref [] in
  let open_seq = ref 0 in
  let closed = ref [] in
  let n_closed = ref 0 in
  let rejected = ref [] in
  let emit_close ~at ob =
    closed := close_batch ~id:!n_closed ~at ob :: !closed;
    incr n_closed
  in
  (* Expire every open batch whose window ended at or before [now], in
     (deadline, open order): between two arrivals the window timers are
     the only events, and they fire in time order. *)
  let expire now =
    let due, live =
      List.partition (fun ob -> ob.ob_deadline <= now) !opens
    in
    opens := live;
    List.sort
      (fun a b ->
        match compare a.ob_deadline b.ob_deadline with
        | 0 -> compare a.ob_seq b.ob_seq
        | c -> c)
      due
    |> List.iter (fun ob -> emit_close ~at:ob.ob_deadline ob)
  in
  Array.iter
    (fun (rq : Workload.request) ->
      let now = rq.Workload.rq_arrival in
      expire now;
      let q = quotas.(rq.Workload.rq_tenant) in
      if not (Quota.admit q ~now) then
        rejected := (rq, Quota.tokens q ~now) :: !rejected
      else begin
        let key ob =
          String.equal ob.ob_scenario rq.Workload.rq_scenario
          && ob.ob_policy = rq.Workload.rq_policy
        in
        let ob =
          match List.find_opt key !opens with
          | Some ob -> ob
          | None ->
              let ob =
                {
                  ob_seq = !open_seq;
                  ob_scenario = rq.Workload.rq_scenario;
                  ob_policy = rq.Workload.rq_policy;
                  ob_deadline = now +. sv.sv_window;
                  ob_jobs = [];
                  ob_count = 0;
                }
              in
              incr open_seq;
              opens := !opens @ [ ob ];
              ob
        in
        ob.ob_jobs <- rq :: ob.ob_jobs;
        ob.ob_count <- ob.ob_count + 1;
        if ob.ob_count >= sv.sv_max_batch then begin
          opens := List.filter (fun o -> o != ob) !opens;
          emit_close ~at:now ob
        end
      end)
    requests;
  expire infinity;
  (Array.of_list (List.rev !closed), List.rev !rejected)

(* ------------------------------------------------------------------ *)
(* Phase 2: batch execution.

   One engine per batch, jobs run back to back on it. The engine's seed
   is derived from (workload seed, batch id) only, and batches share no
   mutable state, so executing them on N domains in any order gives the
   same per-batch results as one domain in dispatch order —
   [Parallel.map_indexed] then hands them back in batch order either
   way. Trace recording stays off (these runs are throughput, not
   post-mortem); the sanitizer, when requested, watches through the
   trace observer, which is live even with recording off. *)

type job_result = {
  jr_outcome : int Alt_block.outcome;
  jr_elapsed : float;
  jr_wasted : float;
  jr_violations : Report.violation list;
}

let resolve_scenario name =
  match Invariants.find_scenario name with
  | Some sc -> sc
  | None -> invalid_arg (Printf.sprintf "Server.run: unknown scenario %S" name)

let resolve_policy idx =
  match List.nth_opt Invariants.policy_matrix idx with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Server.run: policy index %d" idx)

let execute_batch (wl : Workload.config) (sv : config) (cb : closed_batch) =
  let engine =
    Engine.create ~model:Cost_model.att_3b2
      ~seed:((wl.Workload.wl_seed * 1_000_003) + cb.cb_id)
      ~trace:false ~shards:(max 1 sv.sv_shards) ()
  in
  let sanitizer = if sv.sv_sanitize then Some (Sanitizer.attach engine) else None in
  let scenario = resolve_scenario cb.cb_scenario in
  let policy = resolve_policy cb.cb_policy in
  Array.map
    (fun (rq : Workload.request) ->
      let space =
        Address_space.create (Engine.frame_store engine) (Engine.model engine)
      in
      Address_space.set_tracking space true;
      scenario.Invariants.prepare engine space;
      ignore (Address_space.drain_cost space);
      let source =
        if not scenario.Invariants.uses_source then None
        else begin
          let s =
            Source.create engine
              ~name:
                (Printf.sprintf "%s-tty-%d" scenario.Invariants.sc_name
                   rq.Workload.rq_id)
          in
          Source.feed s scenario.Invariants.source_script;
          Some s
        end
      in
      (match (sanitizer, source) with
      | Some sz, Some src -> Sanitizer.observe_source sz src
      | _ -> ());
      let alts =
        scenario.Invariants.alts engine ~seed:rq.Workload.rq_seed ~source
      in
      let report = Concurrent.run_toplevel engine ~policy ~space alts in
      let violations =
        Invariants.check_report ~scenario:cb.cb_scenario ~policy
          ~seed:rq.Workload.rq_seed report
      in
      (* The engine hosts the next job's block too: reset the sanitizer's
         at-most-once scope so job n+1's win is not a "duplicate" of job
         n's. *)
      (match sanitizer with Some sz -> Sanitizer.next_block sz | None -> ());
      {
        jr_outcome = report.Concurrent.outcome;
        jr_elapsed = report.Concurrent.elapsed;
        jr_wasted = report.Concurrent.wasted_cpu;
        jr_violations = violations;
      })
    cb.cb_jobs
  |> fun results ->
  let sz_viols =
    match sanitizer with
    | None -> []
    | Some sz ->
        Sanitizer.detach sz;
        Sanitizer.violations sz ~scenario:cb.cb_scenario
          ~policy:(Concurrent.describe policy)
          ~seed:cb.cb_id
  in
  (results, sz_viols)

(* ------------------------------------------------------------------ *)
(* Phase 3: the lane timeline.

   Virtual executors. Batches are dispatched in id (= close) order to
   the earliest-free lane, lowest index winning ties; a batch's service
   time is the dispatch overhead plus each job's own virtual elapsed
   time scaled by its heavy-tail work multiplier, and jobs complete in
   order at the running prefix sum. All plain folds — determinism needs
   no argument here. *)

let run (wl : Workload.config) (sv : config) =
  if sv.sv_lanes < 1 then invalid_arg "Server.run: lanes must be >= 1";
  if sv.sv_max_batch < 1 then invalid_arg "Server.run: max_batch must be >= 1";
  if sv.sv_window < 0. then invalid_arg "Server.run: negative window";
  if sv.sv_overhead < 0. then invalid_arg "Server.run: negative overhead";
  let requests = Workload.generate wl in
  List.iter
    (fun name -> ignore (resolve_scenario name))
    wl.Workload.wl_scenarios;
  if wl.Workload.wl_policies > List.length Invariants.policy_matrix then
    invalid_arg "Server.run: wl_policies exceeds the policy matrix";
  let batches, rejected = plan wl sv requests in
  let executed =
    Parallel.map_indexed_shared ~jobs:(max 1 sv.sv_jobs)
      (fun i -> execute_batch wl sv batches.(i))
      (Array.length batches)
  in
  let responses =
    Array.make (Array.length requests)
      {
        rs_id = -1;
        rs_tenant = -1;
        rs_batch = -1;
        rs_verdict = Failed "unreached";
        rs_completion = 0.;
        rs_latency = 0.;
        rs_elapsed = 0.;
        rs_wasted = 0.;
      }
  in
  List.iter
    (fun ((rq : Workload.request), tokens) ->
      responses.(rq.Workload.rq_id) <-
        {
          rs_id = rq.Workload.rq_id;
          rs_tenant = rq.Workload.rq_tenant;
          rs_batch = -1;
          rs_verdict = Rejected { tokens };
          rs_completion = rq.Workload.rq_arrival;
          rs_latency = 0.;
          rs_elapsed = 0.;
          rs_wasted = 0.;
        })
    rejected;
  let lane_free = Array.make sv.sv_lanes 0. in
  let violations = ref [] in
  let served = ref 0 and failed = ref 0 in
  let stats =
    Array.mapi
      (fun b (cb : closed_batch) ->
        let jobs, sz_viols = executed.(b) in
        let lane = ref 0 in
        for l = 1 to sv.sv_lanes - 1 do
          if lane_free.(l) < lane_free.(!lane) then lane := l
        done;
        let start = Float.max cb.cb_close lane_free.(!lane) in
        let t = ref (start +. sv.sv_overhead) in
        Array.iteri
          (fun j (rq : Workload.request) ->
            let jr = jobs.(j) in
            t := !t +. (jr.jr_elapsed *. rq.Workload.rq_work);
            let verdict =
              match jr.jr_outcome with
              | Alt_block.Selected { index; value } ->
                  incr served;
                  Served { alt = index; value }
              | Alt_block.Block_failed reason ->
                  incr failed;
                  Failed reason
            in
            violations := List.rev_append jr.jr_violations !violations;
            responses.(rq.Workload.rq_id) <-
              {
                rs_id = rq.Workload.rq_id;
                rs_tenant = rq.Workload.rq_tenant;
                rs_batch = cb.cb_id;
                rs_verdict = verdict;
                rs_completion = !t;
                rs_latency = !t -. rq.Workload.rq_arrival;
                rs_elapsed = jr.jr_elapsed;
                rs_wasted = jr.jr_wasted;
              })
          cb.cb_jobs;
        violations := List.rev_append sz_viols !violations;
        lane_free.(!lane) <- !t;
        {
          bs_id = cb.cb_id;
          bs_scenario = cb.cb_scenario;
          bs_policy = cb.cb_policy;
          bs_size = Array.length cb.cb_jobs;
          bs_close = cb.cb_close;
          bs_start = start;
          bs_done = !t;
        })
      batches
  in
  {
    responses;
    batches = stats;
    violations = List.rev !violations;
    served = !served;
    failed = !failed;
    shed = List.length rejected;
  }

(* ------------------------------------------------------------------ *)

let render_verdict = function
  | Served { alt; value } -> Printf.sprintf "served:%d:%d" alt value
  | Failed reason -> Printf.sprintf "failed:%s" reason
  | Rejected { tokens } -> Printf.sprintf "rejected:%.17g" tokens

let render_response rs =
  Printf.sprintf "%d|%d|%d|%s|%.17g|%.17g|%.17g|%.17g" rs.rs_id rs.rs_tenant
    rs.rs_batch (render_verdict rs.rs_verdict) rs.rs_completion rs.rs_latency
    rs.rs_elapsed rs.rs_wasted

let digest r =
  let h = ref 0xcbf29ce484222325L in
  let mix s =
    String.iter
      (fun c ->
        h :=
          Int64.mul
            (Int64.logxor !h (Int64.of_int (Char.code c)))
            0x100000001b3L)
      s
  in
  Array.iter (fun rs -> mix (render_response rs)) r.responses;
  !h
