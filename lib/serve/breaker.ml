(* Per-site circuit breaker in virtual time.

   Classic three-state machine, deterministic because every input is a
   virtual-time observation: [bk_threshold] consecutive failures open
   the breaker for [bk_cooldown] virtual seconds; once the cooldown
   elapses the next placement query half-opens it (exactly one probe is
   let through); the probe's success closes it, another failure reopens
   it for a fresh cooldown. Placement routes coordinators around open
   breakers, so a site that keeps eating requests (crashed, partitioned,
   or just unlucky) stops being offered new ones until it proves itself
   again. *)

type state = Closed | Open of { until : float } | Half_open

type t = {
  threshold : int;
  cooldown : float;
  mutable state : state;
  mutable consecutive : int;
  mutable opens : int;  (* Closed/Half_open -> Open transitions *)
}

type config = { bk_threshold : int; bk_cooldown : float }

let default = { bk_threshold = 3; bk_cooldown = 0.5 }

let create (cfg : config) =
  if cfg.bk_threshold < 1 then
    invalid_arg "Breaker.create: threshold must be >= 1";
  if cfg.bk_cooldown <= 0. then
    invalid_arg "Breaker.create: cooldown must be > 0";
  {
    threshold = cfg.bk_threshold;
    cooldown = cfg.bk_cooldown;
    state = Closed;
    consecutive = 0;
    opens = 0;
  }

(* Placement query. An open breaker whose cooldown has elapsed
   transitions to Half_open *and admits this caller as the probe* —
   the decision and the transition are one atomic step, so two requests
   arriving at the same virtual instant cannot both be "the" probe. *)
let allow t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open { until } ->
      if now >= until then begin
        t.state <- Half_open;
        true
      end
      else false

let record_success t =
  t.consecutive <- 0;
  t.state <- Closed

let record_failure t ~now =
  match t.state with
  | Half_open ->
      (* The probe failed: straight back to Open, fresh cooldown. *)
      t.opens <- t.opens + 1;
      t.consecutive <- t.consecutive + 1;
      t.state <- Open { until = now +. t.cooldown }
  | Open _ ->
      (* A failure attributed to a site whose breaker opened while the
         request was in flight: already open, just count it. *)
      t.consecutive <- t.consecutive + 1
  | Closed ->
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= t.threshold then begin
        t.opens <- t.opens + 1;
        t.state <- Open { until = now +. t.cooldown }
      end

let state t = t.state
let opens t = t.opens
