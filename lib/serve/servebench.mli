(** The serving benchmark: run the open-loop workload through
    {!Server.run}, verify the determinism contract, and emit
    [BENCH_serve.json].

    Shared by [altserve] (the interactive CLI) and [altcheck serve]
    (the CI smoke entry point), so both produce the same record from
    the same configs. *)

type metrics = {
  m_requests : int;
  m_served : int;
  m_degraded : int;  (** [Served_degraded] answers (ladder rungs 1-2). *)
  m_recovered : int;  (** [Recovered] answers (supervised restarts). *)
  m_failed : int;
  m_shed : int;
  m_shed_overload : int;  (** Ladder bottom-rung sheds, of [m_shed]. *)
  m_shed_rate : float;  (** Shed / total arrivals. *)
  m_goodput : float;
      (** Good answers (served + degraded + recovered) per virtual
          second of makespan — the figure the degrade benchmark
          compares ladder-vs-shed-only on. *)
  m_breaker_opens : int;
  m_ladder_transitions : int;
  m_p50 : float;  (** Latency percentiles over executed (non-shed) *)
  m_p99 : float;  (** requests, virtual seconds. *)
  m_p999 : float;
  m_makespan : float;  (** Last completion time. *)
  m_rps : float;  (** Executed requests per virtual second. *)
  m_batches : int;
  m_occupancy : int array;
      (** [m_occupancy.(k)] = batches that closed with [k+1] jobs;
          length [sv_max_batch]. *)
  m_violations : int;
}

val metrics_of : Server.config -> Server.result -> metrics

type verification = {
  v_replay_identical : bool;
      (** Second run of the same configs produced the same digest. *)
  v_jobs_identical : bool;
      (** [sv_jobs = 1] and [sv_jobs = n] produced the same digest. *)
  v_digest : int64;
}

val run_verified :
  Workload.config -> Server.config -> Server.result * metrics * verification
(** Run the benchmark run plus its two determinism witnesses: a replay
    with identical configs, and a single-domain run when [sv_jobs > 1]
    (with [sv_jobs = 1] the jobs check is vacuously true — there is
    nothing to compare against). *)

type pool_cost = {
  pc_spawn_s : float;
      (** Mean wall cost of a trivial wave through a {e fresh} pool
          (domain create + dispatch + join) — the per-batch-wave price
          before the persistent pool. *)
  pc_reuse_s : float;
      (** The same wave through the warm {!Parallel.shared} pool. *)
}

val measure_pool_cost : jobs:int -> pool_cost
(** Time both dispatch paths over a few no-op waves ([jobs = 1]: both
    zero — there is no pool on the sequential path). Reported in the
    record as [pool_spawn_s] / [pool_reuse_s]; wall-clock, so never
    gated on. *)

val required_fields : string list
(** The JSON schema, as field names — what [--validate] and the CI job
    probe for. *)

val to_json :
  Workload.config -> Server.config -> metrics -> verification ->
  pool_cost -> string
(** The benchmark record, one field per line (the repo's hand-rolled
    JSON idiom: unique keys, so substring probes suffice to validate). *)

val validate : string -> (int, string list) result
(** Probe a record's contents for every required field: [Ok count] or
    [Error missing]. *)
