(* GCRA with an integer step counter.

   State is (base, steps): the theoretical arrival time of the next
   conforming request is [base + steps/rate], and a request at [now] is
   conforming iff it is within the burst tolerance,

     now >= base + (steps - burst + 1)/rate
     <=>  (now - base) * rate >= steps - burst + 1.

   Every decision computes that product from scratch — one subtraction
   and one multiply against an exact integer — instead of advancing a
   float accumulator per request, so there is no error term that can
   compound across requests. [base] re-anchors to [now] whenever the
   bucket has fully refilled (now past the TAT), which keeps [steps]
   small under intermittent load; under sustained saturation [steps]
   grows but the arithmetic stays two operations from exact inputs. *)

type t = {
  rate : float;
  burst : int;
  mutable base : float;
  mutable steps : int;
  mutable admits : int;
}

let create ~rate ~burst =
  if rate <= 0. then invalid_arg "Quota.create: rate must be > 0";
  if burst < 1 then invalid_arg "Quota.create: burst must be >= 1";
  { rate; burst; base = 0.; steps = 0; admits = 0 }

let conforming t ~now =
  (now -. t.base) *. t.rate >= float_of_int (t.steps - t.burst + 1)

let charge t ~now =
  let tat = t.base +. (float_of_int t.steps /. t.rate) in
  if now > tat then begin
    t.base <- now;
    t.steps <- 1
  end
  else t.steps <- t.steps + 1;
  t.admits <- t.admits + 1

let admit t ~now =
  if conforming t ~now then begin
    charge t ~now;
    true
  end
  else false

(* Multi-class admission: a request is admitted only when every
   applicable bucket conforms, and tokens are consumed only then. The
   check/charge split is what keeps composite sheds pure — a request
   denied by its tenant bucket must not burn a token from the global
   one, or shed traffic would push every other tenant's refill schedule
   around. *)
let admit_all buckets ~now =
  if List.for_all (fun t -> conforming t ~now) buckets then begin
    List.iter (fun t -> charge t ~now) buckets;
    true
  end
  else false

let admitted t = t.admits

let tokens t ~now =
  let avail = ((now -. t.base) *. t.rate) -. float_of_int t.steps
              +. float_of_int t.burst in
  Float.max 0. (Float.min (float_of_int t.burst) avail)
