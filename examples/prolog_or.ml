(* OR-parallelism in Prolog (paper, section 5.2).

   A small route-planning knowledge base where the succeeding strategy is
   data-dependent and sits late in clause order — the worst case for a
   sequential engine, the best case for racing the OR branches.

     dune exec examples/prolog_or.exe
*)

let program =
  {|
  % A gullible map of ways to get from one city to another.
  % Exhaustive search strategies; the cheap one is tried last.

  burn(0).
  burn(N) :- N > 0, M is N - 1, burn(M).

  % Strategy 1: enumerate multi-hop rail routes (lots of failing work).
  plan(rail(X)) :- burn(4000), member(X, []), fail.
  % Strategy 2: enumerate ferry connections (also fruitless).
  plan(ferry(X)) :- burn(6000), member(X, []), fail.
  % Strategy 3: the direct flight. Cheap, but tried last.
  plan(fly(direct)) :- burn(150).
  |}

let () =
  let db = Database.with_prelude () in
  ignore (Database.add_program db program);
  let goal, names = Parser.query "plan(P)" in
  Printf.printf "query: ?- plan(P).\n\n";

  (* Sequential resolution. *)
  let seq = Solve.run ~max_solutions:1 db goal in
  Printf.printf "sequential engine:   %6d inferences to the first solution\n"
    seq.Solve.inferences;

  (* OR-parallel: race the three strategy clauses in the simulator. *)
  let r = Or_parallel.solve_sim ~inference_cost:1e-4 db goal in
  Printf.printf "branch workloads:    [%s] inferences\n"
    (String.concat "; "
       (Array.to_list (Array.map string_of_int r.Or_parallel.branch_inferences)));
  Printf.printf "OR-parallel race:    %.4f simulated s  (sequential: %.4f s)\n"
    r.Or_parallel.par_time r.Or_parallel.seq_time;
  Printf.printf "speedup:             %.1fx\n" r.Or_parallel.speedup;
  Printf.printf "COW pages copied:    %d (bindings are write-few, read-many)\n"
    r.Or_parallel.cow_copies;
  (match r.Or_parallel.first_solution with
  | Some bindings ->
    List.iter
      (fun (v, t) ->
        let name =
          match List.assoc_opt v names with Some n -> n | None -> "_"
        in
        Printf.printf "answer:              %s = %s\n" name (Term.to_string t))
      bindings
  | None -> print_endline "no solution");

  (* And for real, with forked processes. *)
  let rr = Or_parallel.solve_real ~timeout:30. db goal in
  Printf.printf
    "\nreal processes:      sequential %.4f s, racing %.4f s (winner: clause %s)\n"
    rr.Or_parallel.elapsed_sequential rr.Or_parallel.elapsed_parallel
    (match rr.Or_parallel.winner with Some i -> string_of_int i | None -> "-")
