(* The paper's motivating case: "for problems where the required execution
   time is unpredictable, such as database queries, this method can show
   substantial execution time performance increases."

   Three query plans answer the same query over a synthetic table. Their
   cost depends on data characteristics the optimiser cannot see: the
   selectivity of the predicate and whether an index happens to cover it.
   We race the plans in the simulation engine over a stream of queries and
   compare with always running one plan, and with random plan choice.

     dune exec examples/query_race.exe
*)

type plan = { name : string; cost : selectivity:float -> indexed:bool -> float }

let plans =
  [
    {
      name = "full-scan";
      (* Flat cost: reads the whole table regardless. *)
      cost = (fun ~selectivity:_ ~indexed:_ -> 2.0);
    };
    {
      name = "index-probe";
      (* Wonderful when the index covers the predicate, terrible when it
         degenerates to random I/O. *)
      cost =
        (fun ~selectivity ~indexed ->
          if indexed then 0.05 +. (0.4 *. selectivity) else 6.0);
    };
    {
      name = "sort-merge";
      (* Pays a sort up front; good for large result sets. *)
      cost = (fun ~selectivity ~indexed:_ -> 1.2 +. (0.5 *. (1. -. selectivity)));
    };
  ]

let () =
  let rng = Rng.create ~seed:11 in
  let queries = 200 in
  let totals = Hashtbl.create 8 in
  let add key v =
    let r = try Hashtbl.find totals key with Not_found -> ref 0. in
    r := !r +. v;
    Hashtbl.replace totals key r
  in
  for _ = 1 to queries do
    let selectivity = Rng.float rng 1.0 in
    let indexed = Rng.bernoulli rng ~p:0.6 in
    let costs = List.map (fun p -> p.cost ~selectivity ~indexed) plans in
    (* Static choices and random choice. *)
    List.iteri (fun i p -> add ("always " ^ p.name) (List.nth costs i)) plans;
    add "random plan" (List.nth costs (Rng.int rng (List.length plans)));
    (* Concurrent: race the three plans as alternatives. *)
    let eng = Engine.create ~model:Cost_model.hp_9000_350 ~trace:false () in
    let space =
      Address_space.create ~size_hint:(128 * 1024)
        (Engine.frame_store eng) (Engine.model eng)
    in
    let alts =
      List.map2
        (fun p c -> Alternative.fixed ~name:p.name ~cost:c p.name)
        plans costs
    in
    let r = Concurrent.run_toplevel eng ~space alts in
    add "concurrent race" r.Concurrent.elapsed;
    add "(oracle)" (Stats.min (Array.of_list costs))
  done;
  Printf.printf "mean time per query over %d queries (simulated seconds):\n\n"
    queries;
  Hashtbl.fold (fun k v acc -> (k, !v /. float_of_int queries) :: acc) totals []
  |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  |> List.iter (fun (k, v) -> Printf.printf "  %-20s %8.4f s\n" k v);
  print_newline ();
  print_endline
    "the race tracks the oracle to within the fork/sync overhead, without";
  print_endline "knowing selectivity or index coverage in advance."
