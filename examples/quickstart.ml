(* Quickstart: race three ways of computing the same answer as real
   processes; the fastest successful one wins and the others are
   eliminated — the paper's design on your own operating system.

     dune exec examples/quickstart.exe
*)

(* Three "mutually exclusive alternatives" for finding a prime larger than
   a bound: trial division from the bound up (fast when a prime is close),
   a sieve (predictable), and a deliberately unreliable method. *)

let is_prime n =
  let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
  n > 1 && go 2

let trial_division bound =
  let rec go n = if is_prime n then n else go (n + 1) in
  go (bound + 1)

let sieve_method bound =
  let limit = (2 * bound) + 1000 in
  let composite = Bytes.make (limit + 1) '\000' in
  for p = 2 to limit do
    if Bytes.get composite p = '\000' then begin
      let q = ref (p * p) in
      while !q <= limit do
        Bytes.set composite !q '\001';
        q := !q + p
      done
    end
  done;
  let rec first n =
    if n > limit then failwith "sieve exhausted"
    else if Bytes.get composite n = '\000' then n
    else first (n + 1)
  in
  first (bound + 1)

let flaky_method _bound = failwith "this alternative happens to be broken"

let () =
  let bound = 10_000_019 in
  Printf.printf "racing three alternatives for the first prime > %d ...\n%!" bound;
  match
    Fork_race.run ~timeout:30.
      [
        (fun () -> ("trial division", trial_division bound));
        (fun () -> ("sieve", sieve_method bound));
        (fun () -> ("flaky", flaky_method bound));
      ]
  with
  | Fork_race.Winner { index; value = name, prime; elapsed } ->
    Printf.printf "winner: alternative %d (%s) -> %d, in %.4f s\n" index name
      prime elapsed;
    Printf.printf "the losing siblings were eliminated with SIGKILL.\n"
  | Fork_race.All_failed _ -> print_endline "every alternative failed"
  | Fork_race.Timed_out _ -> print_endline "alt_wait timeout expired"
