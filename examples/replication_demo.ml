(* Replication combined with alternatives (paper, section 6).

   "Transparent replication can easily be combined with the use of parallel
   execution of several alternatives for increases in performance,
   reliability, or both."

   A sensor-fusion style computation: two alternative estimators race; each
   runs as a quorum of replicas because individual replicas occasionally
   return corrupted values. The block commits the fastest estimator whose
   replicas agree — masking both slow alternatives and wrong answers.

     dune exec examples/replication_demo.exe
*)

let () =
  let eng = Engine.create ~trace:false () in
  let corrupt_stream = Rng.create ~seed:99 in
  (* A fast heuristic estimator: occasionally returns garbage. *)
  let heuristic =
    Alternative.make ~name:"heuristic" (fun rctx ->
        Engine.delay rctx 0.05;
        if Rng.bernoulli corrupt_stream ~p:0.35 then 5_000 + Rng.int corrupt_stream 10_000
        else 37)
  in
  (* A slow exact estimator: always right. *)
  let exact =
    Alternative.make ~name:"exact" (fun rctx ->
        Engine.delay rctx 0.40;
        37)
  in
  let result = ref None in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"fusion" (fun ctx ->
         result :=
           Some
             (Concurrent.run ctx
                [
                  Replicate.alternative ~replicas:5 heuristic;
                  Replicate.alternative ~replicas:3 exact;
                ])));
  Engine.run eng;
  match !result with
  | Some r -> (
    match r.Concurrent.outcome with
    | Alt_block.Selected { index; value } ->
      Printf.printf "committed estimate: %d (alternative %d, %s)\n" value index
        (if index = 0 then "heuristic quorum" else "exact quorum");
      Printf.printf "elapsed %.3f simulated s, wasted %.3f s of replica work\n"
        r.Concurrent.elapsed r.Concurrent.wasted_cpu;
      if value <> 37 then
        print_endline "!! a corrupted value slipped through (should not happen)"
      else
        print_endline
          "corrupted replicas were outvoted; a wrong answer was never committed."
    | Alt_block.Block_failed m -> Printf.printf "block failed: %s\n" m)
  | None -> print_endline "fusion process never finished"
