(* Distributed execution of a recovery block (paper, section 5.1).

   Three independently written versions of a flight-control style
   computation run concurrently as copy-on-write children. The primary is
   fast but carries a latent logic error; the acceptance test catches it.
   Synchronisation goes through a majority consensus of five nodes, one of
   which has crashed — the block still commits, and the console (a source
   device) shows output from the accepted version only.

     dune exec examples/recovery_demo.exe
*)

let () =
  let eng = Engine.create ~model:Cost_model.hp_9000_350 ~trace:false () in
  let console = Source.create eng ~name:"console" in
  let version ~name ~cost ~result =
    Recovery_block.alternate ~name (fun ctx ->
        Source.write ctx console
          (Printf.sprintf "[%s] computing control output..." name);
        Engine.delay ctx cost;
        Source.write ctx console
          (Printf.sprintf "[%s] output = %d" name result);
        result)
  in
  let rb =
    Recovery_block.make
      ~acceptance:(fun _ v -> v >= 0 && v <= 100)
      [
        (* The primary produces an out-of-range value: a software fault. *)
        Fault.always ~mode:Fault.Wrong ~corrupt:(fun v -> v + 1000)
          (version ~name:"primary" ~cost:0.08 ~result:42);
        version ~name:"backup-1" ~cost:0.25 ~result:41;
        version ~name:"backup-2" ~cost:0.60 ~result:43;
      ]
  in
  let policy =
    Recovery_block.distributed_policy ~nodes:5 ~crashed:[ 3 ] ~vote_delay:0.002
      ~reply_timeout:0.5 ()
  in
  let result = ref None in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"controller" (fun ctx ->
         result := Some (Recovery_block.run_concurrent ctx ~policy rb)));
  Engine.run eng;
  (match !result with
  | Some r -> (
    match r.Recovery_block.verdict with
    | `Accepted (i, v) ->
      Printf.printf
        "accepted version %d with value %d after %.3f simulated seconds\n" i v
        r.Recovery_block.elapsed;
      Printf.printf "wasted speculative CPU: %.3f s (the price of the race)\n"
        r.Recovery_block.wasted_cpu
    | `Failed -> print_endline "recovery block failed")
  | None -> print_endline "controller never finished");
  print_endline "\nconsole transcript (only the accepted version is visible):";
  List.iter
    (fun (t, _, line) -> Printf.printf "  %8.3f  %s\n" t line)
    (Source.output console);
  Printf.printf "\nlines from losing versions discarded unseen: %d\n"
    (Source.discarded console)
