(* Competing transactions (paper, sections 3.1 and 6).

   "The notion of multiple alternatives is orthogonal to the transaction
   concept ... It could also be viewed as a set of competing transactions,
   at most one of which will take effect."

   A settlement engine knows three strategies for clearing a batch of
   payments; their running times depend on data it cannot predict. All
   three run as competing transactions against copy-on-write snapshots of
   the ledger; the first to finish commits, and the ledger shows exactly
   one strategy's effect.

     dune exec examples/bank_race.exe
*)

let () =
  let eng = Engine.create ~trace:false () in
  let ledger = Txn.create_store eng ~records:4 in
  let result = ref None in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"settlement" (fun ctx ->
         (* Seed the accounts. *)
         (match
            Txn.with_txn ctx ledger (fun ctx t ->
                Txn.write ctx t ~key:0 1000;
                Txn.write ctx t ~key:1 500)
          with
         | Ok () -> ()
         | Error _ -> failwith "seeding cannot conflict");
         let strategy name cost fee =
           {
             Txn.name;
             work =
               (fun ctx t ->
                 let a = Txn.read ctx t ~key:0 in
                 let b = Txn.read ctx t ~key:1 in
                 Engine.delay ctx cost (* data-dependent clearing work *);
                 let amount = 250 in
                 Txn.write ctx t ~key:0 (a - amount - fee);
                 Txn.write ctx t ~key:1 (b + amount);
                 Txn.write ctx t ~key:2 fee (* the house account *);
                 (name, fee));
           }
         in
         result :=
           Some
             (Txn.race ctx ledger
                [
                  strategy "netting" 2.5 3;
                  strategy "gross-settlement" 0.8 9;
                  strategy "batched" 1.6 5;
                ])));
  Engine.run eng;
  (match !result with
  | Some (Alt_block.Selected { value = name, fee; _ }) ->
    Printf.printf "cleared by %S (fee %d)\n" name fee
  | Some (Alt_block.Block_failed m) -> Printf.printf "settlement failed: %s\n" m
  | None -> print_endline "settlement never finished");
  Printf.printf "ledger: payer=%d payee=%d house=%d  (commits: %d)\n"
    (Txn.get ledger ~key:0) (Txn.get ledger ~key:1) (Txn.get ledger ~key:2)
    (Txn.commits ledger);
  print_endline
    "exactly one strategy's transfer is visible; the others were aborted\n\
     snapshots that never touched the committed ledger."
