(* The sorting example of section 4.2: "consider the case of two
   list-sorting algorithms, Q and I. Q is faster than I when the number of
   elements to be sorted is greater than 10" — and, the section goes on,
   the partitioning of inputs by performance is rarely that simple: a naive
   quicksort is slow on ordered input.

   Instead of predicting, race the two algorithms as real processes on
   three kinds of input and keep whichever finishes first.

     dune exec examples/sort_race.exe
*)

(* A deliberately naive quicksort (first element as pivot): O(n^2) on
   sorted input, O(n log n) on random input. *)
let rec naive_qsort = function
  | [] -> []
  | pivot :: rest ->
    let smaller, larger = List.partition (fun x -> x < pivot) rest in
    naive_qsort smaller @ (pivot :: naive_qsort larger)

(* Insertion sort: O(n) on (nearly) sorted input, O(n^2) in general. *)
let insertion_sort l =
  let rec insert x = function
    | [] -> [ x ]
    | y :: rest when y < x -> y :: insert x rest
    | l -> x :: l
  in
  List.fold_left (fun acc x -> insert x acc) [] l

let race label input =
  let expect = List.sort compare input in
  match
    Fork_race.run ~timeout:60.
      [
        (fun () -> ("quicksort", naive_qsort input));
        (fun () -> ("insertion", insertion_sort input));
      ]
  with
  | Fork_race.Winner { value = name, sorted; elapsed; _ } ->
    assert (sorted = expect);
    Printf.printf "  %-28s winner: %-10s %8.4f s\n" label name elapsed
  | _ -> Printf.printf "  %-28s race failed\n" label

let () =
  let n = 6000 in
  let rng = Rng.create ~seed:3 in
  let random_input = List.init n (fun _ -> Rng.int rng 1_000_000) in
  let sorted_input = List.init n Fun.id in
  let nearly_sorted =
    List.mapi (fun i x -> if i mod 500 = 0 then x + 3 else x) sorted_input
  in
  Printf.printf "racing two sorts on %d elements (real processes):\n" n;
  race "random input" random_input;
  race "already sorted" sorted_input;
  race "nearly sorted" nearly_sorted;
  print_newline ();
  print_endline
    "no cost model, no pretest for sortedness: the synchronisation protocol";
  print_endline "selects the per-input fastest algorithm automatically."
