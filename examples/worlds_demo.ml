(* Multiple worlds (paper, section 3.4.2).

   A speculative producer — one alternative of a racing pair — sends its
   intermediate result to a consumer before anyone knows which alternative
   will win. The consumer cannot wait: it is split into two worlds, one
   that accepted the message (and inherits the producer's assumptions) and
   one that assumes the producer fails. When the race resolves, the
   impossible world is eliminated; the consumer's visible history is
   exactly as if only the winner had ever run.

     dune exec examples/worlds_demo.exe
*)

let () =
  let eng = Engine.create ~trace:true () in
  let tty = Source.create eng ~name:"tty" in

  (* The consumer sums whatever partial results reach it and reports. *)
  let consumer =
    Engine.spawn eng ~name:"consumer" (fun ctx ->
        let total = ref 0 in
        for _ = 1 to 2 do
          let m = Engine.receive ctx () in
          total := !total + Payload.get_int m.Message.payload
        done;
        Source.write ctx tty (Printf.sprintf "consumer total = %d" !total))
  in

  (* Two mutually exclusive alternatives, each sending a speculative
     partial result mid-flight. The fast one wins the race. *)
  let alt name cost partial =
    Alternative.make ~name (fun ctx ->
        Engine.send ctx consumer (Payload.int partial);
        Engine.delay ctx cost;
        partial)
  in
  let report = ref None in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"parent" (fun ctx ->
         report := Some (Concurrent.run ctx [ alt "slow" 5.0 100; alt "fast" 1.0 7 ])));

  (* An independent certain process also feeds the consumer. *)
  ignore
    (Engine.spawn eng ~name:"steady" (fun ctx ->
         Engine.delay ctx 8.;
         Engine.send ctx consumer (Payload.int 1)));

  Engine.run eng;

  (match !report with
  | Some r -> (
    match r.Concurrent.outcome with
    | Alt_block.Selected { value; _ } ->
      Printf.printf "race winner's value: %d\n" value
    | Alt_block.Block_failed m -> Printf.printf "race failed: %s\n" m)
  | None -> print_endline "race never finished");

  print_endline "\ntty output (one consistent world):";
  List.iter (fun (_, _, l) -> Printf.printf "  %s\n" l) (Source.output tty);

  print_endline "\nworld bookkeeping in the trace:";
  List.iter
    (fun (t, e) ->
      match e with
      | Trace.Split _ | Trace.Killed _ | Trace.Fate _ ->
        Format.printf "  [%7.3f] %a@." t Trace.pp_event e
      | _ -> ())
    (Trace.events (Engine.trace eng))
