% A small route-planning knowledge base for the altbench CLI:
%
%   dune exec bin/altbench.exe -- prolog -f examples/routes.pl -g 'trip(amsterdam, rome, P)'
%   dune exec bin/altbench.exe -- prolog -p -f examples/routes.pl -g 'strategy(S)'

rail(amsterdam, cologne).
rail(cologne, frankfurt).
rail(frankfurt, basel).
rail(basel, milan).
rail(milan, rome).
rail(amsterdam, paris).
rail(paris, lyon).
rail(lyon, milan).

flight(amsterdam, rome).
flight(amsterdam, milan).

trip(A, B, [fly(A, B)]) :- flight(A, B).
trip(A, B, [train(A, C)|Rest]) :- rail(A, C), trip(C, B, Rest).
trip(A, B, [train(A, B)]) :- rail(A, B).

burn(0).
burn(N) :- N > 0, M is N - 1, burn(M).

% Three search strategies with very different costs; the cheap one is last,
% which is the worst case for sequential clause order and the best case for
% OR-parallel racing (-p).
strategy(exhaustive_rail) :- burn(3000), fail.
strategy(multi_modal)     :- burn(5000), fail.
strategy(direct_flight)   :- burn(80).
