(* altcheck: verify executions against the paper's invariants.

     altcheck list                      enumerate scenarios and policies
     altcheck run [--seeds N]           run the full scenario x policy matrix
     altcheck run --jobs 8              fan the matrix out over 8 domains
     altcheck run -s counters           restrict to named scenarios
     altcheck run --dump-trace F.jsonl  dump a trace (first violating run,
                                        else the last run) as JSON Lines
     altcheck bench -o BENCH.json       time the sweep sequentially vs
                                        parallel and emit a JSON record
     altcheck fuzz [--seeds N]          re-run the invariant checkers under
                                        fault-injection campaigns
     altcheck fuzz --verify-determinism re-execute every cell and fail on
                                        any byte-level divergence
     altcheck sites [--seeds N]         run supervised (coordinator-recovery)
                                        blocks under site-crash and
                                        partition campaigns
     altcheck run/fuzz/sites --sanitize attach the online sanitizer to every
                                        run and cross-check it against the
                                        post-mortem checkers
     altcheck serve [--requests N]      run the request-driven serving layer
                                        over a seeded open-loop load and
                                        emit BENCH_serve.json
     altcheck lint [-f F.pl -g GOAL]    statically analyse OR-branch mutual
                                        exclusivity and alternative
                                        footprints (JSON findings via --json)
     altcheck lint --bench              measure the consensus-elision fast
                                        path and emit BENCH_lint.json
     altcheck codes                     print the exit-code registry

   Exit code 0 when every run satisfies every invariant; otherwise the
   exit code of the most severe violated class. Every code altcheck can
   produce lives in Report.registry ('altcheck codes' prints the table). *)

(* The Prolog term module, captured before [open Cmdliner] shadows it
   with Cmdliner.Term. *)
module Prolog_term = Term

open Cmdliner

let jobs_arg =
  Arg.(
    value
    & opt int (Parallel.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the sweep (default: one per core). The \
           violation report is identical for every value of $(docv).")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Event-loop shards inside every engine ($(b,Engine.create) \
           $(i,?shards)). Reports are byte-identical for every value of \
           $(docv); cross-shard traffic pays staged barrier exchanges \
           ($(b,altbench shard) measures the crossover).")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Attach the online happens-before sanitizer to every run: vector \
           clocks, streaming invariant checks, and a cross-check against \
           the post-mortem checkers. Agreement leaves the report \
           byte-identical; divergence is itself a violation (exit 17).")

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List the checkable scenarios and the policy matrix." in
  let run () =
    Printf.printf "scenarios:\n";
    List.iter
      (fun (s : Invariants.scenario) ->
        Printf.printf "  %-12s%s\n" s.Invariants.sc_name
          (if s.Invariants.uses_source then " (uses a source device)" else ""))
      Invariants.default_scenarios;
    Printf.printf "policies (%d):\n" (List.length Invariants.policy_matrix);
    List.iter
      (fun p -> Printf.printf "  %s\n" (Concurrent.describe p))
      Invariants.policy_matrix
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------------- run ---------------- *)

let scenarios_of_names names =
  match names with
  | [] -> Invariants.default_scenarios
  | names ->
    List.map
      (fun n ->
        match
          List.find_opt
            (fun s -> s.Invariants.sc_name = n)
            Invariants.default_scenarios
        with
        | Some s -> s
        | None ->
          Printf.eprintf "unknown scenario %S; try 'altcheck list'\n" n;
          exit 1)
      names

let run_cmd =
  let doc = "Run the invariant checkers over the scenario x policy matrix." in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per (scenario, policy) cell.")
  in
  let names =
    Arg.(
      value & opt_all string []
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:"Scenario to check (repeatable); see $(b,altcheck list).")
  in
  let dump =
    Arg.(
      value & opt (some string) None
      & info [ "dump-trace" ] ~docv:"FILE"
          ~doc:
            "Write one run's event trace as JSON Lines: the first violating \
             run if any, otherwise the last run executed.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Print only violations and the summary.")
  in
  let run seeds names dump quiet jobs sanitize shards =
    let scenarios = scenarios_of_names names in
    let cells = Invariants.matrix_cells ~seeds ~scenarios () in
    let results = Invariants.run_cells ~jobs ~sanitize ~shards cells in
    (* Results are in cell order, so everything below — the per-policy
       progress lines, the violation listing, the dumped run and the
       exit code — is independent of [jobs]. *)
    let violations =
      List.concat_map (fun (_, vs) -> vs) (Array.to_list results)
    in
    if not quiet then
      List.iter
        (fun sc ->
          List.iter
            (fun policy ->
              let here =
                List.filter
                  (fun v ->
                    v.Report.scenario = sc.Invariants.sc_name
                    && v.Report.policy = Concurrent.describe policy)
                  violations
              in
              Printf.printf "%-10s %-44s %d seeds  %s\n%!" sc.Invariants.sc_name
                (Concurrent.describe policy) seeds
                (match here with
                | [] -> "ok"
                | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs)))
            Invariants.policy_matrix)
        scenarios;
    List.iter (fun v -> Format.printf "%a@." Report.pp_violation v) violations;
    Printf.printf "%d runs, %d violations\n" (Array.length results)
      (List.length violations);
    let dumped_run =
      let violating =
        Array.to_seq results
        |> Seq.filter_map (fun (rr, vs) -> if vs <> [] then Some rr else None)
        |> Seq.uncons
      in
      match (violating, Array.length results) with
      | Some (rr, _), _ -> Some (rr, true)
      | None, 0 -> None
      | None, n -> Some (fst results.(n - 1), false)
    in
    (match (dump, dumped_run) with
    | Some file, Some (rr, violating) ->
      let oc =
        try open_out file
        with Sys_error m ->
          Printf.eprintf "cannot write trace: %s\n" m;
          exit 1
      in
      output_string oc (Trace.to_jsonl (Engine.trace rr.Invariants.engine));
      close_out oc;
      Printf.printf "trace of %s run (%s, %s, seed %d) written to %s\n"
        (if violating then "first violating" else "last")
        rr.Invariants.scenario.Invariants.sc_name
        (Concurrent.describe rr.Invariants.policy)
        rr.Invariants.seed file
    | Some _, None | None, _ -> ());
    exit (Report.exit_code violations)
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ seeds $ names $ dump $ quiet $ jobs_arg $ sanitize_arg
      $ shards_arg)

(* ---------------- fuzz ---------------- *)

let fuzz_cmd =
  let doc =
    "Run the invariant checkers under deterministic fault-injection \
     campaigns (scenario x campaign x policy x seed matrix)."
  in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Seeds per (scenario, campaign, policy) cell.")
  in
  let names =
    Arg.(
      value & opt_all string []
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:"Scenario to fuzz (repeatable); see $(b,altcheck list).")
  in
  let campaign_names =
    Arg.(
      value & opt_all string []
      & info [ "c"; "campaign" ] ~docv:"NAME"
          ~doc:"Campaign to run (repeatable); default: all of them.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-determinism" ]
          ~doc:
            "Execute every cell twice and fail (exit 20) unless summaries \
             and violation reports are byte-identical.")
  in
  let list_campaigns =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the campaigns and fuzz policies, then exit.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:"Print only violations, mismatches and the summary.")
  in
  let run seeds names campaign_names verify list_campaigns quiet jobs sanitize
      shards =
    if list_campaigns then begin
      Printf.printf "campaigns:\n";
      List.iter
        (fun (c : Fuzz.campaign) ->
          Printf.printf "  %-18s%s\n" c.Fuzz.cg_name c.Fuzz.cg_doc)
        Fuzz.default_campaigns;
      Printf.printf "policies (%d):\n" (List.length Fuzz.default_policies);
      List.iter
        (fun p -> Printf.printf "  %s\n" (Concurrent.describe p))
        Fuzz.default_policies;
      exit 0
    end;
    let scenarios = scenarios_of_names names in
    let campaigns =
      match campaign_names with
      | [] -> Fuzz.default_campaigns
      | names ->
        List.map
          (fun n ->
            match
              List.find_opt
                (fun (c : Fuzz.campaign) -> c.Fuzz.cg_name = n)
                Fuzz.default_campaigns
            with
            | Some c -> c
            | None ->
              Printf.eprintf "unknown campaign %S; try 'altcheck fuzz --list'\n"
                n;
              exit 1)
          names
    in
    let result =
      Fuzz.run ~jobs ~seeds ~scenarios ~campaigns ~verify ~sanitize ~shards ()
    in
    if not quiet then List.iter print_endline result.Fuzz.lines;
    List.iter
      (fun v -> Format.printf "%a@." Report.pp_violation v)
      result.Fuzz.violations;
    (match result.Fuzz.first_failing with
    | Some c ->
      Printf.printf "minimal failing cell: %s\n" (Fuzz.describe_cell c)
    | None -> ());
    List.iter
      (fun m -> Printf.printf "DETERMINISM MISMATCH: %s\n" m)
      result.Fuzz.mismatches;
    Printf.printf "%d fuzzed runs%s, %d violations%s\n" result.Fuzz.cells_run
      (if verify then " (each executed twice)" else "")
      (List.length result.Fuzz.violations)
      (if verify then
         Printf.sprintf ", %d determinism mismatches"
           (List.length result.Fuzz.mismatches)
       else "");
    if result.Fuzz.mismatches <> [] then exit Report.code_determinism;
    exit (Report.exit_code result.Fuzz.violations)
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seeds $ names $ campaign_names $ verify $ list_campaigns
      $ quiet $ jobs_arg $ sanitize_arg $ shards_arg)

(* ---------------- sites ---------------- *)

let sites_cmd =
  let doc =
    "Run supervised blocks (coordinator recovery) under deterministic \
     site-crash and network-partition campaigns."
  in
  let seeds =
    Arg.(
      value & opt int 3
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Seeds per (scenario, campaign, policy) cell.")
  in
  let names =
    Arg.(
      value & opt_all string []
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:
            "Scenario to run (repeatable); sourceless scenarios only — see \
             $(b,altcheck sites --list).")
  in
  let campaign_names =
    Arg.(
      value & opt_all string []
      & info [ "c"; "campaign" ] ~docv:"NAME"
          ~doc:"Campaign to run (repeatable); default: all of them.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-determinism" ]
          ~doc:
            "Execute every cell twice and fail (exit 20) unless summaries \
             and violation reports are byte-identical.")
  in
  let list_campaigns =
    Arg.(
      value & flag
      & info [ "list" ]
          ~doc:"List the site campaigns, policies and scenarios, then exit.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ]
          ~doc:"Print only violations, mismatches and the summary.")
  in
  let run seeds names campaign_names verify list_campaigns quiet jobs sanitize
      shards =
    if list_campaigns then begin
      Printf.printf "topology: %s\n" (String.concat " " Sitefuzz.site_names);
      Printf.printf "campaigns:\n";
      List.iter
        (fun (c : Sitefuzz.campaign) ->
          Printf.printf "  %-22s%s\n" c.Sitefuzz.sg_name c.Sitefuzz.sg_doc)
        Sitefuzz.default_campaigns;
      Printf.printf "policies (%d):\n" (List.length Sitefuzz.default_policies);
      List.iter
        (fun p -> Printf.printf "  %s\n" (Concurrent.describe p))
        Sitefuzz.default_policies;
      Printf.printf "scenarios:\n";
      List.iter
        (fun (s : Invariants.scenario) ->
          Printf.printf "  %s\n" s.Invariants.sc_name)
        Sitefuzz.default_scenarios;
      exit 0
    end;
    let scenarios =
      match names with
      | [] -> Sitefuzz.default_scenarios
      | names ->
        List.map
          (fun n ->
            match
              List.find_opt
                (fun s -> s.Invariants.sc_name = n)
                Sitefuzz.default_scenarios
            with
            | Some s -> s
            | None ->
              Printf.eprintf
                "unknown scenario %S; try 'altcheck sites --list'\n" n;
              exit 1)
          names
    in
    let campaigns =
      match campaign_names with
      | [] -> Sitefuzz.default_campaigns
      | names ->
        List.map
          (fun n ->
            match
              List.find_opt
                (fun (c : Sitefuzz.campaign) -> c.Sitefuzz.sg_name = n)
                Sitefuzz.default_campaigns
            with
            | Some c -> c
            | None ->
              Printf.eprintf
                "unknown campaign %S; try 'altcheck sites --list'\n" n;
              exit 1)
          names
    in
    let result =
      Sitefuzz.run ~jobs ~seeds ~scenarios ~campaigns ~verify ~sanitize ~shards
        ()
    in
    if not quiet then List.iter print_endline result.Sitefuzz.lines;
    List.iter
      (fun v -> Format.printf "%a@." Report.pp_violation v)
      result.Sitefuzz.violations;
    (match result.Sitefuzz.first_failing with
    | Some c ->
      Printf.printf "minimal failing cell: %s\n" (Sitefuzz.describe_cell c)
    | None -> ());
    List.iter
      (fun m -> Printf.printf "DETERMINISM MISMATCH: %s\n" m)
      result.Sitefuzz.mismatches;
    Printf.printf "%d site-faulted runs%s, %d violations%s\n"
      result.Sitefuzz.cells_run
      (if verify then " (each executed twice)" else "")
      (List.length result.Sitefuzz.violations)
      (if verify then
         Printf.sprintf ", %d determinism mismatches"
           (List.length result.Sitefuzz.mismatches)
       else "");
    if result.Sitefuzz.mismatches <> [] then exit Report.code_determinism;
    exit (Report.exit_code result.Sitefuzz.violations)
  in
  Cmd.v (Cmd.info "sites" ~doc)
    Term.(
      const run $ seeds $ names $ campaign_names $ verify $ list_campaigns
      $ quiet $ jobs_arg $ sanitize_arg $ shards_arg)

(* ---------------- bench ---------------- *)

let bench_cmd =
  let doc =
    "Time the full invariant sweep sequentially and in parallel, and write \
     a JSON benchmark record (the repo's perf trajectory reads it)."
  in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per (scenario, policy) cell.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_altcheck.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the record.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "After writing, re-read the file and fail unless every schema \
             field is present (used by the $(b,@bench-smoke) alias).")
  in
  let required_fields =
    [
      "benchmark"; "runs"; "seeds"; "jobs"; "cores"; "sequential_s";
      "parallel_s"; "speedup"; "runs_per_sec_sequential";
      "runs_per_sec_parallel"; "violations"; "identical_reports";
    ]
  in
  let run seeds out validate jobs =
    let cells = Invariants.matrix_cells ~seeds () in
    let n = Array.length cells in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    Printf.printf "%d runs per sweep; timing sequential sweep...\n%!" n;
    let seq_results, seq_s = time (fun () -> Invariants.run_cells ~jobs:1 cells) in
    Printf.printf "sequential: %.3f s; timing parallel sweep (%d jobs)...\n%!"
      seq_s jobs;
    let par_results, par_s = time (fun () -> Invariants.run_cells ~jobs cells) in
    Printf.printf "parallel:   %.3f s\n%!" par_s;
    let report results =
      List.concat_map
        (fun (_, vs) ->
          List.map (fun v -> Format.asprintf "%a" Report.pp_violation v) vs)
        (Array.to_list results)
    in
    let seq_report = report seq_results and par_report = report par_results in
    let identical = seq_report = par_report in
    if not identical then
      Printf.eprintf
        "WARNING: parallel sweep reported different violations than the \
         sequential sweep\n";
    let violations = List.length seq_report in
    let json =
      String.concat "\n"
        [
          "{";
          Printf.sprintf "  %S: %S," "benchmark" "altcheck-sweep";
          Printf.sprintf "  %S: %d," "runs" n;
          Printf.sprintf "  %S: %d," "seeds" seeds;
          Printf.sprintf "  %S: %d," "jobs" jobs;
          Printf.sprintf "  %S: %d," "cores" (Parallel.default_jobs ());
          Printf.sprintf "  %S: %.6f," "sequential_s" seq_s;
          Printf.sprintf "  %S: %.6f," "parallel_s" par_s;
          Printf.sprintf "  %S: %.3f," "speedup" (seq_s /. par_s);
          Printf.sprintf "  %S: %.1f," "runs_per_sec_sequential"
            (float_of_int n /. seq_s);
          Printf.sprintf "  %S: %.1f," "runs_per_sec_parallel"
            (float_of_int n /. par_s);
          Printf.sprintf "  %S: %d," "violations" violations;
          Printf.sprintf "  %S: %b" "identical_reports" identical;
          "}";
          "";
        ]
    in
    let oc =
      try open_out out
      with Sys_error m ->
        Printf.eprintf "cannot write %s: %s\n" out m;
        exit 1
    in
    output_string oc json;
    close_out oc;
    Printf.printf
      "%s: %d runs, %.3f s sequential, %.3f s on %d jobs (%.2fx), %d \
       violations\n"
      out n seq_s par_s jobs (seq_s /. par_s) violations;
    if validate then begin
      let ic = open_in out in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      let has_field f =
        (* Keys are unique in the emitted object, so a substring probe of
           the quoted key is a sufficient smoke check. *)
        let needle = Printf.sprintf "%S:" f in
        let nlen = String.length needle in
        let rec scan i =
          i + nlen <= String.length contents
          && (String.sub contents i nlen = needle || scan (i + 1))
        in
        scan 0
      in
      let missing = List.filter (fun f -> not (has_field f)) required_fields in
      if missing <> [] then begin
        Printf.eprintf "schema validation FAILED; missing: %s\n"
          (String.concat ", " missing);
        exit 2
      end;
      Printf.printf "schema ok (%d fields)\n" (List.length required_fields);
      (* A parallel sweep can only beat the sequential one when there is
         real parallelism to be had. On a single-core host (CI containers,
         commonly) a speedup below 1x is expected scheduling overhead, so
         it only warrants a note; with two or more cores it is a genuine
         performance regression. See EXPERIMENTS.md. *)
      let cores = Parallel.default_jobs () in
      let speedup = seq_s /. par_s in
      if speedup < 1.0 then
        if cores < 2 then
          Printf.printf
            "note: speedup %.2fx < 1 on a %d-core host; domain fan-out \
             cannot help without >= 2 cores (not a failure)\n"
            speedup cores
        else begin
          Printf.eprintf
            "speedup validation FAILED: %.2fx < 1 with %d cores available\n"
            speedup cores;
          exit 4
        end
    end;
    if not identical then exit 3;
    exit (if violations = 0 then 0 else 1)
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const run $ seeds $ out $ validate $ jobs_arg)

(* ---------------- lint ---------------- *)

(* The built-in lint suite: the OR-parallel route-planning program from
   examples/prolog_or.ml. All three plan/1 strategies unify with the
   goal, two of them end in a top-level fail — a static proof that at
   most one branch can ever synchronise. *)
let builtin_program =
  {|
  burn(0).
  burn(N) :- N > 0, M is N - 1, burn(M).
  plan(rail(X)) :- burn(4000), member(X, []), fail.
  plan(ferry(X)) :- burn(6000), member(X, []), fail.
  plan(fly(direct)) :- burn(150).
|}

let builtin_goals = [ "plan(P)"; "burn(3000)" ]

let lint_db file =
  let db = Database.with_prelude () in
  (match file with
  | None -> ignore (Database.add_program db builtin_program)
  | Some f ->
    let ic =
      try open_in f
      with Sys_error m ->
        Printf.eprintf "cannot read %s: %s\n" f m;
        exit 1
    in
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    (try ignore (Database.add_program db src) with
    | Parser.Parse_error m ->
      Printf.eprintf "%s: parse error: %s\n" f m;
      exit 1
    | Lexer.Lex_error { pos; message } ->
      Printf.eprintf "%s: lex error at %d: %s\n" f pos message;
      exit 1));
  db

let parse_goal g =
  try fst (Parser.query g) with
  | Parser.Parse_error m ->
    Printf.eprintf "bad goal %S: %s\n" g m;
    exit 1
  | Lexer.Lex_error { pos; message } ->
    Printf.eprintf "bad goal %S: lex error at %d: %s\n" g pos message;
    exit 1

let consensus_bench_policy =
  {
    Concurrent.default_policy with
    Concurrent.sync =
      Concurrent.Consensus
        { nodes = 3; crashed = []; vote_delay = 0.0002; reply_timeout = 0.05 };
  }

let solution_string = function
  | None -> "-"
  | Some bindings ->
    String.concat ","
      (List.map
         (fun (v, t) -> Printf.sprintf "%d=%s" v (Prolog_term.to_string t))
         bindings)

let lint_bench db goal out validate =
  let finding = Lint.check_goal db goal in
  let exclusive = match finding.Lint.verdict with
    | Lint.Independent _ -> true
    | Lint.Conflicting _ | Lint.Unknown _ -> false
  in
  if not exclusive then begin
    Printf.eprintf
      "refusing to bench consensus elision: goal %s is not proven exclusive \
       (%s)\n"
      finding.Lint.target
      (Lint.verdict_detail finding.Lint.verdict);
    exit (Lint.exit_code [ finding ])
  end;
  (* Same goal, same seed, same policy: the only difference is the voter
     group. The winner and its bindings must be byte-identical; the
     elided run must not be slower. *)
  let base = Or_parallel.solve_sim ~policy:consensus_bench_policy db goal in
  let fast =
    Or_parallel.solve_sim ~policy:consensus_bench_policy ~exclusive:true db goal
  in
  let winner b = match b with Some i -> string_of_int i | None -> "-" in
  let identical =
    base.Or_parallel.winner_branch = fast.Or_parallel.winner_branch
    && solution_string base.Or_parallel.first_solution
       = solution_string fast.Or_parallel.first_solution
  in
  let delta = base.Or_parallel.par_time -. fast.Or_parallel.par_time in
  let json =
    String.concat "\n"
      [
        "{";
        Printf.sprintf "  %S: %S," "benchmark" "lint-consensus-elision";
        Printf.sprintf "  %S: %S," "goal" finding.Lint.target;
        Printf.sprintf "  %S: %S," "verdict" (Lint.verdict_name finding.Lint.verdict);
        Printf.sprintf "  %S: %S," "proof" (Lint.verdict_detail finding.Lint.verdict);
        Printf.sprintf "  %S: %d," "branches" finding.Lint.branches;
        Printf.sprintf "  %S: %S," "winner_consensus" (winner base.Or_parallel.winner_branch);
        Printf.sprintf "  %S: %S," "winner_elided" (winner fast.Or_parallel.winner_branch);
        Printf.sprintf "  %S: %S," "solution_consensus"
          (solution_string base.Or_parallel.first_solution);
        Printf.sprintf "  %S: %S," "solution_elided"
          (solution_string fast.Or_parallel.first_solution);
        Printf.sprintf "  %S: %b," "winner_identical" identical;
        Printf.sprintf "  %S: %.9f," "par_time_consensus_s" base.Or_parallel.par_time;
        Printf.sprintf "  %S: %.9f," "par_time_elided_s" fast.Or_parallel.par_time;
        Printf.sprintf "  %S: %.9f," "sync_overhead_saved_s" delta;
        Printf.sprintf "  %S: %.6f" "overhead_saved_pct"
          (if base.Or_parallel.par_time > 0. then
             100. *. delta /. base.Or_parallel.par_time
           else 0.);
        "}";
        "";
      ]
  in
  let oc =
    try open_out out
    with Sys_error m ->
      Printf.eprintf "cannot write %s: %s\n" out m;
      exit 1
  in
  output_string oc json;
  close_out oc;
  Printf.printf
    "%s: winner %s (consensus) vs %s (elided), identical=%b; %.6fs -> %.6fs \
     (saved %.6fs)\n"
    out
    (winner base.Or_parallel.winner_branch)
    (winner fast.Or_parallel.winner_branch)
    identical base.Or_parallel.par_time fast.Or_parallel.par_time delta;
  if validate then begin
    if not identical then begin
      Printf.eprintf
        "validation FAILED: elided winner differs from the consensus winner\n";
      exit 2
    end;
    if delta < 0. then begin
      Printf.eprintf
        "validation FAILED: eliding consensus made the block slower \
         (%.9fs -> %.9fs)\n"
        base.Or_parallel.par_time fast.Or_parallel.par_time;
      exit 3
    end;
    Printf.printf "elision ok: winner identical, %.6fs overhead saved\n" delta
  end;
  exit 0

let lint_cmd =
  let doc =
    "Statically analyse alternative independence: OR-branch mutual \
     exclusivity over a Prolog database, and declared effect-footprint \
     conflicts. Exit 0 only when every finding is proven independent; \
     conflicts exit 21, undecided findings exit 22 ($(b,altcheck codes))."
  in
  let file =
    Arg.(
      value
      & opt (some string) None
      & info [ "f"; "file" ] ~docv:"FILE.pl"
          ~doc:
            "Prolog program to analyse (with the standard prelude loaded). \
             Default: the built-in OR-parallel route-planning suite.")
  in
  let goals =
    Arg.(
      value & opt_all string []
      & info [ "g"; "goal" ] ~docv:"GOAL"
          ~doc:
            "Goal whose OR branches to analyse (repeatable). Default: the \
             built-in suite's goals.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit findings as JSON Lines (one object per finding).")
  in
  let bench =
    Arg.(
      value & flag
      & info [ "bench" ]
          ~doc:
            "Measure the consensus-elision fast path on the (single) goal: \
             race the OR branches under 3-node consensus, then again with \
             the proven-exclusive verdict eliding the voters, and write a \
             JSON record comparing winners and overhead.")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_lint.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where $(b,--bench) writes.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "With $(b,--bench): fail unless the elided winner is identical \
             and no overhead was added (used by the $(b,@lint) alias).")
  in
  let run file goals json bench out validate =
    let db = lint_db file in
    let goals =
      match (goals, file) with
      | [], None -> if bench then [ List.hd builtin_goals ] else builtin_goals
      | [], Some f ->
        Printf.eprintf "no goal given for %s (use -g GOAL)\n" f;
        exit 1
      | gs, _ -> gs
    in
    if bench then begin
      match goals with
      | [ g ] -> lint_bench db (parse_goal g) out validate
      | _ ->
        Printf.eprintf "--bench takes exactly one goal\n";
        exit 1
    end;
    let findings =
      List.map (fun g -> Lint.check_goal db (parse_goal g)) goals
    in
    List.iter
      (fun f ->
        if json then print_endline (Lint.finding_to_json f)
        else Format.printf "%a@." Lint.pp_finding f)
      findings;
    exit (Lint.exit_code findings)
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ file $ goals $ json $ bench $ out $ validate)

(* ---------------- serve ---------------- *)

let serve_cmd =
  let doc =
    "Run the request-driven serving layer over a seeded open-loop load, \
     verify the determinism contract, and write BENCH_serve.json."
  in
  let seed =
    Arg.(
      value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let requests =
    Arg.(
      value & opt int 600
      & info [ "requests" ] ~docv:"N"
          ~doc:"Arrivals to generate (smoke-sized default).")
  in
  let out =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the record.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "After writing, re-check the record for every schema field \
             (used by the $(b,@serve-smoke) alias).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-determinism" ]
          ~doc:
            "Fail unless the replay digest and the jobs-1 digest both \
             match the run.")
  in
  let run seed requests out validate verify sanitize jobs shards =
    let wl =
      { Workload.default with Workload.wl_seed = seed; wl_requests = requests }
    in
    let sv =
      {
        Server.default with
        Server.sv_sanitize = sanitize;
        sv_jobs = jobs;
        sv_shards = shards;
      }
    in
    let result, m, v = Servebench.run_verified wl sv in
    Printf.printf
      "%d requests: %d served, %d failed, %d shed in %d batches; p99 %.4f s\n"
      m.Servebench.m_requests m.Servebench.m_served m.Servebench.m_failed
      m.Servebench.m_shed m.Servebench.m_batches m.Servebench.m_p99;
    List.iter
      (fun viol -> Format.eprintf "%a@." Report.pp_violation viol)
      result.Server.violations;
    let pc = Servebench.measure_pool_cost ~jobs:sv.Server.sv_jobs in
    let json = Servebench.to_json wl sv m v pc in
    let oc =
      try open_out out
      with Sys_error msg ->
        Printf.eprintf "cannot write %s: %s\n" out msg;
        exit 1
    in
    output_string oc json;
    close_out oc;
    Printf.printf "%s: digest %016Lx\n" out v.Servebench.v_digest;
    if validate then begin
      match Servebench.validate json with
      | Ok n -> Printf.printf "schema ok (%d fields)\n" n
      | Error missing ->
          Printf.eprintf "schema validation FAILED; missing: %s\n"
            (String.concat ", " missing);
          exit 2
    end;
    if verify then begin
      if not v.Servebench.v_replay_identical then begin
        Printf.eprintf
          "determinism FAILED: replay with the same configs diverged\n";
        exit 3
      end;
      if not v.Servebench.v_jobs_identical then begin
        Printf.eprintf "determinism FAILED: jobs-1 and jobs-%d diverged\n"
          jobs;
        exit 3
      end;
      Printf.printf "determinism ok: replay identical, jobs-1 = jobs-%d\n"
        jobs
    end;
    exit (if result.Server.violations = [] then 0 else 1)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ seed $ requests $ out $ validate $ verify $ sanitize_arg
      $ jobs_arg $ shards_arg)

(* ---------------- codes ---------------- *)

let codes_cmd =
  let doc = "Print the exit-code registry (the single source of truth)." in
  let run () = Format.printf "%a" Report.pp_code_table () in
  Cmd.v (Cmd.info "codes" ~doc) Term.(const run $ const ())

let () =
  let doc = "Check executions against the transparency paper's invariants" in
  let info = Cmd.info "altcheck" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; fuzz_cmd; sites_cmd; bench_cmd; serve_cmd;
            lint_cmd; codes_cmd;
          ]))
