(* altcheck: verify executions against the paper's invariants.

     altcheck list                      enumerate scenarios and policies
     altcheck run [--seeds N]           run the full scenario x policy matrix
     altcheck run -s counters           restrict to named scenarios
     altcheck run --dump-trace F.jsonl  dump a trace (first violating run,
                                        else the last run) as JSON Lines

   Exit code 0 when every run satisfies every invariant; otherwise the
   exit code of the most severe violated class (see Report.class_exit_code). *)

open Cmdliner

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List the checkable scenarios and the policy matrix." in
  let run () =
    Printf.printf "scenarios:\n";
    List.iter
      (fun (s : Invariants.scenario) ->
        Printf.printf "  %-12s%s\n" s.Invariants.sc_name
          (if s.Invariants.uses_source then " (uses a source device)" else ""))
      Invariants.default_scenarios;
    Printf.printf "policies (%d):\n" (List.length Invariants.policy_matrix);
    List.iter
      (fun p -> Printf.printf "  %s\n" (Concurrent.describe p))
      Invariants.policy_matrix
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let doc = "Run the invariant checkers over the scenario x policy matrix." in
  let seeds =
    Arg.(
      value & opt int 5
      & info [ "seeds" ] ~docv:"N" ~doc:"Seeds per (scenario, policy) cell.")
  in
  let names =
    Arg.(
      value & opt_all string []
      & info [ "s"; "scenario" ] ~docv:"NAME"
          ~doc:"Scenario to check (repeatable); see $(b,altcheck list).")
  in
  let dump =
    Arg.(
      value & opt (some string) None
      & info [ "dump-trace" ] ~docv:"FILE"
          ~doc:
            "Write one run's event trace as JSON Lines: the first violating \
             run if any, otherwise the last run executed.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Print only violations and the summary.")
  in
  let run seeds names dump quiet =
    let scenarios =
      match names with
      | [] -> Invariants.default_scenarios
      | names ->
        List.map
          (fun n ->
            match
              List.find_opt
                (fun s -> s.Invariants.sc_name = n)
                Invariants.default_scenarios
            with
            | Some s -> s
            | None ->
              Printf.eprintf "unknown scenario %S; try 'altcheck list'\n" n;
              exit 1)
          names
    in
    let runs = ref 0 in
    let violations = ref [] in
    let dumped_run = ref None in
    List.iter
      (fun sc ->
        List.iter
          (fun policy ->
            for seed = 1 to seeds do
              let rr, vs = Invariants.run_checked sc ~policy ~seed in
              incr runs;
              (match (!dumped_run, vs) with
              | Some (_, true), _ -> () (* keep the first violating run *)
              | _, (_ :: _ as _vs) -> dumped_run := Some (rr, true)
              | _, [] -> dumped_run := Some (rr, false));
              violations := !violations @ vs
            done;
            if not quiet then
              Printf.printf "%-10s %-44s %d seeds  %s\n%!" sc.Invariants.sc_name
                (Concurrent.describe policy) seeds
                (match
                   List.filter
                     (fun v -> v.Report.scenario = sc.Invariants.sc_name
                               && v.Report.policy = Concurrent.describe policy)
                     !violations
                 with
                | [] -> "ok"
                | vs -> Printf.sprintf "%d VIOLATIONS" (List.length vs)))
          Invariants.policy_matrix)
      scenarios;
    List.iter
      (fun v -> Format.printf "%a@." Report.pp_violation v)
      !violations;
    Printf.printf "%d runs, %d violations\n" !runs (List.length !violations);
    (match (dump, !dumped_run) with
    | Some file, Some (rr, violating) ->
      let oc =
        try open_out file
        with Sys_error m ->
          Printf.eprintf "cannot write trace: %s\n" m;
          exit 1
      in
      output_string oc (Trace.to_jsonl (Engine.trace rr.Invariants.engine));
      close_out oc;
      Printf.printf "trace of %s run (%s, %s, seed %d) written to %s\n"
        (if violating then "first violating" else "last")
        rr.Invariants.scenario.Invariants.sc_name
        (Concurrent.describe rr.Invariants.policy)
        rr.Invariants.seed file
    | Some _, None | None, _ -> ());
    exit (Report.exit_code !violations)
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ seeds $ names $ dump $ quiet)

let () =
  let doc = "Check executions against the transparency paper's invariants" in
  let info = Cmd.info "altcheck" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
