(* altserve: drive the request-driven serving layer with a deterministic
   open-loop load and emit BENCH_serve.json.

     altserve --requests 2000 --rate 200   a seeded open-loop run
     altserve --sanitize                   attach the online sanitizer to
                                           every batch engine
     altserve --verify-determinism         also replay the run and compare
                                           digests (same seed => identical
                                           responses; jobs-1 = jobs-N)
     altserve --validate -o BENCH.json     re-read the record and fail
                                           unless every schema field is
                                           present (the @serve-smoke alias)
     altserve --ladder --rate 800          enable the degradation ladder
     altserve --faults 7                   run every batch under a seeded
                                           fault campaign (supervised
                                           recovery, circuit breakers)
     altserve --chaos --seed 7 -j 2        the chaos-serve campaign:
                                           faults x overload, audited,
                                           replayed, jobs-diffed
     altserve --degrade-bench              ladder vs shed-only goodput
                                           under ramped overload; writes
                                           BENCH_degrade.json

   Exit codes: 0 clean; 1 invariant violations on served requests;
   2 schema validation failed; 3 determinism verification failed;
   4 wall-clock throughput below floor with >= 2 cores; 23/24 (from the
   registry: `altcheck codes`) chaos campaign / degrade benchmark
   failure. *)

open Cmdliner

let wl_term =
  let seed =
    Arg.(
      value & opt int Workload.default.Workload.wl_seed
      & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let requests =
    Arg.(
      value & opt int Workload.default.Workload.wl_requests
      & info [ "requests" ] ~docv:"N" ~doc:"Arrivals to generate.")
  in
  let rate =
    Arg.(
      value & opt float Workload.default.Workload.wl_rate
      & info [ "rate" ] ~docv:"R"
          ~doc:"Mean arrivals per virtual second (Poisson).")
  in
  let tenants =
    Arg.(
      value & opt int Workload.default.Workload.wl_tenants
      & info [ "tenants" ] ~docv:"N" ~doc:"Tenant population (Zipf 1.1).")
  in
  let mk seed requests rate tenants =
    {
      Workload.default with
      Workload.wl_seed = seed;
      wl_requests = requests;
      wl_rate = rate;
      wl_tenants = tenants;
    }
  in
  Term.(const mk $ seed $ requests $ rate $ tenants)

let sv_term =
  let lanes =
    Arg.(
      value & opt int Server.default.Server.sv_lanes
      & info [ "lanes" ] ~docv:"N" ~doc:"Service lanes (virtual executors).")
  in
  let max_batch =
    Arg.(
      value & opt int Server.default.Server.sv_max_batch
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Batch occupancy that forces an immediate close.")
  in
  let window =
    Arg.(
      value & opt float Server.default.Server.sv_window
      & info [ "window" ] ~docv:"S"
          ~doc:"Max virtual seconds a batch waits open for company.")
  in
  let quota_rate =
    Arg.(
      value & opt float Server.default.Server.sv_quota_rate
      & info [ "quota-rate" ] ~docv:"R"
          ~doc:"Per-tenant token refill rate (tokens per virtual second).")
  in
  let quota_burst =
    Arg.(
      value & opt int Server.default.Server.sv_quota_burst
      & info [ "quota-burst" ] ~docv:"N" ~doc:"Per-tenant bucket depth.")
  in
  let scenario_quota =
    Arg.(
      value & opt float Server.default.Server.sv_scenario_rate
      & info [ "scenario-quota-rate" ] ~docv:"R"
          ~doc:
            "Per-scenario quota class shared by all tenants, tokens per \
             virtual second (0 disables, the default). A request must \
             conform to every applicable class before any is charged.")
  in
  let scenario_burst =
    Arg.(
      value & opt int Server.default.Server.sv_scenario_burst
      & info [ "scenario-quota-burst" ] ~docv:"N"
          ~doc:"Per-scenario bucket depth.")
  in
  let global_quota =
    Arg.(
      value & opt float Server.default.Server.sv_global_rate
      & info [ "global-quota-rate" ] ~docv:"R"
          ~doc:
            "Whole-server quota class, tokens per virtual second (0 \
             disables, the default).")
  in
  let global_burst =
    Arg.(
      value & opt int Server.default.Server.sv_global_burst
      & info [ "global-quota-burst" ] ~docv:"N" ~doc:"Global bucket depth.")
  in
  let ladder =
    Arg.(
      value & flag
      & info [ "ladder" ]
          ~doc:
            "Enable the deterministic degradation ladder: under \
             virtual-time overload pressure each request class walks \
             consensus -> latch elision -> sequential fallback -> shed, \
             with hysteresis. Downgrades are reported honestly in the \
             verdicts.")
  in
  let shed_only =
    Arg.(
      value & flag
      & info [ "shed-only" ]
          ~doc:
            "With $(b,--ladder): the baseline controller — same meter and \
             thresholds, but every rung below full service sheds instead \
             of degrading.")
  in
  let deadline =
    Arg.(
      value & opt float Server.default.Server.sv_deadline
      & info [ "deadline" ] ~docv:"S"
          ~doc:
            "Per-request virtual-time budget measured from block entry \
             (default: none). Bounds the rendezvous wait, consensus retry \
             backoff and supervised relaunches alike.")
  in
  let faults =
    Arg.(
      value & opt (some int) None
      & info [ "faults" ] ~docv:"SEED"
          ~doc:
            "Run every batch under a seeded fault campaign: coordinator \
             crashes and healed partitions injected mid-consensus, \
             supervised recovery behind epoch fences, per-site circuit \
             breakers.")
  in
  let retry_budget =
    Arg.(
      value & opt int Server.default.Server.sv_retry_budget
      & info [ "retry-budget" ] ~docv:"N"
          ~doc:"Max supervised relaunches per request (with --faults).")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Attach the online happens-before sanitizer to every batch \
             engine — the production auditor. Its flags join the \
             violation count.")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parallel.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains executing batches (default: one per core). \
             Responses are identical for every value of $(docv).")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Event-loop shards inside each batch engine. Responses are \
             identical for every value of $(docv).")
  in
  let mk lanes max_batch window quota_rate quota_burst scenario_quota
      scenario_burst global_quota global_burst ladder shed_only deadline
      faults retry_budget sanitize jobs shards =
    {
      Server.sv_lanes = lanes;
      sv_max_batch = max_batch;
      sv_window = window;
      sv_quota_rate = quota_rate;
      sv_quota_burst = quota_burst;
      sv_scenario_rate = scenario_quota;
      sv_scenario_burst = scenario_burst;
      sv_global_rate = global_quota;
      sv_global_burst = global_burst;
      sv_ladder =
        {
          (Controller.default ~lanes) with
          Controller.dc_enabled = ladder || shed_only;
          dc_shed_only = shed_only;
        };
      sv_deadline = deadline;
      sv_faults = faults;
      sv_retry_budget = retry_budget;
      sv_breaker = Server.default.Server.sv_breaker;
      sv_overhead = Server.default.Server.sv_overhead;
      sv_sanitize = sanitize;
      sv_jobs = jobs;
      sv_shards = shards;
    }
  in
  Term.(
    const mk $ lanes $ max_batch $ window $ quota_rate $ quota_burst
    $ scenario_quota $ scenario_burst $ global_quota $ global_burst $ ladder
    $ shed_only $ deadline $ faults $ retry_budget $ sanitize $ jobs $ shards)

(* The wall-clock throughput floor: far below what even one core
   sustains on the default smoke load, so only a real regression (or a
   starved single-core container, which is excused) trips it. *)
let wall_rps_floor = 50.

let run_chaos wl (sv : Server.config) =
  let o =
    Chaosserve.chaos ~requests:wl.Workload.wl_requests
      ~rate:wl.Workload.wl_rate ~jobs:sv.Server.sv_jobs
      ~seed:wl.Workload.wl_seed ()
  in
  Printf.printf
    "chaos: %d requests: %d served, %d degraded, %d recovered, %d failed, \
     %d shed; %d breaker opens; digest %016Lx\n"
    o.Chaosserve.ch_requests o.Chaosserve.ch_served o.Chaosserve.ch_degraded
    o.Chaosserve.ch_recovered o.Chaosserve.ch_failed o.Chaosserve.ch_shed
    o.Chaosserve.ch_breaker_opens o.Chaosserve.ch_digest;
  List.iter
    (fun viol -> Format.eprintf "%a@." Report.pp_violation viol)
    o.Chaosserve.ch_violations;
  if not o.Chaosserve.ch_replay_identical then
    Printf.eprintf "chaos: replay with the same seeds diverged\n";
  if not o.Chaosserve.ch_jobs_identical then
    Printf.eprintf "chaos: jobs-1 and jobs-%d diverged\n" sv.Server.sv_jobs;
  if Chaosserve.chaos_ok o then begin
    Printf.printf
      "chaos ok: 0 violations, replay identical, jobs-1 = jobs-%d\n"
      sv.Server.sv_jobs;
    exit 0
  end
  else exit (Report.code_of_label "serve-chaos")

let run_degrade wl out =
  let d = Chaosserve.degrade ~seed:wl.Workload.wl_seed () in
  List.iter
    (fun (s : Chaosserve.degrade_step) ->
      Printf.printf
        "rate %6.1f: ladder %d good (%d degraded, %d shed, %.2f/s) vs \
         shed-only %d good (%d shed, %.2f/s)\n"
        s.Chaosserve.ds_rate s.Chaosserve.ds_ladder_good
        s.Chaosserve.ds_ladder_degraded s.Chaosserve.ds_ladder_shed
        s.Chaosserve.ds_ladder_goodput s.Chaosserve.ds_shed_only_good
        s.Chaosserve.ds_shed_only_shed s.Chaosserve.ds_shed_only_goodput)
    d.Chaosserve.dg_steps;
  let json = Chaosserve.degrade_to_json d in
  let oc =
    try open_out out
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" out msg;
      exit 1
  in
  output_string oc json;
  close_out oc;
  (match Chaosserve.degrade_validate json with
  | Ok n -> Printf.printf "%s: schema ok (%d fields)\n" out n
  | Error missing ->
      Printf.eprintf "%s: schema validation FAILED; missing: %s\n" out
        (String.concat ", " missing);
      exit (Report.code_of_label "serve-degrade"));
  if d.Chaosserve.dg_violations > 0 then begin
    Printf.eprintf "degrade: %d invariant violations\n"
      d.Chaosserve.dg_violations;
    exit (Report.code_of_label "serve-degrade")
  end;
  if d.Chaosserve.dg_regressed then begin
    Printf.eprintf
      "degrade: ladder goodput fell below the shed-only baseline\n";
    exit (Report.code_of_label "serve-degrade")
  end;
  Printf.printf "degrade ok: ladder >= shed-only at every load step\n";
  exit 0

let main wl sv out validate verify_determinism chaos degrade_bench =
  if chaos then run_chaos wl sv;
  if degrade_bench then run_degrade wl out;
  let t0 = Unix.gettimeofday () in
  let result, m, v = Servebench.run_verified wl sv in
  let wall_s = Unix.gettimeofday () -. t0 in
  let runs = 2 + (if sv.Server.sv_jobs > 1 then 1 else 0) in
  let executed =
    m.Servebench.m_served + m.Servebench.m_degraded
    + m.Servebench.m_recovered + m.Servebench.m_failed
  in
  let wall_rps = float_of_int (executed * runs) /. Float.max wall_s 1e-9 in
  Printf.printf
    "%d requests: %d served, %d degraded, %d recovered, %d failed, %d shed \
     (%.1f%%) in %d batches\n"
    m.Servebench.m_requests m.Servebench.m_served m.Servebench.m_degraded
    m.Servebench.m_recovered m.Servebench.m_failed m.Servebench.m_shed
    (100. *. m.Servebench.m_shed_rate)
    m.Servebench.m_batches;
  Printf.printf
    "latency p50/p99/p999: %.4f/%.4f/%.4f s; %.1f req/s virtual; %.0f \
     req/s wall (%d runs, %.2f s)\n"
    m.Servebench.m_p50 m.Servebench.m_p99 m.Servebench.m_p999
    m.Servebench.m_rps wall_rps runs wall_s;
  if m.Servebench.m_ladder_transitions > 0 || m.Servebench.m_breaker_opens > 0
  then
    Printf.printf
      "ladder: %d transitions, %d overload sheds; breakers: %d opens\n"
      m.Servebench.m_ladder_transitions m.Servebench.m_shed_overload
      m.Servebench.m_breaker_opens;
  List.iter
    (fun viol -> Format.eprintf "%a@." Report.pp_violation viol)
    result.Server.violations;
  let pc = Servebench.measure_pool_cost ~jobs:sv.Server.sv_jobs in
  let json = Servebench.to_json wl sv m v pc in
  let oc =
    try open_out out
    with Sys_error msg ->
      Printf.eprintf "cannot write %s: %s\n" out msg;
      exit 1
  in
  output_string oc json;
  close_out oc;
  Printf.printf "%s: digest %016Lx\n" out v.Servebench.v_digest;
  if validate then begin
    match Servebench.validate json with
    | Ok n -> Printf.printf "schema ok (%d fields)\n" n
    | Error missing ->
        Printf.eprintf "schema validation FAILED; missing: %s\n"
          (String.concat ", " missing);
        exit 2
  end;
  if verify_determinism then begin
    if not v.Servebench.v_replay_identical then begin
      Printf.eprintf
        "determinism FAILED: replay with the same configs diverged\n";
      exit 3
    end;
    if not v.Servebench.v_jobs_identical then begin
      Printf.eprintf "determinism FAILED: jobs-1 and jobs-%d diverged\n"
        sv.Server.sv_jobs;
      exit 3
    end;
    Printf.printf "determinism ok: replay identical, jobs-1 = jobs-%d\n"
      sv.Server.sv_jobs
  end;
  (* Wall-clock throughput is load-dependent where everything above is
     not: on a single-core host a slow run is expected scheduling
     starvation, so it only warrants a note; with two or more cores it
     is a genuine regression (same convention as altcheck bench). *)
  let cores = Parallel.default_jobs () in
  if wall_rps < wall_rps_floor then
    if cores < 2 then
      Printf.printf
        "note: %.0f req/s wall < %.0f on a %d-core host (not a failure)\n"
        wall_rps wall_rps_floor cores
    else begin
      Printf.eprintf
        "throughput validation FAILED: %.0f req/s wall < %.0f with %d \
         cores available\n"
        wall_rps wall_rps_floor cores;
      exit 4
    end;
  exit (if result.Server.violations = [] then 0 else 1)

let () =
  let doc = "Serve a deterministic open-loop request stream of alt-blocks" in
  let out =
    Arg.(
      value
      & opt string "BENCH_serve.json"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the record.")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "After writing, re-check the record for every schema field \
             (used by the $(b,@serve-smoke) alias).")
  in
  let verify_determinism =
    Arg.(
      value & flag
      & info [ "verify-determinism" ]
          ~doc:
            "Fail unless the replay digest and the jobs-1 digest both \
             match the run.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run the chaos-serve campaign instead: faults x overload with \
             the ladder, breakers, sanitizer and audits on, then replay \
             and jobs-diff it. Uses $(b,--seed), $(b,--requests), \
             $(b,--rate) and $(b,--jobs); exits with the $(b,serve-chaos) \
             registry code on failure.")
  in
  let degrade_bench =
    Arg.(
      value & flag
      & info [ "degrade-bench" ]
          ~doc:
            "Run the degradation-ladder benchmark instead: ladder vs \
             shed-only goodput under ramped overload, written to $(b,-o) \
             (default BENCH_serve.json — pass -o BENCH_degrade.json). \
             Exits with the $(b,serve-degrade) registry code on \
             regression.")
  in
  let info = Cmd.info "altserve" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const main $ wl_term $ sv_term $ out $ validate
            $ verify_determinism $ chaos $ degrade_bench)))
