(* altbench: command-line access to the evaluation harness and the engines.

     altbench list                       enumerate experiments
     altbench run [-e ID]...            run all or selected experiments
     altbench race -c 10,20,30 ...      race fixed-cost alternatives
     altbench mem [--validate]          memory-hierarchy microbenchmarks
     altbench shard [--validate]        sharded-engine crossover sweep
     altbench prolog -g GOAL [-f FILE]  query the Prolog engine
*)

module Prolog_term = Term

open Cmdliner

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun (e : Experiments.experiment) ->
        Printf.printf "%-20s %s\n%-20s   [%s]\n" e.Experiments.id
          e.Experiments.title "" e.Experiments.paper_ref)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------------- run ---------------- *)

let run_cmd =
  let doc = "Run experiments (all by default)." in
  let ids =
    Arg.(
      value & opt_all string []
      & info [ "e"; "experiment" ] ~docv:"ID"
          ~doc:"Experiment id (repeatable); see $(b,altbench list).")
  in
  let jobs =
    Arg.(
      value
      & opt int (Parallel.default_jobs ())
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for per-trial fan-out (default: one per core). \
             Never changes the printed tables.")
  in
  let run ids jobs =
    (match ids with
    | [] -> Experiments.run_all ~jobs Format.std_formatter
    | ids ->
      List.iter
        (fun id ->
          if Experiments.find id = None then (
            Printf.eprintf "unknown experiment %S; try 'altbench list'\n" id;
            exit 1))
        ids;
      Experiments.run_all ~ids ~jobs Format.std_formatter);
    Format.printf "@."
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids $ jobs)

(* ---------------- race ---------------- *)

let race_cmd =
  let doc =
    "Race fixed-cost alternatives in the simulator and report PI."
  in
  let costs =
    Arg.(
      required
      & opt (some (list float)) None
      & info [ "c"; "costs" ] ~docv:"T1,T2,..."
          ~doc:"Execution times of the alternatives (seconds).")
  in
  let cores =
    Arg.(
      value & opt int 0
      & info [ "cores" ] ~docv:"N"
          ~doc:"Processors to share (0 = one per alternative).")
  in
  let overhead =
    Arg.(
      value & opt float 0.
      & info [ "overhead" ] ~docv:"S" ~doc:"Analytic overhead to apply to PI.")
  in
  let machine =
    Arg.(
      value
      & opt (enum [ ("uniform", `U); ("3b2", `A); ("hp", `H); ("modern", `M) ]) `U
      & info [ "machine" ] ~docv:"NAME"
          ~doc:"Cost model: uniform, 3b2, hp, or modern.")
  in
  let run costs cores overhead machine =
    let model =
      match machine with
      | `U -> Cost_model.uniform ()
      | `A -> Cost_model.att_3b2
      | `H -> Cost_model.hp_9000_350
      | `M -> Cost_model.modern
    in
    let cores = if cores <= 0 then Engine.Infinite else Engine.Cores cores in
    let eng = Engine.create ~cores ~model ~trace:false () in
    let space =
      Address_space.create ~size_hint:(320 * 1024) (Engine.frame_store eng) model
    in
    let alts = List.mapi (fun i c -> Alternative.fixed ~cost:c i) costs in
    let r = Concurrent.run_toplevel eng ~space alts in
    let times = Array.of_list costs in
    (match r.Concurrent.outcome with
    | Alt_block.Selected { index; _ } ->
      Printf.printf "winner:     alternative %d (tau = %g)\n" index
        (List.nth costs index)
    | Alt_block.Block_failed m -> Printf.printf "failed: %s\n" m);
    Printf.printf "elapsed:    %.6f s (setup %.6f, selection %.6f)\n"
      r.Concurrent.elapsed r.Concurrent.setup_cost r.Concurrent.selection_cost;
    Printf.printf "wasted cpu: %.6f s\n" r.Concurrent.wasted_cpu;
    Printf.printf "PI:         %.3f (sequential mean %.3f / [elapsed + overhead %.3f])\n"
      (Stats.mean times /. (r.Concurrent.elapsed +. overhead))
      (Stats.mean times) overhead
  in
  Cmd.v (Cmd.info "race" ~doc) Term.(const run $ costs $ cores $ overhead $ machine)

(* ---------------- mem ---------------- *)

let mem_cmd =
  let doc =
    "Memory-hierarchy microbenchmarks: minor words and ops/sec for scalar \
     page access, fork, absorb, and IPC."
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) (default: stdout).")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check the allocation contracts (zero-alloc scalar fast path, \
             O(1) fork, O(dirty) absorb) and exit non-zero on violation. \
             Runs with reduced iteration counts.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"X"
          ~doc:"Multiply iteration counts by $(docv).")
  in
  let run output validate_flag scale =
    let scale = if validate_flag then Float.min scale 0.2 else scale in
    let r = Membench.run ~scale () in
    let json = Membench.to_json r in
    (match output with
    | None -> print_string json
    | Some path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" path);
    if validate_flag then begin
      match Membench.validate r with
      | Ok () -> print_endline "mem validate: OK (allocation contracts hold)"
      | Error es ->
        List.iter (Printf.eprintf "mem validate: FAIL %s\n") es;
        exit 1
    end
  in
  Cmd.v (Cmd.info "mem" ~doc) Term.(const run $ output $ validate $ scale)

(* ---------------- shard ---------------- *)

let shard_cmd =
  let doc =
    "Sweep shard count x cross-shard ratio x process count over the \
     seeded messaging workload: byte-identity across shard counts, \
     barrier/cross-shard counters, and the pool-level sweep speedup."
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the JSON report to $(docv) (default: stdout).")
  in
  let validate =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Check the determinism contracts (identical digests and event \
             counts across shard counts, zero barriers at one shard, \
             cross-shard traffic actually staged) and exit non-zero on \
             violation. The pool speedup check fails only with >= 2 \
             cores (a starved single-core host is excused with a note).")
  in
  let rounds =
    Arg.(
      value & opt int 40
      & info [ "rounds" ] ~docv:"N" ~doc:"Sends per worker.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let shards =
    Arg.(
      value
      & opt (list int) Shardbench.default_shards
      & info [ "shards" ] ~docv:"N1,N2,..."
          ~doc:"Shard counts to sweep.")
  in
  let run output validate_flag rounds seed shards =
    let r = Shardbench.run ~seed ~rounds ~shard_counts:shards () in
    let json = Shardbench.to_json r in
    (match output with
    | None -> print_string json
    | Some path ->
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" path);
    if validate_flag then begin
      (match Shardbench.validate r with
      | Ok () ->
        print_endline
          "shard validate: OK (digests and event counts shard-independent)"
      | Error es ->
        List.iter (Printf.eprintf "shard validate: FAIL %s\n") es;
        exit 1);
      (* Wall-clock speedup is load-dependent where the digests are not:
         below two cores a slow pool is expected starvation, so it only
         warrants a note (same convention as altserve). *)
      if r.Shardbench.r_pool_speedup < 1.0 then
        if r.Shardbench.r_cores < 2 then
          Printf.printf
            "note: pool speedup %.2fx < 1 on a %d-core host (not a failure)\n"
            r.Shardbench.r_pool_speedup r.Shardbench.r_cores
        else begin
          Printf.eprintf
            "shard validate: FAIL pool speedup %.2fx < 1 with %d cores\n"
            r.Shardbench.r_pool_speedup r.Shardbench.r_cores;
          exit 4
        end
    end
  in
  Cmd.v (Cmd.info "shard" ~doc)
    Term.(const run $ output $ validate $ rounds $ seed $ shards)

(* ---------------- prolog ---------------- *)

let prolog_cmd =
  let doc = "Solve a Prolog goal, sequentially or OR-parallel." in
  let goal =
    Arg.(
      required
      & opt (some string) None
      & info [ "g"; "goal" ] ~docv:"GOAL" ~doc:"The query, e.g. 'append(X,Y,[1,2])'.")
  in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Prolog program to consult.")
  in
  let or_parallel =
    Arg.(
      value & flag
      & info [ "p"; "or-parallel" ]
          ~doc:"Race the goal's clause branches in the simulator.")
  in
  let max_solutions =
    Arg.(
      value & opt int 10
      & info [ "n" ] ~docv:"N" ~doc:"Maximum solutions to print (sequential mode).")
  in
  let run goal_src file or_parallel max_solutions =
    let db = Database.with_prelude () in
    (match file with
    | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      ignore (Database.add_program db src)
    | None -> ());
    match Parser.query goal_src with
    | exception Parser.Parse_error m ->
      Printf.eprintf "parse error: %s\n" m;
      exit 1
    | goal, names ->
      let name_of v =
        match List.assoc_opt v names with
        | Some n -> n
        | None -> "_" ^ string_of_int v
      in
      if or_parallel then begin
        let r = Or_parallel.solve_sim db goal in
        Printf.printf "branches: %d, inferences per branch: [%s]\n"
          (Array.length r.Or_parallel.branch_inferences)
          (String.concat "; "
             (Array.to_list (Array.map string_of_int r.Or_parallel.branch_inferences)));
        Printf.printf "sequential: %.4f s   or-parallel: %.4f s   speedup %.2fx\n"
          r.Or_parallel.seq_time r.Or_parallel.par_time r.Or_parallel.speedup;
        match r.Or_parallel.first_solution with
        | Some bindings ->
          List.iter
            (fun (v, t) ->
              Printf.printf "%s = %s\n" (name_of v) (Prolog_term.to_string t))
            bindings;
          if bindings = [] then print_endline "yes."
        | None -> print_endline "no."
      end
      else begin
        match
          Solve.run ~max_solutions db goal
        with
        | exception Solve.Prolog_error m ->
          Printf.eprintf "error: %s\n" m;
          exit 1
        | r ->
          if r.Solve.solutions = [] then print_endline "no."
          else
            List.iter
              (fun bindings ->
                if bindings = [] then print_endline "yes."
                else
                  print_endline
                    (String.concat ", "
                       (List.map
                          (fun (v, t) ->
                            Printf.sprintf "%s = %s" (name_of v) (Prolog_term.to_string t))
                          bindings)))
              r.Solve.solutions
      end
  in
  Cmd.v (Cmd.info "prolog" ~doc)
    Term.(const run $ goal $ file $ or_parallel $ max_solutions)

(* ---------------- repl ---------------- *)

let repl_cmd =
  let doc = "An interactive Prolog top level." in
  let file =
    Arg.(
      value
      & opt (some file) None
      & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Program to consult at startup.")
  in
  let run file =
    let db = Database.with_prelude () in
    (match file with
    | Some path ->
      let ic = open_in path in
      let len = in_channel_length ic in
      let src = really_input_string ic len in
      close_in ic;
      ignore (Database.add_program db src);
      Printf.printf "consulted %s\n" path
    | None -> ());
    print_endline
      "altexec prolog. Queries end with '.'; ':assert <clause>.' adds a \
clause,\n':load <file>' consults, ':quit' leaves.";
    let rec loop () =
      print_string "?- ";
      match read_line () with
      | exception End_of_file -> print_newline ()
      | ":quit" | ":q" -> ()
      | line when String.trim line = "" -> loop ()
      | line when String.length line >= 6 && String.sub line 0 6 = ":load " ->
        let path = String.trim (String.sub line 6 (String.length line - 6)) in
        (try
           let ic = open_in path in
           let len = in_channel_length ic in
           let src = really_input_string ic len in
           close_in ic;
           ignore (Database.add_program db src);
           Printf.printf "consulted %s\n" path
         with
        | Sys_error m -> Printf.printf "error: %s\n" m
        | Parser.Parse_error m | Failure m -> Printf.printf "parse error: %s\n" m);
        loop ()
      | line when String.length line >= 8 && String.sub line 0 8 = ":assert " ->
        let src = String.sub line 8 (String.length line - 8) in
        (try
           ignore (Database.add_program db src);
           print_endline "asserted."
         with
        | Parser.Parse_error m -> Printf.printf "parse error: %s\n" m
        | Lexer.Lex_error { message; _ } -> Printf.printf "lex error: %s\n" message
        | Invalid_argument m -> Printf.printf "error: %s\n" m);
        loop ()
      | line ->
        (match Solve.query db line with
        | Ok [] -> print_endline "no."
        | Ok sols ->
          List.iteri
            (fun i bindings ->
              if i < 10 then
                if bindings = [] then print_endline "yes."
                else
                  print_endline
                    (String.concat ", "
                       (List.map
                          (fun (n, t) ->
                            Printf.sprintf "%s = %s" n (Prolog_term.to_string t))
                          bindings)))
            sols;
          if List.length sols > 10 then
            Printf.printf "... (%d solutions total)\n" (List.length sols)
        | Error m -> Printf.printf "error: %s\n" m);
        loop ()
    in
    loop ()
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ file)

let () =
  let doc =
    "Transparent concurrent execution of mutually exclusive alternatives"
  in
  let info = Cmd.info "altbench" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info [ list_cmd; run_cmd; race_cmd; mem_cmd; shard_cmd; prolog_cmd; repl_cmd ]))
