(* Tests for altsan: the online happens-before sanitizer. Each corruption
   is seeded while the sanitizer watches, so the tests prove the flags are
   raised *at the offending event* (with virtual-time/pid coordinates),
   and cross-validated against the post-mortem oracle. *)

let check = Alcotest.check

let has_class cls flags =
  List.exists (fun f -> f.Sanitizer.sf_class = cls) flags

let oracle_has cls vs = List.exists (fun v -> v.Report.check = cls) vs

(* ---------------- uncertain source emission, caught at emission ------- *)

(* A speculative alternative writes the teletype and then forces a device
   flush before its predicates resolve — the paper's forbidden
   source-interaction, seeded deliberately. *)
let rogue_teletype : Invariants.scenario =
  {
    Invariants.sc_name = "rogue-teletype";
    uses_source = true;
    source_script = [];
    prepare = (fun _ _ -> ());
    alts =
      (fun _eng ~seed:_ ~source ->
        let src = Option.get source in
        [
          Alternative.make ~name:"rogue" (fun ctx ->
              Engine.delay ctx 0.002;
              Source.write ctx src "rogue output";
              Source.force_flush src (Engine.self ctx);
              Engine.delay ctx 0.001;
              0);
          Alternative.make ~name:"slow" (fun ctx ->
              Engine.delay ctx 0.01;
              1);
        ]);
  }

let test_emission_caught_online () =
  let rr, violations =
    Invariants.run_checked ~sanitize:true rogue_teletype
      ~policy:Concurrent.default_policy ~seed:1
  in
  let sz = Option.get rr.Invariants.sanitizer in
  let flags = Sanitizer.flags sz in
  check Alcotest.bool "sanitizer flagged the emission" true
    (has_class Report.Sources flags);
  let f = List.find (fun f -> f.Sanitizer.sf_class = Report.Sources) flags in
  check Alcotest.bool "flag carries the virtual time" true
    (f.Sanitizer.sf_time > 0.);
  check Alcotest.bool "flag names the offending pid" true
    (f.Sanitizer.sf_pid <> None);
  (* The rendered violation exposes the exact coordinates. *)
  let rendered =
    Sanitizer.violations sz ~scenario:"rogue-teletype" ~policy:"p" ~seed:1
  in
  let contains hay needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
    in
    go 0
  in
  let v = List.find (fun v -> v.Report.check = Report.Sources) rendered in
  check Alcotest.bool "detail has [t=...]" true (contains v.Report.detail "[t=");
  check Alcotest.bool "detail has pid=" true (contains v.Report.detail "pid=");
  (* Post-mortem parity: the oracle sees the same offence, so the
     crosscheck appended no divergence. *)
  check Alcotest.bool "oracle agrees" true (oracle_has Report.Sources violations);
  check Alcotest.bool "no sanitizer/oracle divergence" false
    (oracle_has Report.Sanitizer violations)

(* ---------------- forged second win, caught at the event -------------- *)

let test_forged_win_caught_online () =
  let counters = List.hd Invariants.default_scenarios in
  let rr =
    Invariants.run_scenario ~sanitize:true counters
      ~policy:Concurrent.default_policy ~seed:1
  in
  let sz = Option.get rr.Invariants.sanitizer in
  check Alcotest.int "clean run carries no flags" 0 (Sanitizer.flag_count sz);
  (* Forge a duplicate latch win while the observer is still attached:
     the flag must fire at the Trace.record call itself. *)
  let winner = Option.get rr.Invariants.report.Concurrent.winner in
  let eng = rr.Invariants.engine in
  Trace.record (Engine.trace eng) ~time:(Engine.now eng)
    (Trace.Sync_won { pid = winner; index = 99; epoch = 0 });
  check Alcotest.bool "flagged at the forged event" true
    (has_class Report.At_most_once (Sanitizer.flags sz));
  Sanitizer.detach sz;
  (* The post-mortem oracle, replaying the same (corrupted) trace, agrees
     — so the crosscheck records no divergence. *)
  let oracle = Invariants.check_all rr in
  check Alcotest.bool "oracle sees the duplicate win" true
    (oracle_has Report.At_most_once oracle);
  let div =
    Sanitizer.crosscheck sz ~oracle ~scenario:"counters" ~policy:"p" ~seed:1
  in
  check Alcotest.int "crosscheck is clean" 0 (List.length div)

(* ---------------- shared-space write race, caught at the write -------- *)

let test_shared_space_caught_at_write () =
  let eng = Engine.create ~seed:3 () in
  let sz = Sanitizer.attach eng in
  let sp =
    Address_space.create ~size_hint:4096 (Engine.frame_store eng)
      (Engine.model eng)
  in
  Address_space.set_tracking sp true;
  let p1 =
    Engine.spawn eng ~space:sp (fun ctx ->
        Engine.delay ctx 0.001;
        Address_space.write_bytes sp ~addr:0 (Bytes.make 16 'x'))
  in
  let p2 =
    Engine.spawn eng ~space:sp (fun ctx ->
        Engine.delay ctx 0.002;
        Address_space.write_bytes sp ~addr:256 (Bytes.make 16 'y'))
  in
  Engine.run eng;
  Sanitizer.detach sz;
  check Alcotest.bool "isolation race flagged online" true
    (has_class Report.Isolation (Sanitizer.flags sz));
  let f = List.find (fun f -> f.Sanitizer.sf_class = Report.Isolation)
      (Sanitizer.flags sz)
  in
  check Alcotest.bool "flagged while both writers were live" true
    (f.Sanitizer.sf_time >= 0.001 && f.Sanitizer.sf_time <= 0.002);
  (* Oracle parity on the same run. *)
  let oracle =
    Race.check_isolation eng ~children:[ p1; p2 ] ~scenario:"shared"
      ~policy:"p" ~seed:3
  in
  check Alcotest.bool "post-mortem oracle agrees" true
    (oracle_has Report.Isolation oracle);
  let div =
    Sanitizer.crosscheck sz ~oracle ~scenario:"shared" ~policy:"p" ~seed:3
  in
  check Alcotest.int "crosscheck is clean" 0 (List.length div)

(* ---------------- bounded state on long runs ------------------------- *)

let churn n =
  let eng = Engine.create ~trace:false ~seed:5 () in
  let sz = Sanitizer.attach eng in
  ignore
    (Engine.spawn eng (fun ctx ->
         let self = Engine.self ctx in
         let e = Engine.engine ctx in
         for _ = 1 to n do
           ignore
             (Engine.spawn e ~parent:self (fun c ->
                  Engine.send c self (Payload.int 1)));
           ignore (Engine.receive ctx ())
         done));
  Engine.run eng;
  Sanitizer.detach sz;
  (Sanitizer.state_size sz, Sanitizer.flag_count sz)

let test_bounded_state () =
  (* The trace is disabled (History would be empty) yet the observer still
     streams every event; state must track the live set, not run length. *)
  let s20, f20 = churn 20 in
  let s200, f200 = churn 200 in
  check Alcotest.int "no flags on clean churn" 0 (f20 + f200);
  check Alcotest.int "state independent of run length" s20 s200

(* ---------------- clean sweeps are unchanged -------------------------- *)

let test_clean_run_parity () =
  let counters = List.hd Invariants.default_scenarios in
  let policy = Concurrent.default_policy in
  let _, plain = Invariants.run_checked counters ~policy ~seed:2 in
  let rr, sanitized =
    Invariants.run_checked ~sanitize:true counters ~policy ~seed:2
  in
  check Alcotest.int "plain run is clean" 0 (List.length plain);
  check Alcotest.int "sanitized run adds nothing" 0 (List.length sanitized);
  check Alcotest.int "no online flags" 0
    (Sanitizer.flag_count (Option.get rr.Invariants.sanitizer))

(* ---------------- at-most-once scope across supervised restarts ------- *)

let supervised_policy =
  {
    Concurrent.default_policy with
    Concurrent.sync =
      Concurrent.Consensus
        { nodes = 5; crashed = []; vote_delay = 0.0002; reply_timeout = 0.05 };
    sync_retries = 2;
    sync_backoff = 0.02;
  }

let supervised_block eng sites ~seed =
  let counters = List.hd Invariants.default_scenarios in
  let space =
    Address_space.create (Engine.frame_store eng) (Engine.model eng)
  in
  Address_space.set_tracking space true;
  counters.Invariants.prepare eng space;
  let alts = counters.Invariants.alts eng ~seed ~source:None in
  Concurrent.run_supervised eng ~policy:supervised_policy ~space ~sites alts

(* One engine, one sanitizer, two supervised blocks back to back — the
   first one losing its coordinator mid-consensus and recovering behind
   the epoch fence. The failed incarnation and its recovered successor
   belong to the same block: the successor's win must not read as a
   duplicate of anything the dead epoch did. Then [next_block] resets
   the scope, and the second block's win must not read as a duplicate
   of the recovered one's. The control at the end shows the reset is
   what stands between the two blocks: without it the second win is
   exactly the at-most-once leak the scope exists to prevent. *)
let test_next_block_across_supervised_restart () =
  let run ~reset_scope =
    let eng = Engine.create ~seed:11 ~model:Cost_model.att_3b2 () in
    let sz = Sanitizer.attach eng in
    let sites =
      Sites.create eng ~names:[ "s0"; "s1"; "s2"; "s3"; "s4" ]
    in
    (* The sitefuzz crash-coordinator campaign: s0 (coordinator, children,
       voter 0) dies mid-consensus, the watchdog recovers on a survivor. *)
    Faultplan.install ~sites
      (Faultplan.make ~seed:42
         [ Faultplan.crash_site ~at:0.07 ~jitter:0.015 "s0" ])
      eng;
    let sr1 = supervised_block eng sites ~seed:1 in
    let flags_after_first = Sanitizer.flag_count sz in
    if reset_scope then Sanitizer.next_block sz;
    let sr2 = supervised_block eng sites ~seed:2 in
    Sanitizer.detach sz;
    (sr1, flags_after_first, sr2, sz)
  in
  let sr1, flags_after_first, sr2, sz = run ~reset_scope:true in
  check Alcotest.bool "the campaign really forced a recovery" true
    (sr1.Concurrent.sr_recoveries <> []);
  check Alcotest.bool "recovered block decided" true
    (match sr1.Concurrent.sr_report.Concurrent.outcome with
    | Alt_block.Selected _ -> true
    | Alt_block.Block_failed _ -> false);
  check Alcotest.int
    "no at-most-once leak between the failed and recovered incarnations" 0
    flags_after_first;
  check Alcotest.bool "second block decided too" true
    (match sr2.Concurrent.sr_report.Concurrent.outcome with
    | Alt_block.Selected _ -> true
    | Alt_block.Block_failed _ -> false);
  check Alcotest.int "scoped blocks stay clean across the restart" 0
    (Sanitizer.flag_count sz);
  (* The control: same engine history, no scope reset — the second
     block's win is (wrongly, absent next_block) a second win in the
     first block's scope and must be flagged. *)
  let _, _, _, sz_leak = run ~reset_scope:false in
  check Alcotest.bool "without next_block the second win leaks" true
    (has_class Report.At_most_once (Sanitizer.flags sz_leak))

let () =
  Alcotest.run "sanitizer"
    [
      ( "online",
        [
          Alcotest.test_case "uncertain emission caught at emission" `Quick
            test_emission_caught_online;
          Alcotest.test_case "forged win caught at the event" `Quick
            test_forged_win_caught_online;
          Alcotest.test_case "shared-space race caught at the write" `Quick
            test_shared_space_caught_at_write;
          Alcotest.test_case "next_block scopes supervised restarts" `Quick
            test_next_block_across_supervised_restart;
        ] );
      ( "contract",
        [
          Alcotest.test_case "bounded state" `Quick test_bounded_state;
          Alcotest.test_case "clean runs unchanged" `Quick
            test_clean_run_parity;
        ] );
    ]
