(* Tests for the paged store: frames, COW page maps, address spaces, heap
   cells, and the calibrated cost models. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

let mk_store ?(page_size = 256) () = Frame_store.create ~page_size

(* ---------------- Frame_store ---------------- *)

let test_frame_alloc_zeroed () =
  let s = mk_store () in
  let f = Frame_store.alloc s in
  check Alcotest.int "refcount 1" 1 (Frame_store.refcount f);
  check Alcotest.bool "zero filled" true
    (Bytes.for_all (fun c -> c = '\000') (Frame_store.data f));
  check Alcotest.int "live" 1 (Frame_store.live_frames s)

let test_frame_copy_independent () =
  let s = mk_store () in
  let f = Frame_store.alloc s in
  Bytes.set (Frame_store.data f) 0 'a';
  let g = Frame_store.alloc_copy s f in
  check Alcotest.char "copied contents" 'a' (Bytes.get (Frame_store.data g) 0);
  Bytes.set (Frame_store.data g) 0 'b';
  check Alcotest.char "original untouched" 'a' (Bytes.get (Frame_store.data f) 0);
  check Alcotest.int "cow count" 1 (Frame_store.cow_copies s)

let test_frame_refcounting () =
  let s = mk_store () in
  let f = Frame_store.alloc s in
  Frame_store.incref f;
  check Alcotest.int "refs 2" 2 (Frame_store.refcount f);
  Frame_store.decref s f;
  check Alcotest.int "still live" 1 (Frame_store.live_frames s);
  Frame_store.decref s f;
  check Alcotest.int "freed" 0 (Frame_store.live_frames s)

let test_frame_recycling_zeroes () =
  let s = mk_store () in
  let f = Frame_store.alloc s in
  Bytes.set (Frame_store.data f) 3 'x';
  Frame_store.decref s f;
  let g = Frame_store.alloc s in
  check Alcotest.bool "recycled frame zeroed" true
    (Bytes.for_all (fun c -> c = '\000') (Frame_store.data g));
  check Alcotest.int "two allocations total" 2 (Frame_store.total_allocations s)

(* ---------------- Page_map ---------------- *)

let test_map_read_unmapped_zero () =
  let s = mk_store () in
  let m = Page_map.create s in
  let b = Page_map.read m ~vpage:5 ~off:10 ~len:4 in
  check Alcotest.string "zeros" "\000\000\000\000" (Bytes.to_string b);
  check Alcotest.int "no page materialised" 0 (Page_map.mapped_pages m)

let test_map_write_then_read () =
  let s = mk_store () in
  let m = Page_map.create s in
  let copied = ref false in
  Page_map.write m ~vpage:2 ~off:7 ~src:(Bytes.of_string "hey") ~copied;
  check Alcotest.bool "first write is not a cow fault" false !copied;
  check Alcotest.string "read back" "hey"
    (Bytes.to_string (Page_map.read m ~vpage:2 ~off:7 ~len:3));
  check Alcotest.int "one page" 1 (Page_map.mapped_pages m)

let test_map_fork_shares_frames () =
  let s = mk_store () in
  let m = Page_map.create s in
  let copied = ref false in
  Page_map.write m ~vpage:0 ~off:0 ~src:(Bytes.of_string "abc") ~copied;
  let c = Page_map.fork m in
  check Alcotest.(option int) "same frame" (Page_map.frame_id m ~vpage:0)
    (Page_map.frame_id c ~vpage:0);
  check Alcotest.int "parent shared" 1 (Page_map.shared_pages m);
  check Alcotest.int "child shared" 1 (Page_map.shared_pages c);
  check Alcotest.string "child reads parent data" "abc"
    (Bytes.to_string (Page_map.read c ~vpage:0 ~off:0 ~len:3))

let test_map_cow_isolation () =
  let s = mk_store () in
  let m = Page_map.create s in
  let copied = ref false in
  Page_map.write m ~vpage:0 ~off:0 ~src:(Bytes.of_string "abc") ~copied;
  let c = Page_map.fork m in
  let copied = ref false in
  Page_map.write c ~vpage:0 ~off:0 ~src:(Bytes.of_string "xyz") ~copied;
  check Alcotest.bool "write to shared page faults" true !copied;
  check Alcotest.string "child sees new" "xyz"
    (Bytes.to_string (Page_map.read c ~vpage:0 ~off:0 ~len:3));
  check Alcotest.string "parent sees old" "abc"
    (Bytes.to_string (Page_map.read m ~vpage:0 ~off:0 ~len:3));
  check Alcotest.bool "frames diverged" true
    (Page_map.frame_id m ~vpage:0 <> Page_map.frame_id c ~vpage:0);
  check Alcotest.int "child cow count" 1 (Page_map.cow_copies c);
  (* Second write to the now-private page must not fault again. *)
  let copied = ref false in
  Page_map.write c ~vpage:0 ~off:1 ~src:(Bytes.of_string "q") ~copied;
  check Alcotest.bool "private write no fault" false !copied

let test_map_absorb () =
  let s = mk_store () in
  let parent = Page_map.create s in
  let copied = ref false in
  Page_map.write parent ~vpage:0 ~off:0 ~src:(Bytes.of_string "old") ~copied;
  let child = Page_map.fork parent in
  let copied = ref false in
  Page_map.write child ~vpage:0 ~off:0 ~src:(Bytes.of_string "new") ~copied;
  Page_map.write child ~vpage:1 ~off:0 ~src:(Bytes.of_string "extra") ~copied;
  let child_cows = Page_map.cow_copies child in
  Page_map.absorb ~parent ~child;
  check Alcotest.string "parent sees child's update" "new"
    (Bytes.to_string (Page_map.read parent ~vpage:0 ~off:0 ~len:3));
  check Alcotest.string "parent sees child's new page" "extra"
    (Bytes.to_string (Page_map.read parent ~vpage:1 ~off:0 ~len:5));
  check Alcotest.bool "child released" true (Page_map.released child);
  check Alcotest.bool "cow history survives" true
    (Page_map.cow_copies parent >= child_cows);
  (* Old parent frame must have been dropped. *)
  check Alcotest.int "live frames = child's two" 2 (Frame_store.live_frames s)

let test_map_release_idempotent () =
  let s = mk_store () in
  let m = Page_map.create s in
  let copied = ref false in
  Page_map.write m ~vpage:0 ~off:0 ~src:(Bytes.of_string "a") ~copied;
  Page_map.release m;
  Page_map.release m;
  check Alcotest.int "frames freed" 0 (Frame_store.live_frames s);
  Alcotest.check_raises "use after release"
    (Invalid_argument "Page_map: use after release") (fun () ->
      ignore (Page_map.mapped_pages m))

let test_map_bounds () =
  let s = mk_store () in
  let m = Page_map.create s in
  Alcotest.check_raises "crossing boundary"
    (Invalid_argument "Page_map: access crosses page boundary") (fun () ->
      ignore (Page_map.read m ~vpage:0 ~off:250 ~len:10))

let test_map_snapshot_equal () =
  let s = mk_store () in
  let a = Page_map.create s in
  let copied = ref false in
  Page_map.write a ~vpage:0 ~off:0 ~src:(Bytes.of_string "zz") ~copied;
  let b = Page_map.fork a in
  check Alcotest.bool "fork equal" true (Page_map.snapshot_equal a b);
  Page_map.write b ~vpage:3 ~off:0 ~src:(Bytes.of_string "w") ~copied;
  check Alcotest.bool "diverged" false (Page_map.snapshot_equal a b)

(* ---------------- Address_space ---------------- *)

let model = Cost_model.uniform ~page_size:256 ()

let mk_space ?size_hint () =
  Address_space.create ?size_hint (mk_store ()) model

let test_space_cross_page_rw () =
  let sp = mk_space () in
  let data = Bytes.of_string (String.init 700 (fun i -> Char.chr (i mod 256))) in
  Address_space.write_bytes sp ~addr:100 data;
  let back = Address_space.read_bytes sp ~addr:100 ~len:700 in
  check Alcotest.bool "round trip across pages" true (Bytes.equal data back);
  check Alcotest.int "pages materialised" 4 (Address_space.mapped_pages sp)

let test_space_typed_accessors () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:8 123456789;
  check Alcotest.int "int" 123456789 (Address_space.get_int sp ~addr:8);
  Address_space.set_float sp ~addr:16 3.25;
  check cf "float" 3.25 (Address_space.get_float sp ~addr:16);
  Address_space.set_u8 sp ~addr:0 200;
  check Alcotest.int "u8" 200 (Address_space.get_u8 sp ~addr:0);
  Address_space.set_string sp ~addr:512 "hello";
  check Alcotest.string "string" "hello"
    (Address_space.get_string sp ~addr:512 ~len:5);
  Alcotest.check_raises "u8 range" (Invalid_argument "Address_space.set_u8")
    (fun () -> Address_space.set_u8 sp ~addr:0 300)

let test_space_negative_addr () =
  let sp = mk_space () in
  Alcotest.check_raises "negative address"
    (Invalid_argument "Address_space: negative address") (fun () ->
      ignore (Address_space.read_bytes sp ~addr:(-1) ~len:1))

let test_space_fork_isolation_and_cost () =
  (* Use a real model so costs are visible. *)
  let m = Cost_model.att_3b2 in
  let store = Frame_store.create ~page_size:m.Cost_model.page_size in
  let sp = Address_space.create ~size_hint:(320 * 1024) store m in
  check Alcotest.int "320K is 160 2K-pages" 160 (Address_space.mapped_pages sp);
  check cf "hint cost discarded" 0. (Address_space.pending_cost sp);
  let child = Address_space.fork sp in
  let setup = Address_space.drain_cost child in
  (* Paper: fork of a 320K address space on the 3B2 is about 31 ms. *)
  check Alcotest.bool "fork cost ~31ms" true (Float.abs (setup -. 0.031) < 1e-6);
  Address_space.set_int child ~addr:0 7;
  let cow = Address_space.drain_cost child in
  check Alcotest.bool "one page copy charged" true
    (Float.abs (cow -. (1. /. 326.)) < 1e-9);
  check Alcotest.int "parent unaffected" 0 (Address_space.get_int sp ~addr:0)

let test_space_absorb_merges () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 1;
  let child = Address_space.fork sp in
  ignore (Address_space.drain_cost child);
  Address_space.set_int child ~addr:0 2;
  Address_space.absorb ~parent:sp ~child;
  check Alcotest.int "parent got child's value" 2 (Address_space.get_int sp ~addr:0)

let test_space_touch () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 5;
  let child = Address_space.fork sp in
  ignore (Address_space.drain_cost child);
  Address_space.touch child ~addr:0 ~len:1;
  check Alcotest.int "touch privatised the page" 1 (Address_space.cow_copies child);
  check Alcotest.int "contents preserved" 5 (Address_space.get_int child ~addr:0)

let test_space_page_size_mismatch () =
  let store = Frame_store.create ~page_size:128 in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Address_space.create: store/model page size mismatch")
    (fun () -> ignore (Address_space.create store model))

let test_space_scalar_cross_page () =
  (* Scalars that straddle a page boundary must fall back to the byte
     path and still round-trip, including negative values. *)
  let sp = mk_space () in
  let addr = 256 - 4 in
  Address_space.set_int sp ~addr (-123456789);
  check Alcotest.int "cross-page int" (-123456789) (Address_space.get_int sp ~addr);
  Address_space.set_i64 sp ~addr:(512 - 3) 0x1122334455667788L;
  check Alcotest.int64 "cross-page i64" 0x1122334455667788L
    (Address_space.get_i64 sp ~addr:(512 - 3));
  (* And the in-page fast path agrees with the byte path bit for bit. *)
  Address_space.set_int sp ~addr:1024 min_int;
  check Alcotest.int "min_int" min_int (Address_space.get_int sp ~addr:1024);
  check Alcotest.int64 "same bytes as i64"
    (Int64.of_int min_int)
    (Address_space.get_i64 sp ~addr:1024)

let test_space_touch_private_is_free () =
  (* Satellite: [touch] is a fault-only probe. A page that is already
     private must cost nothing and count no write; an unmapped page is
     materialised for free; only a genuine COW fault is charged. *)
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 5;
  ignore (Address_space.drain_cost sp);
  let writes_before = Page_map.writes (Address_space.map sp) in
  Address_space.touch sp ~addr:0 ~len:8;
  check Alcotest.int "no write counted on private page" writes_before
    (Page_map.writes (Address_space.map sp));
  check cf "no cost on private page" 0. (Address_space.pending_cost sp);
  Address_space.touch sp ~addr:2048 ~len:1;
  check Alcotest.int "unmapped page materialised" 2 (Address_space.mapped_pages sp);
  check Alcotest.int "no write counted on unmapped page" writes_before
    (Page_map.writes (Address_space.map sp));
  check cf "no cost on unmapped page" 0. (Address_space.pending_cost sp);
  (* Shared page: the probe must privatise, count one write, and charge. *)
  let child = Address_space.fork sp in
  ignore (Address_space.drain_cost child);
  let w0 = Page_map.writes (Address_space.map child) in
  Address_space.touch child ~addr:0 ~len:1;
  check Alcotest.int "one write counted on shared page" (w0 + 1)
    (Page_map.writes (Address_space.map child));
  check Alcotest.int "one cow fault" 1 (Address_space.cow_copies child);
  check cf "exactly one page copy charged"
    (Cost_model.copy_cost model ~pages:1)
    (Address_space.pending_cost child)

let test_snapshot_equal_is_stat_neutral () =
  (* Satellite: auditing with [snapshot_equal] (and reading the logs) must
     not perturb the counters or logs it is auditing. *)
  let s = mk_store () in
  let a = Page_map.create s in
  Page_map.set_tracking a true;
  let copied = ref false in
  Page_map.write a ~vpage:0 ~off:0 ~src:(Bytes.of_string "zz") ~copied;
  let b = Page_map.fork a in
  Page_map.write b ~vpage:3 ~off:0 ~src:(Bytes.of_string "w") ~copied;
  ignore (Page_map.read a ~vpage:0 ~off:0 ~len:2);
  let reads_a = Page_map.reads a and writes_a = Page_map.writes a in
  let reads_b = Page_map.reads b and writes_b = Page_map.writes b in
  let rlog_a = Page_map.read_log a and wlog_a = Page_map.write_log a in
  ignore (Page_map.snapshot_equal a b);
  ignore (Page_map.snapshot_equal a a);
  check Alcotest.int "a.reads unchanged" reads_a (Page_map.reads a);
  check Alcotest.int "a.writes unchanged" writes_a (Page_map.writes a);
  check Alcotest.int "b.reads unchanged" reads_b (Page_map.reads b);
  check Alcotest.int "b.writes unchanged" writes_b (Page_map.writes b);
  check Alcotest.(list int) "a read log unchanged" rlog_a (Page_map.read_log a);
  check
    Alcotest.(list (pair int int))
    "a write log unchanged" wlog_a (Page_map.write_log a)

(* Satellite: frame conservation across fork / write / absorb / release
   schedules. After the tree of maps has been absorbed and released back
   down to the root, every mapped page must be backed by exactly one live
   frame, and releasing the root must reclaim them all. *)
let test_frame_conservation_schedules () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 7 * seed + 13 |] in
    let store = mk_store () in
    let root = Page_map.create store in
    let copied = ref false in
    let wr m =
      Page_map.write m
        ~vpage:(Random.State.int rng 12)
        ~off:(Random.State.int rng 200)
        ~src:(Bytes.make (1 + Random.State.int rng 8) 'w')
        ~copied
    in
    for _ = 0 to 3 do
      wr root
    done;
    (* [edges] is a stack of fork edges; absorbing or releasing always
       picks a leaf (the most recent edge), like nested alt blocks do. *)
    let edges = ref [] in
    for _ = 0 to 40 do
      match Random.State.int rng 4 with
      | 0 ->
        let parent =
          match !edges with [] -> root | (_, child) :: _ -> child
        in
        edges := (parent, Page_map.fork parent) :: !edges
      | 1 -> (
        match !edges with
        | [] -> wr root
        | (parent, child) :: rest ->
          Page_map.absorb ~parent ~child;
          edges := rest)
      | 2 -> (
        match !edges with
        | [] -> wr root
        | (_, child) :: rest ->
          Page_map.release child;
          edges := rest)
      | _ ->
        let m = match !edges with [] -> root | (_, child) :: _ -> child in
        wr m
    done;
    List.iter (fun (_, child) -> Page_map.release child) !edges;
    if
      not
        (Frame_store.live_frames store = Page_map.mapped_pages root)
    then
      Alcotest.failf "seed %d: %d live frames for %d mapped pages" seed
        (Frame_store.live_frames store)
        (Page_map.mapped_pages root);
    Page_map.release root;
    if Frame_store.live_frames store <> 0 then
      Alcotest.failf "seed %d: %d frames leaked after release" seed
        (Frame_store.live_frames store)
  done

(* ---------------- Heap ---------------- *)

let test_heap_cells () =
  let sp = mk_space () in
  let h = Heap.create sp in
  let a = Heap.int_cell h 10 in
  let b = Heap.float_cell h 1.5 in
  let c = Heap.string_cell h ~max_len:16 "hi" in
  check Alcotest.int "int cell" 10 (Heap.get h a);
  check cf "float cell" 1.5 (Heap.get h b);
  check Alcotest.string "string cell" "hi" (Heap.get h c);
  Heap.set h a 11;
  Heap.set h c "longer text";
  check Alcotest.int "int updated" 11 (Heap.get h a);
  check Alcotest.string "string updated" "longer text" (Heap.get h c);
  Alcotest.check_raises "string too long"
    (Invalid_argument "Heap.set: string too long") (fun () ->
      Heap.set h c "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")

let test_heap_alloc_disjoint () =
  let sp = mk_space () in
  let h = Heap.create sp in
  let a = Heap.alloc h 5 and b = Heap.alloc h 5 in
  check Alcotest.bool "disjoint and ordered" true (b >= a + 5);
  check Alcotest.bool "aligned" true (a mod 8 = 0 && b mod 8 = 0)

let test_heap_view_through_fork () =
  let sp = mk_space () in
  let h = Heap.create sp in
  let cell = Heap.int_cell h 1 in
  let child_space = Address_space.fork sp in
  ignore (Address_space.drain_cost child_space);
  let child_heap = Heap.view h child_space in
  check Alcotest.int "child sees parent value" 1 (Heap.get child_heap cell);
  Heap.set child_heap cell 99;
  check Alcotest.int "child updated" 99 (Heap.get child_heap cell);
  check Alcotest.int "parent isolated" 1 (Heap.get h cell);
  (* Views share the allocation frontier. *)
  let c2 = Heap.int_cell child_heap 5 in
  check Alcotest.bool "no overlap across views" true
    (Heap.cell_addr c2 > Heap.cell_addr cell)

(* ---------------- Cost_model ---------------- *)

let test_model_calibration_3b2 () =
  let m = Cost_model.att_3b2 in
  check Alcotest.int "2K pages" 2048 m.Cost_model.page_size;
  let pages = Cost_model.pages_for m ~bytes:(320 * 1024) in
  check Alcotest.int "320K = 160 pages" 160 pages;
  check Alcotest.bool "fork ~= 31 ms" true
    (Float.abs (Cost_model.fork_cost m ~mapped_pages:pages -. 0.031) < 1e-6);
  check Alcotest.bool "copy rate 326/s" true
    (Float.abs ((1. /. m.Cost_model.page_copy) -. 326.) < 1e-6)

let test_model_calibration_hp () =
  let m = Cost_model.hp_9000_350 in
  let pages = Cost_model.pages_for m ~bytes:(320 * 1024) in
  check Alcotest.int "320K = 80 4K-pages" 80 pages;
  check Alcotest.bool "fork ~= 12 ms" true
    (Float.abs (Cost_model.fork_cost m ~mapped_pages:pages -. 0.012) < 1e-6);
  check Alcotest.bool "copy rate 1034/s" true
    (Float.abs ((1. /. m.Cost_model.page_copy) -. 1034.) < 1e-6)

let test_model_calibration_rfork () =
  let m = Cost_model.distributed_lan in
  let pages = Cost_model.pages_for m ~bytes:(70 * 1024) in
  let mech = Cost_model.remote_spawn_cost m ~mapped_pages:pages in
  check Alcotest.bool "rfork mechanism ~1.0 s" true (Float.abs (mech -. 1.0) < 0.01);
  let observed = mech +. (6. *. m.Cost_model.msg_latency) in
  check Alcotest.bool "observed ~1.3 s" true (Float.abs (observed -. 1.3) < 0.01)

let test_model_pages_for_edges () =
  let m = Cost_model.uniform ~page_size:100 () in
  check Alcotest.int "0 bytes" 0 (Cost_model.pages_for m ~bytes:0);
  check Alcotest.int "1 byte" 1 (Cost_model.pages_for m ~bytes:1);
  check Alcotest.int "exact page" 1 (Cost_model.pages_for m ~bytes:100);
  check Alcotest.int "page+1" 2 (Cost_model.pages_for m ~bytes:101)

let test_model_message_cost () =
  let m = Cost_model.hp_9000_350 in
  let c = Cost_model.message_cost m ~bytes:1000 in
  check cf "latency + per byte" (3e-3 +. 1e-3) c

(* ---------------- properties ---------------- *)

(* Random write workloads: a COW child and an eager full copy must present
   identical contents, and the parent must be unaffected. *)
let prop_cow_equals_eager_copy =
  let ops =
    QCheck.(
      list_of_size Gen.(int_range 1 60)
        (pair (int_bound 2047) (string_gen_of_size Gen.(int_range 1 8) Gen.printable)))
  in
  QCheck.Test.make ~name:"COW child == eager copy; parent isolated" ~count:200
    ops (fun writes ->
      let store = mk_store () in
      let parent = Page_map.create store in
      let copied = ref false in
      Page_map.write parent ~vpage:0 ~off:0 ~src:(Bytes.make 64 'p') ~copied;
      let child = Page_map.fork parent in
      let eager = Page_map.fork parent in
      (* Force the eager copy private immediately. *)
      for vp = 0 to 7 do
        let b = Page_map.read eager ~vpage:vp ~off:0 ~len:256 in
        Page_map.write eager ~vpage:vp ~off:0 ~src:b ~copied
      done;
      List.iter
        (fun (addr, s) ->
          let vpage = addr / 256 and off = addr mod 256 in
          let src =
            Bytes.of_string (String.sub s 0 (min (String.length s) (256 - off)))
          in
          if Bytes.length src > 0 then begin
            Page_map.write child ~vpage ~off ~src ~copied;
            Page_map.write eager ~vpage ~off ~src ~copied
          end)
        writes;
      let equal = Page_map.snapshot_equal child eager in
      let parent_ok =
        Bytes.to_string (Page_map.read parent ~vpage:0 ~off:0 ~len:64)
        = String.make 64 'p'
      in
      equal && parent_ok)

(* Refcount conservation: after releasing everything, no frames leak. *)
let prop_no_frame_leaks =
  QCheck.Test.make ~name:"release reclaims all frames" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 20) (int_bound 15))
    (fun vpages ->
      let store = mk_store () in
      let parent = Page_map.create store in
      let copied = ref false in
      List.iter
        (fun vp ->
          Page_map.write parent ~vpage:vp ~off:0 ~src:(Bytes.of_string "x")
            ~copied)
        vpages;
      let kids = List.init 3 (fun _ -> Page_map.fork parent) in
      List.iter
        (fun k ->
          List.iter
            (fun vp ->
              Page_map.write k ~vpage:vp ~off:1 ~src:(Bytes.of_string "y")
                ~copied)
            vpages)
        kids;
      List.iter Page_map.release kids;
      Page_map.release parent;
      Frame_store.live_frames store = 0)

(* Absorb is equivalent to the child's view. *)
let prop_absorb_equals_child =
  QCheck.Test.make ~name:"absorb makes parent identical to child" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 10) small_printable_string))
    (fun writes ->
      let store = mk_store () in
      let parent = Page_map.create store in
      let copied = ref false in
      Page_map.write parent ~vpage:0 ~off:0 ~src:(Bytes.of_string "base") ~copied;
      let child = Page_map.fork parent in
      let reference = Page_map.fork parent in
      List.iter
        (fun (vp, s) ->
          if String.length s > 0 && String.length s <= 200 then begin
            let src = Bytes.of_string s in
            Page_map.write child ~vpage:vp ~off:0 ~src ~copied;
            Page_map.write reference ~vpage:vp ~off:0 ~src ~copied
          end)
        writes;
      Page_map.absorb ~parent ~child;
      Page_map.snapshot_equal parent reference)

let () =
  Alcotest.run "pages"
    [
      ( "frame_store",
        [
          Alcotest.test_case "alloc zeroed" `Quick test_frame_alloc_zeroed;
          Alcotest.test_case "copy is independent" `Quick test_frame_copy_independent;
          Alcotest.test_case "refcounting" `Quick test_frame_refcounting;
          Alcotest.test_case "recycling zeroes" `Quick test_frame_recycling_zeroes;
        ] );
      ( "page_map",
        [
          Alcotest.test_case "unmapped reads zero" `Quick test_map_read_unmapped_zero;
          Alcotest.test_case "write then read" `Quick test_map_write_then_read;
          Alcotest.test_case "fork shares frames" `Quick test_map_fork_shares_frames;
          Alcotest.test_case "cow isolation" `Quick test_map_cow_isolation;
          Alcotest.test_case "absorb" `Quick test_map_absorb;
          Alcotest.test_case "release idempotent + guard" `Quick test_map_release_idempotent;
          Alcotest.test_case "bounds check" `Quick test_map_bounds;
          Alcotest.test_case "snapshot_equal" `Quick test_map_snapshot_equal;
          Alcotest.test_case "snapshot_equal is stat-neutral" `Quick
            test_snapshot_equal_is_stat_neutral;
          Alcotest.test_case "frame conservation over 100 schedules" `Quick
            test_frame_conservation_schedules;
        ] );
      ( "address_space",
        [
          Alcotest.test_case "cross-page read/write" `Quick test_space_cross_page_rw;
          Alcotest.test_case "typed accessors" `Quick test_space_typed_accessors;
          Alcotest.test_case "negative address" `Quick test_space_negative_addr;
          Alcotest.test_case "fork isolation and 3B2 cost" `Quick test_space_fork_isolation_and_cost;
          Alcotest.test_case "absorb merges" `Quick test_space_absorb_merges;
          Alcotest.test_case "touch privatises" `Quick test_space_touch;
          Alcotest.test_case "touch on private/unmapped is free" `Quick
            test_space_touch_private_is_free;
          Alcotest.test_case "scalar cross-page fallback" `Quick
            test_space_scalar_cross_page;
          Alcotest.test_case "page-size mismatch" `Quick test_space_page_size_mismatch;
        ] );
      ( "heap",
        [
          Alcotest.test_case "typed cells" `Quick test_heap_cells;
          Alcotest.test_case "alloc disjoint" `Quick test_heap_alloc_disjoint;
          Alcotest.test_case "view through fork" `Quick test_heap_view_through_fork;
        ] );
      ( "cost_model",
        [
          Alcotest.test_case "3B2 calibration" `Quick test_model_calibration_3b2;
          Alcotest.test_case "HP calibration" `Quick test_model_calibration_hp;
          Alcotest.test_case "rfork calibration" `Quick test_model_calibration_rfork;
          Alcotest.test_case "pages_for edges" `Quick test_model_pages_for_edges;
          Alcotest.test_case "message cost" `Quick test_model_message_cost;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cow_equals_eager_copy; prop_no_frame_leaks; prop_absorb_equals_child ] );
    ]
