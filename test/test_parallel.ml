(* The domain pool is only worth having if it is invisible: same
   results, same order, same failures as the sequential loop, for every
   worker count. *)

let check = Alcotest.check

exception Boom of int

let test_map_indexed_matches_sequential () =
  List.iter
    (fun jobs ->
      List.iter
        (fun n ->
          let expected = Array.init n (fun i -> (i * 7) - 3) in
          let got = Parallel.map_indexed ~jobs (fun i -> (i * 7) - 3) n in
          check
            Alcotest.(array int)
            (Printf.sprintf "jobs=%d n=%d" jobs n)
            expected got)
        [ 0; 1; 5; 64 ])
    [ 1; 2; 4; 7 ]

let test_run_preserves_list_order () =
  let thunks = List.init 9 (fun i () -> string_of_int (i * i)) in
  check
    Alcotest.(array string)
    "thunk results in list order"
    (Array.init 9 (fun i -> string_of_int (i * i)))
    (Parallel.run ~jobs:3 thunks)

let test_pool_is_reusable_across_batches () =
  let pool = Parallel.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      check Alcotest.int "jobs" 4 (Parallel.jobs pool);
      for batch = 1 to 3 do
        let got = Parallel.map_indexed_pool pool (fun i -> batch * i) 32 in
        check
          Alcotest.(array int)
          (Printf.sprintf "batch %d" batch)
          (Array.init 32 (fun i -> batch * i))
          got
      done)

let test_pool_survives_raising_job () =
  let pool = Parallel.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      let others_ran = Array.make 16 false in
      (match
         Parallel.map_indexed_pool pool
           (fun i ->
             others_ran.(i) <- true;
             if i = 11 then raise (Boom i);
             i)
           16
       with
      | _ -> Alcotest.fail "raising job did not propagate"
      | exception Boom 11 -> ()
      | exception e ->
        Alcotest.failf "unexpected exception %s" (Printexc.to_string e));
      (* Every job still ran, raising one included. *)
      Array.iteri
        (fun i ran -> if not ran then Alcotest.failf "job %d skipped" i)
        others_ran;
      (* The failure did not wedge or poison the workers. *)
      check
        Alcotest.(array int)
        "pool usable after a failing batch"
        (Array.init 8 succ)
        (Parallel.map_indexed_pool pool succ 8))

let test_lowest_indexed_failure_wins () =
  (* Several jobs raise; whatever domain finishes first, the caller must
     see the lowest-indexed job's exception, deterministically. *)
  for _attempt = 1 to 5 do
    match
      Parallel.map_indexed ~jobs:4
        (fun i -> if i >= 3 && i mod 2 = 1 then raise (Boom i) else i)
        12
    with
    | _ -> Alcotest.fail "no exception propagated"
    | exception Boom 3 -> ()
    | exception Boom i -> Alcotest.failf "saw Boom %d, wanted Boom 3" i
  done

let test_create_validates_jobs () =
  Alcotest.check_raises "jobs >= 1"
    (Invalid_argument "Parallel.create: jobs must be >= 1") (fun () ->
      ignore (Parallel.create ~jobs:0))

let render_sweep (violations, runs) =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "runs=%d@." runs;
  List.iter (Format.fprintf ppf "%a@." Report.pp_violation) violations;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_run_matrix_independent_of_jobs () =
  (* The headline determinism contract: the full sweep's report is
     byte-for-byte identical whether it ran on one domain or several. *)
  let sequential = render_sweep (Invariants.run_matrix ~seeds:1 ~jobs:1 ()) in
  let parallel = render_sweep (Invariants.run_matrix ~seeds:1 ~jobs:4 ()) in
  if not (String.equal sequential parallel) then
    Alcotest.failf "parallel sweep diverged from sequential:@.%s@.vs@.%s"
      sequential parallel;
  check Alcotest.bool "sweep executed" true
    (String.length sequential >= String.length "runs=96\n")

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_indexed matches Array.init" `Quick
            test_map_indexed_matches_sequential;
          Alcotest.test_case "run preserves list order" `Quick
            test_run_preserves_list_order;
          Alcotest.test_case "pool reusable across batches" `Quick
            test_pool_is_reusable_across_batches;
          Alcotest.test_case "pool survives a raising job" `Quick
            test_pool_survives_raising_job;
          Alcotest.test_case "lowest-indexed failure wins" `Quick
            test_lowest_indexed_failure_wins;
          Alcotest.test_case "create validates jobs" `Quick
            test_create_validates_jobs;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "run_matrix independent of jobs" `Slow
            test_run_matrix_independent_of_jobs;
        ] );
    ]
