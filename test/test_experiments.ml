(* The evaluation harness itself is code: every experiment must run without
   raising and produce output, ids must be unique and findable, and the
   deterministic experiments must print identical output on a second run. *)

let check = Alcotest.check

let render ?(jobs = 1) (e : Experiments.experiment) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  e.Experiments.run ~jobs ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_ids_unique_and_findable () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  check Alcotest.int "no duplicate ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Experiments.find id with
      | Some e -> check Alcotest.string "find returns the experiment" id e.Experiments.id
      | None -> Alcotest.failf "id %s not findable" id)
    ids;
  check Alcotest.bool "unknown id" true (Experiments.find "nope" = None);
  check Alcotest.int "seventeen experiments" 17 (List.length Experiments.all)

let test_run_all_subset () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Experiments.run_all ~ids:[ "table-4.3-pi" ] ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  check Alcotest.bool "header present" true
    (String.length out > 100)

let deterministic_ids =
  (* Everything except the two host-measuring experiments. *)
  List.filter
    (fun (e : Experiments.experiment) ->
      not (List.mem e.Experiments.id [ "real-fork"; "real-race" ]))
    Experiments.all

let test_each_experiment_produces_output () =
  List.iter
    (fun (e : Experiments.experiment) ->
      let out = render e in
      if String.length out < 80 then
        Alcotest.failf "experiment %s produced almost no output" e.Experiments.id)
    deterministic_ids

let test_simulated_experiments_deterministic () =
  (* The simulated tables must be byte-identical across runs — and across
     domain-pool widths (the per-trial fan-out of E7/E16 must not leak
     scheduling into the results). E8 includes a real forked race in its
     tail, so compare only up to that line. *)
  let strip_real s =
    match String.index_opt s 'R' with
    | _ -> (
      match
        String.split_on_char '\n' s
        |> List.filter (fun l ->
               not
                 (String.length l > 6
                 && String.sub l 0 6 = "  Real"))
      with
      | lines -> String.concat "\n" lines)
  in
  List.iter
    (fun (e : Experiments.experiment) ->
      let a = strip_real (render e) and b = strip_real (render e) in
      if a <> b then Alcotest.failf "experiment %s is nondeterministic" e.Experiments.id)
    deterministic_ids;
  List.iter
    (fun id ->
      match Experiments.find id with
      | None -> Alcotest.failf "missing experiment %s" id
      | Some e ->
        let a = render ~jobs:1 e and b = render ~jobs:3 e in
        if a <> b then
          Alcotest.failf "experiment %s depends on the domain count"
            e.Experiments.id)
    [ "rb-speedup"; "replication" ]

let test_pi_table_text_matches_paper () =
  match Experiments.find "table-4.3-pi" with
  | None -> Alcotest.fail "missing"
  | Some e ->
    let out = render e in
    (* The six paper PI values must all appear. *)
    List.iter
      (fun needle ->
        let n = String.length needle and m = String.length out in
        let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
        if not (go 0) then Alcotest.failf "missing %s in table output" needle)
      [ "1.33"; "7.00"; "0.80"; "0.33"; "1.00"; "1.90" ]

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "ids unique and findable" `Quick test_ids_unique_and_findable;
          Alcotest.test_case "run_all subset" `Quick test_run_all_subset;
          Alcotest.test_case "every experiment produces output" `Slow
            test_each_experiment_produces_output;
          Alcotest.test_case "simulated experiments deterministic" `Slow
            test_simulated_experiments_deterministic;
          Alcotest.test_case "PI table text matches the paper" `Quick
            test_pi_table_text_matches_paper;
        ] );
    ]
