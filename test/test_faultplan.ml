(* Tests for deterministic fault injection (lib/faultplan) and for the
   timeout paths it exercises on the consensus protocol:
   [Engine.receive_timeout] under injected drop/delay, and
   [Engine.Ivar.read_timeout] while the filler is stalled on consensus. *)

let check = Alcotest.check

let mk () = Engine.create ~trace:true ~model:Cost_model.hp_9000_350 ()

let count_injected eng kind =
  Trace.count (Engine.trace eng) ~f:(function
    | Trace.Injected { kind = k; _ } -> String.equal k kind
    | _ -> false)

let verdict =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Majority.Granted -> "Granted"
        | Majority.Denied -> "Denied"
        | Majority.No_quorum -> "No_quorum"))
    ( = )

let test_rule_validation () =
  Alcotest.check_raises "p above 1"
    (Invalid_argument "Faultplan.message: p not in [0,1]") (fun () ->
      ignore (Faultplan.message ~p:1.5 Faultplan.Drop));
  Alcotest.check_raises "p below 0"
    (Invalid_argument "Faultplan.message: p not in [0,1]") (fun () ->
      ignore (Faultplan.message ~p:(-0.1) Faultplan.Drop))

let test_empty_plan_injects_nothing () =
  let eng = mk () in
  Faultplan.install Faultplan.none eng;
  let m = Majority.create eng ~nodes:3 () in
  let got = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Some (Majority.acquire_verdict ctx m ~reply_timeout:1.);
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "clean acquire" (Some Majority.Granted) !got;
  let h = History.of_trace (Engine.trace eng) in
  check Alcotest.int "no injections recorded" 0
    (List.length (History.injections h))

(* receive_timeout under injected drop: with every reply dropped the
   requester's per-reply wait must expire and the round must come back
   undecided — not hang, not be denied. *)
let test_dropped_replies_time_out_as_no_quorum () =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make [ Faultplan.message ~tag:"vote_rep" Faultplan.Drop ])
    eng;
  let m = Majority.create eng ~nodes:3 () in
  let got = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Some (Majority.acquire_verdict ctx m ~reply_timeout:0.1);
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "undecided" (Some Majority.No_quorum) !got;
  check Alcotest.bool "drops recorded in the trace" true
    (count_injected eng "drop" >= 3)

(* receive_timeout under injected latency, plus retry/backoff recovery: a
   transient outage (replies reordered 0.5 s late, but only inside a
   window) defeats the first rounds, and the backed-off retry lands
   outside the window and wins. [Reorder] rather than [Delay]: a delayed
   message holds its channel's FIFO clock back, so one delayed round
   would stall every later reply on the same channel for the full 0.5 s
   — that behaviour is pinned down by the FIFO test below. *)
let test_reordered_replies_recover_by_retry () =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make
       [
         Faultplan.message ~tag:"vote_rep" ~window:(0., 0.1)
           (Faultplan.Reorder 0.5);
       ])
    eng;
  let m = Majority.create eng ~nodes:3 () in
  let direct = ref None and retried = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         direct := Some (Majority.acquire_verdict ctx m ~reply_timeout:0.05);
         retried :=
           Some
             (Majority.acquire_retry ctx m ~reply_timeout:0.05 ~retries:3
                ~backoff:0.06 ());
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "stalled round is undecided"
    (Some Majority.No_quorum) !direct;
  check (Alcotest.option verdict) "backed-off retry wins"
    (Some Majority.Granted) !retried;
  check Alcotest.bool "reorders recorded in the trace" true
    (count_injected eng "reorder" >= 3)

(* The two latency actions differ exactly in what they do to the
   per-channel FIFO clock: [Delay] holds the channel back (later sends
   queue behind the delayed message — order preserved), [Reorder] lets
   later messages overtake. *)
let run_two_sends action =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make [ Faultplan.message ~tag:"slow" action ])
    eng;
  let order = ref [] in
  let receiver =
    Engine.spawn eng ~name:"sink" (fun ctx ->
        for _ = 1 to 2 do
          let m = Engine.receive ctx () in
          order := m.Message.tag :: !order
        done)
  in
  ignore
    (Engine.spawn eng ~name:"src" (fun ctx ->
         Engine.send ctx ~tag:"slow" receiver Payload.Unit;
         Engine.send ctx ~tag:"fast" receiver Payload.Unit));
  Engine.run eng;
  List.rev !order

let test_delay_keeps_fifo_reorder_breaks_it () =
  check
    (Alcotest.list Alcotest.string)
    "delay preserves channel order" [ "slow"; "fast" ]
    (run_two_sends (Faultplan.Delay 0.1));
  check
    (Alcotest.list Alcotest.string)
    "reorder lets the later message overtake" [ "fast"; "slow" ]
    (run_two_sends (Faultplan.Reorder 0.1))

(* Regression for the duplicated-reply tally bug. With 2 live voters of 5
   a majority (3) is out of reach; duplicating every reply used to tally
   the same voter twice — 4 manufactured "grants" — and acquire claimed a
   majority it does not hold. One voter, one vote. *)
let test_duplicated_replies_cannot_fake_majority () =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make [ Faultplan.message ~tag:"vote_rep" Faultplan.Duplicate ])
    eng;
  let m = Majority.create eng ~nodes:5 ~crashed:[ 2; 3; 4 ] () in
  let got = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Some (Majority.acquire_verdict ctx m ~reply_timeout:0.2);
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "2 of 5 stays short of a majority"
    (Some Majority.No_quorum) !got;
  check Alcotest.bool "duplicates recorded in the trace" true
    (count_injected eng "duplicate" >= 2)

(* Ivar.read_timeout on the consensus path: the filler is stalled by a
   drop window, so an early bounded read must give up with None; once the
   window closes the filler's retry acquires and fills, and a blocking
   read sees the value. *)
let test_ivar_read_timeout_while_consensus_stalled () =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make
       [ Faultplan.message ~tag:"vote_rep" ~window:(0., 0.2) Faultplan.Drop ])
    eng;
  let m = Majority.create eng ~nodes:3 () in
  let latch = Engine.Ivar.create () in
  let early = ref (Some 0) and late = ref None in
  ignore
    (Engine.spawn eng ~name:"filler" (fun ctx ->
         (match
            Majority.acquire_retry ctx m ~reply_timeout:0.05 ~retries:6
              ~backoff:0.05 ()
          with
         | Majority.Granted -> ignore (Engine.Ivar.try_fill latch 42)
         | _ -> ());
         Majority.shutdown m));
  ignore
    (Engine.spawn eng ~name:"waiter" (fun ctx ->
         early := Engine.Ivar.read_timeout ctx latch ~timeout:0.02;
         late := Some (Engine.Ivar.read ctx latch)));
  Engine.run eng;
  check
    (Alcotest.option Alcotest.int)
    "bounded read gives up while consensus is stalled" None !early;
  check
    (Alcotest.option Alcotest.int)
    "blocking read sees the post-outage fill" (Some 42) !late

let test_kill_rule_fires_once () =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make [ Faultplan.kill_process ~after:0.05 "worker" ]) eng;
  let ticks = ref 0 in
  ignore
    (Engine.spawn eng ~name:"worker" (fun ctx ->
         for _ = 1 to 1000 do
           Engine.delay ctx 0.01;
           incr ticks
         done));
  Engine.run eng;
  check Alcotest.int "one kill injected" 1 (count_injected eng "kill");
  check Alcotest.bool "worker was cut short" true (!ticks < 1000);
  check Alcotest.bool "worker ran before the kill" true (!ticks >= 4)

(* A crashed voter is a healed partition, not an amnesiac: while silenced
   its traffic black-holes (undecided rounds), and after revival the
   semaphore works again. *)
let test_crash_then_revive_heals () =
  let eng = mk () in
  Faultplan.install
    (Faultplan.make
       [ Faultplan.crash_process ~revive_after:0.3 "voter0" ])
    eng;
  let m = Majority.create eng ~nodes:1 () in
  let during = ref None and after = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         during := Some (Majority.acquire_verdict ctx m ~reply_timeout:0.1);
         Engine.delay ctx 0.5;
         after := Some (Majority.acquire_verdict ctx m ~reply_timeout:0.5);
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "partitioned voter: undecided"
    (Some Majority.No_quorum) !during;
  check (Alcotest.option verdict) "healed voter grants"
    (Some Majority.Granted) !after;
  check Alcotest.int "crash recorded" 1 (count_injected eng "crash");
  check Alcotest.int "revival recorded" 1 (count_injected eng "revive")

(* The determinism contract: same (plan seed, engine seed, program) must
   reproduce the same injections, byte for byte. *)
let test_same_seeds_same_injections () =
  let run () =
    let eng =
      Engine.create ~trace:true ~model:Cost_model.hp_9000_350 ~seed:7 ()
    in
    Faultplan.install
      (Faultplan.make ~seed:11
         [ Faultplan.message ~p:0.5 ~tag:"vote_rep" Faultplan.Drop ])
      eng;
    let m = Majority.create eng ~nodes:5 () in
    ignore
      (Engine.spawn eng (fun ctx ->
           ignore
             (Majority.acquire_retry ctx m ~reply_timeout:0.05 ~retries:2
                ~backoff:0.02 ());
           Majority.shutdown m));
    Engine.run eng;
    let h = History.of_trace (Engine.trace eng) in
    ( List.map
        (fun (kind, _, msg) ->
          (kind, Option.map (fun m -> m.Message.tag) msg))
        (History.injections h),
      Engine.now eng )
  in
  let i1, t1 = run () and i2, t2 = run () in
  check Alcotest.bool "identical injection sequences" true (i1 = i2);
  check (Alcotest.float 0.) "identical final virtual time" t1 t2;
  check Alcotest.bool "the p=0.5 stream did fire" true (List.length i1 > 0)

(* Satellite regression for F_duplicate on spilled outbox entries
   (uid = -1 inside the ring), end to end under a drop+duplicate fault
   plan with the online sanitizer attached: the duplicate copies share
   one immutable cached message, so neither physical-identity dedup
   (what [Mailbox.copy_excluding] uses for world splits) nor the
   per-sender reply tally in [Majority] can be defeated, and the
   sanitizer's frame-ownership / happens-before tracking must not
   misattribute the shared value — its verdict has to agree with the
   post-mortem oracle on every checked class (any disagreement is an
   exit-17 [Report.Sanitizer] divergence from [run_checked]). *)
let test_sanitized_drop_duplicate_plan_stays_clean () =
  let policy =
    {
      Concurrent.default_policy with
      sync =
        Concurrent.Consensus
          { nodes = 3; crashed = []; vote_delay = 0.0002; reply_timeout = 0.5 };
      sync_retries = 3;
      sync_backoff = 0.02;
    }
  in
  let faults eng =
    Faultplan.install
      (Faultplan.make ~seed:13
         [
           Faultplan.message ~p:0.3 ~tag:"vote_rep" Faultplan.Drop;
           Faultplan.message ~tag:"vote_rep" Faultplan.Duplicate;
           Faultplan.message ~p:0.5 ~tag:"vote_req" Faultplan.Duplicate;
         ])
      eng
  in
  List.iter
    (fun sc_name ->
      let sc = Option.get (Invariants.find_scenario sc_name) in
      List.iter
        (fun seed ->
          let rr, vs =
            Invariants.run_checked ~faults ~sanitize:true sc ~policy ~seed
          in
          check Alcotest.int
            (Printf.sprintf "%s seed %d: no violations, no divergence" sc_name
               seed)
            0 (List.length vs);
          check Alcotest.bool
            (Printf.sprintf "%s seed %d: the plan did inject" sc_name seed)
            true
            (History.faulted (History.of_trace (Engine.trace rr.Invariants.engine))))
        [ 1; 2; 3 ])
    [ "counters"; "guarded" ]

let () =
  Alcotest.run "faultplan"
    [
      ( "faultplan",
        [
          Alcotest.test_case "rule validation" `Quick test_rule_validation;
          Alcotest.test_case "empty plan is transparent" `Quick
            test_empty_plan_injects_nothing;
          Alcotest.test_case "dropped replies time out as no-quorum" `Quick
            test_dropped_replies_time_out_as_no_quorum;
          Alcotest.test_case "reordered replies recover by retry" `Quick
            test_reordered_replies_recover_by_retry;
          Alcotest.test_case "delay keeps FIFO, reorder breaks it" `Quick
            test_delay_keeps_fifo_reorder_breaks_it;
          Alcotest.test_case "duplicated replies cannot fake a majority"
            `Quick test_duplicated_replies_cannot_fake_majority;
          Alcotest.test_case "ivar read_timeout under a drop window" `Quick
            test_ivar_read_timeout_while_consensus_stalled;
          Alcotest.test_case "kill rule fires once" `Quick
            test_kill_rule_fires_once;
          Alcotest.test_case "crash then revive heals" `Quick
            test_crash_then_revive_heals;
          Alcotest.test_case "same seeds, same injections" `Quick
            test_same_seeds_same_injections;
          Alcotest.test_case "sanitized drop+duplicate plan stays clean"
            `Quick test_sanitized_drop_duplicate_plan_stays_clean;
        ] );
    ]
