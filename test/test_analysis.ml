(* Tests for the analysis layer: the clean matrix is violation-free, and
   each seeded corruption of a recorded execution trips exactly the
   intended checker with its distinct exit code. *)

let check = Alcotest.check

let sync_elim =
  { Concurrent.default_policy with Concurrent.elimination = Concurrent.Sync_elim }

let counters = List.hd Invariants.default_scenarios

let class_names vs =
  List.sort_uniq compare (List.map (fun v -> Report.class_name v.Report.check) vs)

(* ---------------- clean matrix ---------------- *)

let test_clean_matrix () =
  let violations, runs = Invariants.run_matrix ~seeds:2 () in
  check Alcotest.int "all cells ran"
    (List.length Invariants.default_scenarios
     * List.length Invariants.policy_matrix * 2)
    runs;
  List.iter (fun v -> Format.printf "%a@." Report.pp_violation v) violations;
  check Alcotest.int "no violations" 0 (List.length violations);
  check Alcotest.int "exit code" 0 (Report.exit_code violations)

(* ---------------- seeded bugs ---------------- *)

(* A second latch fill: some loser also records Sync_won, as if the
   at-most-once synchronisation admitted two winners. *)
let test_seeded_double_latch () =
  let rr = Invariants.run_scenario counters ~policy:sync_elim ~seed:1 in
  let tr = Engine.trace rr.Invariants.engine in
  let loser =
    List.find
      (fun c ->
        not (Option.equal Pid.equal (Some c) rr.Invariants.report.Concurrent.winner))
      rr.Invariants.report.Concurrent.children
  in
  Trace.record tr
    ~time:(Engine.now rr.Invariants.engine)
    (Trace.Sync_won { pid = loser; index = 99; epoch = 0 });
  let vs = Invariants.check_all rr in
  check Alcotest.bool "caught" true (vs <> []);
  check Alcotest.(list string) "only the at-most-once checker fires"
    [ "at-most-once" ] (class_names vs);
  check Alcotest.int "exit code" 10 (Report.exit_code vs)

(* A forged acceptance: the trace claims a process accepted a message whose
   predicate contradicts the acceptor's own world. *)
let test_seeded_forged_predicate () =
  let rr = Invariants.run_scenario counters ~policy:sync_elim ~seed:2 in
  let tr = Engine.trace rr.Invariants.engine in
  let c0 = List.hd rr.Invariants.report.Concurrent.children in
  let c1 = List.nth rr.Invariants.report.Concurrent.children 1 in
  let msg =
    Message.make ~sender:c0 ~dest:c1
      ~predicate:(Predicate.make ~must_complete:[ c0 ] ~must_fail:[])
      ~tag:"forged" ~seq:0 Payload.Unit
  in
  Trace.record tr
    ~time:(Engine.now rr.Invariants.engine)
    (Trace.Accepted
       { dest = c1; msg;
         dest_pred = Predicate.make ~must_complete:[] ~must_fail:[ c0 ] });
  let vs = Invariants.check_all rr in
  check Alcotest.int "caught once" 1 (List.length vs);
  check Alcotest.(list string) "only the world checker fires" [ "world" ]
    (class_names vs);
  check Alcotest.int "exit code" 12 (Report.exit_code vs)

(* A skipped elimination: a loser's exit vanishes from the record, as if the
   block let an alternative escape. *)
let test_seeded_skipped_elimination () =
  let rr = Invariants.run_scenario counters ~policy:sync_elim ~seed:3 in
  let tr = Engine.trace rr.Invariants.engine in
  let loser =
    List.find
      (fun c ->
        not (Option.equal Pid.equal (Some c) rr.Invariants.report.Concurrent.winner))
      rr.Invariants.report.Concurrent.children
  in
  let kept =
    List.filter
      (fun (_, e) ->
        match e with
        | Trace.Exited { pid; _ } -> not (Pid.equal pid loser)
        | _ -> true)
      (Trace.events tr)
  in
  Trace.replace tr kept;
  let vs = Invariants.check_all rr in
  check Alcotest.int "caught once" 1 (List.length vs);
  check Alcotest.(list string) "only the elimination checker fires"
    [ "elimination" ] (class_names vs);
  check Alcotest.int "exit code" 13 (Report.exit_code vs)

(* ---------------- race detection ---------------- *)

(* Two siblings sharing one (untracked-by-COW) address space: every write
   lands in the same frames, which is exactly what the isolation checker
   must flag. *)
let test_isolation_shared_space () =
  let eng = Engine.create ~seed:7 () in
  let sp = Address_space.create (Engine.frame_store eng) (Engine.model eng) in
  Address_space.set_tracking sp true;
  let blocked ctx = ignore (Engine.receive ctx ()) in
  let p1 = Engine.spawn eng ~space:sp ~name:"sib0" blocked in
  let p2 = Engine.spawn eng ~space:sp ~name:"sib1" blocked in
  Engine.run eng;
  Address_space.write_bytes sp ~addr:0 (Bytes.make 16 'x');
  let vs =
    Race.check_isolation eng ~children:[ p1; p2 ] ~scenario:"shared-space"
      ~policy:"manual" ~seed:7
  in
  check Alcotest.bool "shared frame flagged" true (vs <> []);
  check Alcotest.(list string) "isolation class" [ "isolation" ] (class_names vs);
  check Alcotest.int "exit code" 14 (Report.exit_code vs)

(* ---------------- trace export ---------------- *)

let test_trace_jsonl () =
  let rr = Invariants.run_scenario counters ~policy:sync_elim ~seed:4 in
  let tr = Engine.trace rr.Invariants.engine in
  let s = Trace.to_jsonl tr in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  check Alcotest.int "one line per event" (List.length (Trace.events tr))
    (List.length lines);
  List.iter
    (fun l ->
      check Alcotest.bool "line is a JSON object" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      check Alcotest.bool "line carries a timestamp" true
        (String.starts_with ~prefix:"{\"t\":" l))
    lines;
  check Alcotest.bool "records spawns" true
    (List.exists (fun l -> String.length l > 0) lines
     && List.exists
          (fun l ->
            let re = "\"ev\":\"spawned\"" in
            let rec find i =
              i + String.length re <= String.length l
              && (String.sub l i (String.length re) = re || find (i + 1))
            in
            find 0)
          lines)

let () =
  Alcotest.run "analysis"
    [
      ( "analysis",
        [
          Alcotest.test_case "clean matrix has no violations" `Quick
            test_clean_matrix;
          Alcotest.test_case "seeded double latch fill -> exit 10" `Quick
            test_seeded_double_latch;
          Alcotest.test_case "seeded forged predicate -> exit 12" `Quick
            test_seeded_forged_predicate;
          Alcotest.test_case "seeded skipped elimination -> exit 13" `Quick
            test_seeded_skipped_elimination;
          Alcotest.test_case "shared-space race -> exit 14" `Quick
            test_isolation_shared_space;
          Alcotest.test_case "trace exports as JSON lines" `Quick
            test_trace_jsonl;
        ] );
    ]
