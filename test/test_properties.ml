(* Randomised end-to-end properties of the whole system:

   - the engine is deterministic (same seed, same behaviour);
   - concurrent execution is transparent (final state indistinguishable
     from a sequential execution of the winner alone);
   - multiple worlds are consistent (observers only ever see the winning
     timeline);
   - the consensus semaphore is exclusive under arbitrary timing and
     minority crashes;
   - replica quorums commit the majority value exactly when one exists. *)

let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"prop-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> failwith "prop-root did not complete"

(* ------------------------------------------------------------------ *)
(* Determinism: a pseudo-random mesh of processes delaying and pinging
   each other must behave identically across runs.                     *)

type mesh_spec = { procs : int; rounds : int; seed : int; cores : int }

let mesh_arb =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "{procs=%d; rounds=%d; seed=%d; cores=%d}" s.procs
        s.rounds s.seed s.cores)
    QCheck.Gen.(
      let* procs = int_range 2 6 in
      let* rounds = int_range 1 5 in
      let* seed = int_range 0 10_000 in
      let* cores = int_range 0 3 in
      return { procs; rounds; seed; cores })

let run_mesh spec =
  let cores = if spec.cores = 0 then Engine.Infinite else Engine.Cores spec.cores in
  let eng = Engine.create ~cores ~seed:spec.seed ~trace:true () in
  let pids = Engine.fresh_pids eng spec.procs in
  let arr = Array.of_list pids in
  List.iteri
    (fun i pid ->
      ignore
        (Engine.spawn eng ~pid ~name:(Printf.sprintf "m%d" i) (fun ctx ->
             let rng = Rng.create ~seed:(spec.seed + i) in
             for _ = 1 to spec.rounds do
               Engine.delay ctx (Rng.float rng 0.5);
               let target = arr.(Rng.int rng spec.procs) in
               Engine.send ctx target (Payload.int i);
               (* Drain at most one pending message without blocking. *)
               ignore (Engine.receive_timeout ctx ~timeout:0.01 ())
             done)))
    pids;
  Engine.run eng;
  ( Engine.now eng,
    Engine.stats_events_processed eng,
    List.length (Trace.events (Engine.trace eng)),
    Engine.total_cpu_time eng )

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are bit-deterministic" ~count:60 mesh_arb
    (fun spec -> run_mesh spec = run_mesh spec)

(* ------------------------------------------------------------------ *)
(* Transparency: racing randomly-writing alternatives leaves exactly the
   winner's state.                                                     *)

type race_spec = { alts : (float * (int * int) list) list (* cost, writes *) }

let race_arb =
  QCheck.make
    ~print:(fun s ->
      String.concat " | "
        (List.map
           (fun (c, ws) ->
             Printf.sprintf "%.2fs:%s" c
               (String.concat ","
                  (List.map (fun (a, v) -> Printf.sprintf "%d<-%d" a v) ws)))
           s.alts))
    QCheck.Gen.(
      let* n = int_range 1 5 in
      let* alts =
        list_repeat n
          (let* cost = float_range 0.1 5. in
           let* writes =
             list_size (int_range 1 6)
               (pair (int_range 0 7) (int_range 1 1000))
           in
           return (cost, writes))
      in
      return { alts })

let final_cells eng space =
  ignore eng;
  List.init 8 (fun i -> Address_space.get_int space ~addr:(i * 64))

let build_alt (cost, writes) =
  Alternative.make (fun ctx ->
      List.iter
        (fun (cell, v) ->
          match Engine.space ctx with
          | Some sp ->
            Address_space.set_int sp ~addr:(cell * 64) v;
            Engine.charge_memory ctx
          | None -> ())
        writes;
      Engine.delay ctx cost;
      cost)

let prop_concurrent_transparent =
  QCheck.Test.make ~name:"concurrent block == sequential winner (state)"
    ~count:100 race_arb (fun spec ->
      (* Concurrent run. *)
      let eng = Engine.create ~trace:false () in
      let space =
        Address_space.create (Engine.frame_store eng) (Engine.model eng)
      in
      let r =
        Concurrent.run_toplevel eng ~space (List.map build_alt spec.alts)
      in
      match r.Concurrent.outcome with
      | Alt_block.Block_failed _ -> false
      | Alt_block.Selected { index; _ } ->
        let concurrent_state = final_cells eng space in
        (* Sequential run of the winner alone. *)
        let eng2 = Engine.create ~trace:false () in
        let space2 =
          Address_space.create (Engine.frame_store eng2) (Engine.model eng2)
        in
        let _ =
          in_process ~space:space2 eng2 (fun ctx ->
              Alt_block.run_first ctx [ build_alt (List.nth spec.alts index) ])
        in
        let sequential_state = final_cells eng2 space2 in
        let costs = Array.of_list (List.map fst spec.alts) in
        concurrent_state = sequential_state
        && Float.abs (r.Concurrent.elapsed -. Stats.min costs) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Worlds consistency: speculative children message an observer; only
   the winning child's message may ever be delivered into the surviving
   observer's history.                                                 *)

let worlds_arb =
  QCheck.make
    ~print:(fun (n, costs) ->
      Printf.sprintf "n=%d costs=[%s]" n
        (String.concat ";" (List.map (Printf.sprintf "%.2f") costs)))
    QCheck.Gen.(
      let* n = int_range 2 5 in
      let* costs = list_repeat n (float_range 0.1 4.) in
      return (n, costs))

let prop_worlds_observer_consistent =
  QCheck.Test.make ~name:"observers see only the winning timeline" ~count:80
    worlds_arb (fun (n, costs) ->
      let eng = Engine.create ~trace:false () in
      let seen = ref [] in
      let observer =
        (* Each world accumulates its own local history (reconstructed by
           replay in clones) and publishes it only on surviving to
           completion: eliminated worlds never publish. *)
        Engine.spawn eng ~name:"observer" (fun ctx ->
            let local = ref [] in
            let rec loop () =
              match Engine.receive_timeout ctx ~timeout:50. () with
              | Some m ->
                local := Payload.get_int m.Message.payload :: !local;
                loop ()
              | None -> ()
            in
            loop ();
            seen := List.rev !local :: !seen)
      in
      ignore observer;
      let alts =
        List.mapi
          (fun i cost ->
            Alternative.make (fun ctx ->
                Engine.send ctx observer (Payload.int i);
                Engine.delay ctx cost;
                i))
          costs
      in
      let r =
        in_process eng (fun ctx -> Concurrent.run ctx alts)
      in
      ignore n;
      match r.Concurrent.outcome with
      | Alt_block.Selected { index; _ } ->
        (* Exactly one observer world survives, and its entire visible
           history is the winner's single message. *)
        !seen = [ [ index ] ]
      | Alt_block.Block_failed _ -> false)

(* ------------------------------------------------------------------ *)
(* Consensus exclusivity under random timing and minority crashes.     *)

let consensus_arb =
  QCheck.make
    ~print:(fun (nodes, crashed, offsets) ->
      Printf.sprintf "nodes=%d crashed=[%s] offsets=[%s]" nodes
        (String.concat ";" (List.map string_of_int crashed))
        (String.concat ";" (List.map (Printf.sprintf "%.3f") offsets)))
    QCheck.Gen.(
      let* nodes = oneofl [ 3; 5; 7 ] in
      let max_crashed = (nodes - 1) / 2 in
      let* crash_count = int_range 0 max_crashed in
      let* crashed =
        map
          (fun l -> List.sort_uniq compare (List.map (fun x -> x mod nodes) l))
          (list_repeat crash_count (int_range 0 (nodes - 1)))
      in
      let* requesters = int_range 1 4 in
      let* offsets = list_repeat requesters (float_range 0. 0.02) in
      return (nodes, crashed, offsets))

let prop_consensus_exclusive =
  QCheck.Test.make ~name:"majority semaphore: exactly one owner" ~count:80
    consensus_arb (fun (nodes, crashed, offsets) ->
      let eng =
        Engine.create ~model:Cost_model.hp_9000_350 ~trace:false ()
      in
      let m = Majority.create eng ~nodes ~crashed () in
      let wins = ref 0 and done_ = ref 0 in
      List.iter
        (fun offset ->
          ignore
            (Engine.spawn eng ~start_delay:offset (fun ctx ->
                 if Majority.acquire ctx m ~reply_timeout:1. then incr wins;
                 incr done_)))
        offsets;
      Engine.run eng;
      !done_ = List.length offsets && !wins = 1)

(* ------------------------------------------------------------------ *)
(* Replica quorums: the committed value is the strict-majority value
   exactly when one exists.                                            *)

let quorum_arb =
  QCheck.make
    ~print:(fun values ->
      String.concat ";" (List.map string_of_int values))
    QCheck.Gen.(list_size (int_range 1 7) (int_range 0 3))

let majority_of values =
  let n = List.length values in
  let need = (n / 2) + 1 in
  let tally = Hashtbl.create 4 in
  List.iter
    (fun v ->
      Hashtbl.replace tally v (1 + Option.value ~default:0 (Hashtbl.find_opt tally v)))
    values;
  Hashtbl.fold (fun v c acc -> if c >= need then Some v else acc) tally None

let prop_quorum_matches_majority =
  QCheck.Test.make ~name:"replica quorum commits the majority value iff it exists"
    ~count:100 quorum_arb (fun values ->
      let eng = Engine.create ~trace:false () in
      let vals = Array.of_list values in
      let idx = ref (-1) in
      let q =
        in_process eng (fun ctx ->
            Replicate.run_quorum ctx ~replicas:(Array.length vals) (fun rctx ->
                (* Hand each replica its scripted answer; identical delays
                   keep every answer in play until the tally decides. *)
                incr idx;
                let v = vals.(!idx) in
                Engine.delay rctx 0.1;
                v))
      in
      match (majority_of values, q.Replicate.value) with
      | Some v, Some w -> v = w
      | None, None -> true
      | Some _, None ->
        (* The quorum may stop early once a majority is impossible among
           the remaining answers — but a true majority value must never be
           missed. It can only be missed if stragglers were eliminated
           after the decision; eliminating after "impossible" is only
           correct if the majority really was impossible. *)
        false
      | None, Some _ -> false)

(* ------------------------------------------------------------------ *)
(* Predicate algebra laws. The lint analyzer and the message-acceptance
   path both lean on [implies]/[conflicts]/[conjoin] being a well-behaved
   partial order over assumption sets; check the laws on random
   predicates (pids drawn from a shared small pool, so opposite-side
   collisions — i.e. conflicts — actually occur).                       *)

let pred_arb =
  QCheck.make ~print:Predicate.to_string
    QCheck.Gen.(
      let pool lo hi = list_size (int_range 0 4) (int_range lo hi) in
      let* cs = pool 0 7 in
      let* fs = pool 0 7 in
      let cs = List.sort_uniq compare cs in
      let fs =
        List.filter (fun x -> not (List.mem x cs)) (List.sort_uniq compare fs)
      in
      return
        (Predicate.make
           ~must_complete:(List.map Pid.of_int cs)
           ~must_fail:(List.map Pid.of_int fs)))

let prop_implies_reflexive =
  QCheck.Test.make ~name:"implies is reflexive" ~count:200 pred_arb (fun q ->
      Predicate.implies q q)

let prop_implies_antisymmetric =
  QCheck.Test.make ~name:"implies is antisymmetric (under interning)"
    ~count:500
    (QCheck.pair pred_arb pred_arb)
    (fun (a, b) ->
      QCheck.assume (Predicate.implies a b && Predicate.implies b a);
      Predicate.equal a b)

let prop_implies_transitive =
  QCheck.Test.make ~name:"implies is transitive" ~count:500
    (QCheck.triple pred_arb pred_arb pred_arb)
    (fun (a, b, c) ->
      QCheck.assume (Predicate.implies a b && Predicate.implies b c);
      Predicate.implies a c)

let prop_conflicts_symmetric =
  QCheck.Test.make ~name:"conflicts is symmetric" ~count:500
    (QCheck.pair pred_arb pred_arb)
    (fun (a, b) -> Predicate.conflicts a b = Predicate.conflicts b a)

let prop_conjoin_is_join =
  QCheck.Test.make
    ~name:"conjoin is the least upper bound of non-conflicting predicates"
    ~count:500
    (QCheck.pair pred_arb pred_arb)
    (fun (a, b) ->
      QCheck.assume (not (Predicate.conflicts a b));
      let c = Predicate.conjoin a b in
      Predicate.implies c a && Predicate.implies c b
      && Predicate.equal c (Predicate.conjoin b a)
      && Predicate.equal (Predicate.conjoin a a) a)

let prop_assume_resolve_roundtrip =
  QCheck.Test.make ~name:"assume then resolve round-trips" ~count:500
    (QCheck.pair pred_arb (QCheck.int_range 20 27))
    (fun (q, n) ->
      let pid = Pid.of_int n in
      let stronger = Predicate.assume_completes q pid in
      Predicate.implies stronger q
      && (match Predicate.resolve stronger ~pid ~fate:Predicate.Completed with
         | Predicate.Simplified q' -> Predicate.equal q' q
         | _ -> false)
      &&
      match Predicate.resolve stronger ~pid ~fate:Predicate.Failed with
      | Predicate.Falsified -> true
      | _ -> false)

let () =
  Alcotest.run "properties"
    [
      ( "system properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engine_deterministic;
            prop_concurrent_transparent;
            prop_worlds_observer_consistent;
            prop_consensus_exclusive;
            prop_quorum_matches_majority;
          ] );
      ( "predicate algebra",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_implies_reflexive;
            prop_implies_antisymmetric;
            prop_implies_transitive;
            prop_conflicts_symmetric;
            prop_conjoin_is_join;
            prop_assume_resolve_roundtrip;
          ] );
    ]
