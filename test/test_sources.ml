(* Tests for source devices: gating of non-idempotent side effects on
   predicate resolution (sections 3.1 and 3.4.2). *)

let check = Alcotest.check

let mk () = Engine.create ~trace:false ()

let lines src = List.map (fun (_, _, l) -> l) (Source.output src)

let test_certain_write_immediate () =
  let eng = mk () in
  let tty = Source.create eng ~name:"tty" in
  ignore (Engine.spawn eng (fun ctx -> Source.write ctx tty "hello"));
  Engine.run eng;
  check Alcotest.(list string) "emitted" [ "hello" ] (lines tty);
  check Alcotest.int "nothing pending" 0 (List.length (Source.pending tty))

let speculative_writer eng tty ~succeeds lines_to_write =
  let pid = List.hd (Engine.fresh_pids eng 1) in
  ignore
    (Engine.spawn eng ~pid
       ~predicate:(Predicate.make ~must_complete:[ pid ] ~must_fail:[])
       (fun ctx ->
         List.iter (fun l -> Source.write ctx tty l) lines_to_write;
         Engine.delay ctx 1.;
         if not succeeds then Engine.abort ctx "speculation failed"));
  pid

let test_speculative_write_buffered_then_flushed () =
  let eng = mk () in
  let tty = Source.create eng ~name:"tty" in
  let _pid = speculative_writer eng tty ~succeeds:true [ "a"; "b" ] in
  (* Before resolution the lines are pending, not emitted. *)
  Engine.run_for eng 0.5;
  check Alcotest.(list string) "nothing emitted yet" [] (lines tty);
  check Alcotest.int "buffered" 1 (List.length (Source.pending tty));
  Engine.run eng;
  check Alcotest.(list string) "flushed in order" [ "a"; "b" ] (lines tty);
  check Alcotest.int "discards" 0 (Source.discarded tty)

let test_speculative_write_discarded_on_death () =
  let eng = mk () in
  let tty = Source.create eng ~name:"tty" in
  let _pid = speculative_writer eng tty ~succeeds:false [ "x"; "y"; "z" ] in
  Engine.run eng;
  check Alcotest.(list string) "losing world leaves no trace" [] (lines tty);
  check Alcotest.int "three lines discarded" 3 (Source.discarded tty)

let test_two_worlds_one_trace () =
  (* Two mutually exclusive alternatives both write; only the winner's
     output appears. *)
  let eng = mk () in
  let tty = Source.create eng ~name:"tty" in
  let pids = Engine.fresh_pids eng 2 in
  let a = List.nth pids 0 and b = List.nth pids 1 in
  let spawn_alt pid other line ~wins =
    ignore
      (Engine.spawn eng ~pid
         ~predicate:(Predicate.make ~must_complete:[ pid ] ~must_fail:[ other ])
         (fun ctx ->
           Source.write ctx tty line;
           Engine.delay ctx 1.;
           if not wins then Engine.abort ctx "lost"))
  in
  spawn_alt a b "from A" ~wins:true;
  spawn_alt b a "from B" ~wins:false;
  Engine.run eng;
  check Alcotest.(list string) "only winner's line" [ "from A" ] (lines tty)

let test_flush_order_with_certain_write () =
  (* Buffered speculative lines must precede a later line written after the
     process becomes certain. *)
  let eng = mk () in
  let tty = Source.create eng ~name:"tty" in
  let dep = List.hd (Engine.fresh_pids eng 1) in
  ignore
    (Engine.spawn eng
       ~predicate:(Predicate.make ~must_complete:[ dep ] ~must_fail:[])
       (fun ctx ->
         Source.write ctx tty "early";
         (* Wait until dep resolves, then write again, now certain. *)
         Engine.delay ctx 5.;
         Source.write ctx tty "late"));
  ignore (Engine.spawn eng ~pid:dep (fun ctx -> Engine.delay ctx 1.));
  Engine.run eng;
  check Alcotest.(list string) "order preserved" [ "early"; "late" ] (lines tty)

let test_read_script_and_eof () =
  let eng = mk () in
  let dev = Source.create eng ~name:"input" in
  Source.feed dev [ "one"; "two" ];
  let got = ref [] in
  let failed = ref false in
  ignore
    (Engine.spawn eng (fun ctx ->
         let first = Source.read ctx dev in
         let second = Source.read ctx dev in
         got := [ first; second ];
         try ignore (Source.read ctx dev)
         with End_of_file -> failed := true));
  Engine.run eng;
  check Alcotest.(list string) "script consumed in order" [ "one"; "two" ] !got;
  check Alcotest.bool "EOF raised" true !failed

let test_read_buffered_for_idempotence () =
  (* Two processes reading the same positions see the same values, and the
     script is consumed only once per position. *)
  let eng = mk () in
  let dev = Source.create eng ~name:"input" in
  Source.feed dev [ "v0"; "v1" ];
  let a = ref [] and b = ref [] in
  let read_two ctx =
    let first = Source.read ctx dev in
    let second = Source.read ctx dev in
    [ first; second ]
  in
  ignore (Engine.spawn eng (fun ctx -> a := read_two ctx));
  ignore (Engine.spawn eng ~start_delay:1. (fun ctx -> b := read_two ctx));
  Engine.run eng;
  check Alcotest.(list string) "first reader" [ "v0"; "v1" ] !a;
  check Alcotest.(list string) "second reader sees the same data" [ "v0"; "v1" ] !b

let test_output_records_time_and_pid () =
  let eng = mk () in
  let tty = Source.create eng ~name:"tty" in
  let pid =
    Engine.spawn eng (fun ctx ->
        Engine.delay ctx 2.;
        Source.write ctx tty "stamped")
  in
  Engine.run eng;
  match Source.output tty with
  | [ (t, p, "stamped") ] ->
    check (Alcotest.float 1e-9) "time" 2. t;
    check Alcotest.bool "pid" true (Pid.equal p pid)
  | _ -> Alcotest.fail "expected exactly one stamped line"

let () =
  Alcotest.run "sources"
    [
      ( "source",
        [
          Alcotest.test_case "certain write immediate" `Quick test_certain_write_immediate;
          Alcotest.test_case "speculative write buffered then flushed" `Quick
            test_speculative_write_buffered_then_flushed;
          Alcotest.test_case "speculative write discarded on death" `Quick
            test_speculative_write_discarded_on_death;
          Alcotest.test_case "two worlds, one trace" `Quick test_two_worlds_one_trace;
          Alcotest.test_case "flush order with later certain write" `Quick
            test_flush_order_with_certain_write;
          Alcotest.test_case "read script and EOF" `Quick test_read_script_and_eof;
          Alcotest.test_case "reads buffered for idempotence" `Quick
            test_read_buffered_for_idempotence;
          Alcotest.test_case "output records time and pid" `Quick
            test_output_records_time_and_pid;
        ] );
    ]
