(* Tests for optimistic transactions over the paged store (section 3.1's
   transaction semantics, Kung & Robinson validation) and competing
   transaction groups (section 6). *)

let check = Alcotest.check

let mk_engine () = Engine.create ~trace:false ()

let in_process eng f =
  let result = ref None in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"txn-root" (fun ctx ->
         result := Some (f ctx)));
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "root did not complete"

let test_store_basics () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:8 in
  check Alcotest.int "records" 8 (Txn.records st);
  check Alcotest.int "initial value" 0 (Txn.get st ~key:3);
  check Alcotest.int "initial version" 0 (Txn.version st ~key:3);
  Alcotest.check_raises "records positive"
    (Invalid_argument "Txn.create_store: records must be positive") (fun () ->
      ignore (Txn.create_store eng ~records:0))

let test_commit_applies_writes () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:4 in
  let r =
    in_process eng (fun ctx ->
        let t = Txn.begin_ ctx st in
        Txn.write ctx t ~key:0 10;
        Txn.write ctx t ~key:1 20;
        Txn.commit ctx t)
  in
  check Alcotest.bool "committed" true (r = Ok ());
  check Alcotest.int "key 0" 10 (Txn.get st ~key:0);
  check Alcotest.int "key 1" 20 (Txn.get st ~key:1);
  check Alcotest.int "versions bumped" 1 (Txn.version st ~key:0);
  check Alcotest.int "untouched version" 0 (Txn.version st ~key:2);
  check Alcotest.int "one commit" 1 (Txn.commits st)

let test_reads_own_writes () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  in_process eng (fun ctx ->
      let t = Txn.begin_ ctx st in
      Txn.write ctx t ~key:0 5;
      check Alcotest.int "internally consistent" 5 (Txn.read ctx t ~key:0);
      Txn.abort t)

let test_isolation_until_commit () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  in_process eng (fun ctx ->
      let t = Txn.begin_ ctx st in
      Txn.write ctx t ~key:0 99;
      check Alcotest.int "uncommitted write invisible" 0 (Txn.get st ~key:0);
      Txn.abort t;
      check Alcotest.int "aborted write never lands" 0 (Txn.get st ~key:0))

let test_snapshot_isolation_reads () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  in_process eng (fun ctx ->
      let t1 = Txn.begin_ ctx st in
      (* A later transaction commits a change. *)
      let t2 = Txn.begin_ ctx st in
      Txn.write ctx t2 ~key:0 7;
      check Alcotest.bool "t2 commits" true (Txn.commit ctx t2 = Ok ());
      (* t1 still sees its snapshot. *)
      check Alcotest.int "t1 reads the snapshot" 0 (Txn.read ctx t1 ~key:0);
      Txn.abort t1)

let test_write_write_conflict_detected () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  let result =
    in_process eng (fun ctx ->
        let t1 = Txn.begin_ ctx st in
        let _ = Txn.read ctx t1 ~key:0 in
        let t2 = Txn.begin_ ctx st in
        let v = Txn.read ctx t2 ~key:0 in
        Txn.write ctx t2 ~key:0 (v + 1);
        check Alcotest.bool "t2 commits first" true (Txn.commit ctx t2 = Ok ());
        (* t1's read of key 0 is now stale. *)
        Txn.write ctx t1 ~key:0 100;
        Txn.commit ctx t1)
  in
  (match result with
  | Error { Txn.key = 0; read_version = 0; committed_version = 1 } -> ()
  | Error c -> Alcotest.failf "unexpected conflict on key %d" c.Txn.key
  | Ok () -> Alcotest.fail "lost update not prevented!");
  check Alcotest.int "t2's increment survives" 1 (Txn.get st ~key:0)

let test_blind_writes_do_not_conflict () =
  (* A transaction that never read the record it writes cannot be
     invalidated by other writers of that record. *)
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  let r =
    in_process eng (fun ctx ->
        let t1 = Txn.begin_ ctx st in
        let t2 = Txn.begin_ ctx st in
        Txn.write ctx t2 ~key:0 1;
        check Alcotest.bool "t2 ok" true (Txn.commit ctx t2 = Ok ());
        Txn.write ctx t1 ~key:0 2;
        Txn.commit ctx t1)
  in
  check Alcotest.bool "blind write commits" true (r = Ok ());
  check Alcotest.int "last writer wins" 2 (Txn.get st ~key:0)

let test_finished_transactions_reject_use () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:1 in
  in_process eng (fun ctx ->
      let t = Txn.begin_ ctx st in
      Txn.abort t;
      Txn.abort t (* idempotent *);
      check Alcotest.bool "finished" true (Txn.is_finished t);
      Alcotest.check_raises "read after finish"
        (Invalid_argument "Txn: transaction already finished") (fun () ->
          ignore (Txn.read ctx t ~key:0)))

let test_key_range_checked () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  in_process eng (fun ctx ->
      let t = Txn.begin_ ctx st in
      Alcotest.check_raises "bad key" (Invalid_argument "Txn: key out of range")
        (fun () -> ignore (Txn.read ctx t ~key:2));
      Txn.abort t)

let test_with_txn_retries () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:1 in
  let attempts = ref 0 in
  let r =
    in_process eng (fun ctx ->
        Txn.with_txn ctx st ~retries:5 (fun ctx t ->
            incr attempts;
            let v = Txn.read ctx t ~key:0 in
            (* Interfere with ourselves on the first two attempts. *)
            if !attempts <= 2 then begin
              let saboteur = Txn.begin_ ctx st in
              let w = Txn.read ctx saboteur ~key:0 in
              Txn.write ctx saboteur ~key:0 (w + 10);
              ignore (Txn.commit ctx saboteur)
            end;
            Txn.write ctx t ~key:0 (v + 1);
            v))
  in
  check Alcotest.bool "eventually committed" true (match r with Ok _ -> true | _ -> false);
  check Alcotest.int "took three attempts" 3 !attempts;
  (* Two sabotages (+10 each) plus the successful increment. *)
  check Alcotest.int "final value" 21 (Txn.get st ~key:0)

let test_with_txn_exhausts_retries () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:1 in
  let r =
    in_process eng (fun ctx ->
        Txn.with_txn ctx st ~retries:2 (fun ctx t ->
            let v = Txn.read ctx t ~key:0 in
            let saboteur = Txn.begin_ ctx st in
            let w = Txn.read ctx saboteur ~key:0 in
            Txn.write ctx saboteur ~key:0 (w + 1);
            ignore (Txn.commit ctx saboteur);
            Txn.write ctx t ~key:0 (v + 100)))
  in
  check Alcotest.bool "gives up with the conflict" true
    (match r with Error _ -> true | Ok _ -> false)

let test_serializable_counter () =
  (* Many sequential with_txn increments are serializable: final value =
     number of commits. *)
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:1 in
  in_process eng (fun ctx ->
      for _ = 1 to 20 do
        match
          Txn.with_txn ctx st (fun ctx t ->
              let v = Txn.read ctx t ~key:0 in
              Txn.write ctx t ~key:0 (v + 1))
        with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "unexpected conflict"
      done);
  check Alcotest.int "20 increments" 20 (Txn.get st ~key:0)

(* ---------------- competing transactions ---------------- *)

let transfer name cost ~from_ ~to_ ~amount =
  {
    Txn.name;
    work =
      (fun ctx t ->
        let a = Txn.read ctx t ~key:from_ in
        let b = Txn.read ctx t ~key:to_ in
        Engine.delay ctx cost;
        Txn.write ctx t ~key:from_ (a - amount);
        Txn.write ctx t ~key:to_ (b + amount);
        amount);
  }

let test_race_commits_exactly_one () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:2 in
  (* Fund account 0. *)
  in_process eng (fun ctx ->
      ignore
        (Txn.with_txn ctx st (fun ctx t -> Txn.write ctx t ~key:0 100)));
  let eng2 = mk_engine () in
  ignore eng2;
  let outcome =
    in_process eng (fun ctx ->
        Txn.race ctx st
          [
            transfer "slow-path" 3.0 ~from_:0 ~to_:1 ~amount:30;
            transfer "fast-path" 1.0 ~from_:0 ~to_:1 ~amount:30;
          ])
  in
  (match outcome with
  | Alt_block.Selected { index = 1; value = 30 } -> ()
  | Alt_block.Selected { index; _ } -> Alcotest.failf "wrong winner %d" index
  | Alt_block.Block_failed m -> Alcotest.failf "failed: %s" m);
  (* Exactly one transfer took effect. *)
  check Alcotest.int "source debited once" 70 (Txn.get st ~key:0);
  check Alcotest.int "target credited once" 30 (Txn.get st ~key:1);
  check Alcotest.int "two commits total (funding + winner)" 2 (Txn.commits st)

let test_race_losers_leave_no_trace () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:3 in
  let outcome =
    in_process eng (fun ctx ->
        Txn.race ctx st
          [
            (* The slow competitor writes a record nobody else touches; its
               transaction must be aborted unseen. *)
            {
              Txn.name = "slow-scribbler";
              work =
                (fun ctx t ->
                  Txn.write ctx t ~key:2 777;
                  Engine.delay ctx 5.0;
                  0);
            };
            transfer "quick" 0.5 ~from_:0 ~to_:1 ~amount:1;
          ])
  in
  (match outcome with
  | Alt_block.Selected { index = 1; _ } -> ()
  | _ -> Alcotest.fail "quick must win");
  check Alcotest.int "loser's write discarded" 0 (Txn.get st ~key:2)

let test_race_failing_competitors () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:1 in
  let outcome =
    in_process eng (fun ctx ->
        Txn.race ctx st
          [
            {
              Txn.name = "broken";
              work = (fun _ _ -> raise (Alternative.Failed "bug"));
            };
            {
              Txn.name = "works";
              work =
                (fun ctx t ->
                  Engine.delay ctx 1.;
                  Txn.write ctx t ~key:0 5;
                  5);
            };
          ])
  in
  (match outcome with
  | Alt_block.Selected { index = 1; value = 5 } -> ()
  | _ -> Alcotest.fail "surviving competitor must win");
  check Alcotest.int "committed" 5 (Txn.get st ~key:0)

let test_race_all_fail () =
  let eng = mk_engine () in
  let st = Txn.create_store eng ~records:1 in
  let outcome =
    in_process eng (fun ctx ->
        Txn.race ctx st
          [
            { Txn.name = "a"; work = (fun _ _ -> raise (Alternative.Failed "x")) };
          ])
  in
  (match outcome with
  | Alt_block.Block_failed _ -> ()
  | _ -> Alcotest.fail "must fail");
  check Alcotest.int "no commits" 0 (Txn.commits st)

let prop_competing_increments_serialize =
  (* Run several racing groups back to back; each group commits exactly one
     increment, so the counter equals the number of groups. *)
  QCheck.Test.make ~name:"each racing group commits exactly once" ~count:40
    QCheck.(pair (int_range 1 8) (int_range 2 4))
    (fun (groups, competitors) ->
      let eng = mk_engine () in
      let st = Txn.create_store eng ~records:1 in
      in_process eng (fun ctx ->
          for g = 1 to groups do
            let comps =
              List.init competitors (fun i ->
                  {
                    Txn.name = Printf.sprintf "g%dc%d" g i;
                    work =
                      (fun ctx t ->
                        let v = Txn.read ctx t ~key:0 in
                        Engine.delay ctx (0.1 +. (0.1 *. float_of_int i));
                        Txn.write ctx t ~key:0 (v + 1);
                        v);
                  })
            in
            match Txn.race ctx st comps with
            | Alt_block.Selected _ -> ()
            | Alt_block.Block_failed m -> failwith m
          done);
      Txn.get st ~key:0 = groups && Txn.commits st = groups)

let () =
  Alcotest.run "txn"
    [
      ( "occ",
        [
          Alcotest.test_case "store basics" `Quick test_store_basics;
          Alcotest.test_case "commit applies writes" `Quick test_commit_applies_writes;
          Alcotest.test_case "reads own writes" `Quick test_reads_own_writes;
          Alcotest.test_case "isolation until commit" `Quick test_isolation_until_commit;
          Alcotest.test_case "snapshot reads" `Quick test_snapshot_isolation_reads;
          Alcotest.test_case "stale read detected" `Quick test_write_write_conflict_detected;
          Alcotest.test_case "blind writes pass" `Quick test_blind_writes_do_not_conflict;
          Alcotest.test_case "finished transactions reject use" `Quick
            test_finished_transactions_reject_use;
          Alcotest.test_case "key range" `Quick test_key_range_checked;
          Alcotest.test_case "with_txn retries" `Quick test_with_txn_retries;
          Alcotest.test_case "with_txn exhausts retries" `Quick
            test_with_txn_exhausts_retries;
          Alcotest.test_case "serializable counter" `Quick test_serializable_counter;
        ] );
      ( "competing",
        [
          Alcotest.test_case "exactly one commits" `Quick test_race_commits_exactly_one;
          Alcotest.test_case "losers leave no trace" `Quick test_race_losers_leave_no_trace;
          Alcotest.test_case "failing competitors" `Quick test_race_failing_competitors;
          Alcotest.test_case "all fail" `Quick test_race_all_fail;
          QCheck_alcotest.to_alcotest prop_competing_increments_serialize;
        ] );
    ]
